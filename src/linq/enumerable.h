#ifndef CALCITE_LINQ_ENUMERABLE_H_
#define CALCITE_LINQ_ENUMERABLE_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace calcite::linq {

/// Language-Integrated Query for C++ — the analogue of Calcite's LINQ4J
/// (§7.4): a lazily-evaluated, composable query pipeline over arbitrary
/// element types, letting the programmer "write all of her code using a
/// single language". Pipelines are built from combinators (Where, Select,
/// OrderBy, GroupBy, Join, ...) and pulled through a generator-of-pull-
/// functions model: nothing executes until a terminal operation
/// (ToVector/Count/Any/First) runs.
///
/// The enumerable calling convention's operators (§5) follow the same
/// iterator discipline; this template is the user-facing embodiment.
///
/// Re-enumeration invariant (audited, enforced by ReenumerationTest): every
/// combinator keeps its mutable per-enumeration state (positions, skip/take
/// counters, materialized sort/group buffers) inside the Puller produced by
/// each Generator call — never in the shared Generator closure — so a
/// pipeline value can be enumerated repeatedly and concurrently. New
/// combinators must follow the same pattern: capture only immutable inputs
/// in the generator; create counters and buffers inside the generator body.
template <typename T>
class Enumerable {
 public:
  /// A pull function: returns the next element, or nullopt at end.
  using Puller = std::function<std::optional<T>()>;
  /// A factory creating a fresh pull function per enumeration.
  using Generator = std::function<Puller()>;

  explicit Enumerable(Generator gen) : gen_(std::move(gen)) {}

  /// An enumerable over a materialized vector (shared, not copied per
  /// enumeration).
  static Enumerable FromVector(std::vector<T> values) {
    auto data = std::make_shared<std::vector<T>>(std::move(values));
    return Enumerable([data]() {
      size_t i = 0;
      return [data, i]() mutable -> std::optional<T> {
        if (i >= data->size()) return std::nullopt;
        return (*data)[i++];
      };
    });
  }

  /// The empty enumerable.
  static Enumerable Empty() { return FromVector({}); }

  /// Integer range [start, start+count) mapped through `f`.
  static Enumerable Range(int64_t start, int64_t count,
                          std::function<T(int64_t)> f) {
    return Enumerable([start, count, f]() {
      int64_t i = 0;
      return [start, count, f, i]() mutable -> std::optional<T> {
        if (i >= count) return std::nullopt;
        return f(start + i++);
      };
    });
  }

  /// Filters elements by a predicate (SQL WHERE).
  Enumerable Where(std::function<bool(const T&)> predicate) const {
    Generator gen = gen_;
    return Enumerable([gen, predicate]() {
      Puller pull = gen();
      return [pull, predicate]() mutable -> std::optional<T> {
        while (auto v = pull()) {
          if (predicate(*v)) return v;
        }
        return std::nullopt;
      };
    });
  }

  /// Maps elements through a projection (SQL SELECT).
  template <typename U>
  Enumerable<U> Select(std::function<U(const T&)> projection) const {
    Generator gen = gen_;
    return Enumerable<U>([gen, projection]() {
      Puller pull = gen();
      return [pull, projection]() mutable -> std::optional<U> {
        if (auto v = pull()) return projection(*v);
        return std::nullopt;
      };
    });
  }

  /// Stable sort by a three-way comparator (SQL ORDER BY).
  Enumerable OrderBy(std::function<int(const T&, const T&)> cmp) const {
    Generator gen = gen_;
    return Enumerable([gen, cmp]() {
      auto sorted = std::make_shared<std::vector<T>>();
      Puller pull = gen();
      while (auto v = pull()) sorted->push_back(*v);
      std::stable_sort(sorted->begin(), sorted->end(),
                       [cmp](const T& a, const T& b) { return cmp(a, b) < 0; });
      size_t i = 0;
      return [sorted, i]() mutable -> std::optional<T> {
        if (i >= sorted->size()) return std::nullopt;
        return (*sorted)[i++];
      };
    });
  }

  /// Skips the first `n` elements (SQL OFFSET).
  Enumerable Skip(size_t n) const {
    Generator gen = gen_;
    return Enumerable([gen, n]() {
      Puller pull = gen();
      size_t skipped = 0;
      return [pull, n, skipped]() mutable -> std::optional<T> {
        while (skipped < n) {
          if (!pull()) return std::nullopt;
          ++skipped;
        }
        return pull();
      };
    });
  }

  /// Takes at most `n` elements (SQL FETCH/LIMIT).
  Enumerable Take(size_t n) const {
    Generator gen = gen_;
    return Enumerable([gen, n]() {
      Puller pull = gen();
      size_t taken = 0;
      return [pull, n, taken]() mutable -> std::optional<T> {
        if (taken >= n) return std::nullopt;
        ++taken;
        return pull();
      };
    });
  }

  /// Concatenates two enumerables (SQL UNION ALL).
  Enumerable Concat(const Enumerable& other) const {
    Generator gen = gen_;
    Generator other_gen = other.gen_;
    return Enumerable([gen, other_gen]() {
      Puller pull = gen();
      Puller other_pull = other_gen();
      bool first_done = false;
      return [pull, other_pull, first_done]() mutable -> std::optional<T> {
        if (!first_done) {
          if (auto v = pull()) return v;
          first_done = true;
        }
        return other_pull();
      };
    });
  }

  /// Removes duplicates under an ordering comparator (SQL DISTINCT).
  Enumerable Distinct(std::function<int(const T&, const T&)> cmp) const {
    Generator gen = gen_;
    return Enumerable([gen, cmp]() {
      auto seen = std::make_shared<std::vector<T>>();
      Puller pull = gen();
      while (auto v = pull()) seen->push_back(*v);
      std::stable_sort(seen->begin(), seen->end(),
                       [cmp](const T& a, const T& b) { return cmp(a, b) < 0; });
      seen->erase(std::unique(seen->begin(), seen->end(),
                              [cmp](const T& a, const T& b) {
                                return cmp(a, b) == 0;
                              }),
                  seen->end());
      size_t i = 0;
      return [seen, i]() mutable -> std::optional<T> {
        if (i >= seen->size()) return std::nullopt;
        return (*seen)[i++];
      };
    });
  }

  /// Groups by key, reducing each group to a result (SQL GROUP BY). The key
  /// type must be std::map-ordered.
  template <typename K, typename R>
  Enumerable<R> GroupBy(std::function<K(const T&)> key_fn,
                        std::function<R(const K&, const std::vector<T>&)>
                            result_fn) const {
    Generator gen = gen_;
    return Enumerable<R>([gen, key_fn, result_fn]() {
      std::map<K, std::vector<T>> groups;
      Puller pull = gen();
      while (auto v = pull()) groups[key_fn(*v)].push_back(*v);
      auto results = std::make_shared<std::vector<R>>();
      for (const auto& [key, values] : groups) {
        results->push_back(result_fn(key, values));
      }
      size_t i = 0;
      return [results, i]() mutable -> std::optional<R> {
        if (i >= results->size()) return std::nullopt;
        return (*results)[i++];
      };
    });
  }

  /// Equi-join against another enumerable (hash-join semantics, like the
  /// paper's EnumerableJoin: "implements joins by collecting rows from its
  /// child nodes and joining on the desired attributes").
  template <typename U, typename K, typename R>
  Enumerable<R> Join(const Enumerable<U>& inner,
                     std::function<K(const T&)> outer_key,
                     std::function<K(const U&)> inner_key,
                     std::function<R(const T&, const U&)> result_fn) const {
    Generator gen = gen_;
    typename Enumerable<U>::Generator inner_gen = inner.generator();
    return Enumerable<R>([gen, inner_gen, outer_key, inner_key, result_fn]() {
      std::map<K, std::vector<U>> table;
      auto inner_pull = inner_gen();
      while (auto v = inner_pull()) table[inner_key(*v)].push_back(*v);
      auto results = std::make_shared<std::vector<R>>();
      Puller pull = gen();
      while (auto v = pull()) {
        auto it = table.find(outer_key(*v));
        if (it == table.end()) continue;
        for (const U& u : it->second) results->push_back(result_fn(*v, u));
      }
      size_t i = 0;
      return [results, i]() mutable -> std::optional<R> {
        if (i >= results->size()) return std::nullopt;
        return (*results)[i++];
      };
    });
  }

  // ------------------------------ terminals -------------------------------

  std::vector<T> ToVector() const {
    std::vector<T> result;
    Puller pull = gen_();
    while (auto v = pull()) result.push_back(*v);
    return result;
  }

  size_t Count() const {
    size_t n = 0;
    Puller pull = gen_();
    while (pull()) ++n;
    return n;
  }

  bool Any() const {
    Puller pull = gen_();
    return pull().has_value();
  }

  std::optional<T> First() const {
    Puller pull = gen_();
    return pull();
  }

  /// Left fold (SQL aggregate backbone).
  template <typename A>
  A Aggregate(A init, std::function<A(A, const T&)> fold) const {
    Puller pull = gen_();
    A acc = std::move(init);
    while (auto v = pull()) acc = fold(std::move(acc), *v);
    return acc;
  }

  const Generator& generator() const { return gen_; }

 private:
  Generator gen_;
};

}  // namespace calcite::linq

#endif  // CALCITE_LINQ_ENUMERABLE_H_
