#ifndef CALCITE_LINQ_BATCH_ENUMERABLE_H_
#define CALCITE_LINQ_BATCH_ENUMERABLE_H_

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "linq/enumerable.h"

namespace calcite::linq {

/// Default rows-per-batch for batch pipelines (mirrors the executor's
/// kDefaultBatchSize; kept independent so linq stays self-contained).
inline constexpr size_t kLinqDefaultBatchSize = 1024;

/// The vectorized sibling of Enumerable<T>: a lazily-evaluated pipeline
/// whose stages exchange *batches* (std::vector<T> chunks) instead of
/// single elements. Element-level callbacks (predicates, projections) are
/// invoked inside a tight per-batch loop, so the std::function dispatch at
/// each pipeline stage is paid once per ~1024 elements rather than once per
/// element — the same amortization the enumerable calling convention's
/// physical operators apply to Rows.
///
/// Stream discipline: a pull returns the next non-empty batch, or an empty
/// batch at end-of-stream. Combinators never surface empty batches
/// mid-stream (a Where that eliminates an entire input chunk keeps pulling).
/// Like Enumerable, all per-enumeration state lives in the puller created by
/// each generator call, so a pipeline can be enumerated any number of
/// times. Blocking combinators (OrderBy/Distinct/GroupBy/Join) materialize
/// on the first pull, not at enumeration creation, so an enumeration that
/// is never pulled costs nothing.
template <typename T>
class BatchEnumerable {
 public:
  using Batch = std::vector<T>;
  /// Pulls the next batch; empty batch = end of stream.
  using Puller = std::function<Batch()>;
  /// Creates a fresh puller per enumeration.
  using Generator = std::function<Puller()>;

  explicit BatchEnumerable(Generator gen,
                           size_t batch_size = kLinqDefaultBatchSize)
      : gen_(std::move(gen)), batch_size_(batch_size == 0 ? 1 : batch_size) {}

  size_t batch_size() const { return batch_size_; }
  const Generator& generator() const { return gen_; }

  // ------------------------------- sources --------------------------------

  /// Batches over a materialized vector (shared, not copied per
  /// enumeration; each batch is a copied slice).
  static BatchEnumerable FromVector(std::vector<T> values,
                                    size_t batch_size = kLinqDefaultBatchSize) {
    if (batch_size == 0) batch_size = 1;
    auto data = std::make_shared<std::vector<T>>(std::move(values));
    return BatchEnumerable(
        [data, batch_size]() {
          size_t pos = 0;
          return [data, batch_size, pos]() mutable -> Batch {
            size_t n = std::min(batch_size, data->size() - pos);
            Batch batch(data->begin() + static_cast<ptrdiff_t>(pos),
                        data->begin() + static_cast<ptrdiff_t>(pos + n));
            pos += n;
            return batch;
          };
        },
        batch_size);
  }

  /// A stream over pre-formed batches (adopted as-is; empty batches in
  /// `batches` are skipped).
  static BatchEnumerable FromBatches(std::vector<Batch> batches,
                                     size_t batch_size = kLinqDefaultBatchSize) {
    auto data = std::make_shared<std::vector<Batch>>(std::move(batches));
    return BatchEnumerable(
        [data]() {
          size_t i = 0;
          return [data, i]() mutable -> Batch {
            while (i < data->size()) {
              const Batch& b = (*data)[i++];
              if (!b.empty()) return b;
            }
            return {};
          };
        },
        batch_size);
  }

  static BatchEnumerable Empty() { return FromVector({}); }

  /// Integer range [start, start+count) mapped through `f`, generated one
  /// batch at a time (never materialized whole).
  static BatchEnumerable Range(int64_t start, int64_t count,
                               std::function<T(int64_t)> f,
                               size_t batch_size = kLinqDefaultBatchSize) {
    if (batch_size == 0) batch_size = 1;
    return BatchEnumerable(
        [start, count, f, batch_size]() {
          int64_t i = 0;
          return [start, count, f, batch_size, i]() mutable -> Batch {
            Batch batch;
            while (i < count && batch.size() < batch_size) {
              batch.push_back(f(start + i++));
            }
            return batch;
          };
        },
        batch_size);
  }

  /// Adapts a row-at-a-time Enumerable into batches.
  static BatchEnumerable FromEnumerable(
      const Enumerable<T>& source, size_t batch_size = kLinqDefaultBatchSize) {
    if (batch_size == 0) batch_size = 1;
    typename Enumerable<T>::Generator gen = source.generator();
    return BatchEnumerable(
        [gen, batch_size]() {
          typename Enumerable<T>::Puller pull = gen();
          return [pull, batch_size]() mutable -> Batch {
            Batch batch;
            batch.reserve(batch_size);
            while (batch.size() < batch_size) {
              auto v = pull();
              if (!v) break;
              batch.push_back(std::move(*v));
            }
            return batch;
          };
        },
        batch_size);
  }

  /// Flattens back to a row-at-a-time Enumerable (for interop with code
  /// still written against the scalar combinators).
  Enumerable<T> ToEnumerable() const {
    Generator gen = gen_;
    return Enumerable<T>([gen]() {
      Puller pull = gen();
      auto batch = std::make_shared<Batch>();
      size_t i = 0;
      return [pull, batch, i]() mutable -> std::optional<T> {
        while (i >= batch->size()) {
          *batch = pull();
          i = 0;
          if (batch->empty()) return std::nullopt;
        }
        return std::move((*batch)[i++]);
      };
    });
  }

  // ----------------------------- combinators ------------------------------

  /// Filters by a per-element predicate, compacting each batch in place
  /// (SQL WHERE). One pipeline dispatch per batch, not per element.
  BatchEnumerable Where(std::function<bool(const T&)> predicate) const {
    Generator gen = gen_;
    return BatchEnumerable(
        [gen, predicate]() {
          Puller pull = gen();
          return [pull, predicate]() mutable -> Batch {
            for (;;) {
              Batch batch = pull();
              if (batch.empty()) return batch;
              size_t kept = 0;
              for (size_t i = 0; i < batch.size(); ++i) {
                if (predicate(batch[i])) {
                  if (kept != i) batch[kept] = std::move(batch[i]);
                  ++kept;
                }
              }
              if (kept == 0) continue;  // whole batch eliminated; keep pulling
              batch.resize(kept);
              return batch;
            }
          };
        },
        batch_size_);
  }

  /// Raw batch-level filter/rewrite: `fn` may drop, reorder, or edit the
  /// elements of the batch in place (the executor uses the analogue of this
  /// for selection-vector compaction).
  BatchEnumerable WhereBatch(std::function<void(Batch*)> fn) const {
    Generator gen = gen_;
    return BatchEnumerable(
        [gen, fn]() {
          Puller pull = gen();
          return [pull, fn]() mutable -> Batch {
            for (;;) {
              Batch batch = pull();
              if (batch.empty()) return batch;
              fn(&batch);
              if (!batch.empty()) return batch;
            }
          };
        },
        batch_size_);
  }

  /// Maps each element through a projection (SQL SELECT).
  template <typename U>
  BatchEnumerable<U> Select(std::function<U(const T&)> projection) const {
    Generator gen = gen_;
    return BatchEnumerable<U>(
        [gen, projection]() {
          Puller pull = gen();
          return [pull, projection]() mutable -> std::vector<U> {
            Batch batch = pull();
            std::vector<U> out;
            out.reserve(batch.size());
            for (const T& v : batch) out.push_back(projection(v));
            return out;
          };
        },
        batch_size_);
  }

  /// Parallel projection: `num_threads` workers pull input batches (the
  /// upstream puller is shared under a mutex — batches, not elements, are
  /// the unit of contention), map them, and exchange the results through a
  /// bounded queue back to the enumerating thread. The linq analogue of
  /// the executor's morsel-driven exchange (exec/parallel/), kept
  /// self-contained here. Batch order is NOT preserved: workers race, so
  /// use only when downstream consumption is order-insensitive.
  /// `num_threads <= 1` degenerates to Select.
  template <typename U>
  BatchEnumerable<U> SelectParallel(std::function<U(const T&)> projection,
                                    size_t num_threads) const {
    if (num_threads <= 1) return Select<U>(projection);
    Generator gen = gen_;
    size_t batch_size = batch_size_;
    return BatchEnumerable<U>(
        [gen, projection, num_threads, batch_size]() {
          // All shared state lives behind one shared_ptr so an enumeration
          // that is dropped mid-stream still joins its workers (the state's
          // destructor runs on the consumer thread that owns the puller).
          struct State {
            /// Guards the upstream puller only, so claiming the next input
            /// batch never blocks the consumer's pop or another worker's
            /// push — production and exchange contend on separate locks.
            std::mutex pull_mu;
            /// Guards the ready queue and its condition variables.
            std::mutex mu;
            std::condition_variable not_empty;
            std::condition_variable not_full;
            Puller pull;
            std::deque<std::vector<U>> ready;
            size_t capacity;
            size_t producers;
            /// Atomic so the pull side can read it under pull_mu alone;
            /// written under mu so cv waiters cannot miss the wakeup.
            std::atomic<bool> stop{false};
            std::vector<std::thread> workers;

            ~State() {
              {
                std::lock_guard<std::mutex> lock(mu);
                stop = true;
              }
              not_full.notify_all();
              for (std::thread& w : workers) w.join();
            }
          };
          auto state = std::make_shared<State>();
          state->pull = gen();
          state->capacity = num_threads * 2;
          state->producers = num_threads;
          for (size_t t = 0; t < num_threads; ++t) {
            // Workers hold a raw pointer, not a shared_ptr: the state's
            // destructor joins them before any member is torn down, and a
            // shared reference here would keep the state alive forever
            // (worker -> state -> worker cycle).
            State* s = state.get();
            state->workers.emplace_back([s, projection] {
              for (;;) {
                Batch batch;
                {
                  // Claim the next input batch; pulling under pull_mu
                  // serializes the upstream (which is single-consumer by
                  // contract) while the projection below runs unlocked.
                  std::lock_guard<std::mutex> lock(s->pull_mu);
                  if (!s->stop.load(std::memory_order_acquire)) {
                    batch = s->pull();
                  }
                }
                if (batch.empty()) break;  // end of stream or stopped
                std::vector<U> out;
                out.reserve(batch.size());
                for (const T& v : batch) out.push_back(projection(v));
                std::unique_lock<std::mutex> lock(s->mu);
                s->not_full.wait(lock, [s] {
                  return s->stop || s->ready.size() < s->capacity;
                });
                if (s->stop) break;
                s->ready.push_back(std::move(out));
                lock.unlock();
                s->not_empty.notify_one();
              }
              {
                std::lock_guard<std::mutex> lock(s->mu);
                --s->producers;
              }
              s->not_empty.notify_all();
            });
          }
          return [state]() mutable -> std::vector<U> {
            std::unique_lock<std::mutex> lock(state->mu);
            state->not_empty.wait(lock, [&state] {
              return !state->ready.empty() || state->producers == 0;
            });
            if (state->ready.empty()) return {};
            std::vector<U> batch = std::move(state->ready.front());
            state->ready.pop_front();
            lock.unlock();
            state->not_full.notify_one();
            return batch;
          };
        },
        batch_size);
  }

  /// Raw batch-level projection: one call transforms a whole input batch.
  template <typename U>
  BatchEnumerable<U> SelectBatch(
      std::function<std::vector<U>(const Batch&)> fn) const {
    Generator gen = gen_;
    return BatchEnumerable<U>(
        [gen, fn]() {
          Puller pull = gen();
          return [pull, fn]() mutable -> std::vector<U> {
            for (;;) {
              Batch batch = pull();
              if (batch.empty()) return {};
              std::vector<U> out = fn(batch);
              if (!out.empty()) return out;
            }
          };
        },
        batch_size_);
  }

  /// Stable sort by a three-way comparator (SQL ORDER BY). The input is
  /// materialized on the first pull — not at enumeration creation — so an
  /// enumeration that never pulls (e.g. the unreached side of a Concat)
  /// costs nothing; output re-emits in batches.
  BatchEnumerable OrderBy(std::function<int(const T&, const T&)> cmp) const {
    Generator gen = gen_;
    size_t batch_size = batch_size_;
    return BatchEnumerable(
        [gen, cmp, batch_size]() {
          Puller pull = gen();
          auto sorted = std::make_shared<Batch>();
          bool built = false;
          size_t pos = 0;
          return [pull, cmp, sorted, built, batch_size,
                  pos]() mutable -> Batch {
            if (!built) {
              for (;;) {
                Batch batch = pull();
                if (batch.empty()) break;
                for (T& v : batch) sorted->push_back(std::move(v));
              }
              std::stable_sort(
                  sorted->begin(), sorted->end(),
                  [cmp](const T& a, const T& b) { return cmp(a, b) < 0; });
              built = true;
            }
            size_t n = std::min(batch_size, sorted->size() - pos);
            Batch batch;
            batch.reserve(n);
            for (size_t i = 0; i < n; ++i) {
              batch.push_back(std::move((*sorted)[pos + i]));
            }
            pos += n;
            return batch;
          };
        },
        batch_size_);
  }

  /// Skips the first `n` elements, across batch boundaries (SQL OFFSET).
  BatchEnumerable Skip(size_t n) const {
    Generator gen = gen_;
    return BatchEnumerable(
        [gen, n]() {
          Puller pull = gen();
          size_t remaining = n;
          return [pull, remaining]() mutable -> Batch {
            for (;;) {
              Batch batch = pull();
              if (batch.empty()) return batch;
              if (remaining == 0) return batch;
              if (batch.size() <= remaining) {
                remaining -= batch.size();
                continue;
              }
              batch.erase(batch.begin(),
                          batch.begin() + static_cast<ptrdiff_t>(remaining));
              remaining = 0;
              return batch;
            }
          };
        },
        batch_size_);
  }

  /// Takes at most `n` elements (SQL FETCH/LIMIT).
  BatchEnumerable Take(size_t n) const {
    Generator gen = gen_;
    return BatchEnumerable(
        [gen, n]() {
          Puller pull = gen();
          size_t remaining = n;
          return [pull, remaining]() mutable -> Batch {
            if (remaining == 0) return {};
            Batch batch = pull();
            if (batch.size() > remaining) batch.resize(remaining);
            remaining -= batch.size();
            return batch;
          };
        },
        batch_size_);
  }

  /// Concatenates two batch streams (SQL UNION ALL) without re-batching.
  BatchEnumerable Concat(const BatchEnumerable& other) const {
    Generator gen = gen_;
    Generator other_gen = other.gen_;
    return BatchEnumerable(
        [gen, other_gen]() {
          Puller pull = gen();
          Puller other_pull = other_gen();
          bool first_done = false;
          return [pull, other_pull, first_done]() mutable -> Batch {
            if (!first_done) {
              Batch batch = pull();
              if (!batch.empty()) return batch;
              first_done = true;
            }
            return other_pull();
          };
        },
        batch_size_);
  }

  /// Removes duplicates under an ordering comparator (SQL DISTINCT); the
  /// input materializes lazily on first pull.
  BatchEnumerable Distinct(std::function<int(const T&, const T&)> cmp) const {
    Generator gen = gen_;
    size_t batch_size = batch_size_;
    return BatchEnumerable(
        [gen, cmp, batch_size]() {
          Puller pull = gen();
          auto seen = std::make_shared<Batch>();
          bool built = false;
          size_t pos = 0;
          return [pull, cmp, seen, built, batch_size,
                  pos]() mutable -> Batch {
            if (!built) {
              for (;;) {
                Batch batch = pull();
                if (batch.empty()) break;
                for (T& v : batch) seen->push_back(std::move(v));
              }
              std::stable_sort(
                  seen->begin(), seen->end(),
                  [cmp](const T& a, const T& b) { return cmp(a, b) < 0; });
              seen->erase(std::unique(seen->begin(), seen->end(),
                                      [cmp](const T& a, const T& b) {
                                        return cmp(a, b) == 0;
                                      }),
                          seen->end());
              built = true;
            }
            size_t n = std::min(batch_size, seen->size() - pos);
            Batch batch(seen->begin() + static_cast<ptrdiff_t>(pos),
                        seen->begin() + static_cast<ptrdiff_t>(pos + n));
            pos += n;
            return batch;
          };
        },
        batch_size_);
  }

  /// Groups by key, reducing each group to a result (SQL GROUP BY). Input
  /// is consumed a batch at a time; the key type must be std::map-ordered.
  template <typename K, typename R>
  BatchEnumerable<R> GroupBy(std::function<K(const T&)> key_fn,
                             std::function<R(const K&, const std::vector<T>&)>
                                 result_fn) const {
    Generator gen = gen_;
    size_t batch_size = batch_size_;
    return BatchEnumerable<R>(
        [gen, key_fn, result_fn, batch_size]() {
          Puller pull = gen();
          auto results = std::make_shared<std::vector<R>>();
          bool built = false;
          size_t pos = 0;
          return [pull, key_fn, result_fn, results, built, batch_size,
                  pos]() mutable -> std::vector<R> {
            if (!built) {
              std::map<K, std::vector<T>> groups;
              for (;;) {
                Batch batch = pull();
                if (batch.empty()) break;
                for (T& v : batch) groups[key_fn(v)].push_back(std::move(v));
              }
              results->reserve(groups.size());
              for (const auto& [key, values] : groups) {
                results->push_back(result_fn(key, values));
              }
              built = true;
            }
            size_t n = std::min(batch_size, results->size() - pos);
            std::vector<R> batch;
            batch.reserve(n);
            for (size_t i = 0; i < n; ++i) {
              batch.push_back(std::move((*results)[pos + i]));
            }
            pos += n;
            return batch;
          };
        },
        batch_size_);
  }

  /// Equi-join against another batch stream: hash-build the inner side a
  /// batch at a time, then probe each outer batch with one pipeline
  /// dispatch, emitting one output batch per surviving probe batch.
  template <typename U, typename K, typename R>
  BatchEnumerable<R> Join(const BatchEnumerable<U>& inner,
                          std::function<K(const T&)> outer_key,
                          std::function<K(const U&)> inner_key,
                          std::function<R(const T&, const U&)> result_fn) const {
    Generator gen = gen_;
    typename BatchEnumerable<U>::Generator inner_gen = inner.generator();
    return BatchEnumerable<R>(
        [gen, inner_gen, outer_key, inner_key, result_fn]() {
          auto table = std::make_shared<std::map<K, std::vector<U>>>();
          auto inner_pull = inner_gen();
          Puller pull = gen();
          bool built = false;
          return [table, inner_pull, pull, inner_key, outer_key, result_fn,
                  built]() mutable -> std::vector<R> {
            if (!built) {
              // Hash-build the inner side on first pull, a batch at a time.
              for (;;) {
                std::vector<U> batch = inner_pull();
                if (batch.empty()) break;
                for (U& v : batch) {
                  (*table)[inner_key(v)].push_back(std::move(v));
                }
              }
              built = true;
            }
            for (;;) {
              Batch batch = pull();
              if (batch.empty()) return {};
              std::vector<R> out;
              for (const T& v : batch) {
                auto it = table->find(outer_key(v));
                if (it == table->end()) continue;
                for (const U& u : it->second) {
                  out.push_back(result_fn(v, u));
                }
              }
              if (!out.empty()) return out;
            }
          };
        },
        batch_size_);
  }

  // ------------------------------ terminals -------------------------------

  std::vector<T> ToVector() const {
    std::vector<T> result;
    Puller pull = gen_();
    for (;;) {
      Batch batch = pull();
      if (batch.empty()) break;
      for (T& v : batch) result.push_back(std::move(v));
    }
    return result;
  }

  size_t Count() const {
    size_t n = 0;
    Puller pull = gen_();
    for (;;) {
      Batch batch = pull();
      if (batch.empty()) break;
      n += batch.size();
    }
    return n;
  }

  bool Any() const {
    Puller pull = gen_();
    return !pull().empty();
  }

  std::optional<T> First() const {
    Puller pull = gen_();
    Batch batch = pull();
    if (batch.empty()) return std::nullopt;
    return std::move(batch[0]);
  }

  /// Left fold over elements (SQL aggregate backbone); the fold closure is
  /// dispatched per element but pulled per batch.
  template <typename A>
  A Aggregate(A init, std::function<A(A, const T&)> fold) const {
    Puller pull = gen_();
    A acc = std::move(init);
    for (;;) {
      Batch batch = pull();
      if (batch.empty()) break;
      for (const T& v : batch) acc = fold(std::move(acc), v);
    }
    return acc;
  }

  /// Batch-level fold: one dispatch per batch (e.g. summing a column with a
  /// vectorizable inner loop).
  template <typename A>
  A AggregateBatches(A init, std::function<A(A, const Batch&)> fold) const {
    Puller pull = gen_();
    A acc = std::move(init);
    for (;;) {
      Batch batch = pull();
      if (batch.empty()) break;
      acc = fold(std::move(acc), batch);
    }
    return acc;
  }

 private:
  Generator gen_;
  size_t batch_size_;
};

}  // namespace calcite::linq

#endif  // CALCITE_LINQ_BATCH_ENUMERABLE_H_
