#ifndef CALCITE_PLAN_TRAITS_H_
#define CALCITE_PLAN_TRAITS_H_

#include <memory>
#include <string>
#include <vector>

namespace calcite {

/// A *calling convention* trait: the data processing system in which a
/// relational expression executes (§4). "Including the calling convention as
/// a trait allows Calcite to ... optimize transparently queries whose
/// execution might span over different engines." Conventions are interned
/// singletons — compare by pointer.
class Convention {
 public:
  /// `name` is the display name ("ENUMERABLE", "CASSANDRA", ...).
  /// `cost_factor` scales the cost of work performed in this convention
  /// relative to the enumerable baseline; adapters that execute inside the
  /// backend (e.g. pushing a filter into Splunk) advertise a factor < 1.
  Convention(std::string name, double cost_factor)
      : name_(std::move(name)), cost_factor_(cost_factor) {}

  Convention(const Convention&) = delete;
  Convention& operator=(const Convention&) = delete;

  const std::string& name() const { return name_; }
  double cost_factor() const { return cost_factor_; }

  /// The logical convention: no implementation has been chosen yet. Plans
  /// containing logical-convention operators cannot execute, which the cost
  /// model expresses as infinite cost.
  static const Convention* Logical();

  /// The enumerable convention: client-side operators over the iterator
  /// interface (§5).
  static const Convention* Enumerable();

 private:
  std::string name_;
  double cost_factor_;
};

/// Sort direction of one collation field.
enum class Direction { kAscending, kDescending };

/// One column of a collation: field index plus direction. NULLS FIRST is
/// implied by our Value ordering (nulls sort low).
struct FieldCollation {
  int field = 0;
  Direction direction = Direction::kAscending;

  bool operator==(const FieldCollation& other) const {
    return field == other.field && direction == other.direction;
  }
};

/// An ordering trait: the sequence of field collations the operator's output
/// satisfies. An empty collation means "no ordering guaranteed".
class RelCollation {
 public:
  RelCollation() = default;
  explicit RelCollation(std::vector<FieldCollation> fields)
      : fields_(std::move(fields)) {}

  static RelCollation Of(std::initializer_list<int> fields) {
    std::vector<FieldCollation> fcs;
    for (int f : fields) fcs.push_back({f, Direction::kAscending});
    return RelCollation(std::move(fcs));
  }

  const std::vector<FieldCollation>& fields() const { return fields_; }
  bool empty() const { return fields_.empty(); }

  /// True if data sorted by *this is also sorted by `required` — i.e.
  /// `required` is a prefix of this collation (the SCOPE-style property
  /// reasoning of §4 that lets the planner remove redundant sorts).
  bool Satisfies(const RelCollation& required) const;

  bool operator==(const RelCollation& other) const {
    return fields_ == other.fields_;
  }

  /// "[0 ASC, 2 DESC]" or "[]".
  std::string ToString() const;

 private:
  std::vector<FieldCollation> fields_;
};

/// The set of physical traits attached to a relational operator. Changing a
/// trait value "does not change the logical expression being evaluated" (§4).
class RelTraitSet {
 public:
  RelTraitSet() : convention_(Convention::Logical()) {}
  explicit RelTraitSet(const Convention* convention,
                       RelCollation collation = RelCollation())
      : convention_(convention), collation_(std::move(collation)) {}

  const Convention* convention() const { return convention_; }
  const RelCollation& collation() const { return collation_; }

  RelTraitSet WithConvention(const Convention* convention) const {
    return RelTraitSet(convention, collation_);
  }
  RelTraitSet WithCollation(RelCollation collation) const {
    return RelTraitSet(convention_, std::move(collation));
  }

  /// True if an expression with these traits can be used where `required`
  /// traits are demanded: conventions must match exactly and the collation
  /// must satisfy the required one.
  bool Satisfies(const RelTraitSet& required) const {
    return convention_ == required.convention_ &&
           collation_.Satisfies(required.collation_);
  }

  bool operator==(const RelTraitSet& other) const {
    return convention_ == other.convention_ && collation_ == other.collation_;
  }

  /// "ENUMERABLE.[0]".
  std::string ToString() const;

 private:
  const Convention* convention_;
  RelCollation collation_;
};

/// Optimizer cost: row count processed, CPU work, and IO work. The default
/// cost function "combines estimations for CPU, IO, and memory resources
/// used by a given expression" (§6).
class RelOptCost {
 public:
  RelOptCost() = default;
  RelOptCost(double rows, double cpu, double io)
      : rows_(rows), cpu_(cpu), io_(io) {}

  static RelOptCost Infinite();
  static RelOptCost Zero() { return RelOptCost(0, 0, 0); }

  double rows() const { return rows_; }
  double cpu() const { return cpu_; }
  double io() const { return io_; }

  bool IsInfinite() const;

  RelOptCost operator+(const RelOptCost& other) const {
    return RelOptCost(rows_ + other.rows_, cpu_ + other.cpu_, io_ + other.io_);
  }

  /// Scales all components (used by Convention::cost_factor).
  RelOptCost operator*(double factor) const {
    return RelOptCost(rows_ * factor, cpu_ * factor, io_ * factor);
  }

  /// True if this cost is strictly lower than `other` under the weighted
  /// scalar ordering (cpu + io dominate; rows break ties).
  bool IsLt(const RelOptCost& other) const;
  bool IsLe(const RelOptCost& other) const;

  /// Scalar magnitude used for ordering and for the δ-improvement fixpoint
  /// check in the cost-based planner.
  double Magnitude() const;

  std::string ToString() const;

 private:
  double rows_ = 0;
  double cpu_ = 0;
  double io_ = 0;
};

}  // namespace calcite

#endif  // CALCITE_PLAN_TRAITS_H_
