#ifndef CALCITE_PLAN_RULE_H_
#define CALCITE_PLAN_RULE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metadata/metadata.h"
#include "rel/rel_node.h"
#include "rex/rex_builder.h"
#include "rex/rex_simplifier.h"

namespace calcite {

/// Shared services available to planner rules: expression builder, type
/// factory, simplifier, and the metadata query (Calcite's RelOptCluster).
class PlannerContext {
 public:
  PlannerContext() : rex_builder_(TypeFactory{}), simplifier_(rex_builder_) {}

  const RexBuilder& rex_builder() const { return rex_builder_; }
  const TypeFactory& type_factory() const {
    return rex_builder_.type_factory();
  }
  const RexSimplifier& simplifier() const { return simplifier_; }
  MetadataQuery* metadata() { return &metadata_; }

 private:
  RexBuilder rex_builder_;
  RexSimplifier simplifier_;
  MetadataQuery metadata_;
};

class RelOptRuleCall;

/// A planner rule: "a rule matches a given pattern in the tree and executes
/// a transformation that preserves semantics of that expression" (§6).
///
/// Matching is a two-level operand pattern, like Calcite's most common rule
/// shapes: MatchesRoot filters the node the rule fires on; MatchesChild
/// optionally constrains each direct input (for rules such as
/// FilterIntoJoinRule, which matches "a filter node with a join node as a
/// [child]"). OnMatch performs the rewrite through the RelOptRuleCall.
class RelOptRule {
 public:
  virtual ~RelOptRule() = default;

  /// Unique display name, e.g. "FilterIntoJoinRule".
  virtual std::string name() const = 0;

  /// Fast root-type test (no children inspected).
  virtual bool MatchesRoot(const RelNode& node) const = 0;

  /// Constrains input `i` of the matched root. Default: anything. When a
  /// rule returns a non-trivial implementation, the cost-based planner binds
  /// concrete child expressions from the child equivalence sets.
  virtual bool MatchesChild(int i, const RelNode& child) const {
    (void)i;
    (void)child;
    return true;
  }

  /// True if the rule inspects its children's structure. Rules that only
  /// look at the root (most converter rules) return false, skipping child
  /// binding in the cost-based planner.
  virtual bool NeedsConcreteChildren() const { return true; }

  /// Fires the rule. Implementations inspect call->rel(), construct a
  /// semantically-equivalent expression, and call call->TransformTo().
  virtual void OnMatch(RelOptRuleCall* call) const = 0;
};

using RelOptRulePtr = std::shared_ptr<const RelOptRule>;

/// A single rule invocation: carries the matched expression and collects the
/// equivalent expressions the rule produces.
class RelOptRuleCall {
 public:
  /// Requests `node` converted to `traits`. In the cost-based planner this
  /// yields a subset placeholder of node's equivalence set with the desired
  /// traits; in the heuristic planner (which has no equivalence sets) it
  /// returns `node` if its traits already satisfy, else nullptr — converter
  /// rules then simply do not fire.
  using ConvertFn =
      std::function<RelNodePtr(const RelNodePtr&, const RelTraitSet&)>;

  RelOptRuleCall(RelNodePtr rel, PlannerContext* context)
      : rel_(std::move(rel)), context_(context) {}

  /// The matched root expression. Its inputs are concrete expressions when
  /// the rule declared NeedsConcreteChildren().
  const RelNodePtr& rel() const { return rel_; }

  PlannerContext* context() { return context_; }
  const RexBuilder& rex_builder() const { return context_->rex_builder(); }
  const TypeFactory& type_factory() const { return context_->type_factory(); }
  MetadataQuery* metadata() { return context_->metadata(); }

  /// Registers `node` as semantically equivalent to the matched expression.
  void TransformTo(RelNodePtr node) { results_.push_back(std::move(node)); }

  const std::vector<RelNodePtr>& results() const { return results_; }

  void SetConvertFn(ConvertFn fn) { convert_fn_ = std::move(fn); }

  /// See ConvertFn. Returns nullptr when conversion is unavailable.
  RelNodePtr Convert(const RelNodePtr& node, const RelTraitSet& traits) const {
    if (convert_fn_) return convert_fn_(node, traits);
    if (node->traits().Satisfies(traits)) return node;
    return nullptr;
  }

 private:
  RelNodePtr rel_;
  PlannerContext* context_;
  std::vector<RelNodePtr> results_;
  ConvertFn convert_fn_;
};

/// Convenience base for converter rules: rules that translate an expression
/// from one calling convention to another equivalent expression in the
/// adapter's convention (§5: adapter rules "convert various types of logical
/// relational expressions to the corresponding relational expressions of the
/// adapter's convention").
class ConverterRule : public RelOptRule {
 public:
  ConverterRule(const Convention* from, const Convention* to)
      : from_(from), to_(to) {}

  const Convention* from() const { return from_; }
  const Convention* to() const { return to_; }

  bool NeedsConcreteChildren() const override { return false; }

 private:
  const Convention* from_;
  const Convention* to_;
};

}  // namespace calcite

#endif  // CALCITE_PLAN_RULE_H_
