#include "plan/traits.h"

#include <cmath>
#include <limits>

namespace calcite {

const Convention* Convention::Logical() {
  static const Convention* kLogical = new Convention("LOGICAL", 1.0);
  return kLogical;
}

const Convention* Convention::Enumerable() {
  static const Convention* kEnumerable = new Convention("ENUMERABLE", 1.0);
  return kEnumerable;
}

bool RelCollation::Satisfies(const RelCollation& required) const {
  if (required.fields_.size() > fields_.size()) return false;
  for (size_t i = 0; i < required.fields_.size(); ++i) {
    if (!(fields_[i] == required.fields_[i])) return false;
  }
  return true;
}

std::string RelCollation::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(fields_[i].field);
    if (fields_[i].direction == Direction::kDescending) out += " DESC";
  }
  return out + "]";
}

std::string RelTraitSet::ToString() const {
  std::string out = convention_->name();
  if (!collation_.empty()) out += "." + collation_.ToString();
  return out;
}

RelOptCost RelOptCost::Infinite() {
  double inf = std::numeric_limits<double>::infinity();
  return RelOptCost(inf, inf, inf);
}

bool RelOptCost::IsInfinite() const {
  return std::isinf(rows_) || std::isinf(cpu_) || std::isinf(io_);
}

double RelOptCost::Magnitude() const {
  // CPU and IO dominate; rows act as a mild tiebreaker.
  return cpu_ + io_ + rows_ * 0.01;
}

bool RelOptCost::IsLt(const RelOptCost& other) const {
  return Magnitude() < other.Magnitude();
}

bool RelOptCost::IsLe(const RelOptCost& other) const {
  return Magnitude() <= other.Magnitude();
}

std::string RelOptCost::ToString() const {
  if (IsInfinite()) return "{inf}";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{%.1f rows, %.1f cpu, %.1f io}", rows_,
                cpu_, io_);
  return buf;
}

}  // namespace calcite
