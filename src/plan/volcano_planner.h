#ifndef CALCITE_PLAN_VOLCANO_PLANNER_H_
#define CALCITE_PLAN_VOLCANO_PLANNER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "plan/rule.h"
#include "rel/rel_node.h"
#include "util/status.h"

namespace calcite {

/// The cost-based planner engine (§6): a dynamic-programming search in the
/// style of Volcano/Cascades. "Initially, each expression is registered with
/// the planner, together with a digest based on the expression attributes
/// and its inputs. When a rule is fired on an expression e1 and the rule
/// produces a new expression e2, the planner will add e2 to the set of
/// equivalence expressions Sa that e1 belongs to. ... If a similar digest
/// associated with an expression e3 that belongs to a set Sb is found, the
/// planner has found a duplicate and hence will merge Sa and Sb."
///
/// The search terminates at a configurable fix point: either (i) exhaustive
/// — all rules applied to all expressions — or (ii) a heuristic stop when
/// the best plan cost has not improved by more than a threshold δ over the
/// last iterations.
class VolcanoPlanner {
 public:
  struct Options {
    /// Fixpoint mode (i): explore until the rule queue is drained.
    bool exhaustive = true;
    /// Fixpoint mode (ii): when not exhaustive, stop once the relative cost
    /// improvement of the best root plan over the last `delta_window` rule
    /// firings drops below this δ.
    double cost_improvement_delta = 0.01;
    int delta_window = 50;
    /// Hard safety bound on rule firings.
    int max_firings = 500000;
    /// Max member expressions per child set enumerated when binding
    /// concrete children for structural rules.
    int max_binding_exprs = 24;
  };

  VolcanoPlanner(std::vector<RelOptRulePtr> rules, PlannerContext* context);
  VolcanoPlanner(std::vector<RelOptRulePtr> rules, PlannerContext* context,
                 Options options);
  ~VolcanoPlanner();

  VolcanoPlanner(const VolcanoPlanner&) = delete;
  VolcanoPlanner& operator=(const VolcanoPlanner&) = delete;

  /// Runs the search: registers `root`, fires rules to fixpoint, and
  /// extracts the cheapest plan whose traits satisfy `required`.
  Result<RelNodePtr> Optimize(const RelNodePtr& root,
                              const RelTraitSet& required);

  /// Cost of the plan returned by the last Optimize() call.
  const RelOptCost& best_cost() const { return best_cost_; }

  int rule_fire_count() const { return rule_fire_count_; }
  int set_count() const;
  int expr_count() const { return static_cast<int>(expr_count_); }

 private:
  struct RelSet {
    int id = 0;
    int parent = -1;  // union-find
    std::vector<RelNodePtr> exprs;
    RelDataTypePtr row_type;
    /// Parent expressions referencing this set (for rule re-firing).
    std::vector<RelNodePtr> parent_exprs;
  };

  class SubsetRef;

  int Find(int set_id) const;
  RelSet& MutableSet(int set_id);

  /// Registers an expression (recursively registering children) and returns
  /// its set id. `target_set` (-1 for none) forces membership.
  Result<int> Register(const RelNodePtr& node, int target_set, int depth);

  /// Returns the canonical subset placeholder for (set, traits).
  RelNodePtr GetSubset(int set_id, const RelTraitSet& traits);

  void MergeSets(int a, int b);
  void RebuildDigests();

  void QueueMatches(const RelNodePtr& expr, int set_id);
  void FireRule(const RelOptRulePtr& rule, const RelNodePtr& expr,
                int set_id);

  /// Best cumulative cost of any expression in `set_id` satisfying
  /// `traits`.
  RelOptCost BestCost(int set_id, const RelTraitSet& traits,
                      std::unordered_set<std::string>* visiting);
  /// Extracts the cheapest concrete plan for (set, traits).
  Result<RelNodePtr> BuildBest(int set_id, const RelTraitSet& traits);

  std::string CostKey(int set_id, const RelTraitSet& traits) const;

  std::vector<RelOptRulePtr> rules_;
  PlannerContext* context_;
  Options options_;

  std::vector<std::unique_ptr<RelSet>> sets_;
  /// digest -> (expr, set id)
  std::unordered_map<std::string, std::pair<RelNodePtr, int>> digest_map_;
  /// Fired (rule, binding) signatures, to avoid duplicate work.
  std::unordered_set<std::string> fired_;
  /// Canonical subset nodes: key = CostKey.
  std::unordered_map<std::string, RelNodePtr> subsets_;

  struct QueueEntry {
    RelOptRulePtr rule;
    RelNodePtr expr;
    int set_id;
  };
  std::deque<QueueEntry> queue_;

  std::unordered_map<std::string, RelOptCost> best_cost_cache_;
  /// Reverse lookup: registered expression -> owning set.
  std::unordered_map<const RelNode*, int> expr_set_;
  /// Cycle guard for row-count queries across subset placeholders.
  std::unordered_set<int> row_count_guard_;
  /// Set from the CALCITE_TRACE environment variable: logs rule firings.
  bool trace_ = false;
  RelOptCost best_cost_ = RelOptCost::Infinite();
  int rule_fire_count_ = 0;
  size_t expr_count_ = 0;
  int root_set_ = -1;
  RelTraitSet root_traits_;
};

}  // namespace calcite

#endif  // CALCITE_PLAN_VOLCANO_PLANNER_H_
