#include "plan/hep_planner.h"

namespace calcite {

Result<RelNodePtr> HepPlanner::Optimize(const RelNodePtr& root) {
  rule_fire_count_ = 0;
  seen_digests_.clear();
  RelNodePtr current = root;
  seen_digests_.insert(current->Digest());
  for (int pass = 0; pass < max_passes_; ++pass) {
    bool changed = false;
    auto rewritten = RewriteOnce(current, &changed);
    if (!rewritten.ok()) return rewritten;
    if (!changed) break;
    std::string digest = rewritten.value()->Digest();
    if (!seen_digests_.insert(digest).second) {
      // Cycle: a rule regenerated a previously seen plan. Stop here.
      current = std::move(rewritten).value();
      break;
    }
    current = std::move(rewritten).value();
  }
  return current;
}

Result<RelNodePtr> HepPlanner::RewriteOnce(const RelNodePtr& node,
                                           bool* changed) {
  // Rewrite children first (bottom-up application).
  std::vector<RelNodePtr> new_inputs;
  new_inputs.reserve(node->inputs().size());
  bool child_changed = false;
  for (const RelNodePtr& input : node->inputs()) {
    auto rewritten = RewriteOnce(input, &child_changed);
    if (!rewritten.ok()) return rewritten;
    new_inputs.push_back(std::move(rewritten).value());
  }
  RelNodePtr current =
      child_changed ? node->CopyWithNewInputs(std::move(new_inputs)) : node;
  *changed = *changed || child_changed;

  // Fire the first matching rule that produces a different expression.
  for (const RelOptRulePtr& rule : rules_) {
    if (!rule->MatchesRoot(*current)) continue;
    bool children_match = true;
    for (int i = 0; i < current->num_inputs(); ++i) {
      if (!rule->MatchesChild(i, *current->input(i))) {
        children_match = false;
        break;
      }
    }
    if (!children_match) continue;
    RelOptRuleCall call(current, context_);
    rule->OnMatch(&call);
    for (const RelNodePtr& result : call.results()) {
      if (result->Digest() == current->Digest()) continue;
      ++rule_fire_count_;
      *changed = true;
      return result;
    }
  }
  return current;
}

}  // namespace calcite
