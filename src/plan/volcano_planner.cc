#include "plan/volcano_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace calcite {

/// Placeholder standing for "any expression of equivalence set N with the
/// given traits". Parents reference children through subsets, so a single
/// registered expression summarizes the whole group of alternatives (§6).
class VolcanoPlanner::SubsetRef final : public RelNode {
 public:
  SubsetRef(VolcanoPlanner* planner, int set_id, RelTraitSet traits,
            RelDataTypePtr row_type)
      : RelNode(std::move(traits), std::move(row_type), {}),
        planner_(planner),
        set_id_(set_id) {}

  int set_id() const { return set_id_; }

  std::string op_name() const override { return "Subset"; }

  std::string DigestAttributes() const override {
    return "set=" + std::to_string(planner_->Find(set_id_));
  }

  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override {
    (void)inputs;
    return std::make_shared<SubsetRef>(planner_, set_id_, std::move(traits),
                                       row_type());
  }

  std::optional<double> SelfRowCount(MetadataQuery* mq) const override {
    int root = planner_->Find(set_id_);
    // Guard against cyclic sets (merges can create self-references).
    if (!planner_->row_count_guard_.insert(root).second) return 100.0;
    const RelSet& set = *planner_->sets_[static_cast<size_t>(root)];
    double result = 100.0;
    if (!set.exprs.empty()) result = mq->RowCount(set.exprs.front());
    planner_->row_count_guard_.erase(root);
    return result;
  }

  std::optional<bool> SelfColumnsUnique(
      MetadataQuery* mq, const std::vector<int>& columns) const override {
    int root = planner_->Find(set_id_);
    if (!planner_->row_count_guard_.insert(~root).second) return false;
    const RelSet& set = *planner_->sets_[static_cast<size_t>(root)];
    bool result = false;
    if (!set.exprs.empty()) {
      result = mq->AreColumnsUnique(set.exprs.front(), columns);
    }
    planner_->row_count_guard_.erase(~root);
    return result;
  }

 private:
  VolcanoPlanner* planner_;
  int set_id_;
};

VolcanoPlanner::VolcanoPlanner(std::vector<RelOptRulePtr> rules,
                               PlannerContext* context)
    : VolcanoPlanner(std::move(rules), context, Options{}) {}

VolcanoPlanner::VolcanoPlanner(std::vector<RelOptRulePtr> rules,
                               PlannerContext* context, Options options)
    : rules_(std::move(rules)), context_(context), options_(options) {
  trace_ = std::getenv("CALCITE_TRACE") != nullptr;
}

VolcanoPlanner::~VolcanoPlanner() = default;

int VolcanoPlanner::Find(int set_id) const {
  while (sets_[static_cast<size_t>(set_id)]->parent >= 0) {
    set_id = sets_[static_cast<size_t>(set_id)]->parent;
  }
  return set_id;
}

VolcanoPlanner::RelSet& VolcanoPlanner::MutableSet(int set_id) {
  return *sets_[static_cast<size_t>(Find(set_id))];
}

int VolcanoPlanner::set_count() const {
  int count = 0;
  for (const auto& set : sets_) {
    if (set->parent < 0) ++count;
  }
  return count;
}

RelNodePtr VolcanoPlanner::GetSubset(int set_id, const RelTraitSet& traits) {
  int root = Find(set_id);
  std::string key = CostKey(root, traits);
  auto it = subsets_.find(key);
  if (it != subsets_.end()) return it->second;
  auto subset = std::make_shared<SubsetRef>(
      this, root, traits, sets_[static_cast<size_t>(root)]->row_type);
  subsets_[key] = subset;
  return subset;
}

std::string VolcanoPlanner::CostKey(int set_id,
                                    const RelTraitSet& traits) const {
  return std::to_string(Find(set_id)) + "|" + traits.ToString();
}

Result<int> VolcanoPlanner::Register(const RelNodePtr& node, int target_set,
                                     int depth) {
  if (depth > 4096) {
    return Status::PlanError("registration recursion limit exceeded");
  }
  if (const auto* subset = dynamic_cast<const SubsetRef*>(node.get())) {
    int found = Find(subset->set_id());
    if (target_set >= 0 && Find(target_set) != found) {
      MergeSets(found, Find(target_set));
      return Find(found);
    }
    return found;
  }

  // Normalize children to canonical subset placeholders.
  std::vector<RelNodePtr> new_inputs;
  new_inputs.reserve(node->inputs().size());
  bool changed = false;
  for (const RelNodePtr& input : node->inputs()) {
    if (const auto* child_subset =
            dynamic_cast<const SubsetRef*>(input.get())) {
      // Canonicalize (the set may have been merged since creation).
      RelNodePtr canonical =
          GetSubset(child_subset->set_id(), input->traits());
      changed = changed || canonical.get() != input.get();
      new_inputs.push_back(std::move(canonical));
      continue;
    }
    auto child_set = Register(input, -1, depth + 1);
    if (!child_set.ok()) return child_set;
    RelNodePtr subset = GetSubset(child_set.value(), input->traits());
    new_inputs.push_back(std::move(subset));
    changed = true;
  }
  RelNodePtr expr =
      changed ? node->CopyWithNewInputs(std::move(new_inputs)) : node;

  std::string digest = expr->Digest();
  auto it = digest_map_.find(digest);
  if (it != digest_map_.end()) {
    int existing = Find(it->second.second);
    if (target_set >= 0 && Find(target_set) != existing) {
      MergeSets(existing, Find(target_set));
    }
    return Find(existing);
  }

  int set_id;
  if (target_set >= 0) {
    set_id = Find(target_set);
  } else {
    set_id = static_cast<int>(sets_.size());
    auto set = std::make_unique<RelSet>();
    set->id = set_id;
    set->row_type = expr->row_type();
    sets_.push_back(std::move(set));
  }
  RelSet& set = MutableSet(set_id);
  set.exprs.push_back(expr);
  ++expr_count_;
  digest_map_[digest] = {expr, set_id};
  expr_set_[expr.get()] = set_id;

  // Track parent links for rule re-firing when child sets grow.
  for (const RelNodePtr& input : expr->inputs()) {
    if (const auto* child_subset =
            dynamic_cast<const SubsetRef*>(input.get())) {
      MutableSet(child_subset->set_id()).parent_exprs.push_back(expr);
    }
  }

  QueueMatches(expr, set_id);

  // Re-fire rules of parents: a new member may enable new child bindings.
  for (const RelNodePtr& parent : set.parent_exprs) {
    auto pit = expr_set_.find(parent.get());
    if (pit != expr_set_.end()) QueueMatches(parent, pit->second);
  }
  return set_id;
}

void VolcanoPlanner::MergeSets(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  // Keep the smaller id as root (stable digests for early sets).
  if (b < a) std::swap(a, b);
  RelSet& loser = *sets_[static_cast<size_t>(b)];
  RelSet& winner = *sets_[static_cast<size_t>(a)];
  loser.parent = a;
  for (RelNodePtr& expr : loser.exprs) {
    winner.exprs.push_back(expr);
    expr_set_[expr.get()] = a;
    QueueMatches(expr, a);
  }
  loser.exprs.clear();
  for (RelNodePtr& parent : loser.parent_exprs) {
    winner.parent_exprs.push_back(std::move(parent));
  }
  loser.parent_exprs.clear();
  RebuildDigests();
  best_cost_cache_.clear();
}

void VolcanoPlanner::RebuildDigests() {
  // Subset digests resolve through Find(), so after a merge every expression
  // referencing the losing set changes digest. Rebuild the map and fold any
  // resulting duplicates (which may cascade into further merges).
  while (true) {
    digest_map_.clear();
    std::vector<std::pair<int, int>> pending_merges;
    for (const auto& set : sets_) {
      if (set->parent >= 0) continue;
      for (const RelNodePtr& expr : set->exprs) {
        std::string digest = expr->Digest();
        auto it = digest_map_.find(digest);
        if (it == digest_map_.end()) {
          digest_map_[digest] = {expr, set->id};
        } else if (Find(it->second.second) != Find(set->id)) {
          pending_merges.push_back({Find(it->second.second), Find(set->id)});
        }
      }
    }
    if (pending_merges.empty()) break;
    // Apply the first merge and loop (MergeSets itself calls back here, so
    // apply without recursion by inlining the link step).
    int a = Find(pending_merges[0].first);
    int b = Find(pending_merges[0].second);
    if (a == b) continue;
    if (b < a) std::swap(a, b);
    RelSet& loser = *sets_[static_cast<size_t>(b)];
    RelSet& winner = *sets_[static_cast<size_t>(a)];
    loser.parent = a;
    for (RelNodePtr& expr : loser.exprs) {
      winner.exprs.push_back(expr);
      expr_set_[expr.get()] = a;
      QueueMatches(expr, a);
    }
    loser.exprs.clear();
    for (RelNodePtr& parent : loser.parent_exprs) {
      winner.parent_exprs.push_back(std::move(parent));
    }
    loser.parent_exprs.clear();
  }
}

void VolcanoPlanner::QueueMatches(const RelNodePtr& expr, int set_id) {
  for (const RelOptRulePtr& rule : rules_) {
    if (!rule->MatchesRoot(*expr)) continue;
    queue_.push_back({rule, expr, set_id});
  }
}

void VolcanoPlanner::FireRule(const RelOptRulePtr& rule,
                              const RelNodePtr& expr, int set_id) {
  set_id = Find(set_id);

  auto convert_fn = [this](const RelNodePtr& node,
                           const RelTraitSet& traits) -> RelNodePtr {
    if (const auto* subset = dynamic_cast<const SubsetRef*>(node.get())) {
      return GetSubset(subset->set_id(), traits);
    }
    auto set = Register(node, -1, 0);
    if (!set.ok()) return nullptr;
    return GetSubset(set.value(), traits);
  };

  std::vector<RelNodePtr> bindings;
  if (!rule->NeedsConcreteChildren() || expr->num_inputs() == 0) {
    std::string key = rule->name() + "/" +
                      std::to_string(reinterpret_cast<uintptr_t>(expr.get()));
    if (!fired_.insert(key).second) return;
    bindings.push_back(expr);
  } else {
    // Enumerate concrete child combinations from the child sets.
    std::vector<std::vector<RelNodePtr>> child_candidates;
    child_candidates.reserve(static_cast<size_t>(expr->num_inputs()));
    for (int i = 0; i < expr->num_inputs(); ++i) {
      const auto* subset =
          dynamic_cast<const SubsetRef*>(expr->input(i).get());
      std::vector<RelNodePtr> candidates;
      if (subset == nullptr) {
        if (rule->MatchesChild(i, *expr->input(i))) {
          candidates.push_back(expr->input(i));
        }
      } else {
        const RelSet& child_set =
            *sets_[static_cast<size_t>(Find(subset->set_id()))];
        for (const RelNodePtr& cand : child_set.exprs) {
          if (static_cast<int>(candidates.size()) >=
              options_.max_binding_exprs) {
            break;
          }
          if (rule->MatchesChild(i, *cand)) candidates.push_back(cand);
        }
      }
      if (candidates.empty()) return;  // No possible binding.
      child_candidates.push_back(std::move(candidates));
    }
    // Cartesian product of candidates.
    std::vector<size_t> idx(child_candidates.size(), 0);
    while (true) {
      std::vector<RelNodePtr> children;
      children.reserve(idx.size());
      std::string key =
          rule->name() + "/" +
          std::to_string(reinterpret_cast<uintptr_t>(expr.get()));
      for (size_t i = 0; i < idx.size(); ++i) {
        children.push_back(child_candidates[i][idx[i]]);
        key += "," + std::to_string(
                         reinterpret_cast<uintptr_t>(children.back().get()));
      }
      if (fired_.insert(key).second) {
        bindings.push_back(expr->CopyWithNewInputs(std::move(children)));
      }
      // Advance the odometer.
      size_t pos = 0;
      while (pos < idx.size()) {
        if (++idx[pos] < child_candidates[pos].size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == idx.size()) break;
    }
  }

  for (const RelNodePtr& binding : bindings) {
    RelOptRuleCall call(binding, context_);
    call.SetConvertFn(convert_fn);
    rule->OnMatch(&call);
    if (call.results().empty()) continue;
    ++rule_fire_count_;
    for (const RelNodePtr& result : call.results()) {
      if (trace_) {
        std::fprintf(stderr, "[volcano] %s: set %d += %s\n",
                     rule->name().c_str(), Find(set_id),
                     result->Digest().c_str());
      }
      auto registered = Register(result, set_id, 0);
      (void)registered;  // Registration failures only occur at depth limit.
    }
    best_cost_cache_.clear();
  }
}

RelOptCost VolcanoPlanner::BestCost(
    int set_id, const RelTraitSet& traits,
    std::unordered_set<std::string>* visiting) {
  set_id = Find(set_id);
  std::string key = CostKey(set_id, traits);
  auto it = best_cost_cache_.find(key);
  if (it != best_cost_cache_.end()) return it->second;
  if (!visiting->insert(key).second) return RelOptCost::Infinite();

  RelOptCost best = RelOptCost::Infinite();
  const RelSet& set = *sets_[static_cast<size_t>(set_id)];
  for (const RelNodePtr& expr : set.exprs) {
    if (!expr->traits().Satisfies(traits)) continue;
    RelOptCost cost = context_->metadata()->NonCumulativeCost(expr);
    if (cost.IsInfinite()) continue;
    bool feasible = true;
    for (const RelNodePtr& input : expr->inputs()) {
      const auto* subset = dynamic_cast<const SubsetRef*>(input.get());
      if (subset == nullptr) {
        cost = cost + context_->metadata()->CumulativeCost(input);
        continue;
      }
      RelOptCost child =
          BestCost(subset->set_id(), input->traits(), visiting);
      if (child.IsInfinite()) {
        feasible = false;
        break;
      }
      cost = cost + child;
    }
    if (feasible && cost.IsLt(best)) best = cost;
  }
  visiting->erase(key);
  best_cost_cache_[key] = best;
  return best;
}

Result<RelNodePtr> VolcanoPlanner::BuildBest(int set_id,
                                             const RelTraitSet& traits) {
  set_id = Find(set_id);
  const RelSet& set = *sets_[static_cast<size_t>(set_id)];
  RelOptCost best = RelOptCost::Infinite();
  RelNodePtr best_expr;
  std::unordered_set<std::string> visiting;
  for (const RelNodePtr& expr : set.exprs) {
    if (!expr->traits().Satisfies(traits)) continue;
    RelOptCost cost = context_->metadata()->NonCumulativeCost(expr);
    if (cost.IsInfinite()) continue;
    bool feasible = true;
    visiting.clear();
    visiting.insert(CostKey(set_id, traits));
    for (const RelNodePtr& input : expr->inputs()) {
      const auto* subset = dynamic_cast<const SubsetRef*>(input.get());
      if (subset == nullptr) {
        cost = cost + context_->metadata()->CumulativeCost(input);
        continue;
      }
      RelOptCost child = BestCost(subset->set_id(), input->traits(),
                                  &visiting);
      if (child.IsInfinite()) {
        feasible = false;
        break;
      }
      cost = cost + child;
    }
    if (feasible && cost.IsLt(best)) {
      best = cost;
      best_expr = expr;
    }
  }
  if (best_expr == nullptr) {
    return Status::PlanError(
        "no feasible plan for set " + std::to_string(set_id) +
        " with traits " + traits.ToString());
  }
  std::vector<RelNodePtr> children;
  children.reserve(best_expr->inputs().size());
  for (const RelNodePtr& input : best_expr->inputs()) {
    const auto* subset = dynamic_cast<const SubsetRef*>(input.get());
    if (subset == nullptr) {
      children.push_back(input);
      continue;
    }
    auto child = BuildBest(subset->set_id(), input->traits());
    if (!child.ok()) return child;
    children.push_back(std::move(child).value());
  }
  if (children.empty() && best_expr->num_inputs() == 0) return best_expr;
  return best_expr->CopyWithNewInputs(std::move(children));
}

Result<RelNodePtr> VolcanoPlanner::Optimize(const RelNodePtr& root,
                                            const RelTraitSet& required) {
  rule_fire_count_ = 0;
  auto root_set = Register(root, -1, 0);
  if (!root_set.ok()) return root_set.status();
  root_set_ = root_set.value();
  root_traits_ = required;
  GetSubset(root_set_, required);

  double last_best = std::numeric_limits<double>::infinity();
  int firings_since_check = 0;
  int processed = 0;
  while (!queue_.empty()) {
    if (processed >= options_.max_firings) break;
    QueueEntry entry = std::move(queue_.front());
    queue_.pop_front();
    ++processed;
    FireRule(entry.rule, entry.expr, entry.set_id);
    ++firings_since_check;

    if (!options_.exhaustive &&
        firings_since_check >= options_.delta_window) {
      firings_since_check = 0;
      best_cost_cache_.clear();
      std::unordered_set<std::string> visiting;
      RelOptCost current = BestCost(root_set_, required, &visiting);
      if (!current.IsInfinite()) {
        double magnitude = current.Magnitude();
        if (std::isfinite(last_best)) {
          double improvement =
              last_best > 0 ? (last_best - magnitude) / last_best : 0;
          if (improvement < options_.cost_improvement_delta) break;
        }
        last_best = magnitude;
      }
    }
  }

  best_cost_cache_.clear();
  std::unordered_set<std::string> visiting;
  best_cost_ = BestCost(root_set_, required, &visiting);
  if (best_cost_.IsInfinite()) {
    return Status::PlanError(
        "cost-based planner found no implementation for the query in traits " +
        required.ToString());
  }
  return BuildBest(root_set_, required);
}

}  // namespace calcite
