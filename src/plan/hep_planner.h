#ifndef CALCITE_PLAN_HEP_PLANNER_H_
#define CALCITE_PLAN_HEP_PLANNER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "plan/rule.h"
#include "rel/rel_node.h"
#include "util/status.h"

namespace calcite {

/// The exhaustive (heuristic) planner engine (§6): "triggers rules
/// exhaustively until it generates an expression that is no longer modified
/// by any rules. This planner is useful to quickly execute rules without
/// taking into account the cost of each expression."
///
/// Rules are applied bottom-up over the concrete operator tree; passes
/// repeat until a fixpoint (no rule changes the tree) or the pass limit.
/// A digest history breaks rewrite cycles (e.g. a commute rule firing
/// forever).
class HepPlanner {
 public:
  explicit HepPlanner(std::vector<RelOptRulePtr> rules,
                      PlannerContext* context)
      : rules_(std::move(rules)), context_(context) {}

  /// Transforms `root` until fixpoint. Always returns a valid plan (the
  /// input itself if no rule matches).
  Result<RelNodePtr> Optimize(const RelNodePtr& root);

  /// Number of successful rule firings in the last Optimize call.
  int rule_fire_count() const { return rule_fire_count_; }

  void set_max_passes(int max_passes) { max_passes_ = max_passes; }

 private:
  Result<RelNodePtr> RewriteOnce(const RelNodePtr& node, bool* changed);

  std::vector<RelOptRulePtr> rules_;
  PlannerContext* context_;
  int max_passes_ = 100;
  int rule_fire_count_ = 0;
  std::unordered_set<std::string> seen_digests_;
};

}  // namespace calcite

#endif  // CALCITE_PLAN_HEP_PLANNER_H_
