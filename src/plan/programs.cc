#include "plan/programs.h"

namespace calcite {

Result<RelNodePtr> Program::Run(const RelNodePtr& root,
                                PlannerContext* context) const {
  RelNodePtr current = root;
  for (const ProgramPhase& phase : phases_) {
    switch (phase.engine) {
      case ProgramPhase::Engine::kHeuristic: {
        HepPlanner planner(phase.rules, context);
        auto result = planner.Optimize(current);
        if (!result.ok()) {
          return Status::PlanError("phase '" + phase.name +
                                   "' failed: " + result.status().message());
        }
        current = std::move(result).value();
        break;
      }
      case ProgramPhase::Engine::kCostBased: {
        VolcanoPlanner planner(phase.rules, context, phase.volcano_options);
        auto result = planner.Optimize(current, phase.required_traits);
        if (!result.ok()) {
          return Status::PlanError("phase '" + phase.name +
                                   "' failed: " + result.status().message());
        }
        current = std::move(result).value();
        break;
      }
    }
    // The plan graph changed identity; metadata keyed by node pointers from
    // the previous phase must not leak into the next.
    context->metadata()->ClearCache();
  }
  return current;
}

Program Program::Standard(std::vector<RelOptRulePtr> logical_rules,
                          std::vector<RelOptRulePtr> physical_rules,
                          RelTraitSet required) {
  Program program;
  ProgramPhase logical;
  logical.name = "logical";
  logical.engine = ProgramPhase::Engine::kHeuristic;
  logical.rules = std::move(logical_rules);
  program.AddPhase(std::move(logical));

  ProgramPhase physical;
  physical.name = "physical";
  physical.engine = ProgramPhase::Engine::kCostBased;
  physical.rules = std::move(physical_rules);
  physical.required_traits = std::move(required);
  program.AddPhase(std::move(physical));
  return program;
}

}  // namespace calcite
