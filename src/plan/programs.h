#ifndef CALCITE_PLAN_PROGRAMS_H_
#define CALCITE_PLAN_PROGRAMS_H_

#include <string>
#include <vector>

#include "plan/hep_planner.h"
#include "plan/rule.h"
#include "plan/volcano_planner.h"

namespace calcite {

/// One stage of a multi-stage optimization program (§6: "users may choose to
/// generate multi-stage optimization logic, in which different sets of rules
/// are applied in consecutive phases of the optimization process").
struct ProgramPhase {
  enum class Engine { kHeuristic, kCostBased };

  std::string name;
  Engine engine = Engine::kHeuristic;
  std::vector<RelOptRulePtr> rules;
  /// Required output traits for cost-based phases (e.g. the enumerable
  /// convention at the final physical phase).
  RelTraitSet required_traits;
  /// Options for cost-based phases.
  VolcanoPlanner::Options volcano_options;
};

/// A sequence of optimization phases executed in order, each phase handing
/// its result to the next. This is the paper's "planner programs
/// (collections of rules organized into planning phases)".
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<ProgramPhase> phases)
      : phases_(std::move(phases)) {}

  void AddPhase(ProgramPhase phase) { phases_.push_back(std::move(phase)); }
  const std::vector<ProgramPhase>& phases() const { return phases_; }

  /// Runs all phases over `root`.
  Result<RelNodePtr> Run(const RelNodePtr& root, PlannerContext* context) const;

  /// The standard two-phase program: (1) heuristic logical rewrites with
  /// `logical_rules`, then (2) cost-based physical planning with
  /// `physical_rules` targeting `required`.
  static Program Standard(std::vector<RelOptRulePtr> logical_rules,
                          std::vector<RelOptRulePtr> physical_rules,
                          RelTraitSet required);

 private:
  std::vector<ProgramPhase> phases_;
};

}  // namespace calcite

#endif  // CALCITE_PLAN_PROGRAMS_H_
