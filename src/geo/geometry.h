#ifndef CALCITE_GEO_GEOMETRY_H_
#define CALCITE_GEO_GEOMETRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace calcite::geo {

/// A 2-D coordinate.
struct Point {
  double x = 0;
  double y = 0;

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

/// A simple-feature geometry per the OpenGIS Simple Feature Access subset
/// that the paper's §7.3 exercises: POINT, LINESTRING, and POLYGON (single
/// outer ring). Geometries are immutable once constructed.
class Geometry {
 public:
  enum class Kind { kPoint, kLineString, kPolygon };

  /// Creates a POINT geometry.
  static std::shared_ptr<const Geometry> MakePoint(double x, double y);

  /// Creates a LINESTRING geometry from at least two points.
  static std::shared_ptr<const Geometry> MakeLineString(
      std::vector<Point> points);

  /// Creates a POLYGON from an outer ring. The ring should be closed
  /// (first == last point); if not, it is closed automatically.
  static std::shared_ptr<const Geometry> MakePolygon(std::vector<Point> ring);

  Kind kind() const { return kind_; }
  const std::vector<Point>& points() const { return points_; }

  /// Well-Known Text representation, e.g. "POINT (4.9 52.37)".
  std::string ToWkt() const;

  /// Area of a polygon (shoelace formula); 0 for points and linestrings.
  double Area() const;

  /// X coordinate of a point geometry.
  double X() const { return points_.empty() ? 0 : points_[0].x; }
  /// Y coordinate of a point geometry.
  double Y() const { return points_.empty() ? 0 : points_[0].y; }

  bool Equals(const Geometry& other) const;

 private:
  Geometry(Kind kind, std::vector<Point> points)
      : kind_(kind), points_(std::move(points)) {}

  Kind kind_;
  std::vector<Point> points_;
};

using GeometryPtr = std::shared_ptr<const Geometry>;

/// Parses a WKT string ("POINT (1 2)", "LINESTRING (...)",
/// "POLYGON ((...))"). Implements ST_GeomFromText.
Result<GeometryPtr> GeomFromText(std::string_view wkt);

/// True if `outer` spatially contains `inner` (ST_Contains). Points and
/// polygon vertices on the boundary count as contained.
bool Contains(const Geometry& outer, const Geometry& inner);

/// True if `inner` is within `outer` (ST_Within); the converse of Contains.
bool Within(const Geometry& inner, const Geometry& outer);

/// Euclidean distance between two geometries (ST_Distance). Exact for
/// point/point, point/linestring and point/polygon-boundary; for other
/// combinations returns the minimum vertex-to-edge distance.
double Distance(const Geometry& a, const Geometry& b);

/// True if the two geometries intersect (ST_Intersects).
bool Intersects(const Geometry& a, const Geometry& b);

}  // namespace calcite::geo

#endif  // CALCITE_GEO_GEOMETRY_H_
