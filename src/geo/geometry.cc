#include "geo/geometry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

namespace calcite::geo {

std::shared_ptr<const Geometry> Geometry::MakePoint(double x, double y) {
  return std::shared_ptr<const Geometry>(
      new Geometry(Kind::kPoint, {Point{x, y}}));
}

std::shared_ptr<const Geometry> Geometry::MakeLineString(
    std::vector<Point> points) {
  return std::shared_ptr<const Geometry>(
      new Geometry(Kind::kLineString, std::move(points)));
}

std::shared_ptr<const Geometry> Geometry::MakePolygon(
    std::vector<Point> ring) {
  if (!ring.empty() && !(ring.front() == ring.back())) {
    ring.push_back(ring.front());
  }
  return std::shared_ptr<const Geometry>(
      new Geometry(Kind::kPolygon, std::move(ring)));
}

namespace {

void AppendCoords(const std::vector<Point>& points, std::string* out) {
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out->append(", ");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g %g", points[i].x, points[i].y);
    out->append(buf);
  }
}

}  // namespace

std::string Geometry::ToWkt() const {
  std::string out;
  switch (kind_) {
    case Kind::kPoint:
      out = "POINT (";
      AppendCoords(points_, &out);
      out += ")";
      break;
    case Kind::kLineString:
      out = "LINESTRING (";
      AppendCoords(points_, &out);
      out += ")";
      break;
    case Kind::kPolygon:
      out = "POLYGON ((";
      AppendCoords(points_, &out);
      out += "))";
      break;
  }
  return out;
}

double Geometry::Area() const {
  if (kind_ != Kind::kPolygon || points_.size() < 4) return 0;
  double sum = 0;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    sum += points_[i].x * points_[i + 1].y - points_[i + 1].x * points_[i].y;
  }
  return std::abs(sum) / 2;
}

bool Geometry::Equals(const Geometry& other) const {
  return kind_ == other.kind_ && points_ == other.points_;
}

namespace {

class WktParser {
 public:
  explicit WktParser(std::string_view text) : text_(text) {}

  Result<GeometryPtr> Parse() {
    SkipSpace();
    std::string keyword = ParseKeyword();
    if (keyword == "POINT") {
      SkipSpace();
      if (!Consume('(')) return Error("expected '('");
      auto pts = ParseCoordList();
      if (!pts.ok()) return pts.status();
      if (!Consume(')')) return Error("expected ')'");
      if (pts.value().size() != 1) return Error("POINT requires 1 coordinate");
      return Geometry::MakePoint(pts.value()[0].x, pts.value()[0].y);
    }
    if (keyword == "LINESTRING") {
      SkipSpace();
      if (!Consume('(')) return Error("expected '('");
      auto pts = ParseCoordList();
      if (!pts.ok()) return pts.status();
      if (!Consume(')')) return Error("expected ')'");
      if (pts.value().size() < 2) {
        return Error("LINESTRING requires >= 2 coordinates");
      }
      return Geometry::MakeLineString(std::move(pts).value());
    }
    if (keyword == "POLYGON") {
      SkipSpace();
      if (!Consume('(')) return Error("expected '('");
      SkipSpace();
      if (!Consume('(')) return Error("expected '(('");
      auto pts = ParseCoordList();
      if (!pts.ok()) return pts.status();
      if (!Consume(')')) return Error("expected ')'");
      SkipSpace();
      if (!Consume(')')) return Error("expected '))'");
      if (pts.value().size() < 3) {
        return Error("POLYGON requires >= 3 coordinates");
      }
      return Geometry::MakePolygon(std::move(pts).value());
    }
    return Error("unknown geometry type '" + keyword + "'");
  }

 private:
  Status Error(const std::string& msg) {
    return Status::ParseError("WKT: " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ParseKeyword() {
    std::string result;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      result.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return result;
  }

  Result<std::vector<Point>> ParseCoordList() {
    std::vector<Point> points;
    while (true) {
      auto x = ParseNumber();
      if (!x.ok()) return x.status();
      auto y = ParseNumber();
      if (!y.ok()) return y.status();
      points.push_back(Point{x.value(), y.value()});
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return points;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Cross product of (b-a) x (c-a); sign gives orientation.
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool OnSegment(const Point& p, const Point& a, const Point& b) {
  if (std::abs(Cross(a, b, p)) > 1e-12) return false;
  return p.x >= std::min(a.x, b.x) - 1e-12 &&
         p.x <= std::max(a.x, b.x) + 1e-12 &&
         p.y >= std::min(a.y, b.y) - 1e-12 && p.y <= std::max(a.y, b.y) + 1e-12;
}

/// Ray-casting point-in-polygon test. Boundary points count as inside.
bool PointInPolygon(const Point& p, const std::vector<Point>& ring) {
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    if (OnSegment(p, ring[i], ring[i + 1])) return true;
  }
  bool inside = false;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    const Point& a = ring[i];
    const Point& b = ring[i + 1];
    if ((a.y > p.y) != (b.y > p.y)) {
      double t = (p.y - a.y) / (b.y - a.y);
      double x = a.x + t * (b.x - a.x);
      if (x > p.x) inside = !inside;
    }
  }
  return inside;
}

bool SegmentsIntersect(const Point& a, const Point& b, const Point& c,
                       const Point& d) {
  double d1 = Cross(c, d, a);
  double d2 = Cross(c, d, b);
  double d3 = Cross(a, b, c);
  double d4 = Cross(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  return OnSegment(a, c, d) || OnSegment(b, c, d) || OnSegment(c, a, b) ||
         OnSegment(d, a, b);
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  double len2 = dx * dx + dy * dy;
  double t = 0;
  if (len2 > 0) {
    t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  double px = a.x + t * dx - p.x;
  double py = a.y + t * dy - p.y;
  return std::sqrt(px * px + py * py);
}

}  // namespace

Result<GeometryPtr> GeomFromText(std::string_view wkt) {
  return WktParser(wkt).Parse();
}

bool Contains(const Geometry& outer, const Geometry& inner) {
  if (outer.kind() != Geometry::Kind::kPolygon) {
    return outer.Equals(inner);
  }
  // Every vertex of `inner` must be inside, and no edge of `inner` may cross
  // the outer boundary (sufficient for convex-ish rings; matches the simple
  // feature semantics needed for the paper's examples).
  for (const Point& p : inner.points()) {
    if (!PointInPolygon(p, outer.points())) return false;
  }
  if (inner.kind() != Geometry::Kind::kPoint) {
    const auto& ring = outer.points();
    const auto& pts = inner.points();
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      for (size_t j = 0; j + 1 < ring.size(); ++j) {
        double d1 = Cross(ring[j], ring[j + 1], pts[i]);
        double d2 = Cross(ring[j], ring[j + 1], pts[i + 1]);
        if ((d1 > 1e-12 && d2 < -1e-12) || (d1 < -1e-12 && d2 > 1e-12)) {
          double d3 = Cross(pts[i], pts[i + 1], ring[j]);
          double d4 = Cross(pts[i], pts[i + 1], ring[j + 1]);
          if ((d3 > 1e-12 && d4 < -1e-12) || (d3 < -1e-12 && d4 > 1e-12)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

bool Within(const Geometry& inner, const Geometry& outer) {
  return Contains(outer, inner);
}

double Distance(const Geometry& a, const Geometry& b) {
  // Intersecting geometries are at distance 0.
  if (Intersects(a, b)) return 0;
  double best = std::numeric_limits<double>::infinity();
  auto edge_count = [](const Geometry& g) {
    return g.points().size() < 2 ? size_t{0} : g.points().size() - 1;
  };
  // Vertex-to-edge distances in both directions.
  for (const Point& p : a.points()) {
    if (edge_count(b) == 0) {
      for (const Point& q : b.points()) {
        best = std::min(best, std::hypot(p.x - q.x, p.y - q.y));
      }
    }
    for (size_t j = 0; j + 1 < b.points().size(); ++j) {
      best = std::min(best,
                      PointSegmentDistance(p, b.points()[j], b.points()[j + 1]));
    }
  }
  for (const Point& p : b.points()) {
    if (edge_count(a) == 0) {
      for (const Point& q : a.points()) {
        best = std::min(best, std::hypot(p.x - q.x, p.y - q.y));
      }
    }
    for (size_t j = 0; j + 1 < a.points().size(); ++j) {
      best = std::min(best,
                      PointSegmentDistance(p, a.points()[j], a.points()[j + 1]));
    }
  }
  return best;
}

bool Intersects(const Geometry& a, const Geometry& b) {
  // Polygon containment covers the "fully inside" case.
  if (a.kind() == Geometry::Kind::kPolygon) {
    for (const Point& p : b.points()) {
      if (PointInPolygon(p, a.points())) return true;
    }
  }
  if (b.kind() == Geometry::Kind::kPolygon) {
    for (const Point& p : a.points()) {
      if (PointInPolygon(p, b.points())) return true;
    }
  }
  if (a.kind() == Geometry::Kind::kPoint && b.kind() == Geometry::Kind::kPoint) {
    return a.points()[0] == b.points()[0];
  }
  // Edge-to-edge intersection.
  for (size_t i = 0; i + 1 < a.points().size(); ++i) {
    for (size_t j = 0; j + 1 < b.points().size(); ++j) {
      if (SegmentsIntersect(a.points()[i], a.points()[i + 1], b.points()[j],
                            b.points()[j + 1])) {
        return true;
      }
    }
  }
  // Point-on-segment cases.
  if (a.kind() == Geometry::Kind::kPoint && b.points().size() >= 2) {
    for (size_t j = 0; j + 1 < b.points().size(); ++j) {
      if (OnSegment(a.points()[0], b.points()[j], b.points()[j + 1])) {
        return true;
      }
    }
  }
  if (b.kind() == Geometry::Kind::kPoint && a.points().size() >= 2) {
    for (size_t j = 0; j + 1 < a.points().size(); ++j) {
      if (OnSegment(b.points()[0], a.points()[j], a.points()[j + 1])) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace calcite::geo
