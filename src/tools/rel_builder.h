#ifndef CALCITE_TOOLS_REL_BUILDER_H_
#define CALCITE_TOOLS_REL_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "rel/core.h"
#include "rex/rex_builder.h"
#include "schema/schema.h"
#include "util/status.h"

namespace calcite {

/// The fluent relational expression builder of §3: "Calcite also allows
/// operator trees to be easily constructed by directly instantiating
/// relational operators. One can use the built-in relational expressions
/// builder interface." Systems with their own query language parser (Pig,
/// Hive, ...) translate into algebra through this interface.
///
/// The builder is stack-based: Scan/Values push a frame; Filter/Project/...
/// replace the top frame; Join/Union pop several. Errors (unknown table or
/// column, arity mismatches) are recorded and surface in Build().
///
///   RelBuilder b(schema);
///   auto node = b.Scan("employee_data")
///                .Aggregate(b.GroupKey({"deptno"}),
///                           {b.Count(false, "c"),
///                            b.Sum(false, "s", b.Field("sal"))})
///                .Build();
class RelBuilder {
 public:
  /// An aggregate call under construction (operand of Aggregate()).
  struct AggCall {
    AggKind kind;
    bool distinct = false;
    std::string name;
    std::vector<RexNodePtr> operands;
  };

  /// A group key under construction.
  struct GroupKeyDef {
    std::vector<RexNodePtr> keys;
  };

  explicit RelBuilder(SchemaPtr schema, RexBuilder rex_builder = RexBuilder());

  const RexBuilder& rex() const { return rex_builder_; }
  const TypeFactory& type_factory() const {
    return rex_builder_.type_factory();
  }

  // ------------------------------ leaf inputs ------------------------------

  /// Pushes a table scan. Accepts "table" or "schema.table".
  RelBuilder& Scan(const std::string& table_name);

  /// Pushes an inline relation.
  RelBuilder& Values(RelDataTypePtr row_type, std::vector<Row> rows);

  /// Pushes an existing operator tree.
  RelBuilder& Push(RelNodePtr node);

  // ----------------------------- transformations ---------------------------

  RelBuilder& Filter(RexNodePtr condition);
  RelBuilder& Project(std::vector<RexNodePtr> exprs,
                      std::vector<std::string> names = {});
  /// Joins the two top frames (left pushed first).
  RelBuilder& Join(JoinType type, RexNodePtr condition);
  RelBuilder& Aggregate(GroupKeyDef group_key, std::vector<AggCall> calls);
  RelBuilder& Sort(std::vector<FieldCollation> collation);
  /// ORDER BY the named/indexed fields ascending.
  RelBuilder& SortAsc(const std::vector<std::string>& field_names);
  RelBuilder& Limit(int64_t offset, int64_t fetch);
  /// Combines the top `input_count` frames.
  RelBuilder& Union(bool all, int input_count = 2);
  RelBuilder& Intersect(bool all, int input_count = 2);
  RelBuilder& Minus(bool all, int input_count = 2);
  /// Wraps the top frame in a Delta (STREAM interpretation, §7.2).
  RelBuilder& Delta();
  RelBuilder& Window(std::vector<WindowGroup> groups);

  // ----------------------------- expressions -------------------------------

  /// Reference to a field of the top frame by name.
  RexNodePtr Field(const std::string& name);
  /// Reference to a field of the top frame by index.
  RexNodePtr Field(int index);
  /// Reference into the N-th frame from the top (0 = top); used to build
  /// join conditions where the left is frame 1 and the right frame 0 —
  /// right-side references are offset into the joined row space.
  RexNodePtr Field(int inputs_from_top, const std::string& name);

  RexNodePtr Literal(int64_t v) const { return rex_builder_.MakeIntLiteral(v); }
  RexNodePtr Literal(const std::string& v) const {
    return rex_builder_.MakeStringLiteral(v);
  }
  RexNodePtr Literal(double v) const {
    return rex_builder_.MakeDoubleLiteral(v);
  }

  /// Operator call with inferred type; records an error on failure.
  RexNodePtr Call(OpKind op, std::vector<RexNodePtr> operands);

  RexNodePtr Equals(RexNodePtr a, RexNodePtr b) {
    return Call(OpKind::kEquals, {std::move(a), std::move(b)});
  }
  RexNodePtr And(std::vector<RexNodePtr> operands) {
    return rex_builder_.MakeAnd(std::move(operands));
  }

  // ------------------------------ aggregates -------------------------------

  GroupKeyDef GroupKey(const std::vector<std::string>& field_names);
  GroupKeyDef GroupKeyExprs(std::vector<RexNodePtr> keys) {
    return GroupKeyDef{std::move(keys)};
  }

  AggCall Count(bool distinct, const std::string& name);
  AggCall Count(bool distinct, const std::string& name, RexNodePtr operand);
  AggCall Sum(bool distinct, const std::string& name, RexNodePtr operand);
  AggCall Min(const std::string& name, RexNodePtr operand);
  AggCall Max(const std::string& name, RexNodePtr operand);
  AggCall Avg(bool distinct, const std::string& name, RexNodePtr operand);

  // -------------------------------- results --------------------------------

  /// Pops and returns the completed tree, or the first recorded error.
  Result<RelNodePtr> Build();

  /// The top frame without popping (nullptr if empty/error).
  RelNodePtr Peek() const;

 private:
  void RecordError(const std::string& message);
  /// Materializes expressions as a projection if they are not pure refs;
  /// returns field indexes of the keys.
  std::vector<int> EnsureFields(const std::vector<RexNodePtr>& exprs);

  SchemaPtr schema_;
  RexBuilder rex_builder_;
  std::vector<RelNodePtr> stack_;
  Status error_;
};

}  // namespace calcite

#endif  // CALCITE_TOOLS_REL_BUILDER_H_
