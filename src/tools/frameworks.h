#ifndef CALCITE_TOOLS_FRAMEWORKS_H_
#define CALCITE_TOOLS_FRAMEWORKS_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/programs.h"
#include "plan/rule.h"
#include "rel/core.h"
#include "schema/schema.h"
#include "util/status.h"

namespace calcite {

class MaterializationCatalog;

/// A materialized query result: row type plus rows.
struct QueryResult {
  RelDataTypePtr row_type;
  std::vector<Row> rows;

  /// Renders an aligned text table (column headers + rows), like a CLI
  /// result grid.
  std::string ToTable() const;
};

/// The embedder's entry point — the analogue of Calcite's Frameworks /
/// JDBC connection (Figure 1): it wires the parser, validator, converter,
/// optimizer (multi-stage program over both planner engines) and the
/// enumerable executor over a root schema. Adapter schemas mounted under the
/// root contribute their push-down rules and calling conventions
/// automatically (§5).
class Connection {
 public:
  struct Config {
    SchemaPtr schema;
    /// Enable join-order exploration (commute/associate) in the cost-based
    /// phase.
    bool join_reorder = false;
    /// Cost-based phase options (fixpoint mode, δ threshold...).
    VolcanoPlanner::Options volcano_options;
    /// Extra planner rules for the cost-based phase.
    std::vector<RelOptRulePtr> extra_rules;
    /// Materialized views available for query rewriting (§6); the
    /// substitution rule joins the logical phase when set.
    const MaterializationCatalog* materializations = nullptr;
    /// Skip the heuristic logical phase (for experiments).
    bool skip_logical_phase = false;
    /// Runtime options for the batched enumerable executor: rows per
    /// RowBatch (batch_size = 1 reproduces row-at-a-time execution) and the
    /// worker-thread count of the morsel-driven parallel executor
    /// (num_threads = 1, the default, keeps execution fully serial and
    /// deterministic; > 1 parallelizes eligible scan/aggregate/join
    /// fragments at the cost of row-order determinism within them).
    ExecOptions exec_options;
  };

  explicit Connection(Config config);

  PlannerContext* context() { return &context_; }
  const SchemaPtr& schema() const { return config_.schema; }

  /// SQL -> logical plan (parse + validate + convert).
  Result<RelNodePtr> ParseQuery(const std::string& sql);

  /// Logical plan -> physical (enumerable-rooted) plan via the standard
  /// two-phase program.
  Result<RelNodePtr> OptimizePlan(const RelNodePtr& logical);

  /// Full pipeline: SQL -> optimized plan -> rows.
  Result<QueryResult> Query(const std::string& sql);

  /// Executes an already-optimized physical plan.
  Result<QueryResult> ExecutePlan(const RelNodePtr& physical);

  /// EXPLAIN: the logical or optimized plan as text.
  Result<std::string> Explain(const std::string& sql, bool optimized,
                              bool include_traits = false);

  /// All rules the optimizer will use (standard + adapter + extra).
  std::vector<RelOptRulePtr> PhysicalRules() const;

 private:
  void CollectAdapterRules(const SchemaPtr& schema,
                           std::vector<RelOptRulePtr>* rules,
                           std::vector<const Convention*>* conventions) const;

  Config config_;
  PlannerContext context_;
};

}  // namespace calcite

#endif  // CALCITE_TOOLS_FRAMEWORKS_H_
