#include "tools/rel_builder.h"

#include "rex/rex_util.h"
#include "util/string_utils.h"

namespace calcite {

RelBuilder::RelBuilder(SchemaPtr schema, RexBuilder rex_builder)
    : schema_(std::move(schema)), rex_builder_(std::move(rex_builder)) {}

void RelBuilder::RecordError(const std::string& message) {
  if (error_.ok()) error_ = Status::InvalidArgument(message);
}

RelBuilder& RelBuilder::Scan(const std::string& table_name) {
  auto resolved = ResolveTable(schema_, Split(table_name, '.'));
  if (!resolved.ok()) {
    RecordError(resolved.status().message());
    return *this;
  }
  stack_.push_back(LogicalTableScan::Create(
      resolved.value().table, resolved.value().qualified_name,
      resolved.value().schema->ScanConvention(),
      rex_builder_.type_factory()));
  return *this;
}

RelBuilder& RelBuilder::Values(RelDataTypePtr row_type,
                               std::vector<Row> rows) {
  stack_.push_back(LogicalValues::Create(std::move(row_type),
                                         std::move(rows)));
  return *this;
}

RelBuilder& RelBuilder::Push(RelNodePtr node) {
  stack_.push_back(std::move(node));
  return *this;
}

RelBuilder& RelBuilder::Filter(RexNodePtr condition) {
  if (stack_.empty()) {
    RecordError("Filter() with no input on the stack");
    return *this;
  }
  if (condition == nullptr) {
    RecordError("Filter() with null condition");
    return *this;
  }
  RelNodePtr input = stack_.back();
  stack_.pop_back();
  stack_.push_back(LogicalFilter::Create(std::move(input),
                                         std::move(condition)));
  return *this;
}

RelBuilder& RelBuilder::Project(std::vector<RexNodePtr> exprs,
                                std::vector<std::string> names) {
  if (stack_.empty()) {
    RecordError("Project() with no input on the stack");
    return *this;
  }
  for (const RexNodePtr& e : exprs) {
    if (e == nullptr) {
      RecordError("Project() with null expression");
      return *this;
    }
  }
  RelNodePtr input = stack_.back();
  stack_.pop_back();
  if (names.empty()) {
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (const RexInputRef* ref = AsInputRef(exprs[i])) {
        names.push_back(
            input->row_type()->fields()[static_cast<size_t>(ref->index())]
                .name);
      } else {
        names.push_back("$f" + std::to_string(i));
      }
    }
  }
  stack_.push_back(LogicalProject::Create(std::move(input), std::move(exprs),
                                          names,
                                          rex_builder_.type_factory()));
  return *this;
}

RelBuilder& RelBuilder::Join(JoinType type, RexNodePtr condition) {
  if (stack_.size() < 2) {
    RecordError("Join() needs two inputs on the stack");
    return *this;
  }
  if (condition == nullptr) {
    RecordError("Join() with null condition");
    return *this;
  }
  RelNodePtr right = stack_.back();
  stack_.pop_back();
  RelNodePtr left = stack_.back();
  stack_.pop_back();
  stack_.push_back(LogicalJoin::Create(std::move(left), std::move(right),
                                       std::move(condition), type,
                                       rex_builder_.type_factory()));
  return *this;
}

std::vector<int> RelBuilder::EnsureFields(
    const std::vector<RexNodePtr>& exprs) {
  std::vector<int> indexes;
  bool all_refs = true;
  for (const RexNodePtr& e : exprs) {
    const RexInputRef* ref = AsInputRef(e);
    if (ref == nullptr) {
      all_refs = false;
      break;
    }
    indexes.push_back(ref->index());
  }
  if (all_refs) return indexes;

  // Materialize a projection: all existing fields plus the computed keys.
  indexes.clear();
  RelNodePtr input = stack_.back();
  int base = input->row_type()->field_count();
  std::vector<RexNodePtr> projections;
  std::vector<std::string> names;
  for (int i = 0; i < base; ++i) {
    projections.push_back(rex_builder_.MakeInputRef(input->row_type(), i));
    names.push_back(input->row_type()->fields()[static_cast<size_t>(i)].name);
  }
  int next = base;
  for (const RexNodePtr& e : exprs) {
    if (const RexInputRef* ref = AsInputRef(e)) {
      indexes.push_back(ref->index());
      continue;
    }
    projections.push_back(e);
    names.push_back("$f" + std::to_string(next));
    indexes.push_back(next++);
  }
  stack_.pop_back();
  stack_.push_back(LogicalProject::Create(std::move(input),
                                          std::move(projections), names,
                                          rex_builder_.type_factory()));
  return indexes;
}

RelBuilder& RelBuilder::Aggregate(GroupKeyDef group_key,
                                  std::vector<AggCall> calls) {
  if (stack_.empty()) {
    RecordError("Aggregate() with no input on the stack");
    return *this;
  }
  std::vector<int> keys = EnsureFields(group_key.keys);

  std::vector<AggregateCall> agg_calls;
  for (AggCall& call : calls) {
    std::vector<int> args = EnsureFields(call.operands);
    AggregateCall agg;
    agg.kind = call.kind;
    agg.distinct = call.distinct;
    agg.args = std::move(args);
    agg.name = call.name;
    agg_calls.push_back(std::move(agg));
  }
  RelNodePtr input = stack_.back();
  stack_.pop_back();
  stack_.push_back(LogicalAggregate::Create(std::move(input), std::move(keys),
                                            std::move(agg_calls),
                                            rex_builder_.type_factory()));
  return *this;
}

RelBuilder& RelBuilder::Sort(std::vector<FieldCollation> collation) {
  if (stack_.empty()) {
    RecordError("Sort() with no input on the stack");
    return *this;
  }
  RelNodePtr input = stack_.back();
  stack_.pop_back();
  stack_.push_back(
      LogicalSort::Create(std::move(input), RelCollation(std::move(collation))));
  return *this;
}

RelBuilder& RelBuilder::SortAsc(const std::vector<std::string>& field_names) {
  std::vector<FieldCollation> collation;
  for (const std::string& name : field_names) {
    RexNodePtr field = Field(name);
    if (const RexInputRef* ref = AsInputRef(field)) {
      collation.push_back({ref->index(), Direction::kAscending});
    }
  }
  return Sort(std::move(collation));
}

RelBuilder& RelBuilder::Limit(int64_t offset, int64_t fetch) {
  if (stack_.empty()) {
    RecordError("Limit() with no input on the stack");
    return *this;
  }
  RelNodePtr input = stack_.back();
  stack_.pop_back();
  // Fold into an existing sort if one is on top (ORDER BY ... LIMIT).
  if (const auto* sort = dynamic_cast<const ::calcite::Sort*>(input.get());
      sort != nullptr && sort->offset() == 0 && sort->fetch() < 0) {
    stack_.push_back(LogicalSort::Create(sort->input(0), sort->collation(),
                                         offset, fetch));
    return *this;
  }
  stack_.push_back(
      LogicalSort::Create(std::move(input), RelCollation(), offset, fetch));
  return *this;
}

namespace {

RelBuilder& ApplySetOp(RelBuilder* builder, std::vector<RelNodePtr>* stack,
                       Status* error, const TypeFactory& factory,
                       SetOp::Kind kind, bool all, int input_count) {
  if (static_cast<int>(stack->size()) < input_count) {
    if (error->ok()) {
      *error = Status::InvalidArgument("set operation needs more inputs");
    }
    return *builder;
  }
  std::vector<RelNodePtr> inputs;
  for (int i = 0; i < input_count; ++i) {
    inputs.insert(inputs.begin(), stack->back());
    stack->pop_back();
  }
  stack->push_back(LogicalSetOp::Create(std::move(inputs), kind, all,
                                        factory));
  return *builder;
}

}  // namespace

RelBuilder& RelBuilder::Union(bool all, int input_count) {
  return ApplySetOp(this, &stack_, &error_, rex_builder_.type_factory(),
                    SetOp::Kind::kUnion, all, input_count);
}

RelBuilder& RelBuilder::Intersect(bool all, int input_count) {
  return ApplySetOp(this, &stack_, &error_, rex_builder_.type_factory(),
                    SetOp::Kind::kIntersect, all, input_count);
}

RelBuilder& RelBuilder::Minus(bool all, int input_count) {
  return ApplySetOp(this, &stack_, &error_, rex_builder_.type_factory(),
                    SetOp::Kind::kMinus, all, input_count);
}

RelBuilder& RelBuilder::Delta() {
  if (stack_.empty()) {
    RecordError("Delta() with no input on the stack");
    return *this;
  }
  RelNodePtr input = stack_.back();
  stack_.pop_back();
  stack_.push_back(LogicalDelta::Create(std::move(input)));
  return *this;
}

RelBuilder& RelBuilder::Window(std::vector<WindowGroup> groups) {
  if (stack_.empty()) {
    RecordError("Window() with no input on the stack");
    return *this;
  }
  RelNodePtr input = stack_.back();
  stack_.pop_back();
  stack_.push_back(LogicalWindow::Create(std::move(input), std::move(groups),
                                         rex_builder_.type_factory()));
  return *this;
}

RexNodePtr RelBuilder::Field(const std::string& name) {
  return Field(0, name);
}

RexNodePtr RelBuilder::Field(int index) {
  if (stack_.empty()) {
    RecordError("Field() with no input on the stack");
    return nullptr;
  }
  const RelDataTypePtr& row_type = stack_.back()->row_type();
  if (index < 0 || index >= row_type->field_count()) {
    RecordError("field index " + std::to_string(index) + " out of range");
    return nullptr;
  }
  return rex_builder_.MakeInputRef(row_type, index);
}

RexNodePtr RelBuilder::Field(int inputs_from_top, const std::string& name) {
  if (static_cast<int>(stack_.size()) <= inputs_from_top) {
    RecordError("Field(): not enough inputs on the stack");
    return nullptr;
  }
  const RelNodePtr& frame =
      stack_[stack_.size() - 1 - static_cast<size_t>(inputs_from_top)];
  const RelDataTypeField* field = frame->row_type()->FindField(name);
  if (field == nullptr) {
    RecordError("no field '" + name + "' in input row type " +
                frame->row_type()->ToString());
    return nullptr;
  }
  // When two frames are pending a Join(), references address the
  // concatenated row: left (frame 1) fields first, then right (frame 0)
  // fields shifted by the left field count.
  int offset = 0;
  if (inputs_from_top == 0 && stack_.size() >= 2) {
    const RelNodePtr& left = stack_[stack_.size() - 2];
    offset = left->row_type()->field_count();
  }
  return rex_builder_.MakeInputRef(field->index + offset, field->type);
}

RexNodePtr RelBuilder::Call(OpKind op, std::vector<RexNodePtr> operands) {
  for (const RexNodePtr& o : operands) {
    if (o == nullptr) return nullptr;
  }
  auto result = rex_builder_.MakeCall(op, std::move(operands));
  if (!result.ok()) {
    RecordError(result.status().message());
    return nullptr;
  }
  return result.value();
}

RelBuilder::GroupKeyDef RelBuilder::GroupKey(
    const std::vector<std::string>& field_names) {
  GroupKeyDef def;
  for (const std::string& name : field_names) {
    def.keys.push_back(Field(name));
  }
  return def;
}

RelBuilder::AggCall RelBuilder::Count(bool distinct, const std::string& name) {
  return AggCall{AggKind::kCountStar, distinct, name, {}};
}

RelBuilder::AggCall RelBuilder::Count(bool distinct, const std::string& name,
                                      RexNodePtr operand) {
  return AggCall{AggKind::kCount, distinct, name, {std::move(operand)}};
}

RelBuilder::AggCall RelBuilder::Sum(bool distinct, const std::string& name,
                                    RexNodePtr operand) {
  return AggCall{AggKind::kSum, distinct, name, {std::move(operand)}};
}

RelBuilder::AggCall RelBuilder::Min(const std::string& name,
                                    RexNodePtr operand) {
  return AggCall{AggKind::kMin, false, name, {std::move(operand)}};
}

RelBuilder::AggCall RelBuilder::Max(const std::string& name,
                                    RexNodePtr operand) {
  return AggCall{AggKind::kMax, false, name, {std::move(operand)}};
}

RelBuilder::AggCall RelBuilder::Avg(bool distinct, const std::string& name,
                                    RexNodePtr operand) {
  return AggCall{AggKind::kAvg, distinct, name, {std::move(operand)}};
}

Result<RelNodePtr> RelBuilder::Build() {
  if (!error_.ok()) {
    Status st = error_;
    error_ = Status::OK();
    stack_.clear();
    return st;
  }
  if (stack_.empty()) {
    return Status::InvalidArgument("Build() with empty stack");
  }
  RelNodePtr result = stack_.back();
  stack_.pop_back();
  return result;
}

RelNodePtr RelBuilder::Peek() const {
  return stack_.empty() ? nullptr : stack_.back();
}

}  // namespace calcite
