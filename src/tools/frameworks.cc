#include "tools/frameworks.h"

#include <algorithm>
#include <set>

#include "adapters/enumerable/enumerable_rules.h"
#include "materialize/materialized_views.h"
#include "rel/rel_writer.h"
#include "rules/core_rules.h"
#include "sql/parser.h"
#include "sql/sql_to_rel.h"

namespace calcite {

namespace {

/// Converts the streaming Delta marker for batch execution: over a finite
/// (test) stream, the incoming-rows interpretation coincides with replaying
/// the stored events, so Delta acts as identity. Incremental semantics are
/// provided by stream::StreamExecutor (see src/stream).
class DeltaImplementationRule final : public ConverterRule {
 public:
  DeltaImplementationRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "DeltaImplementationRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Delta*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    RelNodePtr input = call->Convert(
        call->rel()->input(0), RelTraitSet(Convention::Enumerable()));
    if (input != nullptr) call->TransformTo(std::move(input));
  }
};

}  // namespace

std::string QueryResult::ToTable() const {
  std::vector<std::string> headers;
  std::vector<size_t> widths;
  for (const RelDataTypeField& field : row_type->fields()) {
    headers.push_back(field.name);
    widths.push_back(field.name.size());
  }
  std::vector<std::vector<std::string>> cells;
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      std::string text = row[i].ToString();
      if (i < widths.size()) widths[i] = std::max(widths[i], text.size());
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  auto pad = [](const std::string& s, size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  std::string out;
  for (size_t i = 0; i < headers.size(); ++i) {
    out += (i ? " | " : "") + pad(headers[i], widths[i]);
  }
  out += "\n";
  for (size_t i = 0; i < headers.size(); ++i) {
    out += (i ? "-+-" : "") + std::string(widths[i], '-');
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      out += (i ? " | " : "") + pad(line[i], i < widths.size() ? widths[i]
                                                               : line[i].size());
    }
    out += "\n";
  }
  return out;
}

Connection::Connection(Config config) : config_(std::move(config)) {}

void Connection::CollectAdapterRules(
    const SchemaPtr& schema, std::vector<RelOptRulePtr>* rules,
    std::vector<const Convention*>* conventions) const {
  for (const RelOptRulePtr& rule : schema->AdapterRules()) {
    rules->push_back(rule);
  }
  if (schema->ScanConvention() != Convention::Enumerable() &&
      std::find(conventions->begin(), conventions->end(),
                schema->ScanConvention()) == conventions->end()) {
    conventions->push_back(schema->ScanConvention());
  }
  for (const std::string& name : schema->SubSchemaNames()) {
    CollectAdapterRules(schema->GetSubSchema(name), rules, conventions);
  }
}

std::vector<RelOptRulePtr> Connection::PhysicalRules() const {
  std::vector<RelOptRulePtr> rules = EnumerableConverterRules();
  rules.push_back(std::make_shared<DeltaImplementationRule>());
  std::vector<const Convention*> conventions;
  CollectAdapterRules(config_.schema, &rules, &conventions);
  for (const Convention* convention : conventions) {
    rules.push_back(MakeEnumerableInterpreterRule(convention));
  }
  for (const RelOptRulePtr& rule : config_.extra_rules) {
    rules.push_back(rule);
  }
  if (config_.join_reorder) {
    for (const RelOptRulePtr& rule : JoinReorderRules()) {
      rules.push_back(rule);
    }
  }
  return rules;
}

Result<RelNodePtr> Connection::ParseQuery(const std::string& sql) {
  auto ast = SqlParser::Parse(sql);
  if (!ast.ok()) return ast.status();
  SqlToRelConverter converter(config_.schema, &context_);
  return converter.Convert(ast.value());
}

Result<RelNodePtr> Connection::OptimizePlan(const RelNodePtr& logical) {
  Program program;
  if (!config_.skip_logical_phase) {
    ProgramPhase logical_phase;
    logical_phase.name = "logical";
    logical_phase.engine = ProgramPhase::Engine::kHeuristic;
    logical_phase.rules = StandardLogicalRules();
    program.AddPhase(std::move(logical_phase));
    if (config_.materializations != nullptr) {
      // Substitution runs as its own phase over the normalized plan, so
      // view definitions (normalized the same way) match structurally.
      ProgramPhase substitution;
      substitution.name = "materialize";
      substitution.engine = ProgramPhase::Engine::kHeuristic;
      substitution.rules = {config_.materializations->SubstitutionRule()};
      program.AddPhase(std::move(substitution));
    }
  }
  ProgramPhase physical_phase;
  physical_phase.name = "physical";
  physical_phase.engine = ProgramPhase::Engine::kCostBased;
  physical_phase.rules = PhysicalRules();
  // Ordering is a physical trait (§4): a Sort and its input share one
  // equivalence set, so a query-level ORDER BY must be demanded through the
  // required root traits, exactly as Calcite's prepare step does.
  RelTraitSet required(Convention::Enumerable());
  if (const auto* sort = dynamic_cast<const Sort*>(logical.get())) {
    required = required.WithCollation(sort->collation());
  }
  physical_phase.required_traits = required;
  physical_phase.volcano_options = config_.volcano_options;
  program.AddPhase(std::move(physical_phase));
  return program.Run(logical, &context_);
}

Result<QueryResult> Connection::ExecutePlan(const RelNodePtr& physical) {
  // Pull the plan's batch pipeline to completion; the public QueryResult
  // surface stays materialized regardless of the configured batch size.
  // Options are normalized here so invalid settings (batch_size = 0,
  // num_threads = 0) clamp once at the engine boundary.
  auto puller = physical->ExecuteBatched(config_.exec_options.Normalized());
  if (!puller.ok()) return puller.status();
  auto rows = DrainBatches(puller.value());
  if (!rows.ok()) return rows.status();
  return QueryResult{physical->row_type(), std::move(rows).value()};
}

Result<QueryResult> Connection::Query(const std::string& sql) {
  auto logical = ParseQuery(sql);
  if (!logical.ok()) return logical.status();
  auto physical = OptimizePlan(logical.value());
  if (!physical.ok()) return physical.status();
  return ExecutePlan(physical.value());
}

Result<std::string> Connection::Explain(const std::string& sql,
                                        bool optimized,
                                        bool include_traits) {
  auto logical = ParseQuery(sql);
  if (!logical.ok()) return logical.status();
  if (!optimized) return ExplainPlan(logical.value(), include_traits);
  auto physical = OptimizePlan(logical.value());
  if (!physical.ok()) return physical.status();
  return ExplainPlan(physical.value(), include_traits);
}

}  // namespace calcite
