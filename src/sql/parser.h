#ifndef CALCITE_SQL_PARSER_H_
#define CALCITE_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "util/status.h"

namespace calcite {

/// The SQL parser (Figure 1: "Calcite contains a query parser and validator
/// that can translate a SQL query to a tree of relational operators").
///
/// Supported grammar: SELECT [STREAM] [DISTINCT] ... FROM (tables, joins
/// with ON/USING, subqueries) WHERE / GROUP BY / HAVING / ORDER BY /
/// LIMIT / OFFSET / FETCH, set operations (UNION/INTERSECT/EXCEPT [ALL]),
/// VALUES, scalar expressions with standard operators, CASE, CAST, IN,
/// BETWEEN, LIKE, IS [NOT] NULL, `[]` item access (§7.1), aggregate calls
/// with DISTINCT, OVER windows with ROWS/RANGE frames (§7.2), INTERVAL
/// literals, and function calls (including ST_* geospatial functions, §7.3,
/// and TUMBLE/HOP/SESSION grouping functions).
class SqlParser {
 public:
  /// Parses one statement; returns the AST root (SqlSelect, SqlSetOp or
  /// SqlValues).
  static Result<sql::SqlNodePtr> Parse(std::string_view sql_text);
};

}  // namespace calcite

#endif  // CALCITE_SQL_PARSER_H_
