#include "sql/dialect.h"

namespace calcite {

namespace {

class AnsiDialect final : public SqlDialect {
 public:
  std::string name() const override { return "ANSI"; }

  std::string LimitClause(int64_t offset, int64_t fetch) const override {
    std::string out;
    if (offset > 0) out += " OFFSET " + std::to_string(offset) + " ROWS";
    if (fetch >= 0) {
      out += " FETCH NEXT " + std::to_string(fetch) + " ROWS ONLY";
    }
    return out;
  }
};

class PostgreSqlDialect final : public SqlDialect {
 public:
  std::string name() const override { return "PostgreSQL"; }
};

class MySqlDialect final : public SqlDialect {
 public:
  std::string name() const override { return "MySQL"; }

  std::string QuoteIdentifier(const std::string& id) const override {
    return "`" + id + "`";
  }

  std::string LimitClause(int64_t offset, int64_t fetch) const override {
    std::string out;
    if (fetch >= 0) {
      out += " LIMIT " + std::to_string(fetch);
      if (offset > 0) out += " OFFSET " + std::to_string(offset);
    } else if (offset > 0) {
      // MySQL requires a LIMIT before OFFSET; use its idiomatic huge bound.
      out += " LIMIT 18446744073709551615 OFFSET " + std::to_string(offset);
    }
    return out;
  }
};

}  // namespace

const SqlDialect& SqlDialect::Ansi() {
  static const AnsiDialect* kDialect = new AnsiDialect();
  return *kDialect;
}

const SqlDialect& SqlDialect::PostgreSql() {
  static const PostgreSqlDialect* kDialect = new PostgreSqlDialect();
  return *kDialect;
}

const SqlDialect& SqlDialect::MySql() {
  static const MySqlDialect* kDialect = new MySqlDialect();
  return *kDialect;
}

}  // namespace calcite
