#ifndef CALCITE_SQL_AST_H_
#define CALCITE_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "type/value.h"

namespace calcite::sql {

class SqlNode;
using SqlNodePtr = std::shared_ptr<const SqlNode>;

/// Abstract syntax tree node kinds for the supported SQL dialect (core ANSI
/// SQL plus the paper's extensions: STREAM, windowed aggregation, `[]` item
/// access, geospatial function calls).
enum class SqlNodeKind {
  kIdentifier,
  kLiteral,
  kCall,
  kSelect,
  kJoin,
  kSetOp,
  kTableRef,
  kSubquery,
  kOrderItem,
  kWindowSpec,
  kValues,
};

/// Base class of parsed SQL nodes (parse tree only; resolution happens in
/// the validator).
class SqlNode {
 public:
  virtual ~SqlNode() = default;
  explicit SqlNode(SqlNodeKind kind) : kind_(kind) {}

  SqlNodeKind kind() const { return kind_; }

  /// Unparses back to SQL text (used by error messages and tests).
  virtual std::string ToSql() const = 0;

 private:
  SqlNodeKind kind_;
};

/// Possibly-qualified name: a, s.t, t.c, or the star "*" / "t.*".
class SqlIdentifier final : public SqlNode {
 public:
  explicit SqlIdentifier(std::vector<std::string> names, bool star = false)
      : SqlNode(SqlNodeKind::kIdentifier),
        names_(std::move(names)),
        star_(star) {}

  const std::vector<std::string>& names() const { return names_; }
  bool is_star() const { return star_; }

  std::string ToSql() const override;

 private:
  std::vector<std::string> names_;
  bool star_;
};

/// A literal constant (with interval support: value in milliseconds).
class SqlLiteral final : public SqlNode {
 public:
  enum class LiteralKind { kNull, kBoolean, kInteger, kDecimal, kString,
                           kInterval };

  SqlLiteral(LiteralKind literal_kind, Value value)
      : SqlNode(SqlNodeKind::kLiteral),
        literal_kind_(literal_kind),
        value_(std::move(value)) {}

  LiteralKind literal_kind() const { return literal_kind_; }
  const Value& value() const { return value_; }

  std::string ToSql() const override;

 private:
  LiteralKind literal_kind_;
  Value value_;
};

/// Type specification in CAST(expr AS type).
struct SqlTypeSpec {
  std::string name;       // upper-case: "INTEGER", "VARCHAR", ...
  int precision = -1;     // VARCHAR(n) / DECIMAL(p)
  int scale = -1;

  std::string ToSql() const;
};

/// Operator or function application. The operator is identified by its
/// upper-case name ("=", "AND", "COUNT", "TUMBLE", "CAST", "CASE", "ITEM",
/// "OVER", ...). For CAST, `type_spec` carries the target type. For
/// aggregate calls, `distinct`/`star` mirror COUNT(DISTINCT x) / COUNT(*).
class SqlCall final : public SqlNode {
 public:
  SqlCall(std::string op, std::vector<SqlNodePtr> operands)
      : SqlNode(SqlNodeKind::kCall),
        op_(std::move(op)),
        operands_(std::move(operands)) {}

  const std::string& op() const { return op_; }
  const std::vector<SqlNodePtr>& operands() const { return operands_; }

  bool distinct = false;
  bool star = false;
  std::optional<SqlTypeSpec> type_spec;

  std::string ToSql() const override;

 private:
  std::string op_;
  std::vector<SqlNodePtr> operands_;
};

/// ORDER BY item: expression plus direction.
class SqlOrderItem final : public SqlNode {
 public:
  SqlOrderItem(SqlNodePtr expr, bool descending)
      : SqlNode(SqlNodeKind::kOrderItem),
        expr_(std::move(expr)),
        descending_(descending) {}

  const SqlNodePtr& expr() const { return expr_; }
  bool descending() const { return descending_; }

  std::string ToSql() const override;

 private:
  SqlNodePtr expr_;
  bool descending_;
};

/// Window specification of an OVER clause (§7.2's sliding windows and §4's
/// window operator): PARTITION BY / ORDER BY / frame.
class SqlWindowSpec final : public SqlNode {
 public:
  SqlWindowSpec() : SqlNode(SqlNodeKind::kWindowSpec) {}

  std::vector<SqlNodePtr> partition_by;
  std::vector<SqlNodePtr> order_by;  // SqlOrderItem
  bool is_rows = false;              // ROWS vs RANGE
  /// -1 = UNBOUNDED PRECEDING; otherwise rows or milliseconds.
  int64_t preceding = -1;
  int64_t following = 0;  // 0 = CURRENT ROW
  bool has_frame = false;

  std::string ToSql() const override;
};

/// Table reference in FROM: qualified name plus optional alias.
class SqlTableRef final : public SqlNode {
 public:
  SqlTableRef(std::vector<std::string> names, std::string alias)
      : SqlNode(SqlNodeKind::kTableRef),
        names_(std::move(names)),
        alias_(std::move(alias)) {}

  const std::vector<std::string>& names() const { return names_; }
  const std::string& alias() const { return alias_; }

  std::string ToSql() const override;

 private:
  std::vector<std::string> names_;
  std::string alias_;
};

/// Parenthesized subquery in FROM, with alias.
class SqlSubquery final : public SqlNode {
 public:
  SqlSubquery(SqlNodePtr query, std::string alias)
      : SqlNode(SqlNodeKind::kSubquery),
        query_(std::move(query)),
        alias_(std::move(alias)) {}

  const SqlNodePtr& query() const { return query_; }
  const std::string& alias() const { return alias_; }

  std::string ToSql() const override;

 private:
  SqlNodePtr query_;
  std::string alias_;
};

/// JOIN in the FROM clause.
class SqlJoin final : public SqlNode {
 public:
  enum class Type { kInner, kLeft, kRight, kFull, kCross };

  SqlJoin(Type type, SqlNodePtr left, SqlNodePtr right, SqlNodePtr condition,
          std::vector<std::string> using_columns)
      : SqlNode(SqlNodeKind::kJoin),
        type_(type),
        left_(std::move(left)),
        right_(std::move(right)),
        condition_(std::move(condition)),
        using_columns_(std::move(using_columns)) {}

  Type type() const { return type_; }
  const SqlNodePtr& left() const { return left_; }
  const SqlNodePtr& right() const { return right_; }
  /// ON condition; nullptr for CROSS or USING joins.
  const SqlNodePtr& condition() const { return condition_; }
  const std::vector<std::string>& using_columns() const {
    return using_columns_;
  }

  std::string ToSql() const override;

 private:
  Type type_;
  SqlNodePtr left_;
  SqlNodePtr right_;
  SqlNodePtr condition_;
  std::vector<std::string> using_columns_;
};

/// One item of the SELECT list: expression plus optional alias.
struct SqlSelectItem {
  SqlNodePtr expr;
  std::string alias;  // empty if none
};

/// A SELECT statement (§7.2: the STREAM keyword requests incoming rows).
class SqlSelect final : public SqlNode {
 public:
  SqlSelect() : SqlNode(SqlNodeKind::kSelect) {}

  bool stream = false;
  bool distinct = false;
  std::vector<SqlSelectItem> select_list;
  SqlNodePtr from;  // table ref / join / subquery; may be null (VALUES-less)
  SqlNodePtr where;
  std::vector<SqlNodePtr> group_by;
  SqlNodePtr having;
  std::vector<SqlNodePtr> order_by;  // SqlOrderItem
  int64_t offset = 0;
  int64_t fetch = -1;

  std::string ToSql() const override;
};

/// UNION / INTERSECT / EXCEPT.
class SqlSetOp final : public SqlNode {
 public:
  enum class Op { kUnion, kIntersect, kExcept };

  SqlSetOp(Op op, bool all, SqlNodePtr left, SqlNodePtr right)
      : SqlNode(SqlNodeKind::kSetOp),
        op_(op),
        all_(all),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Op op() const { return op_; }
  bool all() const { return all_; }
  const SqlNodePtr& left() const { return left_; }
  const SqlNodePtr& right() const { return right_; }

  std::vector<SqlNodePtr> order_by;  // trailing ORDER BY over the set result
  int64_t offset = 0;
  int64_t fetch = -1;

  std::string ToSql() const override;

 private:
  Op op_;
  bool all_;
  SqlNodePtr left_;
  SqlNodePtr right_;
};

/// VALUES (...), (...) — an inline relation.
class SqlValues final : public SqlNode {
 public:
  explicit SqlValues(std::vector<std::vector<SqlNodePtr>> rows)
      : SqlNode(SqlNodeKind::kValues), rows_(std::move(rows)) {}

  const std::vector<std::vector<SqlNodePtr>>& rows() const { return rows_; }

  std::string ToSql() const override;

 private:
  std::vector<std::vector<SqlNodePtr>> rows_;
};

}  // namespace calcite::sql

#endif  // CALCITE_SQL_AST_H_
