#include "sql/ast.h"

#include "util/string_utils.h"

namespace calcite::sql {

namespace {

std::string JoinSql(const std::vector<SqlNodePtr>& nodes,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += sep;
    out += nodes[i]->ToSql();
  }
  return out;
}

}  // namespace

std::string SqlIdentifier::ToSql() const {
  std::string out = JoinStrings(names_, ".");
  if (star_) out += out.empty() ? "*" : ".*";
  return out;
}

std::string SqlLiteral::ToSql() const {
  switch (literal_kind_) {
    case LiteralKind::kNull:
      return "NULL";
    case LiteralKind::kBoolean:
      return value_.AsBool() ? "TRUE" : "FALSE";
    case LiteralKind::kString:
      return "'" + value_.AsString() + "'";
    case LiteralKind::kInterval:
      return "INTERVAL " + std::to_string(value_.AsInt()) + " MS";
    default: {
      Value v = value_;
      std::string s = v.ToString();
      return s;
    }
  }
}

std::string SqlTypeSpec::ToSql() const {
  std::string out = name;
  if (precision >= 0) {
    out += "(" + std::to_string(precision);
    if (scale >= 0) out += ", " + std::to_string(scale);
    out += ")";
  }
  return out;
}

std::string SqlCall::ToSql() const {
  if (op_ == "CAST" && type_spec.has_value()) {
    return "CAST(" + operands_[0]->ToSql() + " AS " + type_spec->ToSql() + ")";
  }
  if (op_ == "ITEM") {
    return operands_[0]->ToSql() + "[" + operands_[1]->ToSql() + "]";
  }
  if (op_ == "CASE") {
    std::string out = "CASE";
    for (size_t i = 0; i + 1 < operands_.size(); i += 2) {
      out += " WHEN " + operands_[i]->ToSql() + " THEN " +
             operands_[i + 1]->ToSql();
    }
    out += " ELSE " + operands_.back()->ToSql() + " END";
    return out;
  }
  if (op_ == "OVER") {
    return operands_[0]->ToSql() + " OVER (" + operands_[1]->ToSql() + ")";
  }
  std::string out = op_ + "(";
  if (distinct) out += "DISTINCT ";
  if (star) out += "*";
  out += JoinSql(operands_, ", ");
  out += ")";
  return out;
}

std::string SqlOrderItem::ToSql() const {
  return expr_->ToSql() + (descending_ ? " DESC" : "");
}

std::string SqlWindowSpec::ToSql() const {
  std::string out;
  if (!partition_by.empty()) {
    out += "PARTITION BY " + JoinSql(partition_by, ", ");
  }
  if (!order_by.empty()) {
    if (!out.empty()) out += " ";
    out += "ORDER BY " + JoinSql(order_by, ", ");
  }
  if (has_frame) {
    if (!out.empty()) out += " ";
    out += is_rows ? "ROWS " : "RANGE ";
    out += preceding < 0 ? "UNBOUNDED PRECEDING"
                         : std::to_string(preceding) + " PRECEDING";
  }
  return out;
}

std::string SqlTableRef::ToSql() const {
  std::string out = JoinStrings(names_, ".");
  if (!alias_.empty()) out += " AS " + alias_;
  return out;
}

std::string SqlSubquery::ToSql() const {
  std::string out = "(" + query_->ToSql() + ")";
  if (!alias_.empty()) out += " AS " + alias_;
  return out;
}

std::string SqlJoin::ToSql() const {
  std::string out = left_->ToSql();
  switch (type_) {
    case Type::kInner:
      out += " JOIN ";
      break;
    case Type::kLeft:
      out += " LEFT JOIN ";
      break;
    case Type::kRight:
      out += " RIGHT JOIN ";
      break;
    case Type::kFull:
      out += " FULL JOIN ";
      break;
    case Type::kCross:
      out += " CROSS JOIN ";
      break;
  }
  out += right_->ToSql();
  if (condition_ != nullptr) out += " ON " + condition_->ToSql();
  if (!using_columns_.empty()) {
    out += " USING (" + JoinStrings(using_columns_, ", ") + ")";
  }
  return out;
}

std::string SqlSelect::ToSql() const {
  std::string out = "SELECT ";
  if (stream) out += "STREAM ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].expr->ToSql();
    if (!select_list[i].alias.empty()) out += " AS " + select_list[i].alias;
  }
  if (from != nullptr) out += " FROM " + from->ToSql();
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) out += " GROUP BY " + JoinSql(group_by, ", ");
  if (having != nullptr) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) out += " ORDER BY " + JoinSql(order_by, ", ");
  if (offset > 0) out += " OFFSET " + std::to_string(offset);
  if (fetch >= 0) out += " LIMIT " + std::to_string(fetch);
  return out;
}

std::string SqlSetOp::ToSql() const {
  std::string out = left_->ToSql();
  switch (op_) {
    case Op::kUnion:
      out += " UNION ";
      break;
    case Op::kIntersect:
      out += " INTERSECT ";
      break;
    case Op::kExcept:
      out += " EXCEPT ";
      break;
  }
  if (all_) out += "ALL ";
  out += right_->ToSql();
  if (!order_by.empty()) out += " ORDER BY " + JoinSql(order_by, ", ");
  if (offset > 0) out += " OFFSET " + std::to_string(offset);
  if (fetch >= 0) out += " LIMIT " + std::to_string(fetch);
  return out;
}

std::string SqlValues::ToSql() const {
  std::string out = "VALUES ";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(" + JoinSql(rows_[i], ", ") + ")";
  }
  return out;
}

}  // namespace calcite::sql
