#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "util/string_utils.h"

namespace calcite {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "SELECT",    "FROM",     "WHERE",   "GROUP",     "BY",       "HAVING",
      "ORDER",     "LIMIT",    "OFFSET",  "FETCH",     "FIRST",    "NEXT",
      "ROWS",      "ROW",      "ONLY",    "AS",        "JOIN",     "INNER",
      "LEFT",      "RIGHT",    "FULL",    "OUTER",     "CROSS",    "ON",
      "USING",     "UNION",    "INTERSECT", "EXCEPT",  "ALL",      "DISTINCT",
      "AND",       "OR",       "NOT",     "NULL",      "TRUE",     "FALSE",
      "IS",        "IN",       "LIKE",    "BETWEEN",   "CASE",     "WHEN",
      "THEN",      "ELSE",     "END",     "CAST",      "INTERVAL", "STREAM",
      "OVER",      "PARTITION", "RANGE",  "PRECEDING", "FOLLOWING",
      "UNBOUNDED", "CURRENT",  "EXISTS",  "VALUES",    "ASC",      "DESC",
      "INTEGER",   "INT",      "BIGINT",  "SMALLINT",  "TINYINT",  "DOUBLE",
      "FLOAT",     "DECIMAL",  "VARCHAR", "CHAR",      "BOOLEAN",  "DATE",
      "TIME",      "TIMESTAMP", "GEOMETRY", "ANY",     "MAP",      "ARRAY",
      "MULTISET",  "SECOND",   "MINUTE",  "HOUR",      "DAY",      "YEAR",
      "MONTH",     "NATURAL",  "SEMI",    "ANTI",      "EXPLAIN",  "PLAN",
      "FOR",       "WITH",     "WITHIN",
  };
  return *kKeywords;
}

}  // namespace

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kKeyword && text == kw;
}

Result<std::vector<Token>> TokenizeSql(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // String literal.
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kStringLiteral, std::move(value), start});
      continue;
    }
    // Quoted identifier: ANSI "x" or MySQL-style `x`.
    if (c == '"' || c == '`') {
      const char quote = c;
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kIdentifier, std::move(value), start});
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_decimal = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_decimal = true;
        ++i;
      }
      tokens.push_back({is_decimal ? TokenKind::kDecimalLiteral
                                   : TokenKind::kIntegerLiteral,
                        std::string(sql.substr(start, i - start)), start});
      continue;
    }
    // Identifier or keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_' || sql[i] == '$')) {
        ++i;
      }
      std::string word(sql.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tokens.push_back({TokenKind::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({TokenKind::kIdentifier, std::move(word), start});
      }
      continue;
    }
    // Multi-char operators.
    auto push_op = [&](size_t len) {
      tokens.push_back({TokenKind::kOperator,
                        std::string(sql.substr(start, len)), start});
      i += len;
    };
    if (i + 1 < n) {
      std::string_view two = sql.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "||" ||
          two == "!=") {
        push_op(2);
        continue;
      }
    }
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '(':
      case ')':
      case ',':
      case '.':
      case '[':
      case ']':
        push_op(1);
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
    }
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace calcite
