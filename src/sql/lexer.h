#ifndef CALCITE_SQL_LEXER_H_
#define CALCITE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace calcite {

/// Token kinds produced by the SQL lexer.
enum class TokenKind {
  kIdentifier,       // foo, "Quoted Name"
  kKeyword,          // SELECT, FROM, ... (normalized upper-case in text)
  kIntegerLiteral,   // 42
  kDecimalLiteral,   // 3.14, 1e10
  kStringLiteral,    // 'abc' (text holds the unquoted value)
  kOperator,         // = <> < <= > >= + - * / % || . , ( ) [ ]
  kEnd,
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;

  bool IsKeyword(std::string_view kw) const;
  bool IsOp(std::string_view op) const {
    return kind == TokenKind::kOperator && text == op;
  }
};

/// Tokenizes SQL text. Identifiers matching a reserved word list come back
/// as keywords with upper-cased text; quoted identifiers ("x") are always
/// plain identifiers. Comments (`--` to end of line) are skipped.
Result<std::vector<Token>> TokenizeSql(std::string_view sql);

}  // namespace calcite

#endif  // CALCITE_SQL_LEXER_H_
