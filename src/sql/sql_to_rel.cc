#include "sql/sql_to_rel.h"

#include <map>
#include <set>

#include "rex/rex_util.h"
#include "sql/parser.h"
#include "util/string_utils.h"

namespace calcite {

using sql::SqlCall;
using sql::SqlIdentifier;
using sql::SqlJoin;
using sql::SqlLiteral;
using sql::SqlNode;
using sql::SqlNodeKind;
using sql::SqlNodePtr;
using sql::SqlOrderItem;
using sql::SqlSelect;
using sql::SqlSetOp;
using sql::SqlSubquery;
using sql::SqlTableRef;
using sql::SqlTypeSpec;
using sql::SqlValues;
using sql::SqlWindowSpec;

namespace {

Status ValidationError(const std::string& msg) {
  return Status::ValidationError(msg);
}

/// One named relation visible in the FROM scope.
struct ScopeEntry {
  std::string alias;        // table alias or table name
  RelDataTypePtr row_type;  // the relation's fields
  int offset;               // field offset in the combined row
};

/// Name-resolution scope for a SELECT: the relations of its FROM clause.
struct Scope {
  std::vector<ScopeEntry> entries;
  int total_fields = 0;
  /// Input columns known to be monotonically increasing (stream rowtime
  /// columns), in combined-row index space.
  std::set<int> monotonic_columns;

  /// Finds an unqualified column. Errors on ambiguity.
  Result<std::pair<int, RelDataTypePtr>> FindColumn(
      const std::string& name) const {
    int found = -1;
    RelDataTypePtr type;
    for (const ScopeEntry& entry : entries) {
      const RelDataTypeField* field = entry.row_type->FindField(name);
      if (field != nullptr) {
        if (found >= 0) {
          return ValidationError("column '" + name + "' is ambiguous");
        }
        found = entry.offset + field->index;
        type = field->type;
      }
    }
    if (found < 0) {
      return ValidationError("column '" + name + "' not found");
    }
    return std::make_pair(found, type);
  }

  /// Finds alias.column.
  Result<std::pair<int, RelDataTypePtr>> FindQualified(
      const std::string& alias, const std::string& name) const {
    for (const ScopeEntry& entry : entries) {
      if (!EqualsIgnoreCase(entry.alias, alias)) continue;
      const RelDataTypeField* field = entry.row_type->FindField(name);
      if (field == nullptr) {
        return ValidationError("column '" + name + "' not found in '" +
                               alias + "'");
      }
      return std::make_pair(entry.offset + field->index, field->type);
    }
    return ValidationError("table alias '" + alias + "' not found");
  }
};

/// Maps a parsed type spec to a RelDataType.
Result<RelDataTypePtr> ResolveTypeSpec(const SqlTypeSpec& spec,
                                       const TypeFactory& tf) {
  static const std::map<std::string, SqlTypeName> kTypes = {
      {"BOOLEAN", SqlTypeName::kBoolean},
      {"TINYINT", SqlTypeName::kTinyInt},
      {"SMALLINT", SqlTypeName::kSmallInt},
      {"INTEGER", SqlTypeName::kInteger},
      {"BIGINT", SqlTypeName::kBigInt},
      {"FLOAT", SqlTypeName::kFloat},
      {"DOUBLE", SqlTypeName::kDouble},
      {"DECIMAL", SqlTypeName::kDecimal},
      {"CHAR", SqlTypeName::kChar},
      {"VARCHAR", SqlTypeName::kVarchar},
      {"DATE", SqlTypeName::kDate},
      {"TIME", SqlTypeName::kTime},
      {"TIMESTAMP", SqlTypeName::kTimestamp},
      {"GEOMETRY", SqlTypeName::kGeometry},
      {"ANY", SqlTypeName::kAny},
  };
  auto it = kTypes.find(spec.name);
  if (it == kTypes.end()) {
    return ValidationError("unknown type '" + spec.name + "'");
  }
  if (spec.precision >= 0) {
    return tf.CreateSqlType(it->second, spec.precision, true, spec.scale);
  }
  return tf.CreateSqlType(it->second, true);
}

/// Scalar function name -> operator kind.
const std::map<std::string, OpKind>& ScalarFunctions() {
  static const std::map<std::string, OpKind>* kFns =
      new std::map<std::string, OpKind>{
          {"UPPER", OpKind::kUpper},
          {"LOWER", OpKind::kLower},
          {"TRIM", OpKind::kTrim},
          {"CHAR_LENGTH", OpKind::kCharLength},
          {"CHARACTER_LENGTH", OpKind::kCharLength},
          {"SUBSTRING", OpKind::kSubstring},
          {"ABS", OpKind::kAbs},
          {"FLOOR", OpKind::kFloor},
          {"CEIL", OpKind::kCeil},
          {"CEILING", OpKind::kCeil},
          {"POWER", OpKind::kPower},
          {"SQRT", OpKind::kSqrt},
          {"MOD", OpKind::kMod},
          {"COALESCE", OpKind::kCoalesce},
          {"ST_GEOMFROMTEXT", OpKind::kStGeomFromText},
          {"ST_ASTEXT", OpKind::kStAsText},
          {"ST_CONTAINS", OpKind::kStContains},
          {"ST_WITHIN", OpKind::kStWithin},
          {"ST_DISTANCE", OpKind::kStDistance},
          {"ST_INTERSECTS", OpKind::kStIntersects},
          {"ST_AREA", OpKind::kStArea},
          {"ST_X", OpKind::kStX},
          {"ST_Y", OpKind::kStY},
          {"ST_MAKEPOINT", OpKind::kStMakePoint},
          {"TUMBLE", OpKind::kTumble},
          {"TUMBLE_START", OpKind::kTumbleStart},
          {"TUMBLE_END", OpKind::kTumbleEnd},
          {"HOP", OpKind::kHop},
          {"HOP_END", OpKind::kHopEnd},
          {"SESSION", OpKind::kSession},
          {"SESSION_END", OpKind::kSessionEnd},
      };
  return *kFns;
}

/// Binary/unary operator name -> kind.
const std::map<std::string, OpKind>& Operators() {
  static const std::map<std::string, OpKind>* kOps =
      new std::map<std::string, OpKind>{
          {"=", OpKind::kEquals},
          {"<>", OpKind::kNotEquals},
          {"<", OpKind::kLessThan},
          {"<=", OpKind::kLessThanOrEqual},
          {">", OpKind::kGreaterThan},
          {">=", OpKind::kGreaterThanOrEqual},
          {"+", OpKind::kPlus},
          {"-", OpKind::kMinus},
          {"*", OpKind::kTimes},
          {"/", OpKind::kDivide},
          {"MOD", OpKind::kMod},
          {"||", OpKind::kConcat},
          {"AND", OpKind::kAnd},
          {"OR", OpKind::kOr},
          {"NOT", OpKind::kNot},
          {"IS NULL", OpKind::kIsNull},
          {"IS NOT NULL", OpKind::kIsNotNull},
          {"IS TRUE", OpKind::kIsTrue},
          {"IS FALSE", OpKind::kIsFalse},
          {"LIKE", OpKind::kLike},
          {"IN", OpKind::kIn},
          {"BETWEEN", OpKind::kBetween},
          {"CASE", OpKind::kCase},
          {"ITEM", OpKind::kItem},
          {"UNARY_MINUS", OpKind::kUnaryMinus},
      };
  return *kOps;
}

bool IsAggregateFunction(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "MIN" || name == "MAX" ||
         name == "AVG";
}

AggKind AggKindForName(const std::string& name, bool star) {
  if (name == "COUNT") return star ? AggKind::kCountStar : AggKind::kCount;
  if (name == "SUM") return AggKind::kSum;
  if (name == "MIN") return AggKind::kMin;
  if (name == "MAX") return AggKind::kMax;
  return AggKind::kAvg;
}

/// Does this expression (AST) contain an aggregate call (outside OVER)?
bool ContainsAggregate(const SqlNodePtr& node) {
  if (node == nullptr) return false;
  if (node->kind() != SqlNodeKind::kCall) return false;
  const auto* call = static_cast<const SqlCall*>(node.get());
  if (call->op() == "OVER") return false;  // windowed, not grouped
  if (IsAggregateFunction(call->op())) return true;
  for (const SqlNodePtr& operand : call->operands()) {
    if (ContainsAggregate(operand)) return true;
  }
  return false;
}

bool ContainsOver(const SqlNodePtr& node) {
  if (node == nullptr || node->kind() != SqlNodeKind::kCall) return false;
  const auto* call = static_cast<const SqlCall*>(node.get());
  if (call->op() == "OVER") return true;
  for (const SqlNodePtr& operand : call->operands()) {
    if (ContainsOver(operand)) return true;
  }
  return false;
}

/// The conversion engine for one query (and, recursively, its subqueries).
class ConverterImpl {
 public:
  ConverterImpl(SchemaPtr schema, PlannerContext* context, int view_depth)
      : schema_(std::move(schema)),
        context_(context),
        view_depth_(view_depth) {}

  Result<RelNodePtr> ConvertQuery(const SqlNodePtr& query) {
    switch (query->kind()) {
      case SqlNodeKind::kSelect:
        return ConvertSelect(static_cast<const SqlSelect&>(*query));
      case SqlNodeKind::kSetOp:
        return ConvertSetOp(static_cast<const SqlSetOp&>(*query));
      case SqlNodeKind::kValues:
        return ConvertValues(static_cast<const SqlValues&>(*query));
      default:
        return ValidationError("unsupported query node");
    }
  }

 private:
  const RexBuilder& rex() const { return context_->rex_builder(); }
  const TypeFactory& tf() const { return context_->type_factory(); }

  // ------------------------------ FROM clause -----------------------------

  Result<RelNodePtr> ConvertFrom(const SqlNodePtr& from, Scope* scope,
                                 bool stream_requested) {
    switch (from->kind()) {
      case SqlNodeKind::kTableRef: {
        const auto& ref = static_cast<const SqlTableRef&>(*from);
        auto resolved = ResolveTable(schema_, ref.names());
        if (!resolved.ok()) {
          return Status::ValidationError(resolved.status().message());
        }
        // View expansion: parse and convert the view SQL in place.
        if (auto view =
                std::dynamic_pointer_cast<ViewTable>(resolved.value().table)) {
          if (view_depth_ > 16) {
            return ValidationError("view expansion too deep (cycle?)");
          }
          auto ast = SqlParser::Parse(view->sql());
          if (!ast.ok()) {
            return ValidationError("error parsing view '" +
                                   ref.names().back() +
                                   "': " + ast.status().message());
          }
          ConverterImpl sub(schema_, context_, view_depth_ + 1);
          auto node = sub.ConvertQuery(ast.value());
          if (!node.ok()) return node;
          std::string alias =
              ref.alias().empty() ? ref.names().back() : ref.alias();
          scope->entries.push_back({alias, node.value()->row_type(),
                                    scope->total_fields});
          scope->total_fields += node.value()->row_type()->field_count();
          return node;
        }

        RelNodePtr scan = LogicalTableScan::Create(
            resolved.value().table, resolved.value().qualified_name,
            resolved.value().schema->ScanConvention(), tf());
        bool is_stream = resolved.value().table->IsStream();
        if (stream_requested && !is_stream) {
          return ValidationError(
              "STREAM requested but table '" + ref.names().back() +
              "' is not a stream (§7.2: the STREAM directive asks for "
              "incoming records)");
        }
        if (stream_requested && is_stream) {
          scan = LogicalDelta::Create(scan);
        }
        std::string alias =
            ref.alias().empty() ? ref.names().back() : ref.alias();
        // Record monotonic (rowtime) columns for streaming validation.
        TableStats stat = resolved.value().table->GetStatistic();
        for (int col : stat.monotonic_columns) {
          scope->monotonic_columns.insert(scope->total_fields + col);
        }
        scope->entries.push_back(
            {alias, scan->row_type(), scope->total_fields});
        scope->total_fields += scan->row_type()->field_count();
        return scan;
      }
      case SqlNodeKind::kSubquery: {
        const auto& sub = static_cast<const SqlSubquery&>(*from);
        ConverterImpl converter(schema_, context_, view_depth_ + 1);
        auto node = converter.ConvertQuery(sub.query());
        if (!node.ok()) return node;
        scope->entries.push_back({sub.alias().empty() ? "$subquery"
                                                      : sub.alias(),
                                  node.value()->row_type(),
                                  scope->total_fields});
        scope->total_fields += node.value()->row_type()->field_count();
        return node;
      }
      case SqlNodeKind::kJoin: {
        const auto& join = static_cast<const SqlJoin&>(*from);
        auto left = ConvertFrom(join.left(), scope, stream_requested);
        if (!left.ok()) return left;
        int left_fields = scope->total_fields;
        auto right = ConvertFrom(join.right(), scope, false);
        if (!right.ok()) return right;

        JoinType type = JoinType::kInner;
        switch (join.type()) {
          case SqlJoin::Type::kInner:
          case SqlJoin::Type::kCross:
            type = JoinType::kInner;
            break;
          case SqlJoin::Type::kLeft:
            type = JoinType::kLeft;
            break;
          case SqlJoin::Type::kRight:
            type = JoinType::kRight;
            break;
          case SqlJoin::Type::kFull:
            type = JoinType::kFull;
            break;
        }
        RexNodePtr condition;
        if (join.condition() != nullptr) {
          auto cond = ConvertExpr(join.condition(), *scope);
          if (!cond.ok()) return cond.status();
          condition = cond.value();
        } else if (!join.using_columns().empty()) {
          std::vector<RexNodePtr> conjuncts;
          for (const std::string& column : join.using_columns()) {
            // Resolve the column on each side of the join.
            Result<std::pair<int, RelDataTypePtr>> l =
                ValidationError("USING column not found");
            Result<std::pair<int, RelDataTypePtr>> r = l;
            for (const ScopeEntry& entry : scope->entries) {
              const RelDataTypeField* field =
                  entry.row_type->FindField(column);
              if (field == nullptr) continue;
              if (entry.offset < left_fields && !l.ok()) {
                l = std::make_pair(entry.offset + field->index, field->type);
              } else if (entry.offset >= left_fields && !r.ok()) {
                r = std::make_pair(entry.offset + field->index, field->type);
              }
            }
            if (!l.ok() || !r.ok()) {
              return ValidationError("USING column '" + column +
                                     "' must appear on both join sides");
            }
            conjuncts.push_back(rex().MakeEquals(
                rex().MakeInputRef(l.value().first, l.value().second),
                rex().MakeInputRef(r.value().first, r.value().second)));
          }
          condition = rex().MakeAnd(std::move(conjuncts));
        } else {
          condition = rex().MakeBoolLiteral(true);  // CROSS JOIN
        }
        return LogicalJoin::Create(left.value(), right.value(),
                                   std::move(condition), type, tf());
      }
      default:
        return ValidationError("unsupported FROM clause element");
    }
  }

  // ----------------------------- expressions ------------------------------

  Result<RexNodePtr> ConvertExpr(const SqlNodePtr& node, const Scope& scope) {
    switch (node->kind()) {
      case SqlNodeKind::kLiteral: {
        const auto& lit = static_cast<const SqlLiteral&>(*node);
        switch (lit.literal_kind()) {
          case SqlLiteral::LiteralKind::kNull:
            return rex().MakeNullLiteral(
                tf().CreateSqlType(SqlTypeName::kNull, true));
          case SqlLiteral::LiteralKind::kBoolean:
            return rex().MakeBoolLiteral(lit.value().AsBool());
          case SqlLiteral::LiteralKind::kInteger:
            return rex().MakeIntLiteral(lit.value().AsInt());
          case SqlLiteral::LiteralKind::kDecimal:
            return rex().MakeDoubleLiteral(lit.value().AsDouble());
          case SqlLiteral::LiteralKind::kString:
            return rex().MakeStringLiteral(lit.value().AsString());
          case SqlLiteral::LiteralKind::kInterval:
            return rex().MakeIntervalLiteral(lit.value().AsInt());
        }
        return Status::Internal("unhandled literal kind");
      }
      case SqlNodeKind::kIdentifier: {
        const auto& id = static_cast<const SqlIdentifier&>(*node);
        if (id.is_star()) {
          return ValidationError("'*' is not valid in this context");
        }
        if (id.names().size() == 1) {
          auto col = scope.FindColumn(id.names()[0]);
          if (!col.ok()) return col.status();
          return rex().MakeInputRef(col.value().first, col.value().second);
        }
        if (id.names().size() == 2) {
          auto col = scope.FindQualified(id.names()[0], id.names()[1]);
          if (!col.ok()) return col.status();
          return rex().MakeInputRef(col.value().first, col.value().second);
        }
        // schema.table.column: try the trailing two segments.
        auto col = scope.FindQualified(id.names()[id.names().size() - 2],
                                       id.names().back());
        if (!col.ok()) return col.status();
        return rex().MakeInputRef(col.value().first, col.value().second);
      }
      case SqlNodeKind::kCall: {
        const auto& call = static_cast<const SqlCall&>(*node);
        if (call.op() == "CAST") {
          auto operand = ConvertExpr(call.operands()[0], scope);
          if (!operand.ok()) return operand;
          auto type = ResolveTypeSpec(*call.type_spec, tf());
          if (!type.ok()) return type.status();
          return rex().MakeCast(type.value(), operand.value());
        }
        if (call.op() == "OVER") {
          return ValidationError(
              "window (OVER) expressions are only allowed in the SELECT "
              "list");
        }
        if (IsAggregateFunction(call.op())) {
          return ValidationError("aggregate function " + call.op() +
                                 " is not allowed in this context");
        }
        // Scalar functions and operators.
        std::vector<RexNodePtr> operands;
        for (const SqlNodePtr& operand : call.operands()) {
          auto converted = ConvertExpr(operand, scope);
          if (!converted.ok()) return converted;
          operands.push_back(converted.value());
        }
        auto op_it = Operators().find(call.op());
        if (op_it != Operators().end()) {
          return rex().MakeCall(op_it->second, std::move(operands));
        }
        auto fn_it = ScalarFunctions().find(call.op());
        if (fn_it != ScalarFunctions().end()) {
          return rex().MakeCall(fn_it->second, std::move(operands));
        }
        return ValidationError("unknown function or operator '" + call.op() +
                               "'");
      }
      default:
        return ValidationError("unsupported expression");
    }
  }

  // ------------------------------- VALUES ---------------------------------

  Result<RelNodePtr> ConvertValues(const SqlValues& values) {
    if (values.rows().empty()) {
      return ValidationError("VALUES requires at least one row");
    }
    Scope empty_scope;
    std::vector<Row> rows;
    std::vector<std::vector<RelDataTypePtr>> column_types;
    for (const auto& ast_row : values.rows()) {
      Row row;
      for (size_t c = 0; c < ast_row.size(); ++c) {
        auto expr = ConvertExpr(ast_row[c], empty_scope);
        if (!expr.ok()) return expr.status();
        const RexLiteral* lit = AsLiteral(expr.value());
        if (lit == nullptr) {
          return ValidationError("VALUES rows must contain only literals");
        }
        row.push_back(lit->value());
        if (column_types.size() <= c) column_types.resize(c + 1);
        column_types[c].push_back(expr.value()->type());
      }
      if (ast_row.size() != values.rows()[0].size()) {
        return ValidationError("VALUES rows differ in arity");
      }
      rows.push_back(std::move(row));
    }
    std::vector<std::string> names;
    std::vector<RelDataTypePtr> types;
    for (size_t c = 0; c < column_types.size(); ++c) {
      names.push_back("EXPR$" + std::to_string(c));
      RelDataTypePtr t = tf().LeastRestrictive(column_types[c]);
      types.push_back(t != nullptr ? t
                                   : tf().CreateSqlType(SqlTypeName::kAny,
                                                        true));
    }
    return LogicalValues::Create(tf().CreateStructType(names, types),
                                 std::move(rows));
  }

  // ------------------------------- set ops --------------------------------

  Result<RelNodePtr> ConvertSetOp(const SqlSetOp& setop) {
    ConverterImpl left_converter(schema_, context_, view_depth_ + 1);
    auto left = left_converter.ConvertQuery(setop.left());
    if (!left.ok()) return left;
    ConverterImpl right_converter(schema_, context_, view_depth_ + 1);
    auto right = right_converter.ConvertQuery(setop.right());
    if (!right.ok()) return right;
    if (left.value()->row_type()->field_count() !=
        right.value()->row_type()->field_count()) {
      return ValidationError(
          "set operation inputs differ in column count (" +
          std::to_string(left.value()->row_type()->field_count()) + " vs " +
          std::to_string(right.value()->row_type()->field_count()) + ")");
    }
    SetOp::Kind kind = SetOp::Kind::kUnion;
    switch (setop.op()) {
      case SqlSetOp::Op::kUnion:
        kind = SetOp::Kind::kUnion;
        break;
      case SqlSetOp::Op::kIntersect:
        kind = SetOp::Kind::kIntersect;
        break;
      case SqlSetOp::Op::kExcept:
        kind = SetOp::Kind::kMinus;
        break;
    }
    RelNodePtr result = LogicalSetOp::Create({left.value(), right.value()},
                                             kind, setop.all(), tf());
    // Trailing ORDER BY over the set result (by output column name or
    // ordinal).
    if (!setop.order_by.empty() || setop.offset > 0 || setop.fetch >= 0) {
      std::vector<FieldCollation> collation;
      for (const SqlNodePtr& item_node : setop.order_by) {
        const auto& item = static_cast<const SqlOrderItem&>(*item_node);
        auto field = ResolveOrderField(item.expr(), result->row_type());
        if (!field.ok()) return field.status();
        collation.push_back({field.value(),
                             item.descending() ? Direction::kDescending
                                               : Direction::kAscending});
      }
      result = LogicalSort::Create(result, RelCollation(std::move(collation)),
                                   setop.offset, setop.fetch);
    }
    return result;
  }

  /// ORDER BY item as output-column name or 1-based ordinal.
  Result<int> ResolveOrderField(const SqlNodePtr& expr,
                                const RelDataTypePtr& row_type) {
    if (expr->kind() == SqlNodeKind::kLiteral) {
      const auto& lit = static_cast<const SqlLiteral&>(*expr);
      if (lit.value().is_int()) {
        int ordinal = static_cast<int>(lit.value().AsInt());
        if (ordinal < 1 || ordinal > row_type->field_count()) {
          return ValidationError("ORDER BY ordinal out of range");
        }
        return ordinal - 1;
      }
    }
    if (expr->kind() == SqlNodeKind::kIdentifier) {
      const auto& id = static_cast<const SqlIdentifier&>(*expr);
      const RelDataTypeField* field =
          row_type->FindField(id.names().back());
      if (field != nullptr) return field->index;
    }
    return ValidationError("cannot resolve ORDER BY expression " +
                           expr->ToSql());
  }

  // -------------------------------- SELECT --------------------------------

  Result<RelNodePtr> ConvertSelect(const SqlSelect& select);

  /// Expands stars and returns the final select items (expr + name).
  Result<std::vector<std::pair<SqlNodePtr, std::string>>> ExpandSelectList(
      const SqlSelect& select, const Scope& scope);

  SchemaPtr schema_;
  PlannerContext* context_;
  int view_depth_;
};

Result<std::vector<std::pair<SqlNodePtr, std::string>>>
ConverterImpl::ExpandSelectList(const SqlSelect& select, const Scope& scope) {
  std::vector<std::pair<SqlNodePtr, std::string>> items;
  for (const auto& item : select.select_list) {
    if (item.expr->kind() == SqlNodeKind::kIdentifier) {
      const auto& id = static_cast<const SqlIdentifier&>(*item.expr);
      if (id.is_star()) {
        // `*` or `alias.*`.
        for (const ScopeEntry& entry : scope.entries) {
          if (!id.names().empty() &&
              !EqualsIgnoreCase(entry.alias, id.names()[0])) {
            continue;
          }
          for (const RelDataTypeField& field : entry.row_type->fields()) {
            items.push_back(
                {std::make_shared<SqlIdentifier>(
                     std::vector<std::string>{entry.alias, field.name}),
                 field.name});
          }
        }
        continue;
      }
    }
    std::string name = item.alias;
    if (name.empty()) {
      if (item.expr->kind() == SqlNodeKind::kIdentifier) {
        const auto& id = static_cast<const SqlIdentifier&>(*item.expr);
        name = id.names().back();
      } else {
        name = "EXPR$" + std::to_string(items.size());
      }
    }
    items.push_back({item.expr, name});
  }
  if (items.empty()) {
    return ValidationError("SELECT list is empty");
  }
  return items;
}

Result<RelNodePtr> ConverterImpl::ConvertSelect(const SqlSelect& select) {
  Scope scope;
  RelNodePtr node;
  if (select.from != nullptr) {
    auto from = ConvertFrom(select.from, &scope, select.stream);
    if (!from.ok()) return from;
    node = from.value();
  } else {
    if (select.stream) {
      return ValidationError("SELECT STREAM requires a FROM clause");
    }
    // SELECT without FROM: a single empty row.
    node = LogicalValues::Create(tf().CreateStructType({}, {}), {Row{}});
  }

  // WHERE.
  if (select.where != nullptr) {
    if (ContainsAggregate(select.where)) {
      return ValidationError("aggregate functions are not allowed in WHERE");
    }
    auto condition = ConvertExpr(select.where, scope);
    if (!condition.ok()) return condition.status();
    if (condition.value()->type()->type_name() != SqlTypeName::kBoolean) {
      return ValidationError("WHERE condition must be BOOLEAN, got " +
                             condition.value()->type()->ToString());
    }
    node = LogicalFilter::Create(node, condition.value());
  }

  auto items = ExpandSelectList(select, scope);
  if (!items.ok()) return items.status();

  bool has_aggregation = !select.group_by.empty();
  for (const auto& [expr, name] : items.value()) {
    if (ContainsAggregate(expr)) has_aggregation = true;
  }
  if (select.having != nullptr) has_aggregation = true;

  std::vector<FieldCollation> collation;

  if (has_aggregation) {
    // ---- Grouped query: pre-project group keys + agg args, aggregate,
    // then post-project select expressions over the aggregate output. ----

    // Convert group expressions over the FROM scope.
    std::vector<RexNodePtr> group_exprs;
    std::vector<std::string> group_digests;
    for (const SqlNodePtr& g : select.group_by) {
      auto converted = ConvertExpr(g, scope);
      if (!converted.ok()) return converted.status();
      group_exprs.push_back(converted.value());
      group_digests.push_back(g->ToSql());
    }

    // Streaming monotonicity validation (§7.2): windowed aggregates over a
    // stream need a monotonic group expression.
    if (select.stream) {
      bool any_monotonic = false;
      for (const RexNodePtr& g : group_exprs) {
        Monotonicity m = DeriveMonotonicity(g, scope.monotonic_columns);
        if (m == Monotonicity::kIncreasing ||
            m == Monotonicity::kDecreasing) {
          any_monotonic = true;
          break;
        }
      }
      if (!any_monotonic) {
        return ValidationError(
            "streaming aggregation requires a monotonic expression (e.g. "
            "TUMBLE(rowtime, ...)) in the GROUP BY clause (§7.2)");
      }
    }

    // Collect aggregate calls from SELECT items, HAVING and ORDER BY.
    struct PendingAgg {
      const SqlCall* call;
      std::string digest;
    };
    std::vector<PendingAgg> agg_asts;
    auto collect_aggs = [&](const SqlNodePtr& n, auto&& self) -> void {
      if (n == nullptr || n->kind() != SqlNodeKind::kCall) return;
      const auto* call = static_cast<const SqlCall*>(n.get());
      if (IsAggregateFunction(call->op())) {
        std::string digest = n->ToSql();
        for (const PendingAgg& existing : agg_asts) {
          if (existing.digest == digest) return;
        }
        agg_asts.push_back({call, digest});
        return;
      }
      for (const SqlNodePtr& operand : call->operands()) {
        self(operand, self);
      }
    };
    for (const auto& [expr, name] : items.value()) {
      collect_aggs(expr, collect_aggs);
    }
    collect_aggs(select.having, collect_aggs);
    for (const SqlNodePtr& item_node : select.order_by) {
      collect_aggs(static_cast<const SqlOrderItem&>(*item_node).expr(),
                   collect_aggs);
    }

    // Pre-projection: group exprs then agg arguments.
    std::vector<RexNodePtr> pre_exprs = group_exprs;
    std::vector<std::string> pre_names;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      pre_names.push_back("$g" + std::to_string(i));
    }
    std::vector<AggregateCall> agg_calls;
    for (const PendingAgg& pending : agg_asts) {
      AggregateCall agg;
      agg.kind = AggKindForName(pending.call->op(), pending.call->star);
      agg.distinct = pending.call->distinct;
      agg.name = "$a" + std::to_string(agg_calls.size());
      if (!pending.call->star) {
        if (pending.call->operands().size() != 1) {
          return ValidationError(pending.call->op() +
                                 " expects exactly one argument");
        }
        auto arg = ConvertExpr(pending.call->operands()[0], scope);
        if (!arg.ok()) return arg.status();
        agg.args.push_back(static_cast<int>(pre_exprs.size()));
        pre_exprs.push_back(arg.value());
        pre_names.push_back("$arg" + std::to_string(pre_exprs.size()));
      }
      agg_calls.push_back(std::move(agg));
    }

    node = LogicalProject::Create(node, pre_exprs, pre_names, tf());
    std::vector<int> group_keys;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      group_keys.push_back(static_cast<int>(i));
    }
    node = LogicalAggregate::Create(node, group_keys, agg_calls, tf());

    // Rewriting of post-aggregation expressions: group expr digests map to
    // key fields, agg digests to agg fields; TUMBLE_END/HOP_END etc. derive
    // from their group expression.
    const RelDataTypePtr agg_row = node->row_type();
    auto rewrite =
        [&](const SqlNodePtr& n,
            auto&& self) -> Result<RexNodePtr> {
      std::string digest = n->ToSql();
      for (size_t g = 0; g < group_digests.size(); ++g) {
        if (group_digests[g] == digest) {
          return rex().MakeInputRef(agg_row, static_cast<int>(g));
        }
      }
      for (size_t a = 0; a < agg_asts.size(); ++a) {
        if (agg_asts[a].digest == digest) {
          return rex().MakeInputRef(
              agg_row, static_cast<int>(group_digests.size() + a));
        }
      }
      if (n->kind() == SqlNodeKind::kCall) {
        const auto& call = static_cast<const SqlCall&>(*n);
        // Window-end helpers: TUMBLE_END(ts, i) = TUMBLE(ts, i) + i, etc.
        auto window_end = [&](const std::string& base_fn,
                              int interval_operand)
            -> Result<RexNodePtr> {
          std::vector<SqlNodePtr> base_ops(call.operands().begin(),
                                           call.operands().end());
          auto base_call = std::make_shared<SqlCall>(base_fn, base_ops);
          std::string base_digest = base_call->ToSql();
          for (size_t g = 0; g < group_digests.size(); ++g) {
            if (group_digests[g] == base_digest) {
              RexNodePtr ref =
                  rex().MakeInputRef(agg_row, static_cast<int>(g));
              auto interval = ConvertExpr(
                  call.operands()[static_cast<size_t>(interval_operand)],
                  Scope{});
              if (!interval.ok()) return interval.status();
              return rex().MakeCall(OpKind::kPlus,
                                    {ref, interval.value()});
            }
          }
          return ValidationError(
              call.op() + " must match a " + base_fn +
              " expression in the GROUP BY clause");
        };
        if (call.op() == "TUMBLE_END") return window_end("TUMBLE", 1);
        if (call.op() == "HOP_END") return window_end("HOP", 2);
        if (call.op() == "SESSION_END") return window_end("SESSION", 1);
        if (call.op() == "TUMBLE_START") {
          std::vector<SqlNodePtr> base_ops(call.operands().begin(),
                                           call.operands().end());
          auto base_call = std::make_shared<SqlCall>("TUMBLE", base_ops);
          std::string base_digest = base_call->ToSql();
          for (size_t g = 0; g < group_digests.size(); ++g) {
            if (group_digests[g] == base_digest) {
              return rex().MakeInputRef(agg_row, static_cast<int>(g));
            }
          }
          return ValidationError(
              "TUMBLE_START must match a TUMBLE group expression");
        }
        if (call.op() == "CAST") {
          auto operand = self(call.operands()[0], self);
          if (!operand.ok()) return operand;
          auto type = ResolveTypeSpec(*call.type_spec, tf());
          if (!type.ok()) return type.status();
          return rex().MakeCast(type.value(), operand.value());
        }
        std::vector<RexNodePtr> operands;
        for (const SqlNodePtr& operand : call.operands()) {
          auto converted = self(operand, self);
          if (!converted.ok()) return converted;
          operands.push_back(converted.value());
        }
        auto op_it = Operators().find(call.op());
        if (op_it != Operators().end()) {
          return rex().MakeCall(op_it->second, std::move(operands));
        }
        auto fn_it = ScalarFunctions().find(call.op());
        if (fn_it != ScalarFunctions().end()) {
          return rex().MakeCall(fn_it->second, std::move(operands));
        }
        return ValidationError("unknown function '" + call.op() + "'");
      }
      if (n->kind() == SqlNodeKind::kLiteral) {
        Scope empty;
        return ConvertExpr(n, empty);
      }
      return ValidationError(
          "expression " + digest +
          " is neither aggregated nor in the GROUP BY clause");
    };

    // HAVING.
    if (select.having != nullptr) {
      auto having = rewrite(select.having, rewrite);
      if (!having.ok()) return having.status();
      node = LogicalFilter::Create(node, having.value());
    }

    // Post-projection of the select items.
    std::vector<RexNodePtr> post_exprs;
    std::vector<std::string> post_names;
    for (const auto& [expr, name] : items.value()) {
      auto converted = rewrite(expr, rewrite);
      if (!converted.ok()) return converted.status();
      post_exprs.push_back(converted.value());
      post_names.push_back(name);
    }

    // ORDER BY expressions rewritten in the same space, matched against the
    // select list first (aliases and ordinals included).
    for (const SqlNodePtr& item_node : select.order_by) {
      const auto& item = static_cast<const SqlOrderItem&>(*item_node);
      Direction dir = item.descending() ? Direction::kDescending
                                        : Direction::kAscending;
      int field_index = -1;
      // Ordinal?
      if (item.expr()->kind() == SqlNodeKind::kLiteral) {
        const auto& lit = static_cast<const SqlLiteral&>(*item.expr());
        if (lit.value().is_int()) {
          field_index = static_cast<int>(lit.value().AsInt()) - 1;
        }
      }
      // Alias / digest match against select items.
      if (field_index < 0) {
        std::string digest = item.expr()->ToSql();
        for (size_t i = 0; i < items.value().size(); ++i) {
          if (EqualsIgnoreCase(items.value()[i].second, digest) ||
              items.value()[i].first->ToSql() == digest) {
            field_index = static_cast<int>(i);
            break;
          }
        }
      }
      if (field_index < 0) {
        // Append as hidden sort column.
        auto converted = rewrite(item.expr(), rewrite);
        if (!converted.ok()) return converted.status();
        field_index = static_cast<int>(post_exprs.size());
        post_exprs.push_back(converted.value());
        post_names.push_back("$sort" + std::to_string(field_index));
      }
      collation.push_back({field_index, dir});
    }

    size_t visible = items.value().size();
    node = LogicalProject::Create(node, post_exprs, post_names, tf());
    if (!collation.empty() || select.offset > 0 || select.fetch >= 0) {
      node = LogicalSort::Create(node, RelCollation(collation),
                                 select.offset, select.fetch);
    }
    if (post_exprs.size() > visible) {
      // Strip hidden sort columns.
      std::vector<RexNodePtr> trim;
      std::vector<std::string> trim_names;
      for (size_t i = 0; i < visible; ++i) {
        trim.push_back(rex().MakeInputRef(node->row_type(),
                                          static_cast<int>(i)));
        trim_names.push_back(post_names[i]);
      }
      node = LogicalProject::Create(node, trim, trim_names, tf());
    }
    if (select.distinct) {
      std::vector<int> keys;
      for (int i = 0; i < node->row_type()->field_count(); ++i) {
        keys.push_back(i);
      }
      node = LogicalAggregate::Create(node, keys, {}, tf());
    }
    return node;
  }

  // ---- Non-aggregated query ----

  // Window (OVER) calls in the select list become a LogicalWindow.
  bool any_over = false;
  for (const auto& [expr, name] : items.value()) {
    if (ContainsOver(expr)) any_over = true;
  }

  std::vector<RexNodePtr> select_exprs;
  std::vector<std::string> select_names;

  if (any_over) {
    // Build one window group per distinct OVER spec; replace the OVER call
    // with a reference to the appended window output column.
    struct WindowCall {
      const SqlCall* agg;        // the aggregate being windowed
      const SqlWindowSpec* spec;
      std::string digest;
      int output_field = -1;
    };
    std::vector<WindowCall> window_calls;
    auto collect_overs = [&](const SqlNodePtr& n, auto&& self) -> void {
      if (n == nullptr || n->kind() != SqlNodeKind::kCall) return;
      const auto* call = static_cast<const SqlCall*>(n.get());
      if (call->op() == "OVER") {
        std::string digest = n->ToSql();
        for (const WindowCall& existing : window_calls) {
          if (existing.digest == digest) return;
        }
        window_calls.push_back(
            {static_cast<const SqlCall*>(call->operands()[0].get()),
             static_cast<const SqlWindowSpec*>(call->operands()[1].get()),
             digest});
        return;
      }
      for (const SqlNodePtr& operand : call->operands()) self(operand, self);
    };
    for (const auto& [expr, name] : items.value()) {
      collect_overs(expr, collect_overs);
    }

    int base_fields = node->row_type()->field_count();
    // All window functions must use the same input; build one group per
    // distinct (partition, order, frame) signature.
    std::vector<WindowGroup> groups;
    std::vector<std::string> group_digests;
    for (WindowCall& wc : window_calls) {
      if (!IsAggregateFunction(wc.agg->op())) {
        return ValidationError("only aggregate functions support OVER");
      }
      WindowGroup group;
      for (const SqlNodePtr& p : wc.spec->partition_by) {
        auto converted = ConvertExpr(p, scope);
        if (!converted.ok()) return converted.status();
        const RexInputRef* ref = AsInputRef(converted.value());
        if (ref == nullptr) {
          return ValidationError(
              "PARTITION BY expressions must be plain columns");
        }
        group.partition_keys.push_back(ref->index());
      }
      std::vector<FieldCollation> order_fields;
      for (const SqlNodePtr& o : wc.spec->order_by) {
        const auto& order_item = static_cast<const SqlOrderItem&>(*o);
        auto converted = ConvertExpr(order_item.expr(), scope);
        if (!converted.ok()) return converted.status();
        const RexInputRef* ref = AsInputRef(converted.value());
        if (ref == nullptr) {
          return ValidationError("ORDER BY in OVER must be a plain column");
        }
        order_fields.push_back({ref->index(),
                                order_item.descending()
                                    ? Direction::kDescending
                                    : Direction::kAscending});
      }
      group.order = RelCollation(order_fields);
      group.is_rows = wc.spec->is_rows;
      group.preceding = wc.spec->has_frame ? wc.spec->preceding : -1;
      group.following = wc.spec->following;

      AggregateCall agg;
      agg.kind = AggKindForName(wc.agg->op(), wc.agg->star);
      agg.distinct = wc.agg->distinct;
      agg.name = "$w" + std::to_string(window_calls.size());
      if (!wc.agg->star) {
        auto arg = ConvertExpr(wc.agg->operands()[0], scope);
        if (!arg.ok()) return arg.status();
        const RexInputRef* ref = AsInputRef(arg.value());
        if (ref == nullptr) {
          return ValidationError(
              "windowed aggregate arguments must be plain columns");
        }
        agg.args.push_back(ref->index());
      }

      // Merge into an existing group with the same signature.
      std::string sig = group.ToString();
      // Remove the agg list from the signature (compare structure only).
      bool merged = false;
      for (size_t g = 0; g < groups.size(); ++g) {
        if (group_digests[g] == sig) {
          wc.output_field =
              base_fields + static_cast<int>(g) * 1000 +
              static_cast<int>(groups[g].agg_calls.size());
          groups[g].agg_calls.push_back(agg);
          merged = true;
          break;
        }
      }
      if (!merged) {
        wc.output_field = base_fields + static_cast<int>(groups.size()) * 1000;
        groups.push_back(group);
        groups.back().agg_calls.push_back(agg);
        group_digests.push_back(sig);
      }
    }
    // Flatten output-field bookkeeping: fields appended in group order.
    int next = base_fields;
    std::vector<int> group_starts;
    for (WindowGroup& group : groups) {
      group_starts.push_back(next);
      next += static_cast<int>(group.agg_calls.size());
    }
    for (WindowCall& wc : window_calls) {
      int g = (wc.output_field - base_fields) / 1000;
      int offset = (wc.output_field - base_fields) % 1000;
      wc.output_field = group_starts[static_cast<size_t>(g)] + offset;
    }

    node = LogicalWindow::Create(node, groups, tf());

    // Rewrite select expressions replacing OVER calls with field refs.
    auto rewrite_over =
        [&](const SqlNodePtr& n, auto&& self) -> Result<RexNodePtr> {
      if (n->kind() == SqlNodeKind::kCall) {
        const auto& call = static_cast<const SqlCall&>(*n);
        if (call.op() == "OVER") {
          std::string digest = n->ToSql();
          for (const WindowCall& wc : window_calls) {
            if (wc.digest == digest) {
              return rex().MakeInputRef(node->row_type(), wc.output_field);
            }
          }
          return Status::Internal("window call not collected");
        }
        if (call.op() == "CAST") {
          auto operand = self(call.operands()[0], self);
          if (!operand.ok()) return operand;
          auto type = ResolveTypeSpec(*call.type_spec, tf());
          if (!type.ok()) return type.status();
          return rex().MakeCast(type.value(), operand.value());
        }
        std::vector<RexNodePtr> operands;
        for (const SqlNodePtr& operand : call.operands()) {
          auto converted = self(operand, self);
          if (!converted.ok()) return converted;
          operands.push_back(converted.value());
        }
        auto op_it = Operators().find(call.op());
        if (op_it != Operators().end()) {
          return rex().MakeCall(op_it->second, std::move(operands));
        }
        auto fn_it = ScalarFunctions().find(call.op());
        if (fn_it != ScalarFunctions().end()) {
          return rex().MakeCall(fn_it->second, std::move(operands));
        }
        return ValidationError("unknown function '" + call.op() + "'");
      }
      // Identifiers/literals resolve against the original scope (window
      // output keeps the input fields first).
      return ConvertExpr(n, scope);
    };
    for (const auto& [expr, name] : items.value()) {
      auto converted = rewrite_over(expr, rewrite_over);
      if (!converted.ok()) return converted.status();
      select_exprs.push_back(converted.value());
      select_names.push_back(name);
    }
  } else {
    for (const auto& [expr, name] : items.value()) {
      auto converted = ConvertExpr(expr, scope);
      if (!converted.ok()) return converted.status();
      select_exprs.push_back(converted.value());
      select_names.push_back(name);
    }
  }

  // ORDER BY for the non-aggregated case: match select aliases/ordinals
  // first, else hidden sort columns over the FROM scope.
  std::vector<RexNodePtr> hidden_exprs;
  for (const SqlNodePtr& item_node : select.order_by) {
    const auto& item = static_cast<const SqlOrderItem&>(*item_node);
    Direction dir = item.descending() ? Direction::kDescending
                                      : Direction::kAscending;
    int field_index = -1;
    if (item.expr()->kind() == SqlNodeKind::kLiteral) {
      const auto& lit = static_cast<const SqlLiteral&>(*item.expr());
      if (lit.value().is_int()) {
        field_index = static_cast<int>(lit.value().AsInt()) - 1;
        if (field_index < 0 ||
            field_index >= static_cast<int>(select_exprs.size())) {
          return ValidationError("ORDER BY ordinal out of range");
        }
      }
    }
    if (field_index < 0) {
      std::string digest = item.expr()->ToSql();
      for (size_t i = 0; i < items.value().size(); ++i) {
        if (EqualsIgnoreCase(select_names[i], digest) ||
            items.value()[i].first->ToSql() == digest) {
          field_index = static_cast<int>(i);
          break;
        }
      }
    }
    if (field_index < 0) {
      auto converted = ConvertExpr(item.expr(), scope);
      if (!converted.ok()) return converted.status();
      field_index =
          static_cast<int>(select_exprs.size() + hidden_exprs.size());
      hidden_exprs.push_back(converted.value());
    }
    collation.push_back({field_index, dir});
  }

  size_t visible = select_exprs.size();
  std::vector<RexNodePtr> all_exprs = select_exprs;
  std::vector<std::string> all_names = select_names;
  for (size_t i = 0; i < hidden_exprs.size(); ++i) {
    all_exprs.push_back(hidden_exprs[i]);
    all_names.push_back("$sort" + std::to_string(i));
  }
  node = LogicalProject::Create(node, all_exprs, all_names, tf());

  if (select.distinct) {
    if (!hidden_exprs.empty()) {
      return ValidationError(
          "ORDER BY expressions must appear in the SELECT DISTINCT list");
    }
    std::vector<int> keys;
    for (int i = 0; i < node->row_type()->field_count(); ++i) {
      keys.push_back(i);
    }
    node = LogicalAggregate::Create(node, keys, {}, tf());
  }

  if (!collation.empty() || select.offset > 0 || select.fetch >= 0) {
    node = LogicalSort::Create(node, RelCollation(collation), select.offset,
                               select.fetch);
  }
  if (all_exprs.size() > visible) {
    std::vector<RexNodePtr> trim;
    std::vector<std::string> trim_names;
    for (size_t i = 0; i < visible; ++i) {
      trim.push_back(
          rex().MakeInputRef(node->row_type(), static_cast<int>(i)));
      trim_names.push_back(select_names[i]);
    }
    node = LogicalProject::Create(node, trim, trim_names, tf());
  }
  return node;
}

}  // namespace

Result<RelNodePtr> SqlToRelConverter::Convert(const SqlNodePtr& query) {
  ConverterImpl impl(schema_, context_, 0);
  return impl.ConvertQuery(query);
}

Result<RelDataTypePtr> SqlValidator::Validate(const SqlNodePtr& query) {
  SqlToRelConverter converter(schema_, context_);
  auto node = converter.Convert(query);
  if (!node.ok()) return node.status();
  return node.value()->row_type();
}

}  // namespace calcite
