#ifndef CALCITE_SQL_REL_TO_SQL_H_
#define CALCITE_SQL_REL_TO_SQL_H_

#include <string>

#include "rel/core.h"
#include "sql/dialect.h"
#include "util/status.h"

namespace calcite {

/// Translates a relational expression back into SQL text (§3: "once the
/// query has been optimized, Calcite can translate the relational expression
/// back to SQL. This feature allows Calcite to work as a stand-alone system
/// on top of any data management system with a SQL interface"). The JDBC
/// adapter uses this to push whole subtrees into SQL backends, per dialect
/// (Table 2).
///
/// Supported operators: TableScan, Filter, Project, Join, Aggregate, Sort
/// (with OFFSET/FETCH), Union/Intersect/Minus, Values. Other operators
/// return Unsupported — the planner then keeps them client-side.
class RelToSqlConverter {
 public:
  explicit RelToSqlConverter(const SqlDialect& dialect) : dialect_(&dialect) {}

  /// Returns the SQL text computing `node`.
  Result<std::string> Convert(const RelNodePtr& node) const;

  /// Renders a scalar expression given the input field names.
  Result<std::string> ConvertRex(const RexNodePtr& rex,
                                 const std::vector<std::string>& fields) const;

 private:
  /// A SELECT under construction; clauses merge until they would conflict,
  /// then the current statement is wrapped as a subquery.
  struct SqlStatement {
    std::string select;  // comma list; empty = "*"
    std::string from;    // table or "(subquery) AS t"
    std::string where;
    std::string group_by;
    std::string having;
    std::string order_by;
    int64_t offset = 0;
    int64_t fetch = -1;
    std::vector<std::string> output_fields;

    std::string Render(const SqlDialect& dialect) const;
  };

  Result<SqlStatement> Visit(const RelNodePtr& node, int* alias_counter) const;
  SqlStatement WrapAsSubquery(const SqlStatement& stmt,
                              int* alias_counter) const;
  /// Wraps unless the statement is already a bare FROM item.
  SqlStatement WrapIfNeeded(SqlStatement stmt, int* alias_counter) const;

  const SqlDialect* dialect_;
};

}  // namespace calcite

#endif  // CALCITE_SQL_REL_TO_SQL_H_
