#ifndef CALCITE_SQL_SQL_TO_REL_H_
#define CALCITE_SQL_SQL_TO_REL_H_

#include <memory>

#include "plan/rule.h"
#include "rel/core.h"
#include "schema/schema.h"
#include "sql/ast.h"
#include "util/status.h"

namespace calcite {

/// Converts a validated SQL AST into a tree of logical relational operators
/// (Figure 1's "Query parser / validator → relational algebra" path).
/// Name resolution, type checking, view expansion, star expansion,
/// aggregate/window rewriting and the §7.2 streaming monotonicity checks all
/// happen here; semantic problems surface as ValidationError.
class SqlToRelConverter {
 public:
  SqlToRelConverter(SchemaPtr schema, PlannerContext* context)
      : schema_(std::move(schema)), context_(context) {}

  /// Converts a query AST (SqlSelect / SqlSetOp / SqlValues) to a logical
  /// plan.
  Result<RelNodePtr> Convert(const sql::SqlNodePtr& query);

 private:
  SchemaPtr schema_;
  PlannerContext* context_;
};

/// The SQL validator: checks a parsed query against the catalog (tables,
/// columns, types, stream-ness) and reports the query's output row type.
/// Internally shares the conversion machinery with SqlToRelConverter, so a
/// query that validates is guaranteed to convert.
class SqlValidator {
 public:
  SqlValidator(SchemaPtr schema, PlannerContext* context)
      : schema_(std::move(schema)), context_(context) {}

  /// Returns the validated row type, or a ValidationError / NotFound status
  /// explaining the problem.
  Result<RelDataTypePtr> Validate(const sql::SqlNodePtr& query);

 private:
  SchemaPtr schema_;
  PlannerContext* context_;
};

}  // namespace calcite

#endif  // CALCITE_SQL_SQL_TO_REL_H_
