#ifndef CALCITE_SQL_DIALECT_H_
#define CALCITE_SQL_DIALECT_H_

#include <cstdint>
#include <string>

namespace calcite {

/// A SQL dialect for the Rel-to-SQL generator. "The JDBC adapter supports
/// the generation of multiple SQL dialects, including those supported by
/// popular RDBMSes such as PostgreSQL and MySQL" (§8.2, Table 2).
class SqlDialect {
 public:
  virtual ~SqlDialect() = default;

  virtual std::string name() const = 0;

  /// Quotes an identifier ("x" in ANSI, `x` in MySQL).
  virtual std::string QuoteIdentifier(const std::string& id) const {
    return "\"" + id + "\"";
  }

  /// Quotes a string literal.
  virtual std::string QuoteString(const std::string& s) const {
    std::string out = "'";
    for (char c : s) {
      if (c == '\'') out += "''";
      out.push_back(c);
    }
    out += "'";
    return out;
  }

  /// Renders OFFSET/FETCH. `fetch` < 0 means unlimited.
  virtual std::string LimitClause(int64_t offset, int64_t fetch) const {
    std::string out;
    if (fetch >= 0) out += " LIMIT " + std::to_string(fetch);
    if (offset > 0) out += " OFFSET " + std::to_string(offset);
    return out;
  }

  /// TRUE/FALSE literals.
  virtual std::string BoolLiteral(bool b) const { return b ? "TRUE" : "FALSE"; }

  static const SqlDialect& Ansi();
  static const SqlDialect& PostgreSql();
  static const SqlDialect& MySql();
};

}  // namespace calcite

#endif  // CALCITE_SQL_DIALECT_H_
