#include "sql/rel_to_sql.h"

#include "util/string_utils.h"

namespace calcite {

std::string RelToSqlConverter::SqlStatement::Render(
    const SqlDialect& dialect) const {
  std::string sql = "SELECT ";
  sql += select.empty() ? "*" : select;
  if (!from.empty()) sql += " FROM " + from;
  if (!where.empty()) sql += " WHERE " + where;
  if (!group_by.empty()) sql += " GROUP BY " + group_by;
  if (!having.empty()) sql += " HAVING " + having;
  if (!order_by.empty()) sql += " ORDER BY " + order_by;
  sql += dialect.LimitClause(offset, fetch);
  return sql;
}

RelToSqlConverter::SqlStatement RelToSqlConverter::WrapIfNeeded(
    SqlStatement stmt, int* alias_counter) const {
  if (stmt.select.empty() && stmt.where.empty() && stmt.group_by.empty() &&
      stmt.having.empty() && stmt.order_by.empty() && stmt.offset == 0 &&
      stmt.fetch < 0) {
    return stmt;
  }
  return WrapAsSubquery(stmt, alias_counter);
}

RelToSqlConverter::SqlStatement RelToSqlConverter::WrapAsSubquery(
    const SqlStatement& stmt, int* alias_counter) const {
  SqlStatement wrapped;
  std::string alias = "t" + std::to_string((*alias_counter)++);
  wrapped.from = "(" + stmt.Render(*dialect_) + ") AS " +
                 dialect_->QuoteIdentifier(alias);
  wrapped.output_fields = stmt.output_fields;
  return wrapped;
}

Result<std::string> RelToSqlConverter::ConvertRex(
    const RexNodePtr& rex, const std::vector<std::string>& fields) const {
  if (const RexInputRef* ref = AsInputRef(rex)) {
    if (ref->index() < 0 ||
        static_cast<size_t>(ref->index()) >= fields.size()) {
      return Status::Internal("field reference out of range in SQL emitter");
    }
    return dialect_->QuoteIdentifier(fields[static_cast<size_t>(ref->index())]);
  }
  if (const RexLiteral* lit = AsLiteral(rex)) {
    const Value& v = lit->value();
    if (v.IsNull()) return std::string("NULL");
    if (v.is_bool()) return dialect_->BoolLiteral(v.AsBool());
    if (v.is_string()) return dialect_->QuoteString(v.AsString());
    return v.ToString();
  }
  const RexCall* call = AsCall(rex);
  if (call == nullptr) return Status::Unsupported("unknown rex node kind");

  std::vector<std::string> operands;
  operands.reserve(call->operands().size());
  for (const RexNodePtr& operand : call->operands()) {
    auto converted = ConvertRex(operand, fields);
    if (!converted.ok()) return converted;
    operands.push_back(std::move(converted).value());
  }
  switch (call->op()) {
    case OpKind::kCast:
      return "CAST(" + operands[0] + " AS " +
             std::string(SqlTypeNameString(rex->type()->type_name())) +
             (rex->type()->precision() > 0
                  ? "(" + std::to_string(rex->type()->precision()) + ")"
                  : "") +
             ")";
    case OpKind::kIsNull:
      return operands[0] + " IS NULL";
    case OpKind::kIsNotNull:
      return operands[0] + " IS NOT NULL";
    case OpKind::kIsTrue:
      return operands[0] + " IS TRUE";
    case OpKind::kIsFalse:
      return operands[0] + " IS FALSE";
    case OpKind::kNot:
      return "NOT (" + operands[0] + ")";
    case OpKind::kUnaryMinus:
      return "-(" + operands[0] + ")";
    case OpKind::kCase: {
      std::string out = "CASE";
      for (size_t i = 0; i + 1 < operands.size(); i += 2) {
        out += " WHEN " + operands[i] + " THEN " + operands[i + 1];
      }
      out += " ELSE " + operands.back() + " END";
      return out;
    }
    case OpKind::kIn: {
      std::string out = operands[0] + " IN (";
      for (size_t i = 1; i < operands.size(); ++i) {
        if (i > 1) out += ", ";
        out += operands[i];
      }
      return out + ")";
    }
    case OpKind::kBetween:
      return operands[0] + " BETWEEN " + operands[1] + " AND " + operands[2];
    case OpKind::kItem:
      return operands[0] + "[" + operands[1] + "]";
    case OpKind::kAnd:
    case OpKind::kOr: {
      std::string sep =
          call->op() == OpKind::kAnd ? std::string(" AND ") : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < operands.size(); ++i) {
        if (i > 0) out += sep;
        out += operands[i];
      }
      return out + ")";
    }
    default:
      break;
  }
  if (IsInfix(call->op()) && operands.size() == 2) {
    return "(" + operands[0] + " " + OpKindName(call->op()) + " " +
           operands[1] + ")";
  }
  // Function style.
  std::string out = OpKindName(call->op());
  out += "(";
  for (size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out += ", ";
    out += operands[i];
  }
  return out + ")";
}

namespace {

std::vector<std::string> FieldNames(const RelDataTypePtr& type) {
  std::vector<std::string> names;
  names.reserve(type->fields().size());
  for (const RelDataTypeField& f : type->fields()) names.push_back(f.name);
  return names;
}

std::string AggCallSql(const AggregateCall& call, const SqlDialect& dialect,
                       const std::vector<std::string>& fields) {
  std::string out = AggKindName(call.kind);
  out += "(";
  if (call.distinct) out += "DISTINCT ";
  if (call.kind == AggKind::kCountStar) {
    out += "*";
  } else {
    for (size_t i = 0; i < call.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += dialect.QuoteIdentifier(
          fields[static_cast<size_t>(call.args[i])]);
    }
  }
  return out + ")";
}

}  // namespace

Result<RelToSqlConverter::SqlStatement> RelToSqlConverter::Visit(
    const RelNodePtr& node, int* alias_counter) const {
  if (const auto* scan = dynamic_cast<const TableScan*>(node.get())) {
    SqlStatement stmt;
    std::vector<std::string> quoted;
    // Skip the adapter-schema prefix: the backend knows its own tables by
    // their local name.
    quoted.push_back(dialect_->QuoteIdentifier(scan->qualified_name().back()));
    stmt.from = JoinStrings(quoted, ".");
    stmt.output_fields = FieldNames(scan->row_type());
    return stmt;
  }
  if (const auto* filter = dynamic_cast<const Filter*>(node.get())) {
    auto input = Visit(node->input(0), alias_counter);
    if (!input.ok()) return input;
    SqlStatement stmt = std::move(input).value();
    if (!stmt.group_by.empty()) {
      // Filter above aggregation renders as HAVING.
      auto condition = ConvertRex(filter->condition(), stmt.output_fields);
      if (!condition.ok()) return condition.status();
      if (!stmt.having.empty()) {
        stmt.having = "(" + stmt.having + ") AND " + condition.value();
      } else {
        stmt.having = condition.value();
      }
      return stmt;
    }
    if (!stmt.select.empty() || !stmt.order_by.empty() || stmt.fetch >= 0) {
      stmt = WrapAsSubquery(stmt, alias_counter);
    }
    auto condition = ConvertRex(filter->condition(), stmt.output_fields);
    if (!condition.ok()) return condition.status();
    if (!stmt.where.empty()) {
      stmt.where = "(" + stmt.where + ") AND " + condition.value();
    } else {
      stmt.where = condition.value();
    }
    return stmt;
  }
  if (const auto* project = dynamic_cast<const Project*>(node.get())) {
    auto input = Visit(node->input(0), alias_counter);
    if (!input.ok()) return input;
    SqlStatement stmt = std::move(input).value();
    if (!stmt.select.empty() || !stmt.group_by.empty() ||
        !stmt.order_by.empty() || stmt.fetch >= 0) {
      stmt = WrapAsSubquery(stmt, alias_counter);
    }
    std::string select;
    std::vector<std::string> out_fields;
    const auto& fields = project->row_type()->fields();
    for (size_t i = 0; i < project->exprs().size(); ++i) {
      auto expr = ConvertRex(project->exprs()[i], stmt.output_fields);
      if (!expr.ok()) return expr.status();
      if (i > 0) select += ", ";
      select += expr.value() + " AS " +
                dialect_->QuoteIdentifier(fields[i].name);
      out_fields.push_back(fields[i].name);
    }
    stmt.select = std::move(select);
    stmt.output_fields = std::move(out_fields);
    return stmt;
  }
  if (const auto* join = dynamic_cast<const Join*>(node.get())) {
    auto left = Visit(node->input(0), alias_counter);
    if (!left.ok()) return left;
    auto right = Visit(node->input(1), alias_counter);
    if (!right.ok()) return right;
    SqlStatement lstmt = WrapIfNeeded(std::move(left).value(), alias_counter);
    SqlStatement rstmt = WrapIfNeeded(std::move(right).value(), alias_counter);

    SqlStatement stmt;
    std::string join_kw;
    switch (join->join_type()) {
      case JoinType::kInner:
        join_kw = " INNER JOIN ";
        break;
      case JoinType::kLeft:
        join_kw = " LEFT JOIN ";
        break;
      case JoinType::kRight:
        join_kw = " RIGHT JOIN ";
        break;
      case JoinType::kFull:
        join_kw = " FULL JOIN ";
        break;
      case JoinType::kSemi:
      case JoinType::kAnti:
        return Status::Unsupported(
            "SEMI/ANTI joins have no portable SQL form");
    }
    std::vector<std::string> combined = lstmt.output_fields;
    combined.insert(combined.end(), rstmt.output_fields.begin(),
                    rstmt.output_fields.end());
    auto condition = ConvertRex(join->condition(), combined);
    if (!condition.ok()) return condition.status();
    stmt.from = lstmt.from + join_kw + rstmt.from + " ON " + condition.value();
    stmt.output_fields = std::move(combined);
    return stmt;
  }
  if (const auto* agg = dynamic_cast<const Aggregate*>(node.get())) {
    auto input = Visit(node->input(0), alias_counter);
    if (!input.ok()) return input;
    SqlStatement stmt = std::move(input).value();
    if (!stmt.select.empty() || !stmt.group_by.empty() ||
        !stmt.order_by.empty() || stmt.fetch >= 0) {
      stmt = WrapAsSubquery(stmt, alias_counter);
    }
    std::string select;
    std::string group_by;
    std::vector<std::string> out_fields;
    const auto& out_type_fields = agg->row_type()->fields();
    for (size_t i = 0; i < agg->group_keys().size(); ++i) {
      std::string col = dialect_->QuoteIdentifier(
          stmt.output_fields[static_cast<size_t>(agg->group_keys()[i])]);
      if (i > 0) {
        select += ", ";
        group_by += ", ";
      }
      select += col;
      group_by += col;
      out_fields.push_back(out_type_fields[i].name);
    }
    for (size_t i = 0; i < agg->agg_calls().size(); ++i) {
      if (!select.empty()) select += ", ";
      const auto& field = out_type_fields[agg->group_keys().size() + i];
      select += AggCallSql(agg->agg_calls()[i], *dialect_,
                           stmt.output_fields) +
                " AS " + dialect_->QuoteIdentifier(field.name);
      out_fields.push_back(field.name);
    }
    stmt.select = std::move(select);
    stmt.group_by = std::move(group_by);
    stmt.output_fields = std::move(out_fields);
    return stmt;
  }
  if (const auto* sort = dynamic_cast<const Sort*>(node.get())) {
    auto input = Visit(node->input(0), alias_counter);
    if (!input.ok()) return input;
    SqlStatement stmt = std::move(input).value();
    if (!stmt.order_by.empty() || stmt.fetch >= 0) {
      stmt = WrapAsSubquery(stmt, alias_counter);
    }
    std::string order_by;
    for (size_t i = 0; i < sort->collation().fields().size(); ++i) {
      const FieldCollation& fc = sort->collation().fields()[i];
      if (i > 0) order_by += ", ";
      order_by += dialect_->QuoteIdentifier(
          stmt.output_fields[static_cast<size_t>(fc.field)]);
      if (fc.direction == Direction::kDescending) order_by += " DESC";
    }
    stmt.order_by = std::move(order_by);
    stmt.offset = sort->offset();
    stmt.fetch = sort->fetch();
    return stmt;
  }
  if (const auto* setop = dynamic_cast<const SetOp*>(node.get())) {
    std::string op;
    switch (setop->set_kind()) {
      case SetOp::Kind::kUnion:
        op = " UNION ";
        break;
      case SetOp::Kind::kIntersect:
        op = " INTERSECT ";
        break;
      case SetOp::Kind::kMinus:
        op = " EXCEPT ";
        break;
    }
    if (setop->all()) op += "ALL ";
    std::string sql;
    for (size_t i = 0; i < setop->inputs().size(); ++i) {
      auto input = Visit(setop->inputs()[i], alias_counter);
      if (!input.ok()) return input;
      if (i > 0) sql += op;
      sql += input.value().Render(*dialect_);
    }
    SqlStatement stmt;
    std::string alias = "t" + std::to_string((*alias_counter)++);
    stmt.from = "(" + sql + ") AS " + dialect_->QuoteIdentifier(alias);
    stmt.output_fields = FieldNames(setop->row_type());
    return stmt;
  }
  if (const auto* values = dynamic_cast<const Values*>(node.get())) {
    std::string sql = "VALUES ";
    for (size_t r = 0; r < values->tuples().size(); ++r) {
      if (r > 0) sql += ", ";
      sql += "(";
      const Row& row = values->tuples()[r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) sql += ", ";
        const Value& v = row[c];
        if (v.IsNull()) {
          sql += "NULL";
        } else if (v.is_string()) {
          sql += dialect_->QuoteString(v.AsString());
        } else if (v.is_bool()) {
          sql += dialect_->BoolLiteral(v.AsBool());
        } else {
          sql += v.ToString();
        }
      }
      sql += ")";
    }
    SqlStatement stmt;
    std::string alias = "t" + std::to_string((*alias_counter)++);
    stmt.from = "(" + sql + ") AS " + dialect_->QuoteIdentifier(alias);
    stmt.output_fields = FieldNames(values->row_type());
    return stmt;
  }
  // Converters are transparent to SQL generation.
  if (dynamic_cast<const Converter*>(node.get()) != nullptr ||
      dynamic_cast<const Delta*>(node.get()) != nullptr) {
    return Visit(node->input(0), alias_counter);
  }
  return Status::Unsupported("cannot translate operator " + node->op_name() +
                             " to SQL");
}

Result<std::string> RelToSqlConverter::Convert(const RelNodePtr& node) const {
  int alias_counter = 0;
  auto stmt = Visit(node, &alias_counter);
  if (!stmt.ok()) return stmt.status();
  return stmt.value().Render(*dialect_);
}

}  // namespace calcite
