#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"
#include "util/string_utils.h"

namespace calcite {

using sql::SqlCall;
using sql::SqlIdentifier;
using sql::SqlJoin;
using sql::SqlLiteral;
using sql::SqlNode;
using sql::SqlNodePtr;
using sql::SqlOrderItem;
using sql::SqlSelect;
using sql::SqlSelectItem;
using sql::SqlSetOp;
using sql::SqlSubquery;
using sql::SqlTableRef;
using sql::SqlTypeSpec;
using sql::SqlValues;
using sql::SqlWindowSpec;

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<SqlNodePtr> ParseStatement() {
    auto query = ParseQuery();
    if (!query.ok()) return query;
    if (!Peek().IsKeyword("") && Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeOp(std::string_view op) {
    if (Peek().IsOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    return Status::OK();
  }
  Status ExpectOp(std::string_view op) {
    if (!ConsumeOp(op)) {
      return Error("expected '" + std::string(op) + "'");
    }
    return Status::OK();
  }

  // ------------------------------- queries --------------------------------

  Result<SqlNodePtr> ParseQuery() {
    auto left = ParseQueryTerm();
    if (!left.ok()) return left;
    SqlNodePtr result = left.value();
    while (true) {
      SqlSetOp::Op op;
      if (Peek().IsKeyword("UNION")) {
        op = SqlSetOp::Op::kUnion;
      } else if (Peek().IsKeyword("INTERSECT")) {
        op = SqlSetOp::Op::kIntersect;
      } else if (Peek().IsKeyword("EXCEPT")) {
        op = SqlSetOp::Op::kExcept;
      } else {
        break;
      }
      Advance();
      bool all = ConsumeKeyword("ALL");
      auto right = ParseQueryTerm();
      if (!right.ok()) return right;
      result = std::make_shared<SqlSetOp>(op, all, result, right.value());
    }
    // Trailing ORDER BY / LIMIT / OFFSET binding to the whole query.
    std::vector<SqlNodePtr> order_by;
    int64_t offset = 0;
    int64_t fetch = -1;
    if (ConsumeKeyword("ORDER")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      auto items = ParseOrderItems();
      if (!items.ok()) return items.status();
      order_by = std::move(items).value();
    }
    CALCITE_RETURN_IF_ERROR(ParseLimitClauses(&offset, &fetch));
    if (order_by.empty() && offset == 0 && fetch < 0) return result;

    if (result->kind() == sql::SqlNodeKind::kSelect) {
      auto* select = const_cast<SqlSelect*>(
          static_cast<const SqlSelect*>(result.get()));
      if (select->order_by.empty() && select->offset == 0 &&
          select->fetch < 0) {
        select->order_by = std::move(order_by);
        select->offset = offset;
        select->fetch = fetch;
        return result;
      }
    }
    if (result->kind() == sql::SqlNodeKind::kSetOp) {
      auto* setop =
          const_cast<SqlSetOp*>(static_cast<const SqlSetOp*>(result.get()));
      setop->order_by = std::move(order_by);
      setop->offset = offset;
      setop->fetch = fetch;
      return result;
    }
    // VALUES with ORDER BY: wrap in a trivial select.
    auto select = std::make_shared<SqlSelect>();
    select->select_list.push_back(
        {std::make_shared<SqlIdentifier>(std::vector<std::string>{}, true),
         ""});
    select->from = std::make_shared<SqlSubquery>(result, "v");
    select->order_by = std::move(order_by);
    select->offset = offset;
    select->fetch = fetch;
    return SqlNodePtr(select);
  }

  Result<SqlNodePtr> ParseQueryTerm() {
    if (Peek().IsKeyword("SELECT")) return ParseSelect();
    if (Peek().IsKeyword("VALUES")) return ParseValues();
    if (Peek().IsOp("(")) {
      Advance();
      auto query = ParseQuery();
      if (!query.ok()) return query;
      CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
      return query;
    }
    return Error("expected SELECT, VALUES or subquery");
  }

  Result<SqlNodePtr> ParseValues() {
    Advance();  // VALUES
    std::vector<std::vector<SqlNodePtr>> rows;
    do {
      CALCITE_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<SqlNodePtr> row;
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr;
        row.push_back(expr.value());
      } while (ConsumeOp(","));
      CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
      rows.push_back(std::move(row));
    } while (ConsumeOp(","));
    return SqlNodePtr(std::make_shared<SqlValues>(std::move(rows)));
  }

  Result<SqlNodePtr> ParseSelect() {
    Advance();  // SELECT
    auto select = std::make_shared<SqlSelect>();
    select->stream = ConsumeKeyword("STREAM");
    select->distinct = ConsumeKeyword("DISTINCT");
    ConsumeKeyword("ALL");

    do {
      SqlSelectItem item;
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      item.expr = expr.value();
      if (ConsumeKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdentifier &&
            Peek().kind != TokenKind::kKeyword) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier) {
        item.alias = Advance().text;
      }
      select->select_list.push_back(std::move(item));
    } while (ConsumeOp(","));

    if (ConsumeKeyword("FROM")) {
      auto from = ParseFromClause();
      if (!from.ok()) return from;
      select->from = from.value();
    }
    if (ConsumeKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where;
      select->where = where.value();
    }
    if (ConsumeKeyword("GROUP")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr;
        select->group_by.push_back(expr.value());
      } while (ConsumeOp(","));
    }
    if (ConsumeKeyword("HAVING")) {
      auto having = ParseExpr();
      if (!having.ok()) return having;
      select->having = having.value();
    }
    if (ConsumeKeyword("ORDER")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      auto items = ParseOrderItems();
      if (!items.ok()) return items.status();
      select->order_by = std::move(items).value();
    }
    CALCITE_RETURN_IF_ERROR(
        ParseLimitClauses(&select->offset, &select->fetch));
    return SqlNodePtr(select);
  }

  Status ParseLimitClauses(int64_t* offset, int64_t* fetch) {
    while (true) {
      if (ConsumeKeyword("LIMIT")) {
        if (Peek().kind != TokenKind::kIntegerLiteral) {
          return Error("expected integer after LIMIT");
        }
        *fetch = std::strtoll(Advance().text.c_str(), nullptr, 10);
        continue;
      }
      if (ConsumeKeyword("OFFSET")) {
        if (Peek().kind != TokenKind::kIntegerLiteral) {
          return Error("expected integer after OFFSET");
        }
        *offset = std::strtoll(Advance().text.c_str(), nullptr, 10);
        ConsumeKeyword("ROWS");
        ConsumeKeyword("ROW");
        continue;
      }
      if (ConsumeKeyword("FETCH")) {
        if (!ConsumeKeyword("FIRST")) ConsumeKeyword("NEXT");
        if (Peek().kind != TokenKind::kIntegerLiteral) {
          return Error("expected integer in FETCH clause");
        }
        *fetch = std::strtoll(Advance().text.c_str(), nullptr, 10);
        if (!ConsumeKeyword("ROWS")) ConsumeKeyword("ROW");
        CALCITE_RETURN_IF_ERROR(ExpectKeyword("ONLY"));
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<std::vector<SqlNodePtr>> ParseOrderItems() {
    std::vector<SqlNodePtr> items;
    do {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      bool descending = false;
      if (ConsumeKeyword("DESC")) {
        descending = true;
      } else {
        ConsumeKeyword("ASC");
      }
      items.push_back(
          std::make_shared<SqlOrderItem>(expr.value(), descending));
    } while (ConsumeOp(","));
    return items;
  }

  // ------------------------------ FROM clause -----------------------------

  Result<SqlNodePtr> ParseFromClause() {
    auto left = ParseTableRef();
    if (!left.ok()) return left;
    SqlNodePtr result = left.value();
    while (true) {
      SqlJoin::Type type;
      bool has_join = true;
      if (ConsumeOp(",")) {
        type = SqlJoin::Type::kCross;
        auto right = ParseTableRef();
        if (!right.ok()) return right;
        result = std::make_shared<SqlJoin>(type, result, right.value(),
                                           nullptr,
                                           std::vector<std::string>{});
        continue;
      } else if (ConsumeKeyword("CROSS")) {
        CALCITE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        type = SqlJoin::Type::kCross;
        has_join = false;
      } else if (ConsumeKeyword("INNER")) {
        CALCITE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        type = SqlJoin::Type::kInner;
      } else if (ConsumeKeyword("LEFT")) {
        ConsumeKeyword("OUTER");
        CALCITE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        type = SqlJoin::Type::kLeft;
      } else if (ConsumeKeyword("RIGHT")) {
        ConsumeKeyword("OUTER");
        CALCITE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        type = SqlJoin::Type::kRight;
      } else if (ConsumeKeyword("FULL")) {
        ConsumeKeyword("OUTER");
        CALCITE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        type = SqlJoin::Type::kFull;
      } else if (ConsumeKeyword("JOIN")) {
        type = SqlJoin::Type::kInner;
      } else {
        break;
      }
      auto right = ParseTableRef();
      if (!right.ok()) return right;
      SqlNodePtr condition;
      std::vector<std::string> using_columns;
      if (has_join && ConsumeKeyword("ON")) {
        auto cond = ParseExpr();
        if (!cond.ok()) return cond;
        condition = cond.value();
      } else if (has_join && ConsumeKeyword("USING")) {
        CALCITE_RETURN_IF_ERROR(ExpectOp("("));
        do {
          if (Peek().kind != TokenKind::kIdentifier) {
            return Error("expected column name in USING");
          }
          using_columns.push_back(Advance().text);
        } while (ConsumeOp(","));
        CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
      } else if (type != SqlJoin::Type::kCross) {
        return Error("JOIN requires ON or USING clause");
      }
      result = std::make_shared<SqlJoin>(type, result, right.value(),
                                         condition, std::move(using_columns));
    }
    return result;
  }

  Result<SqlNodePtr> ParseTableRef() {
    if (Peek().IsOp("(")) {
      Advance();
      auto query = ParseQuery();
      if (!query.ok()) return query;
      CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
      std::string alias;
      ConsumeKeyword("AS");
      if (Peek().kind == TokenKind::kIdentifier) alias = Advance().text;
      return SqlNodePtr(std::make_shared<SqlSubquery>(query.value(), alias));
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected table name");
    }
    std::vector<std::string> names;
    names.push_back(Advance().text);
    while (Peek().IsOp(".")) {
      Advance();
      // Keywords are non-reserved after '.' (a table may be named "rows").
      if (Peek().kind != TokenKind::kIdentifier &&
          Peek().kind != TokenKind::kKeyword) {
        return Error("expected identifier after '.'");
      }
      names.push_back(Advance().text);
    }
    std::string alias;
    if (ConsumeKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected alias after AS");
      }
      alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      alias = Advance().text;
    }
    return SqlNodePtr(
        std::make_shared<SqlTableRef>(std::move(names), std::move(alias)));
  }

  // ------------------------------ expressions -----------------------------

  Result<SqlNodePtr> ParseExpr() { return ParseOr(); }

  Result<SqlNodePtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    SqlNodePtr result = left.value();
    while (ConsumeKeyword("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right;
      result = std::make_shared<SqlCall>(
          "OR", std::vector<SqlNodePtr>{result, right.value()});
    }
    return result;
  }

  Result<SqlNodePtr> ParseAnd() {
    auto left = ParseNot();
    if (!left.ok()) return left;
    SqlNodePtr result = left.value();
    while (ConsumeKeyword("AND")) {
      auto right = ParseNot();
      if (!right.ok()) return right;
      result = std::make_shared<SqlCall>(
          "AND", std::vector<SqlNodePtr>{result, right.value()});
    }
    return result;
  }

  Result<SqlNodePtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      auto operand = ParseNot();
      if (!operand.ok()) return operand;
      return SqlNodePtr(std::make_shared<SqlCall>(
          "NOT", std::vector<SqlNodePtr>{operand.value()}));
    }
    return ParseComparison();
  }

  Result<SqlNodePtr> ParseComparison() {
    auto left = ParseAdditive();
    if (!left.ok()) return left;
    SqlNodePtr result = left.value();

    // IS [NOT] NULL / TRUE / FALSE.
    if (Peek().IsKeyword("IS")) {
      Advance();
      bool negated = ConsumeKeyword("NOT");
      std::string op;
      if (ConsumeKeyword("NULL")) {
        op = negated ? "IS NOT NULL" : "IS NULL";
      } else if (ConsumeKeyword("TRUE")) {
        op = negated ? "IS NOT TRUE" : "IS TRUE";
      } else if (ConsumeKeyword("FALSE")) {
        op = negated ? "IS NOT FALSE" : "IS FALSE";
      } else {
        return Error("expected NULL, TRUE or FALSE after IS");
      }
      return SqlNodePtr(std::make_shared<SqlCall>(
          op, std::vector<SqlNodePtr>{result}));
    }

    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("IN") ||
         Peek(1).IsKeyword("BETWEEN"))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeyword("LIKE")) {
      auto pattern = ParseAdditive();
      if (!pattern.ok()) return pattern;
      SqlNodePtr like = std::make_shared<SqlCall>(
          "LIKE", std::vector<SqlNodePtr>{result, pattern.value()});
      if (negated) {
        like = std::make_shared<SqlCall>("NOT",
                                         std::vector<SqlNodePtr>{like});
      }
      return like;
    }
    if (ConsumeKeyword("IN")) {
      CALCITE_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<SqlNodePtr> operands{result};
      do {
        auto item = ParseExpr();
        if (!item.ok()) return item;
        operands.push_back(item.value());
      } while (ConsumeOp(","));
      CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
      SqlNodePtr in = std::make_shared<SqlCall>("IN", std::move(operands));
      if (negated) {
        in = std::make_shared<SqlCall>("NOT", std::vector<SqlNodePtr>{in});
      }
      return in;
    }
    if (ConsumeKeyword("BETWEEN")) {
      auto low = ParseAdditive();
      if (!low.ok()) return low;
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("AND"));
      auto high = ParseAdditive();
      if (!high.ok()) return high;
      SqlNodePtr between = std::make_shared<SqlCall>(
          "BETWEEN",
          std::vector<SqlNodePtr>{result, low.value(), high.value()});
      if (negated) {
        between = std::make_shared<SqlCall>(
            "NOT", std::vector<SqlNodePtr>{between});
      }
      return between;
    }

    static const char* kComparisons[] = {"=", "<>", "!=", "<", "<=", ">",
                                         ">="};
    for (const char* op : kComparisons) {
      if (Peek().IsOp(op)) {
        Advance();
        auto right = ParseAdditive();
        if (!right.ok()) return right;
        std::string norm = (std::string(op) == "!=") ? "<>" : op;
        return SqlNodePtr(std::make_shared<SqlCall>(
            norm, std::vector<SqlNodePtr>{result, right.value()}));
      }
    }
    return result;
  }

  Result<SqlNodePtr> ParseAdditive() {
    auto left = ParseMultiplicative();
    if (!left.ok()) return left;
    SqlNodePtr result = left.value();
    while (true) {
      std::string op;
      if (Peek().IsOp("+")) {
        op = "+";
      } else if (Peek().IsOp("-")) {
        op = "-";
      } else if (Peek().IsOp("||")) {
        op = "||";
      } else {
        break;
      }
      Advance();
      auto right = ParseMultiplicative();
      if (!right.ok()) return right;
      result = std::make_shared<SqlCall>(
          op, std::vector<SqlNodePtr>{result, right.value()});
    }
    return result;
  }

  Result<SqlNodePtr> ParseMultiplicative() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    SqlNodePtr result = left.value();
    while (true) {
      std::string op;
      if (Peek().IsOp("*")) {
        op = "*";
      } else if (Peek().IsOp("/")) {
        op = "/";
      } else if (Peek().IsOp("%")) {
        op = "MOD";
      } else {
        break;
      }
      Advance();
      auto right = ParseUnary();
      if (!right.ok()) return right;
      result = std::make_shared<SqlCall>(
          op, std::vector<SqlNodePtr>{result, right.value()});
    }
    return result;
  }

  Result<SqlNodePtr> ParseUnary() {
    if (ConsumeOp("-")) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return SqlNodePtr(std::make_shared<SqlCall>(
          "UNARY_MINUS", std::vector<SqlNodePtr>{operand.value()}));
    }
    ConsumeOp("+");
    return ParsePostfix();
  }

  Result<SqlNodePtr> ParsePostfix() {
    auto primary = ParsePrimary();
    if (!primary.ok()) return primary;
    SqlNodePtr result = primary.value();
    while (ConsumeOp("[")) {
      auto index = ParseExpr();
      if (!index.ok()) return index;
      CALCITE_RETURN_IF_ERROR(ExpectOp("]"));
      result = std::make_shared<SqlCall>(
          "ITEM", std::vector<SqlNodePtr>{result, index.value()});
    }
    return result;
  }

  Result<int64_t> ParseIntervalMillis() {
    // INTERVAL '<n>' <unit>
    if (Peek().kind != TokenKind::kStringLiteral &&
        Peek().kind != TokenKind::kIntegerLiteral) {
      return Error("expected interval value");
    }
    std::string value_text = Advance().text;
    int64_t amount = std::strtoll(value_text.c_str(), nullptr, 10);
    int64_t unit_ms;
    if (ConsumeKeyword("SECOND")) {
      unit_ms = 1000;
    } else if (ConsumeKeyword("MINUTE")) {
      unit_ms = 60 * 1000;
    } else if (ConsumeKeyword("HOUR")) {
      unit_ms = 60 * 60 * 1000;
    } else if (ConsumeKeyword("DAY")) {
      unit_ms = 24 * 60 * 60 * 1000;
    } else {
      return Error("expected SECOND, MINUTE, HOUR or DAY interval unit");
    }
    return amount * unit_ms;
  }

  Result<SqlTypeSpec> ParseTypeSpec() {
    if (Peek().kind != TokenKind::kKeyword &&
        Peek().kind != TokenKind::kIdentifier) {
      return Error("expected type name");
    }
    SqlTypeSpec spec;
    spec.name = ToUpper(Advance().text);
    if (spec.name == "INT") spec.name = "INTEGER";
    if (ConsumeOp("(")) {
      if (Peek().kind != TokenKind::kIntegerLiteral) {
        return Error("expected precision");
      }
      spec.precision =
          static_cast<int>(std::strtoll(Advance().text.c_str(), nullptr, 10));
      if (ConsumeOp(",")) {
        if (Peek().kind != TokenKind::kIntegerLiteral) {
          return Error("expected scale");
        }
        spec.scale = static_cast<int>(
            std::strtoll(Advance().text.c_str(), nullptr, 10));
      }
      CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
    }
    return spec;
  }

  Result<SqlNodePtr> ParseWindowSpec() {
    auto spec = std::make_shared<SqlWindowSpec>();
    if (ConsumeKeyword("PARTITION")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr;
        spec->partition_by.push_back(expr.value());
      } while (ConsumeOp(","));
    }
    if (ConsumeKeyword("ORDER")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      auto items = ParseOrderItems();
      if (!items.ok()) return items.status();
      spec->order_by = std::move(items).value();
    }
    // Calcite's streaming examples also accept ORDER BY after PARTITION BY
    // in either order; handle "PARTITION BY" appearing after "ORDER BY".
    if (ConsumeKeyword("PARTITION")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr;
        spec->partition_by.push_back(expr.value());
      } while (ConsumeOp(","));
    }
    if (Peek().IsKeyword("ROWS") || Peek().IsKeyword("RANGE")) {
      spec->has_frame = true;
      spec->is_rows = Advance().text == "ROWS";
      bool between = ConsumeKeyword("BETWEEN");
      auto bound = ParseFrameBound(spec->is_rows);
      if (!bound.ok()) return bound.status();
      spec->preceding = bound.value();
      if (between) {
        CALCITE_RETURN_IF_ERROR(ExpectKeyword("AND"));
        auto upper = ParseFrameBound(spec->is_rows);
        if (!upper.ok()) return upper.status();
        spec->following = upper.value() < 0 ? 0 : upper.value();
      }
    }
    return SqlNodePtr(spec);
  }

  /// Returns the bound magnitude: -1 for UNBOUNDED PRECEDING, 0 for
  /// CURRENT ROW, else N rows or interval milliseconds.
  Result<int64_t> ParseFrameBound(bool is_rows) {
    if (ConsumeKeyword("UNBOUNDED")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("PRECEDING"));
      return int64_t{-1};
    }
    if (ConsumeKeyword("CURRENT")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("ROW"));
      return int64_t{0};
    }
    int64_t magnitude;
    if (ConsumeKeyword("INTERVAL")) {
      auto ms = ParseIntervalMillis();
      if (!ms.ok()) return ms;
      magnitude = ms.value();
    } else if (Peek().kind == TokenKind::kIntegerLiteral) {
      magnitude = std::strtoll(Advance().text.c_str(), nullptr, 10);
    } else {
      return Error("expected frame bound");
    }
    if (!ConsumeKeyword("PRECEDING")) {
      CALCITE_RETURN_IF_ERROR(ExpectKeyword("FOLLOWING"));
    }
    (void)is_rows;
    return magnitude;
  }

  Result<SqlNodePtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIntegerLiteral: {
        Advance();
        return SqlNodePtr(std::make_shared<SqlLiteral>(
            SqlLiteral::LiteralKind::kInteger,
            Value::Int(std::strtoll(tok.text.c_str(), nullptr, 10))));
      }
      case TokenKind::kDecimalLiteral: {
        Advance();
        return SqlNodePtr(std::make_shared<SqlLiteral>(
            SqlLiteral::LiteralKind::kDecimal,
            Value::Double(std::strtod(tok.text.c_str(), nullptr))));
      }
      case TokenKind::kStringLiteral: {
        Advance();
        return SqlNodePtr(std::make_shared<SqlLiteral>(
            SqlLiteral::LiteralKind::kString, Value::String(tok.text)));
      }
      case TokenKind::kKeyword: {
        if (tok.text == "NULL") {
          Advance();
          return SqlNodePtr(std::make_shared<SqlLiteral>(
              SqlLiteral::LiteralKind::kNull, Value::Null()));
        }
        if (tok.text == "TRUE" || tok.text == "FALSE") {
          Advance();
          return SqlNodePtr(std::make_shared<SqlLiteral>(
              SqlLiteral::LiteralKind::kBoolean,
              Value::Bool(tok.text == "TRUE")));
        }
        if (tok.text == "INTERVAL") {
          Advance();
          auto ms = ParseIntervalMillis();
          if (!ms.ok()) return ms.status();
          return SqlNodePtr(std::make_shared<SqlLiteral>(
              SqlLiteral::LiteralKind::kInterval, Value::Int(ms.value())));
        }
        if (tok.text == "CAST") {
          Advance();
          CALCITE_RETURN_IF_ERROR(ExpectOp("("));
          auto operand = ParseExpr();
          if (!operand.ok()) return operand;
          CALCITE_RETURN_IF_ERROR(ExpectKeyword("AS"));
          auto type = ParseTypeSpec();
          if (!type.ok()) return type.status();
          CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
          auto call = std::make_shared<SqlCall>(
              "CAST", std::vector<SqlNodePtr>{operand.value()});
          call->type_spec = type.value();
          return SqlNodePtr(call);
        }
        if (tok.text == "CASE") {
          Advance();
          std::vector<SqlNodePtr> operands;
          while (ConsumeKeyword("WHEN")) {
            auto cond = ParseExpr();
            if (!cond.ok()) return cond;
            CALCITE_RETURN_IF_ERROR(ExpectKeyword("THEN"));
            auto value = ParseExpr();
            if (!value.ok()) return value;
            operands.push_back(cond.value());
            operands.push_back(value.value());
          }
          if (operands.empty()) {
            return Error("CASE requires at least one WHEN branch");
          }
          if (ConsumeKeyword("ELSE")) {
            auto else_value = ParseExpr();
            if (!else_value.ok()) return else_value;
            operands.push_back(else_value.value());
          } else {
            operands.push_back(std::make_shared<SqlLiteral>(
                SqlLiteral::LiteralKind::kNull, Value::Null()));
          }
          CALCITE_RETURN_IF_ERROR(ExpectKeyword("END"));
          return SqlNodePtr(
              std::make_shared<SqlCall>("CASE", std::move(operands)));
        }
        // Grouping/window functions appear as keyword-named calls.
        if (Peek(1).IsOp("(")) {
          return ParseFunctionCall(Advance().text);
        }
        return Error("unexpected keyword '" + tok.text + "'");
      }
      case TokenKind::kOperator: {
        if (tok.IsOp("(")) {
          Advance();
          auto expr = ParseExpr();
          if (!expr.ok()) return expr;
          CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
          return expr;
        }
        if (tok.IsOp("*")) {
          Advance();
          return SqlNodePtr(std::make_shared<SqlIdentifier>(
              std::vector<std::string>{}, true));
        }
        return Error("unexpected token '" + tok.text + "'");
      }
      case TokenKind::kIdentifier: {
        if (Peek(1).IsOp("(")) {
          return ParseFunctionCall(Advance().text);
        }
        std::vector<std::string> names;
        names.push_back(Advance().text);
        bool star = false;
        while (ConsumeOp(".")) {
          if (ConsumeOp("*")) {
            star = true;
            break;
          }
          if (Peek().kind != TokenKind::kIdentifier &&
              Peek().kind != TokenKind::kKeyword) {
            return Error("expected identifier after '.'");
          }
          names.push_back(Advance().text);
        }
        return SqlNodePtr(
            std::make_shared<SqlIdentifier>(std::move(names), star));
      }
      case TokenKind::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  Result<SqlNodePtr> ParseFunctionCall(const std::string& raw_name) {
    std::string name = ToUpper(raw_name);
    CALCITE_RETURN_IF_ERROR(ExpectOp("("));
    auto call_operands = std::vector<SqlNodePtr>{};
    bool distinct = false;
    bool star = false;
    if (ConsumeOp("*")) {
      star = true;
    } else if (!Peek().IsOp(")")) {
      distinct = ConsumeKeyword("DISTINCT");
      do {
        auto arg = ParseExpr();
        if (!arg.ok()) return arg;
        call_operands.push_back(arg.value());
      } while (ConsumeOp(","));
    }
    CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
    auto call = std::make_shared<SqlCall>(name, std::move(call_operands));
    call->distinct = distinct;
    call->star = star;

    if (ConsumeKeyword("OVER")) {
      CALCITE_RETURN_IF_ERROR(ExpectOp("("));
      auto spec = ParseWindowSpec();
      if (!spec.ok()) return spec;
      CALCITE_RETURN_IF_ERROR(ExpectOp(")"));
      return SqlNodePtr(std::make_shared<SqlCall>(
          "OVER", std::vector<SqlNodePtr>{call, spec.value()}));
    }
    return SqlNodePtr(call);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<sql::SqlNodePtr> SqlParser::Parse(std::string_view sql_text) {
  auto tokens = TokenizeSql(sql_text);
  if (!tokens.ok()) return tokens.status();
  ParserImpl parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace calcite
