#include "rules/core_rules.h"

#include <memory>
#include <set>

#include "rel/core.h"
#include "rex/rex_util.h"

namespace calcite {

namespace {

bool IsLogicalConvention(const RelNode& node) {
  return node.convention() == Convention::Logical();
}

// ----------------------------- FilterIntoJoin ------------------------------

class FilterIntoJoinRule final : public RelOptRule {
 public:
  std::string name() const override { return "FilterIntoJoinRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    return i != 0 || dynamic_cast<const Join*>(&child) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    const auto* join = dynamic_cast<const Join*>(filter.input(0).get());
    if (join == nullptr) return;
    // Push-down below an outer join would change semantics on the padded
    // side; restrict to inner joins (Calcite's default "smart" behaviour).
    if (join->join_type() != JoinType::kInner) return;

    int left_count = join->input(0)->row_type()->field_count();
    int total = join->row_type()->field_count();

    std::vector<RexNodePtr> left_preds;
    std::vector<RexNodePtr> right_preds;
    std::vector<RexNodePtr> cross_preds;
    for (const RexNodePtr& conjunct : RexUtil::FlattenAnd(filter.condition())) {
      if (RexUtil::AllRefsInRange(conjunct, 0, left_count)) {
        left_preds.push_back(conjunct);
      } else if (RexUtil::AllRefsInRange(conjunct, left_count, total)) {
        right_preds.push_back(RexUtil::ShiftRefs(conjunct, -left_count));
      } else {
        cross_preds.push_back(conjunct);
      }
    }
    if (left_preds.empty() && right_preds.empty()) return;  // Nothing moves.

    const RexBuilder& rex = call->rex_builder();
    RelNodePtr left = join->input(0);
    RelNodePtr right = join->input(1);
    if (!left_preds.empty()) {
      left = LogicalFilter::Create(left, rex.MakeAnd(std::move(left_preds)));
    }
    if (!right_preds.empty()) {
      right =
          LogicalFilter::Create(right, rex.MakeAnd(std::move(right_preds)));
    }
    // Cross-side conjuncts can be performed by the join itself.
    std::vector<RexNodePtr> join_conjuncts =
        RexUtil::FlattenAnd(join->condition());
    join_conjuncts.insert(join_conjuncts.end(), cross_preds.begin(),
                          cross_preds.end());
    RelNodePtr new_join = LogicalJoin::Create(
        std::move(left), std::move(right),
        rex.MakeAnd(std::move(join_conjuncts)), join->join_type(),
        call->type_factory());
    call->TransformTo(std::move(new_join));
  }
};

// ------------------------------- FilterMerge -------------------------------

class FilterMergeRule final : public RelOptRule {
 public:
  std::string name() const override { return "FilterMergeRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    return i != 0 || dynamic_cast<const Filter*>(&child) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& outer = static_cast<const Filter&>(*call->rel());
    const auto* inner = dynamic_cast<const Filter*>(outer.input(0).get());
    if (inner == nullptr) return;
    std::vector<RexNodePtr> conjuncts = RexUtil::FlattenAnd(outer.condition());
    for (const RexNodePtr& c : RexUtil::FlattenAnd(inner->condition())) {
      conjuncts.push_back(c);
    }
    call->TransformTo(LogicalFilter::Create(
        inner->input(0), call->rex_builder().MakeAnd(std::move(conjuncts))));
  }
};

// -------------------------- FilterProjectTranspose --------------------------

class FilterProjectTransposeRule final : public RelOptRule {
 public:
  std::string name() const override { return "FilterProjectTransposeRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    return i != 0 || dynamic_cast<const Project*>(&child) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    const auto* project = dynamic_cast<const Project*>(filter.input(0).get());
    if (project == nullptr) return;
    // Inline the projected expressions into the predicate.
    RexNodePtr pushed =
        RexUtil::ReplaceRefs(filter.condition(), project->exprs());
    RelNodePtr new_filter = LogicalFilter::Create(project->input(0), pushed);
    std::vector<std::string> names;
    for (const RelDataTypeField& f : project->row_type()->fields()) {
      names.push_back(f.name);
    }
    call->TransformTo(LogicalProject::Create(std::move(new_filter),
                                             project->exprs(), names,
                                             call->type_factory()));
  }
};

// ------------------------- FilterAggregateTranspose -------------------------

class FilterAggregateTransposeRule final : public RelOptRule {
 public:
  std::string name() const override {
    return "FilterAggregateTransposeRule";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    return i != 0 || dynamic_cast<const Aggregate*>(&child) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    const auto* agg = dynamic_cast<const Aggregate*>(filter.input(0).get());
    if (agg == nullptr) return;
    int key_count = static_cast<int>(agg->group_keys().size());
    // Only predicates over the group keys may move below the aggregate.
    if (!RexUtil::AllRefsInRange(filter.condition(), 0, key_count)) return;
    // Output field i (i < key_count) corresponds to input field
    // group_keys[i].
    std::vector<int> mapping(static_cast<size_t>(key_count));
    for (int i = 0; i < key_count; ++i) {
      mapping[static_cast<size_t>(i)] = agg->group_keys()[static_cast<size_t>(i)];
    }
    RexNodePtr pushed = RexUtil::RemapRefs(filter.condition(), mapping);
    RelNodePtr new_filter = LogicalFilter::Create(agg->input(0), pushed);
    call->TransformTo(LogicalAggregate::Create(std::move(new_filter),
                                               agg->group_keys(),
                                               agg->agg_calls(),
                                               call->type_factory()));
  }
};

// --------------------------- FilterSetOpTranspose ---------------------------

class FilterSetOpTransposeRule final : public RelOptRule {
 public:
  std::string name() const override { return "FilterSetOpTransposeRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    return i != 0 || dynamic_cast<const SetOp*>(&child) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    const auto* setop = dynamic_cast<const SetOp*>(filter.input(0).get());
    if (setop == nullptr) return;
    std::vector<RelNodePtr> new_inputs;
    new_inputs.reserve(setop->inputs().size());
    for (const RelNodePtr& input : setop->inputs()) {
      new_inputs.push_back(LogicalFilter::Create(input, filter.condition()));
    }
    call->TransformTo(LogicalSetOp::Create(std::move(new_inputs),
                                           setop->set_kind(), setop->all(),
                                           call->type_factory()));
  }
};

// ------------------------------- ProjectMerge ------------------------------

class ProjectMergeRule final : public RelOptRule {
 public:
  std::string name() const override { return "ProjectMergeRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Project*>(&node) != nullptr;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    return i != 0 || dynamic_cast<const Project*>(&child) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& outer = static_cast<const Project&>(*call->rel());
    const auto* inner = dynamic_cast<const Project*>(outer.input(0).get());
    if (inner == nullptr) return;
    std::vector<RexNodePtr> composed;
    composed.reserve(outer.exprs().size());
    for (const RexNodePtr& expr : outer.exprs()) {
      composed.push_back(RexUtil::ReplaceRefs(expr, inner->exprs()));
    }
    std::vector<std::string> names;
    for (const RelDataTypeField& f : outer.row_type()->fields()) {
      names.push_back(f.name);
    }
    call->TransformTo(LogicalProject::Create(inner->input(0),
                                             std::move(composed), names,
                                             call->type_factory()));
  }
};

// ------------------------------ ProjectRemove ------------------------------

class ProjectRemoveRule final : public RelOptRule {
 public:
  std::string name() const override { return "ProjectRemoveRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Project*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& project = static_cast<const Project&>(*call->rel());
    int input_fields = project.input(0)->row_type()->field_count();
    if (!RexUtil::IsIdentity(project.exprs(), input_fields)) return;
    // Identity projections may still rename fields; dropping them is safe
    // within the optimizer because consumers bind by index.
    call->TransformTo(project.input(0));
  }
};

// ---------------------------- ReduceExpressions ----------------------------

class ReduceExpressionsRule final : public RelOptRule {
 public:
  std::string name() const override { return "ReduceExpressionsRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           (dynamic_cast<const Filter*>(&node) != nullptr ||
            dynamic_cast<const Project*>(&node) != nullptr ||
            dynamic_cast<const Join*>(&node) != nullptr);
  }

  bool NeedsConcreteChildren() const override { return false; }

  void OnMatch(RelOptRuleCall* call) const override {
    const RexSimplifier& simplifier = call->context()->simplifier();
    if (const auto* filter = dynamic_cast<const Filter*>(call->rel().get())) {
      RexNodePtr simplified = simplifier.Simplify(filter->condition());
      if (RexUtil::IsLiteralTrue(simplified)) {
        call->TransformTo(filter->input(0));
        return;
      }
      if (RexUtil::IsLiteralFalse(simplified)) {
        call->TransformTo(
            LogicalValues::Create(filter->row_type(), {}));
        return;
      }
      if (!RexUtil::Equal(simplified, filter->condition())) {
        call->TransformTo(
            LogicalFilter::Create(filter->input(0), std::move(simplified)));
      }
      return;
    }
    if (const auto* project = dynamic_cast<const Project*>(call->rel().get())) {
      std::vector<RexNodePtr> simplified;
      simplified.reserve(project->exprs().size());
      bool changed = false;
      for (const RexNodePtr& expr : project->exprs()) {
        RexNodePtr s = simplifier.Simplify(expr);
        changed = changed || !RexUtil::Equal(s, expr);
        simplified.push_back(std::move(s));
      }
      if (!changed) return;
      std::vector<std::string> names;
      for (const RelDataTypeField& f : project->row_type()->fields()) {
        names.push_back(f.name);
      }
      call->TransformTo(LogicalProject::Create(project->input(0),
                                               std::move(simplified), names,
                                               call->type_factory()));
      return;
    }
    if (const auto* join = dynamic_cast<const Join*>(call->rel().get())) {
      RexNodePtr simplified = simplifier.Simplify(join->condition());
      if (!RexUtil::Equal(simplified, join->condition())) {
        call->TransformTo(LogicalJoin::Create(join->input(0), join->input(1),
                                              std::move(simplified),
                                              join->join_type(),
                                              call->type_factory()));
      }
    }
  }
};

// -------------------------------- PruneEmpty -------------------------------

bool IsEmptyValues(const RelNode& node) {
  const auto* values = dynamic_cast<const Values*>(&node);
  return values != nullptr && values->tuples().empty();
}

class PruneEmptyRule final : public RelOptRule {
 public:
  std::string name() const override { return "PruneEmptyRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    if (!IsLogicalConvention(node)) return false;
    if (const auto* sort = dynamic_cast<const Sort*>(&node)) {
      return sort->fetch() == 0 || true;  // fetch-0 handled in OnMatch too
    }
    return dynamic_cast<const Filter*>(&node) != nullptr ||
           dynamic_cast<const Project*>(&node) != nullptr ||
           dynamic_cast<const Join*>(&node) != nullptr ||
           dynamic_cast<const SetOp*>(&node) != nullptr ||
           dynamic_cast<const Aggregate*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const RelNodePtr& node = call->rel();
    if (const auto* sort = dynamic_cast<const Sort*>(node.get())) {
      if (sort->fetch() == 0 || IsEmptyValues(*sort->input(0))) {
        call->TransformTo(LogicalValues::Create(node->row_type(), {}));
      }
      return;
    }
    if (const auto* agg = dynamic_cast<const Aggregate*>(node.get())) {
      // Aggregate without group keys over empty input still yields one row,
      // so only prune grouped aggregates.
      if (!agg->group_keys().empty() && IsEmptyValues(*node->input(0))) {
        call->TransformTo(LogicalValues::Create(node->row_type(), {}));
      }
      return;
    }
    if (const auto* setop = dynamic_cast<const SetOp*>(node.get())) {
      if (setop->set_kind() == SetOp::Kind::kUnion) {
        std::vector<RelNodePtr> live;
        for (const RelNodePtr& input : setop->inputs()) {
          if (!IsEmptyValues(*input)) live.push_back(input);
        }
        if (live.size() == setop->inputs().size()) return;
        if (live.empty()) {
          call->TransformTo(LogicalValues::Create(node->row_type(), {}));
        } else if (live.size() == 1 && setop->all()) {
          call->TransformTo(live[0]);
        } else {
          call->TransformTo(LogicalSetOp::Create(std::move(live),
                                                 setop->set_kind(),
                                                 setop->all(),
                                                 call->type_factory()));
        }
      } else if (IsEmptyValues(*setop->input(0))) {
        // INTERSECT/MINUS with empty first input is empty.
        call->TransformTo(LogicalValues::Create(node->row_type(), {}));
      }
      return;
    }
    if (const auto* join = dynamic_cast<const Join*>(node.get())) {
      bool left_empty = IsEmptyValues(*join->input(0));
      bool right_empty = IsEmptyValues(*join->input(1));
      bool prune = false;
      switch (join->join_type()) {
        case JoinType::kInner:
        case JoinType::kSemi:
          prune = left_empty || right_empty;
          break;
        case JoinType::kLeft:
        case JoinType::kAnti:
          prune = left_empty;
          break;
        case JoinType::kRight:
          prune = right_empty;
          break;
        case JoinType::kFull:
          prune = left_empty && right_empty;
          break;
      }
      if (prune) {
        call->TransformTo(LogicalValues::Create(node->row_type(), {}));
      }
      return;
    }
    // Filter/Project over empty input.
    if (node->num_inputs() == 1 && IsEmptyValues(*node->input(0))) {
      call->TransformTo(LogicalValues::Create(node->row_type(), {}));
    }
  }
};

// -------------------------------- UnionMerge -------------------------------

class UnionMergeRule final : public RelOptRule {
 public:
  std::string name() const override { return "UnionMergeRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* setop = dynamic_cast<const SetOp*>(&node);
    return IsLogicalConvention(node) && setop != nullptr &&
           setop->set_kind() == SetOp::Kind::kUnion;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& setop = static_cast<const SetOp&>(*call->rel());
    std::vector<RelNodePtr> flattened;
    bool changed = false;
    for (const RelNodePtr& input : setop.inputs()) {
      const auto* child = dynamic_cast<const SetOp*>(input.get());
      if (child != nullptr && child->set_kind() == SetOp::Kind::kUnion &&
          child->all() == setop.all()) {
        changed = true;
        for (const RelNodePtr& grand : child->inputs()) {
          flattened.push_back(grand);
        }
      } else {
        flattened.push_back(input);
      }
    }
    if (!changed) return;
    call->TransformTo(LogicalSetOp::Create(std::move(flattened),
                                           SetOp::Kind::kUnion, setop.all(),
                                           call->type_factory()));
  }
};

// -------------------------------- SortRemove -------------------------------

class SortRemoveRule final : public RelOptRule {
 public:
  std::string name() const override { return "SortRemoveRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogicalConvention(node) &&
           dynamic_cast<const Sort*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& sort = static_cast<const Sort&>(*call->rel());
    if (sort.collation().empty() && sort.offset() == 0 && sort.fetch() < 0) {
      call->TransformTo(sort.input(0));
      return;
    }
    // Sort over sort: the inner ordering is overwritten (unless the inner
    // one limits rows, in which case it still matters).
    const auto* inner = dynamic_cast<const Sort*>(sort.input(0).get());
    if (inner != nullptr && inner->offset() == 0 && inner->fetch() < 0) {
      call->TransformTo(LogicalSort::Create(inner->input(0), sort.collation(),
                                            sort.offset(), sort.fetch()));
    }
  }
};

// ------------------------------ AggregateRemove ----------------------------

class AggregateRemoveRule final : public RelOptRule {
 public:
  std::string name() const override { return "AggregateRemoveRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* agg = dynamic_cast<const Aggregate*>(&node);
    return IsLogicalConvention(node) && agg != nullptr &&
           agg->agg_calls().empty() && !agg->group_keys().empty();
  }

  bool NeedsConcreteChildren() const override { return false; }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& agg = static_cast<const Aggregate&>(*call->rel());
    // Metadata-driven: the aggregate is a no-op only if the keys are
    // already unique in the input.
    if (!call->metadata()->AreColumnsUnique(agg.input(0), agg.group_keys())) {
      return;
    }
    const RexBuilder& rex = call->rex_builder();
    std::vector<RexNodePtr> exprs;
    std::vector<std::string> names;
    for (size_t i = 0; i < agg.group_keys().size(); ++i) {
      int key = agg.group_keys()[i];
      exprs.push_back(rex.MakeInputRef(agg.input(0)->row_type(), key));
      names.push_back(agg.row_type()->fields()[i].name);
    }
    call->TransformTo(LogicalProject::Create(agg.input(0), std::move(exprs),
                                             names, call->type_factory()));
  }
};

// ------------------------------- JoinCommute -------------------------------

class JoinCommuteRule final : public RelOptRule {
 public:
  std::string name() const override { return "JoinCommuteRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* join = dynamic_cast<const Join*>(&node);
    return IsLogicalConvention(node) && join != nullptr &&
           join->join_type() == JoinType::kInner;
  }

  bool NeedsConcreteChildren() const override { return false; }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& join = static_cast<const Join&>(*call->rel());
    int left_count = join.input(0)->row_type()->field_count();
    int right_count = join.input(1)->row_type()->field_count();
    // Remap condition refs into the swapped field space.
    std::vector<int> mapping(
        static_cast<size_t>(left_count + right_count));
    for (int i = 0; i < left_count; ++i) {
      mapping[static_cast<size_t>(i)] = i + right_count;
    }
    for (int i = 0; i < right_count; ++i) {
      mapping[static_cast<size_t>(left_count + i)] = i;
    }
    RexNodePtr swapped_cond = RexUtil::RemapRefs(join.condition(), mapping);
    RelNodePtr swapped = LogicalJoin::Create(join.input(1), join.input(0),
                                             std::move(swapped_cond),
                                             JoinType::kInner,
                                             call->type_factory());
    // Restore the original field order with a projection.
    const RexBuilder& rex = call->rex_builder();
    std::vector<RexNodePtr> exprs;
    std::vector<std::string> names;
    const auto& fields = join.row_type()->fields();
    for (int i = 0; i < left_count; ++i) {
      exprs.push_back(rex.MakeInputRef(swapped->row_type(), right_count + i));
      names.push_back(fields[static_cast<size_t>(i)].name);
    }
    for (int i = 0; i < right_count; ++i) {
      exprs.push_back(rex.MakeInputRef(swapped->row_type(), i));
      names.push_back(fields[static_cast<size_t>(left_count + i)].name);
    }
    call->TransformTo(LogicalProject::Create(std::move(swapped),
                                             std::move(exprs), names,
                                             call->type_factory()));
  }
};

// ------------------------------ JoinAssociate ------------------------------

class JoinAssociateRule final : public RelOptRule {
 public:
  std::string name() const override { return "JoinAssociateRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* join = dynamic_cast<const Join*>(&node);
    return IsLogicalConvention(node) && join != nullptr &&
           join->join_type() == JoinType::kInner;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    if (i != 0) return true;
    const auto* join = dynamic_cast<const Join*>(&child);
    return join != nullptr && join->join_type() == JoinType::kInner;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& top = static_cast<const Join&>(*call->rel());
    const auto* bottom = dynamic_cast<const Join*>(top.input(0).get());
    if (bottom == nullptr || bottom->join_type() != JoinType::kInner) return;

    const RelNodePtr& a = bottom->input(0);
    const RelNodePtr& b = bottom->input(1);
    const RelNodePtr& c = top.input(1);
    int a_count = a->row_type()->field_count();
    int b_count = b->row_type()->field_count();
    int c_count = c->row_type()->field_count();
    int total = a_count + b_count + c_count;

    // Conjuncts of both conditions, all in (a, b, c) field space.
    std::vector<RexNodePtr> all;
    for (const RexNodePtr& conj : RexUtil::FlattenAnd(bottom->condition())) {
      all.push_back(conj);
    }
    for (const RexNodePtr& conj : RexUtil::FlattenAnd(top.condition())) {
      all.push_back(conj);
    }
    // Split: conjuncts over (b, c) only go to the new bottom join; anything
    // touching `a` stays on top.
    std::vector<RexNodePtr> bottom_preds;
    std::vector<RexNodePtr> top_preds;
    for (const RexNodePtr& conj : all) {
      if (RexUtil::AllRefsInRange(conj, a_count, total)) {
        bottom_preds.push_back(RexUtil::ShiftRefs(conj, -a_count));
      } else {
        top_preds.push_back(conj);
      }
    }
    const RexBuilder& rex = call->rex_builder();
    RelNodePtr bc = LogicalJoin::Create(b, c,
                                        rex.MakeAnd(std::move(bottom_preds)),
                                        JoinType::kInner,
                                        call->type_factory());
    call->TransformTo(LogicalJoin::Create(a, std::move(bc),
                                          rex.MakeAnd(std::move(top_preds)),
                                          JoinType::kInner,
                                          call->type_factory()));
  }
};

}  // namespace

RelOptRulePtr MakeFilterIntoJoinRule() {
  return std::make_shared<FilterIntoJoinRule>();
}
RelOptRulePtr MakeFilterMergeRule() {
  return std::make_shared<FilterMergeRule>();
}
RelOptRulePtr MakeFilterProjectTransposeRule() {
  return std::make_shared<FilterProjectTransposeRule>();
}
RelOptRulePtr MakeFilterAggregateTransposeRule() {
  return std::make_shared<FilterAggregateTransposeRule>();
}
RelOptRulePtr MakeFilterSetOpTransposeRule() {
  return std::make_shared<FilterSetOpTransposeRule>();
}
RelOptRulePtr MakeProjectMergeRule() {
  return std::make_shared<ProjectMergeRule>();
}
RelOptRulePtr MakeProjectRemoveRule() {
  return std::make_shared<ProjectRemoveRule>();
}
RelOptRulePtr MakeReduceExpressionsRule() {
  return std::make_shared<ReduceExpressionsRule>();
}
RelOptRulePtr MakePruneEmptyRule() {
  return std::make_shared<PruneEmptyRule>();
}
RelOptRulePtr MakeUnionMergeRule() {
  return std::make_shared<UnionMergeRule>();
}
RelOptRulePtr MakeSortRemoveRule() {
  return std::make_shared<SortRemoveRule>();
}
RelOptRulePtr MakeAggregateRemoveRule() {
  return std::make_shared<AggregateRemoveRule>();
}
RelOptRulePtr MakeJoinCommuteRule() {
  return std::make_shared<JoinCommuteRule>();
}
RelOptRulePtr MakeJoinAssociateRule() {
  return std::make_shared<JoinAssociateRule>();
}

std::vector<RelOptRulePtr> StandardLogicalRules() {
  return {
      MakeReduceExpressionsRule(),
      MakeFilterMergeRule(),
      MakeFilterProjectTransposeRule(),
      MakeFilterAggregateTransposeRule(),
      MakeFilterSetOpTransposeRule(),
      MakeFilterIntoJoinRule(),
      MakeProjectMergeRule(),
      MakeProjectRemoveRule(),
      MakeUnionMergeRule(),
      MakeSortRemoveRule(),
      MakeAggregateRemoveRule(),
      MakePruneEmptyRule(),
  };
}

std::vector<RelOptRulePtr> JoinReorderRules() {
  return {MakeJoinCommuteRule(), MakeJoinAssociateRule()};
}

}  // namespace calcite
