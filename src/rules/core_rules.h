#ifndef CALCITE_RULES_CORE_RULES_H_
#define CALCITE_RULES_CORE_RULES_H_

#include <vector>

#include "plan/rule.h"

namespace calcite {

/// The built-in logical transformation rules (§6). Calcite ships several
/// hundred; this library implements a representative, fully-functional set
/// covering the classes the paper discusses: predicate push-down
/// (FilterIntoJoinRule — Figure 4), operator merging and transposition,
/// expression reduction (constant folding), empty-input pruning, and
/// join-order exploration.

/// Figure 4's rule: "matches a filter node with a join node as a [child] and
/// checks if the filter can be performed by the join". Conjuncts referencing
/// only the left (right) side move below the join; cross-side conjuncts join
/// the join condition (inner joins).
RelOptRulePtr MakeFilterIntoJoinRule();

/// Filter(Filter(x)) => Filter(x, c1 AND c2).
RelOptRulePtr MakeFilterMergeRule();

/// Filter(Project(x)) => Project(Filter(x)) — pushes predicates through
/// projections by inlining the projected expressions.
RelOptRulePtr MakeFilterProjectTransposeRule();

/// Filter(Aggregate(x)) => Aggregate(Filter(x)) when the predicate only
/// references group keys.
RelOptRulePtr MakeFilterAggregateTransposeRule();

/// Filter(Union(a, b, ...)) => Union(Filter(a), Filter(b), ...).
RelOptRulePtr MakeFilterSetOpTransposeRule();

/// Project(Project(x)) => Project(x) with composed expressions.
RelOptRulePtr MakeProjectMergeRule();

/// Removes identity projections.
RelOptRulePtr MakeProjectRemoveRule();

/// Constant-folds and simplifies expressions in Filter/Project/Join;
/// replaces always-false filters with empty Values.
RelOptRulePtr MakeReduceExpressionsRule();

/// Collapses operators over empty inputs (empty Values propagation) and
/// LIMIT 0.
RelOptRulePtr MakePruneEmptyRule();

/// Union(Union(a, b), c) => Union(a, b, c) for same ALL mode.
RelOptRulePtr MakeUnionMergeRule();

/// Removes sorts with no collation and no OFFSET/FETCH, and redundant
/// sorts directly under another sort.
RelOptRulePtr MakeSortRemoveRule();

/// Removes aggregates whose group keys are already unique and that compute
/// no aggregate functions (uses the AreColumnsUnique metadata — an example
/// of "providing information to the rules while they are being applied").
RelOptRulePtr MakeAggregateRemoveRule();

/// Join(a, b) => Join(b, a) with a restoring projection (inner joins).
RelOptRulePtr MakeJoinCommuteRule();

/// Join(Join(a, b), c) => Join(a, Join(b, c)) when the predicates allow
/// (inner joins). Together with commute, spans the join-order space the
/// dynamic-programming planner explores.
RelOptRulePtr MakeJoinAssociateRule();

/// The standard, always-terminating logical rewrite set used by the
/// heuristic phase (no commute/associate).
std::vector<RelOptRulePtr> StandardLogicalRules();

/// Join-order exploration rules for the cost-based phase.
std::vector<RelOptRulePtr> JoinReorderRules();

}  // namespace calcite

#endif  // CALCITE_RULES_CORE_RULES_H_
