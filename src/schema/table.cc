#include "schema/table.h"

#include <algorithm>
#include <memory>

namespace calcite {

namespace {

/// Lazily materializes scan units [unit, end) one at a time, filtering and
/// re-chunking into batches — bounded memory (one unit resident) for the
/// unit-restricted OpenScan default.
RowBatchPuller PullUnits(const Table* table, size_t begin, size_t end,
                         ScanPredicateList predicates, size_t batch_size) {
  struct State {
    size_t unit;
    std::vector<Row> rows;
    size_t pos = 0;
  };
  auto state = std::make_shared<State>();
  state->unit = begin;
  auto preds = std::make_shared<ScanPredicateList>(std::move(predicates));
  return [table, state, end, preds, batch_size]() -> Result<RowBatch> {
    RowBatch out;
    while (out.size() < batch_size) {
      if (state->pos >= state->rows.size()) {
        if (state->unit >= end) break;
        auto rows = table->ScanUnitRows(state->unit++);
        if (!rows.ok()) return rows.status();
        state->rows = std::move(rows).value();
        state->pos = 0;
        continue;
      }
      Row& row = state->rows[state->pos++];
      if (ScanPredicatesMatch(*preds, row)) out.push_back(std::move(row));
    }
    return out;
  };
}

}  // namespace

Result<RowBatchPuller> Table::OpenScan(const ScanSpec& raw_spec) const {
  ScanSpec spec = raw_spec.Normalized();
  RowBatchPuller puller;
  if (spec.has_unit_range()) {
    size_t count = ScanUnitCount();
    if (count == 0) {
      return Status::Internal("table has no paged scan surface");
    }
    if (spec.unit_begin > count) {
      return Status::Internal("scan unit range out of bounds");
    }
    puller = PullUnits(this, spec.unit_begin, std::min(spec.unit_end, count),
                       std::move(spec.predicates), spec.batch_size);
  } else {
    auto base = ScanBatchedFiltered(spec.batch_size, spec.predicates);
    if (!base.ok()) return base.status();
    puller = std::move(base).value();
  }
  return ApplyScanSpecDecorators(std::move(puller), spec);
}

}  // namespace calcite
