#ifndef CALCITE_SCHEMA_TABLE_H_
#define CALCITE_SCHEMA_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/column_batch.h"
#include "exec/row_batch.h"
#include "plan/traits.h"
#include "schema/table_stats.h"
#include "type/rel_data_type.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// A table known to the framework. Adapters implement this to describe the
/// data in their backend (Figure 3: "the data itself is physically accessed
/// via tables"). The minimal contract is a row type plus Scan() — "if an
/// adapter implements the table scan operator, the Calcite optimizer is then
/// able to use client-side operators ... to execute arbitrary SQL queries".
class Table {
 public:
  virtual ~Table() = default;

  /// The relational row type of this table.
  virtual RelDataTypePtr GetRowType(const TypeFactory& factory) const = 0;

  /// Optimizer statistics (schema/table_stats.h): declarative facts from
  /// the adapter plus per-column ANALYZE results when available. Default:
  /// everything unknown.
  virtual TableStats GetStatistic() const { return TableStats{}; }

  /// Full scan of the table contents, in storage order. This is the access
  /// path the enumerable convention uses.
  virtual Result<std::vector<Row>> Scan() const = 0;

  /// Batched scan: yields the table contents as RowBatch chunks of at most
  /// `batch_size` rows. The default materializes through Scan() and
  /// re-chunks; tables that physically hold rows override it to slice
  /// batches out lazily without the intermediate full copy. The returned
  /// puller captures `this` — the caller (the scan operator) must keep the
  /// table alive while pulling, which EnumerableTableScan does by holding
  /// its TablePtr in the pipeline closure.
  virtual Result<RowBatchPuller> ScanBatched(size_t batch_size) const {
    auto rows = Scan();
    if (!rows.ok()) return rows.status();
    return ChunkRows(std::move(rows).value(), batch_size);
  }

  /// Batched scan with leaf-level predicate pushdown: yields only the rows
  /// matching every ScanPredicate (simple `column <op> literal` / NULL-test
  /// shapes — see exec/row_batch.h), chunked like ScanBatched. Tables that
  /// physically hold rows override this to test each stored row *before*
  /// copying it into a batch, so filtered-out rows are never materialized;
  /// the default filters after the generic batched scan, which is
  /// semantically identical. Same lifetime contract as ScanBatched.
  virtual Result<RowBatchPuller> ScanBatchedFiltered(
      size_t batch_size, ScanPredicateList predicates) const {
    if (predicates.empty()) return ScanBatched(batch_size);
    auto rows = Scan();
    if (!rows.ok()) return rows.status();
    std::vector<Row> kept;
    for (Row& row : rows.value()) {
      if (ScanPredicatesMatch(predicates, row)) kept.push_back(std::move(row));
    }
    return ChunkRows(std::move(kept), batch_size);
  }

  /// The unified scan entry point: one ScanSpec (exec/row_batch.h) carries
  /// predicates, projection hint, ANALYZE sample fraction, access-path hint
  /// and scan-unit range, so per-scan features do not each grow a virtual.
  /// The default routes through the narrower virtuals — ScanUnitRows for a
  /// unit-restricted spec, ScanBatchedFiltered otherwise — then applies the
  /// access-path-independent decorators (sampling, projection); tables with
  /// several physical access paths (DiskTable) override it to resolve
  /// spec.access_path themselves. Same lifetime contract as ScanBatched.
  virtual Result<RowBatchPuller> OpenScan(const ScanSpec& spec) const;

  /// The table's rows as stable in-memory storage, or nullptr when the
  /// table does not physically hold materialized rows. This is the access
  /// path of the morsel-driven parallel executor (src/exec/parallel/):
  /// workers claim row-range morsels of the returned vector directly, with
  /// no intermediate copy. The storage must stay alive and unchanged while
  /// scans are in flight (same pinning contract as ScanBatched); tables
  /// that return nullptr are materialized through Scan() once before
  /// parallel workers start.
  virtual const std::vector<Row>* MaterializedRows() const { return nullptr; }

  /// Paged scan surface for tables whose rows live out-of-core and so have
  /// no MaterializedRows(): the table partitions itself into independently
  /// scannable units — for a disk table, a run of heap pages — and the
  /// morsel-driven parallel executor claims whole units as morsels, each
  /// worker materializing only the unit it claimed (bounded memory instead
  /// of a whole-table copy before workers start). 0 (the default) means no
  /// paged surface; the executor then falls back to MaterializedRows() or a
  /// one-shot Scan(). Units must tile the table: concatenating
  /// ScanUnitRows(0..ScanUnitCount()-1) yields exactly Scan()'s rows.
  virtual size_t ScanUnitCount() const { return 0; }

  /// Materializes one scan unit. Thread-safe for distinct units (parallel
  /// workers call it concurrently); only valid for unit < ScanUnitCount().
  virtual Result<std::vector<Row>> ScanUnitRows(size_t unit) const {
    (void)unit;
    return Status::Internal("table has no paged scan surface");
  }

  /// The table's contents decomposed into column-major typed storage
  /// (exec/column_batch.h), or nullptr when the table cannot provide it.
  /// This is the access path of the columnar hot path: scans slice
  /// zero-copy column views out of the returned decomposition and evaluate
  /// pushed predicates on the raw columns before any row materialization.
  /// Tables that physically hold rows build the decomposition lazily on
  /// first use and cache it (ColumnarCache); the shared_ptr keeps it alive
  /// for in-flight scans even if the cache is invalidated by a mutation.
  virtual TableColumnsPtr MaterializedColumns(const TypeFactory&) const {
    return nullptr;
  }

  /// True if this table is a stream (time-ordered, unbounded in principle;
  /// §7.2). STREAM queries are only legal on streaming tables.
  virtual bool IsStream() const { return false; }
};

using TablePtr = std::shared_ptr<Table>;

/// A straightforward in-memory table: a row type plus a vector of rows.
/// Used by tests, examples, and as the backing store of the simulated
/// adapters.
class MemTable : public Table {
 public:
  MemTable(RelDataTypePtr row_type, std::vector<Row> rows)
      : row_type_(std::move(row_type)), rows_(std::move(rows)) {}

  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }

  TableStats GetStatistic() const override {
    TableStats stat = statistic_;
    if (!stat.row_count.has_value()) {
      stat.row_count = static_cast<double>(rows_.size());
    }
    return stat;
  }

  Result<std::vector<Row>> Scan() const override { return rows_; }

  Result<RowBatchPuller> ScanBatched(size_t batch_size) const override {
    return SliceRows(rows_, batch_size);
  }

  /// Pushed predicates run against the stored rows directly; rows that fail
  /// are never copied.
  Result<RowBatchPuller> ScanBatchedFiltered(
      size_t batch_size, ScanPredicateList predicates) const override {
    return FilterSliceRows(rows_, batch_size, std::move(predicates));
  }

  const std::vector<Row>* MaterializedRows() const override { return &rows_; }

  TableColumnsPtr MaterializedColumns(const TypeFactory&) const override {
    return columnar_.Get(rows_, row_type_);
  }

  /// Mutable access for test/bench setup. Conservatively drops the cached
  /// columnar decomposition — the caller may mutate the rows through the
  /// returned reference.
  std::vector<Row>& rows() {
    columnar_.Invalidate();
    return rows_;
  }
  void set_statistic(TableStats statistic) { statistic_ = std::move(statistic); }

 private:
  RelDataTypePtr row_type_;
  std::vector<Row> rows_;
  TableStats statistic_;
  ColumnarCache columnar_;
};

/// A view: a table defined by a SQL query over other tables. The validator
/// expands views in-place during name resolution (§7.1 uses views to expose
/// semi-structured data relationally).
class ViewTable : public Table {
 public:
  ViewTable(std::string sql, RelDataTypePtr row_type)
      : sql_(std::move(sql)), row_type_(std::move(row_type)) {}

  const std::string& sql() const { return sql_; }

  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }

  Result<std::vector<Row>> Scan() const override {
    return Status::Internal(
        "views are expanded during validation and never scanned directly");
  }

 private:
  std::string sql_;
  RelDataTypePtr row_type_;
};

}  // namespace calcite

#endif  // CALCITE_SCHEMA_TABLE_H_
