#ifndef CALCITE_SCHEMA_SCHEMA_H_
#define CALCITE_SCHEMA_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "schema/table.h"
#include "util/status.h"

namespace calcite {

class RelOptRule;
using RelOptRulePtr = std::shared_ptr<const RelOptRule>;

/// A namespace of tables, possibly nested in a parent schema (Figure 3: "a
/// schema is the definition of the data found in the model"). Adapters
/// produce Schema instances through their schema factories; a schema may
/// also advertise planner rules ("the adapter may define a set of rules that
/// are added to the planner") and the convention its tables scan in.
class Schema {
 public:
  virtual ~Schema() = default;

  /// Case-insensitive table lookup; nullptr when absent.
  TablePtr GetTable(const std::string& name) const;

  /// Case-insensitive subschema lookup; nullptr when absent.
  std::shared_ptr<Schema> GetSubSchema(const std::string& name) const;

  /// Registers a table under `name`.
  void AddTable(const std::string& name, TablePtr table);

  /// Registers a nested schema under `name`.
  void AddSubSchema(const std::string& name, std::shared_ptr<Schema> schema);

  /// Names of all tables in this schema, sorted.
  std::vector<std::string> TableNames() const;

  /// Names of all subschemas, sorted.
  std::vector<std::string> SubSchemaNames() const;

  /// Planner rules this adapter contributes (push-down/converter rules).
  virtual std::vector<RelOptRulePtr> AdapterRules() const { return {}; }

  /// The convention table scans of this schema start in. Plain in-memory
  /// schemas scan directly in the enumerable convention; adapter schemas
  /// return their backend convention.
  virtual const Convention* ScanConvention() const;

 private:
  std::map<std::string, TablePtr> tables_;
  std::map<std::string, std::shared_ptr<Schema>> sub_schemas_;
};

using SchemaPtr = std::shared_ptr<Schema>;

/// Resolves a possibly-qualified table path ("schema.table" or "table")
/// starting from `root`. On success also reports the schema that owned the
/// table (so the converter can pick up its convention and rules).
struct ResolvedTable {
  TablePtr table;
  std::shared_ptr<Schema> schema;
  std::vector<std::string> qualified_name;
};
Result<ResolvedTable> ResolveTable(const SchemaPtr& root,
                                   const std::vector<std::string>& path);

}  // namespace calcite

#endif  // CALCITE_SCHEMA_SCHEMA_H_
