#include "schema/schema.h"

#include "util/string_utils.h"

namespace calcite {

TablePtr Schema::GetTable(const std::string& name) const {
  for (const auto& [key, table] : tables_) {
    if (EqualsIgnoreCase(key, name)) return table;
  }
  return nullptr;
}

std::shared_ptr<Schema> Schema::GetSubSchema(const std::string& name) const {
  for (const auto& [key, schema] : sub_schemas_) {
    if (EqualsIgnoreCase(key, name)) return schema;
  }
  return nullptr;
}

void Schema::AddTable(const std::string& name, TablePtr table) {
  tables_[name] = std::move(table);
}

void Schema::AddSubSchema(const std::string& name,
                          std::shared_ptr<Schema> schema) {
  sub_schemas_[name] = std::move(schema);
}

std::vector<std::string> Schema::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(key);
  return names;
}

std::vector<std::string> Schema::SubSchemaNames() const {
  std::vector<std::string> names;
  names.reserve(sub_schemas_.size());
  for (const auto& [key, schema] : sub_schemas_) names.push_back(key);
  return names;
}

const Convention* Schema::ScanConvention() const {
  return Convention::Enumerable();
}

Result<ResolvedTable> ResolveTable(const SchemaPtr& root,
                                   const std::vector<std::string>& path) {
  if (path.empty()) {
    return Status::InvalidArgument("empty table path");
  }
  std::shared_ptr<Schema> schema = root;
  std::vector<std::string> qualified;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    std::shared_ptr<Schema> next = schema->GetSubSchema(path[i]);
    if (next == nullptr) {
      return Status::NotFound("schema '" + path[i] + "' not found");
    }
    qualified.push_back(path[i]);
    schema = std::move(next);
  }
  TablePtr table = schema->GetTable(path.back());
  if (table == nullptr) {
    // Try a one-level search through subschemas for unqualified names.
    if (path.size() == 1) {
      for (const std::string& sub_name : root->SubSchemaNames()) {
        std::shared_ptr<Schema> sub = root->GetSubSchema(sub_name);
        TablePtr t = sub->GetTable(path.back());
        if (t != nullptr) {
          return ResolvedTable{t, sub, {sub_name, path.back()}};
        }
      }
    }
    return Status::NotFound("table '" + path.back() + "' not found");
  }
  qualified.push_back(path.back());
  return ResolvedTable{std::move(table), std::move(schema),
                       std::move(qualified)};
}

}  // namespace calcite
