#ifndef CALCITE_SCHEMA_MODEL_H_
#define CALCITE_SCHEMA_MODEL_H_

#include <functional>
#include <map>
#include <string>

#include "schema/schema.h"
#include "util/json.h"
#include "util/status.h"

namespace calcite {

/// A schema factory: builds an adapter schema from its model operand
/// (Figure 3: model → schema factory → schema).
using SchemaFactoryFn = std::function<Result<SchemaPtr>(const JsonValue&)>;

/// Loads a JSON model file describing the catalog — the adapter "model" of
/// Figure 3, mirroring Calcite's model.json:
///
///   {
///     "defaultSchema": "sales",
///     "schemas": [
///       {"name": "sales", "factory": "csv",
///        "operand": {"directory": "data/sales"}},
///       {"name": "hr", "factory": "mem", "operand": {...}}
///     ]
///   }
///
/// `factories` maps factory names to SchemaFactoryFn; the built-in "csv"
/// factory is always available.
Result<SchemaPtr> LoadModel(
    const std::string& json_text,
    const std::map<std::string, SchemaFactoryFn>& factories = {});

}  // namespace calcite

#endif  // CALCITE_SCHEMA_MODEL_H_
