#include "schema/model.h"

#include "adapters/csv/csv_adapter.h"

namespace calcite {

Result<SchemaPtr> LoadModel(
    const std::string& json_text,
    const std::map<std::string, SchemaFactoryFn>& factories) {
  auto model = ParseJson(json_text);
  if (!model.ok()) return model.status();
  if (!model.value().is_object()) {
    return Status::InvalidArgument("model must be a JSON object");
  }
  auto root = std::make_shared<Schema>();
  const JsonValue* schemas = model.value().Get("schemas");
  if (schemas == nullptr || !schemas->is_array()) {
    return Status::InvalidArgument("model requires a 'schemas' array");
  }
  for (const JsonValue& spec : schemas->as_array()) {
    const JsonValue* name = spec.Get("name");
    const JsonValue* factory = spec.Get("factory");
    if (name == nullptr || !name->is_string() || factory == nullptr ||
        !factory->is_string()) {
      return Status::InvalidArgument(
          "each schema needs string 'name' and 'factory'");
    }
    const JsonValue* operand = spec.Get("operand");
    JsonValue empty = JsonValue::Object();
    const JsonValue& op = operand != nullptr ? *operand : empty;

    Result<SchemaPtr> schema = Status::NotFound("");
    if (auto it = factories.find(factory->as_string()); it != factories.end()) {
      schema = it->second(op);
    } else if (factory->as_string() == "csv") {
      const JsonValue* dir = op.Get("directory");
      if (dir == nullptr || !dir->is_string()) {
        return Status::InvalidArgument(
            "csv factory requires operand.directory");
      }
      schema = CsvSchemaFactory(dir->as_string());
    } else {
      return Status::NotFound("unknown schema factory '" +
                              factory->as_string() + "'");
    }
    if (!schema.ok()) return schema;
    root->AddSubSchema(name->as_string(), schema.value());
  }
  return SchemaPtr(root);
}

}  // namespace calcite
