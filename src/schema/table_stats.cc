#include "schema/table_stats.h"

#include <algorithm>
#include <cmath>

namespace calcite {

bool TableStats::IsKey(const std::vector<int>& columns) const {
  for (const std::vector<int>& key : unique_keys) {
    // `columns` is a key if it contains some declared unique key.
    bool contains_all = true;
    for (int k : key) {
      bool found = false;
      for (int c : columns) {
        if (c == k) {
          found = true;
          break;
        }
      }
      if (!found) {
        contains_all = false;
        break;
      }
    }
    if (contains_all && !key.empty()) return true;
  }
  return false;
}

double Histogram::FractionBelow(double x) const {
  if (buckets.empty() || std::isnan(x)) return 0.0;
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  // hi > lo here (otherwise x would have hit one of the clamps above).
  const double width = (hi - lo) / static_cast<double>(buckets.size());
  double below = 0.0;
  double bucket_lo = lo;
  for (double fraction : buckets) {
    double bucket_hi = bucket_lo + width;
    if (x >= bucket_hi) {
      below += fraction;
    } else {
      // Probe lands inside this bucket: linear interpolation.
      if (width > 0.0) below += fraction * (x - bucket_lo) / width;
      break;
    }
    bucket_lo = bucket_hi;
  }
  return std::clamp(below, 0.0, 1.0);
}

namespace {

std::optional<double> NumericValue(const Value& v) {
  if (v.IsNull() || !v.is_numeric()) return std::nullopt;
  return v.AsDouble();
}

/// Fraction of non-NULL values equal to the literal: uniformity over the
/// distinct values, zeroed when the literal falls outside [min, max].
std::optional<double> EqFractionOfNonNull(const ColumnStats& stats,
                                          const Value& literal) {
  if (!stats.min.IsNull() && literal.Compare(stats.min) < 0) return 0.0;
  if (!stats.max.IsNull() && literal.Compare(stats.max) > 0) return 0.0;
  if (stats.ndv <= 0.0) return std::nullopt;
  return 1.0 / std::max(stats.ndv, 1.0);
}

/// Fraction of non-NULL values strictly below `x`: histogram when present,
/// uniform interpolation over [min, max] otherwise.
std::optional<double> BelowFractionOfNonNull(const ColumnStats& stats,
                                             double x) {
  if (!stats.histogram.empty()) return stats.histogram.FractionBelow(x);
  auto min = NumericValue(stats.min);
  auto max = NumericValue(stats.max);
  if (!min || !max) return std::nullopt;
  if (x <= *min) return 0.0;
  if (x >= *max) return 1.0;
  if (*max <= *min) return 0.0;
  return (x - *min) / (*max - *min);
}

}  // namespace

std::optional<double> EstimatePredicateSelectivity(const ColumnStats& stats,
                                                   const ScanPredicate& pred) {
  if (!stats.analyzed) return std::nullopt;
  const double not_null = std::clamp(1.0 - stats.null_fraction, 0.0, 1.0);
  switch (pred.kind) {
    case ScanPredicate::Kind::kIsNull:
      return std::clamp(stats.null_fraction, 0.0, 1.0);
    case ScanPredicate::Kind::kIsNotNull:
      return not_null;
    default:
      break;
  }
  // Comparisons: NULL never matches (on either side).
  if (pred.literal.IsNull()) return 0.0;
  if (pred.kind == ScanPredicate::Kind::kEquals ||
      pred.kind == ScanPredicate::Kind::kNotEquals) {
    auto eq = EqFractionOfNonNull(stats, pred.literal);
    if (!eq) return std::nullopt;
    double sel = pred.kind == ScanPredicate::Kind::kEquals ? *eq : 1.0 - *eq;
    return std::clamp(sel * not_null, 0.0, 1.0);
  }
  // Range comparisons need a numeric probe point.
  auto probe = NumericValue(pred.literal);
  if (!probe) return std::nullopt;
  auto below = BelowFractionOfNonNull(stats, *probe);
  if (!below) return std::nullopt;
  // Continuous interpretation: the mass exactly *at* the probe point is one
  // distinct value's worth, which distinguishes < from <= on discrete data.
  double at = 0.0;
  if (auto eq = EqFractionOfNonNull(stats, pred.literal)) at = *eq;
  double fraction = 0.0;
  switch (pred.kind) {
    case ScanPredicate::Kind::kLessThan:
      fraction = *below;
      break;
    case ScanPredicate::Kind::kLessThanOrEqual:
      fraction = *below + at;
      break;
    case ScanPredicate::Kind::kGreaterThan:
      fraction = 1.0 - *below - at;
      break;
    case ScanPredicate::Kind::kGreaterThanOrEqual:
      fraction = 1.0 - *below;
      break;
    default:
      return std::nullopt;
  }
  return std::clamp(fraction * not_null, 0.0, 1.0);
}

}  // namespace calcite
