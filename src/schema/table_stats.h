#ifndef CALCITE_SCHEMA_TABLE_STATS_H_
#define CALCITE_SCHEMA_TABLE_STATS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "exec/row_batch.h"
#include "plan/traits.h"
#include "type/value.h"

namespace calcite {

/// Small equi-width histogram over a column's non-NULL numeric values,
/// built by ANALYZE (schema/analyze.h). Buckets hold *fractions* of the
/// observed non-NULL values (they sum to ~1), so a histogram built from a
/// sample estimates the full table directly. Values are treated as a
/// continuous distribution: range selectivity interpolates linearly within
/// the bucket containing the probe, which is exact for uniform data and a
/// bounded-error approximation otherwise.
struct Histogram {
  /// Inclusive value range covered by the buckets; each bucket spans
  /// (hi - lo) / buckets.size().
  double lo = 0.0;
  double hi = 0.0;
  /// Fraction of observed non-NULL values per bucket.
  std::vector<double> buckets;

  bool empty() const { return buckets.empty(); }

  /// Estimated fraction of non-NULL values strictly below `x` (continuous
  /// interpretation, so P(v < x) == P(v <= x)). Clamps to [0, 1]; 0 for an
  /// empty histogram.
  double FractionBelow(double x) const;
};

/// Per-column statistics collected by ANALYZE. `analyzed()` distinguishes
/// "never analyzed" (all defaults) from a genuinely empty/all-NULL column.
struct ColumnStats {
  /// Minimum / maximum non-NULL value seen; NULL when the column had no
  /// non-NULL values (or the column was not analyzed).
  Value min;
  Value max;
  /// Fraction of rows where this column is NULL.
  double null_fraction = 0.0;
  /// Estimated number of distinct non-NULL values (KMV sketch; exact for
  /// low-cardinality columns). 0 means unknown.
  double ndv = 0.0;
  /// Equi-width histogram over non-NULL numeric values; empty for
  /// non-numeric columns or when not analyzed.
  Histogram histogram;
  /// True once ANALYZE has populated this entry.
  bool analyzed = false;
};

/// Statistics a table exposes to the optimizer's metadata providers (§6:
/// "for many of them, it is sufficient to provide statistics about their
/// input data, e.g., number of rows and size of a table, whether values for
/// a given column are unique etc., and Calcite will do the rest").
///
/// The declarative fields (unique_keys, collations, monotonic_columns) are
/// supplied by adapters; row_count and the per-column entries are either
/// adapter-supplied or collected by ANALYZE (schema/analyze.h). `version`
/// stamps the stats format for persistence (DiskTable catalog pages): 0
/// means never analyzed, kFormatVersion is what ANALYZE writes today, and a
/// reader seeing a newer version than it understands treats the table as
/// unanalyzed rather than misreading the payload.
struct TableStats {
  /// Stats format version written by this build's ANALYZE.
  static constexpr uint32_t kFormatVersion = 1;

  /// Estimated row count; nullopt means unknown (the default provider then
  /// assumes a fixed guess).
  std::optional<double> row_count;
  /// Sets of columns that form unique keys.
  std::vector<std::vector<int>> unique_keys;
  /// Orderings the physical data is known to satisfy (e.g. Cassandra rows
  /// sorted by clustering key within a partition).
  std::vector<RelCollation> collations;
  /// Columns known to be monotonically increasing across the scan — e.g. a
  /// stream's rowtime. Required by streaming window validation (§7.2).
  std::vector<int> monotonic_columns;

  /// Per-column ANALYZE results, indexed by column ordinal; empty until
  /// ANALYZE runs.
  std::vector<ColumnStats> columns;
  /// Stats format version these column entries were collected under
  /// (0 = never analyzed).
  uint32_t version = 0;

  bool IsKey(const std::vector<int>& columns) const;

  /// True once per-column statistics exist.
  bool analyzed() const { return version != 0 && !columns.empty(); }

  /// The stats for column `i`, or nullptr when not analyzed / out of range.
  const ColumnStats* column(int i) const {
    if (i < 0 || static_cast<size_t>(i) >= columns.size()) return nullptr;
    const ColumnStats& cs = columns[static_cast<size_t>(i)];
    return cs.analyzed ? &cs : nullptr;
  }
};

/// Historical name: the paper-facing `Statistic` of Table::GetStatistic
/// grew into the versioned TableStats; the alias keeps every adapter
/// override and test spelling valid.
using Statistic = TableStats;

/// Estimated fraction of a table's rows satisfying `pred`, from the stats
/// of the predicate's column. nullopt when the stats cannot say anything
/// (column not analyzed, non-numeric range probe with no histogram, ...);
/// the caller then falls back to the fixed default guesses. The estimate
/// accounts for NULLs: comparisons never match NULL rows, so every
/// comparison selectivity is scaled by (1 - null_fraction).
std::optional<double> EstimatePredicateSelectivity(const ColumnStats& stats,
                                                   const ScanPredicate& pred);

}  // namespace calcite

#endif  // CALCITE_SCHEMA_TABLE_STATS_H_
