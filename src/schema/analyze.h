#ifndef CALCITE_SCHEMA_ANALYZE_H_
#define CALCITE_SCHEMA_ANALYZE_H_

#include <cstdint>

#include "schema/table.h"
#include "util/status.h"

namespace calcite {

/// Knobs for AnalyzeTable. The defaults scan every row and keep the
/// auxiliary state small (one KMV sketch and one bounded reservoir per
/// column), so ANALYZE over a disk table streams through the buffer pool
/// with O(columns) memory regardless of table size.
struct AnalyzeOptions {
  /// Bernoulli row-sampling fraction, threaded into ScanSpec. 1.0 scans
  /// everything; smaller values trade accuracy for speed on large tables.
  /// Estimates (row count, NDV) are scaled back up to the full table.
  double sample_fraction = 1.0;
  /// Seed for the sampling RNG — deterministic by default so ANALYZE is
  /// reproducible in tests.
  uint64_t sample_seed = 0x5DEECE66Dull;
  /// Equi-width histogram resolution per numeric column.
  int histogram_buckets = 64;
  /// Reservoir capacity for histogram construction: the histogram is built
  /// from a uniform sample of this many values, bounding memory while the
  /// scan streams.
  size_t reservoir_capacity = 16384;
  /// KMV (k-minimum-values) sketch size for NDV estimation; columns with
  /// fewer distinct values than this are counted exactly.
  size_t kmv_sketch_size = 1024;
  /// Batch size for the streaming scan.
  size_t batch_size = 1024;
};

/// One-pass streaming ANALYZE over any Table: pulls batches through
/// Table::OpenScan (so disk tables stream page-at-a-time through the
/// buffer pool and sampling rides the ScanSpec) and collects, per column,
/// min/max, null fraction, an NDV estimate and an equi-width histogram.
/// Declarative fields of the table's existing statistic (unique keys,
/// collations, monotonic columns) are preserved; row_count and the column
/// entries are (re)computed, and version is stamped with
/// TableStats::kFormatVersion. The returned stats are not attached to the
/// table — callers decide (MemTable::set_statistic, DiskTable::Analyze).
Result<TableStats> AnalyzeTable(const Table& table,
                                const AnalyzeOptions& options = {});

}  // namespace calcite

#endif  // CALCITE_SCHEMA_ANALYZE_H_
