#include "schema/analyze.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>

namespace calcite {

namespace {

/// splitmix64 finalizer over Value::Hash. Value::Hash is
/// equality-consistent but std::hash-based, so its low bits are not
/// uniform enough for order statistics; the finalizer whitens it into the
/// uniform [0, 2^64) variate the KMV estimator assumes.
uint64_t WhitenHash(size_t h) {
  uint64_t z = static_cast<uint64_t>(h) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Keeps the k smallest distinct hashes seen.
void KmvInsert(std::set<uint64_t>* sketch, size_t k, uint64_t hash) {
  if (sketch->size() < k) {
    sketch->insert(hash);
    return;
  }
  auto largest = std::prev(sketch->end());
  if (hash >= *largest) return;
  if (sketch->insert(hash).second) sketch->erase(std::prev(sketch->end()));
}

/// KMV estimate of the number of distinct values the sketch has seen:
/// exact below the sketch size, (k-1)/h_(k) once saturated (h_(k) = k-th
/// smallest hash normalized to (0, 1]).
double KmvEstimate(const std::set<uint64_t>& sketch, size_t k) {
  if (sketch.size() < k || sketch.empty()) {
    return static_cast<double>(sketch.size());
  }
  double kth = (static_cast<double>(*std::prev(sketch.end())) + 1.0) /
               std::pow(2.0, 64);
  if (kth <= 0.0) return static_cast<double>(sketch.size());
  return (static_cast<double>(k) - 1.0) / kth;
}

/// Scales a distinct count observed in a uniform sample of n values up to
/// the full population of total values: solves d = D * (1 - (1 - 1/D)^n)
/// for D (the expected-distinct curve under uniformity), capped at total.
/// Exact at the endpoints — a unique column (d == n) extrapolates to
/// total, a constant column stays at 1.
double ScaleNdvToPopulation(double d, double n, double total) {
  if (d <= 0.0 || n <= 0.0 || total <= n) return std::min(d, total);
  if (d >= n) return total;  // every sampled value distinct
  double lo = d, hi = total;
  for (int iter = 0; iter < 64; ++iter) {
    double mid = 0.5 * (lo + hi);
    double expected = mid * (1.0 - std::exp(n * std::log1p(-1.0 / mid)));
    if (expected < d) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::min(0.5 * (lo + hi), total);
}

struct ColumnAccumulator {
  size_t nulls = 0;
  size_t non_null = 0;
  Value min;  // NULL until the first non-NULL value
  Value max;
  std::set<uint64_t> kmv;
  bool numeric_only = true;
  std::vector<double> reservoir;
  size_t numeric_seen = 0;
};

}  // namespace

Result<TableStats> AnalyzeTable(const Table& table,
                                const AnalyzeOptions& options) {
  TableStats stats = table.GetStatistic();
  stats.columns.clear();

  const size_t kmv_k = std::max<size_t>(options.kmv_sketch_size, 16);
  const size_t reservoir_cap = std::max<size_t>(options.reservoir_capacity, 16);
  const int buckets = std::max(options.histogram_buckets, 1);
  const double fraction =
      std::clamp(options.sample_fraction, 0.0, 1.0);

  ScanSpec spec;
  spec.batch_size = options.batch_size;
  spec.sample_fraction = fraction;
  spec.sample_seed = options.sample_seed;
  auto scan = table.OpenScan(spec);
  if (!scan.ok()) return scan.status();
  RowBatchPuller puller = std::move(scan).value();

  std::vector<ColumnAccumulator> cols;
  std::mt19937_64 reservoir_rng(options.sample_seed ^ 0xA1A1A1A1A1A1A1A1ull);
  size_t rows_seen = 0;
  for (;;) {
    auto batch = puller();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (const Row& row : batch.value()) {
      if (row.size() > cols.size()) cols.resize(row.size());
      ++rows_seen;
      for (size_t c = 0; c < row.size(); ++c) {
        ColumnAccumulator& acc = cols[c];
        const Value& v = row[c];
        if (v.IsNull()) {
          ++acc.nulls;
          continue;
        }
        ++acc.non_null;
        if (acc.min.IsNull() || v.Compare(acc.min) < 0) acc.min = v;
        if (acc.max.IsNull() || v.Compare(acc.max) > 0) acc.max = v;
        KmvInsert(&acc.kmv, kmv_k, WhitenHash(v.Hash()));
        if (!v.is_numeric()) {
          acc.numeric_only = false;
          continue;
        }
        // Reservoir sampling (algorithm R) of numeric values for the
        // histogram.
        double d = v.AsDouble();
        ++acc.numeric_seen;
        if (acc.reservoir.size() < reservoir_cap) {
          acc.reservoir.push_back(d);
        } else {
          std::uniform_int_distribution<size_t> pick(0, acc.numeric_seen - 1);
          size_t j = pick(reservoir_rng);
          if (j < reservoir_cap) acc.reservoir[j] = d;
        }
      }
    }
  }

  // An empty (or fully sampled-out) table still gets per-column entries so
  // analyzed() reports true and estimators return confident zeros.
  if (cols.empty()) {
    TypeFactory factory;
    RelDataTypePtr row_type = table.GetRowType(factory);
    if (row_type) cols.resize(static_cast<size_t>(row_type->field_count()));
  }

  const double scale = fraction > 0.0 && fraction < 1.0 ? 1.0 / fraction : 1.0;
  const double total_rows = static_cast<double>(rows_seen) * scale;
  stats.row_count = total_rows;

  stats.columns.reserve(cols.size());
  for (ColumnAccumulator& acc : cols) {
    ColumnStats cs;
    cs.analyzed = true;
    cs.min = std::move(acc.min);
    cs.max = std::move(acc.max);
    if (rows_seen > 0) {
      cs.null_fraction =
          static_cast<double>(acc.nulls) / static_cast<double>(rows_seen);
    }
    double sampled_ndv = KmvEstimate(acc.kmv, kmv_k);
    double total_non_null = static_cast<double>(acc.non_null) * scale;
    cs.ndv = scale > 1.0
                 ? ScaleNdvToPopulation(sampled_ndv,
                                        static_cast<double>(acc.non_null),
                                        total_non_null)
                 : std::min(sampled_ndv, total_non_null);
    if (acc.numeric_only && !acc.reservoir.empty() && cs.min.is_numeric() &&
        cs.max.is_numeric()) {
      Histogram h;
      h.lo = cs.min.AsDouble();
      h.hi = cs.max.AsDouble();
      if (h.hi <= h.lo) {
        // Single-valued column: one bucket holding everything.
        h.hi = h.lo;
        h.buckets.assign(1, 1.0);
      } else {
        h.buckets.assign(static_cast<size_t>(buckets), 0.0);
        const double width = (h.hi - h.lo) / static_cast<double>(buckets);
        const double share = 1.0 / static_cast<double>(acc.reservoir.size());
        for (double v : acc.reservoir) {
          auto idx = static_cast<size_t>((v - h.lo) / width);
          if (idx >= h.buckets.size()) idx = h.buckets.size() - 1;
          h.buckets[idx] += share;
        }
      }
      cs.histogram = std::move(h);
    }
    stats.columns.push_back(std::move(cs));
  }
  stats.version = TableStats::kFormatVersion;
  return stats;
}

}  // namespace calcite
