#include "type/sql_type.h"

namespace calcite {

const char* SqlTypeNameString(SqlTypeName name) {
  switch (name) {
    case SqlTypeName::kBoolean:
      return "BOOLEAN";
    case SqlTypeName::kTinyInt:
      return "TINYINT";
    case SqlTypeName::kSmallInt:
      return "SMALLINT";
    case SqlTypeName::kInteger:
      return "INTEGER";
    case SqlTypeName::kBigInt:
      return "BIGINT";
    case SqlTypeName::kFloat:
      return "FLOAT";
    case SqlTypeName::kDouble:
      return "DOUBLE";
    case SqlTypeName::kDecimal:
      return "DECIMAL";
    case SqlTypeName::kChar:
      return "CHAR";
    case SqlTypeName::kVarchar:
      return "VARCHAR";
    case SqlTypeName::kDate:
      return "DATE";
    case SqlTypeName::kTime:
      return "TIME";
    case SqlTypeName::kTimestamp:
      return "TIMESTAMP";
    case SqlTypeName::kIntervalDay:
      return "INTERVAL";
    case SqlTypeName::kArray:
      return "ARRAY";
    case SqlTypeName::kMap:
      return "MAP";
    case SqlTypeName::kMultiset:
      return "MULTISET";
    case SqlTypeName::kRow:
      return "ROW";
    case SqlTypeName::kGeometry:
      return "GEOMETRY";
    case SqlTypeName::kAny:
      return "ANY";
    case SqlTypeName::kNull:
      return "NULL";
  }
  return "UNKNOWN";
}

bool IsNumericType(SqlTypeName name) {
  switch (name) {
    case SqlTypeName::kTinyInt:
    case SqlTypeName::kSmallInt:
    case SqlTypeName::kInteger:
    case SqlTypeName::kBigInt:
    case SqlTypeName::kFloat:
    case SqlTypeName::kDouble:
    case SqlTypeName::kDecimal:
      return true;
    default:
      return false;
  }
}

bool IsCharType(SqlTypeName name) {
  return name == SqlTypeName::kChar || name == SqlTypeName::kVarchar;
}

bool IsDatetimeType(SqlTypeName name) {
  switch (name) {
    case SqlTypeName::kDate:
    case SqlTypeName::kTime:
    case SqlTypeName::kTimestamp:
    case SqlTypeName::kIntervalDay:
      return true;
    default:
      return false;
  }
}

bool IsExactNumericType(SqlTypeName name) {
  switch (name) {
    case SqlTypeName::kTinyInt:
    case SqlTypeName::kSmallInt:
    case SqlTypeName::kInteger:
    case SqlTypeName::kBigInt:
    case SqlTypeName::kDecimal:
      return true;
    default:
      return false;
  }
}

}  // namespace calcite
