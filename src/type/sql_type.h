#ifndef CALCITE_TYPE_SQL_TYPE_H_
#define CALCITE_TYPE_SQL_TYPE_H_

#include <string>

namespace calcite {

/// SQL type names supported by the framework, including the paper's
/// semi-structured types (ARRAY, MAP, MULTISET, §7.1) and the geospatial
/// GEOMETRY type (§7.3).
enum class SqlTypeName {
  kBoolean,
  kTinyInt,
  kSmallInt,
  kInteger,
  kBigInt,
  kFloat,
  kDouble,
  kDecimal,
  kChar,
  kVarchar,
  kDate,
  kTime,
  kTimestamp,
  kIntervalDay,  // day-time interval, stored as milliseconds
  kArray,
  kMap,
  kMultiset,
  kRow,
  kGeometry,
  kAny,
  kNull,
};

/// Returns the SQL spelling of a type name ("INTEGER", "VARCHAR", ...).
const char* SqlTypeNameString(SqlTypeName name);

/// True for TINYINT..DOUBLE and DECIMAL.
bool IsNumericType(SqlTypeName name);

/// True for CHAR/VARCHAR.
bool IsCharType(SqlTypeName name);

/// True for DATE/TIME/TIMESTAMP/INTERVAL.
bool IsDatetimeType(SqlTypeName name);

/// True for exact (integer) numerics.
bool IsExactNumericType(SqlTypeName name);

}  // namespace calcite

#endif  // CALCITE_TYPE_SQL_TYPE_H_
