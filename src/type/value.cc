#include "type/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace calcite {

namespace {
const std::vector<Value> kEmptyValues;
const std::vector<std::pair<Value, Value>> kEmptyEntries;
}  // namespace

Value Value::Array(std::vector<Value> elems) {
  auto composite = std::make_shared<Composite>();
  composite->elements = std::move(elems);
  return Value(Data(std::shared_ptr<const Composite>(std::move(composite))));
}

Value Value::Map(std::vector<std::pair<Value, Value>> entries) {
  auto composite = std::make_shared<Composite>();
  composite->entries = std::move(entries);
  composite->is_map = true;
  return Value(Data(std::shared_ptr<const Composite>(std::move(composite))));
}

bool Value::is_array() const {
  auto* c = std::get_if<std::shared_ptr<const Composite>>(&data_);
  return c != nullptr && !(*c)->is_map;
}

bool Value::is_map() const {
  auto* c = std::get_if<std::shared_ptr<const Composite>>(&data_);
  return c != nullptr && (*c)->is_map;
}

const std::vector<Value>& Value::AsArray() const {
  auto* c = std::get_if<std::shared_ptr<const Composite>>(&data_);
  if (c == nullptr) return kEmptyValues;
  return (*c)->elements;
}

const std::vector<std::pair<Value, Value>>& Value::AsMap() const {
  auto* c = std::get_if<std::shared_ptr<const Composite>>(&data_);
  if (c == nullptr) return kEmptyEntries;
  return (*c)->entries;
}

Value Value::MapLookup(const Value& key) const {
  for (const auto& [k, v] : AsMap()) {
    if (k == key) return v;
  }
  return Value::Null();
}

int Value::Compare(const Value& other) const {
  bool null_a = IsNull();
  bool null_b = other.IsNull();
  if (null_a && null_b) return 0;
  if (null_a) return -1;
  if (null_b) return 1;

  // Cross-representation numeric comparison.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt();
      int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  if (is_string() && other.is_string()) {
    return AsString().compare(other.AsString());
  }
  if (is_geometry() && other.is_geometry()) {
    return AsGeometry()->ToWkt().compare(other.AsGeometry()->ToWkt());
  }
  if ((is_array() || is_map()) && (other.is_array() || other.is_map())) {
    const auto& a = AsArray();
    const auto& b = other.AsArray();
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c;
    }
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    const auto& ea = AsMap();
    const auto& eb = other.AsMap();
    for (size_t i = 0; i < ea.size() && i < eb.size(); ++i) {
      int c = ea[i].first.Compare(eb[i].first);
      if (c != 0) return c;
      c = ea[i].second.Compare(eb[i].second);
      if (c != 0) return c;
    }
    if (ea.size() != eb.size()) return ea.size() < eb.size() ? -1 : 1;
    return 0;
  }
  // Different kinds: order by variant index for a stable total order.
  return data_.index() < other.data_.index() ? -1 : 1;
}

size_t Value::Hash() const {
  if (IsNull()) return 0x9e3779b9;
  if (is_bool()) return std::hash<bool>()(AsBool());
  if (is_int()) {
    // Hash integral values the same whether stored as int or double.
    return std::hash<double>()(static_cast<double>(AsInt()));
  }
  if (is_double()) return std::hash<double>()(AsDouble());
  if (is_string()) return std::hash<std::string>()(AsString());
  if (is_geometry()) return std::hash<std::string>()(AsGeometry()->ToWkt());
  size_t h = 0x12345678;
  for (const Value& v : AsArray()) h = h * 31 + v.Hash();
  for (const auto& [k, v] : AsMap()) {
    h = h * 31 + k.Hash();
    h = h * 31 + v.Hash();
  }
  return h;
}

std::string Value::ToString() const {
  if (IsNull()) return "null";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    double d = AsDouble();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", d);
      return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", d);
    return buf;
  }
  if (is_string()) return "'" + AsString() + "'";
  if (is_geometry()) return AsGeometry()->ToWkt();
  if (is_map()) {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : AsMap()) {
      if (!first) out += ", ";
      first = false;
      out += k.ToString() + ": " + v.ToString();
    }
    return out + "}";
  }
  std::string out = "[";
  bool first = true;
  for (const Value& v : AsArray()) {
    if (!first) out += ", ";
    first = false;
    out += v.ToString();
  }
  return out + "]";
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0;
  for (const Value& v : row) h = h * 1099511628211ULL + v.Hash();
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + "]";
}

}  // namespace calcite
