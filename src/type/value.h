#ifndef CALCITE_TYPE_VALUE_H_
#define CALCITE_TYPE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "geo/geometry.h"

namespace calcite {

class Value;

/// A runtime tuple: one Value per output field of a relational operator.
using Row = std::vector<Value>;

/// A dynamically-typed runtime value flowing through the enumerable engine
/// and the Rex interpreter. SQL NULL is a distinct state (IsNull()). Integer
/// SQL types are carried as int64, approximate numerics as double,
/// DATE/TIME/TIMESTAMP as int64 (days or milliseconds — interpretation is
/// carried by the static RelDataType, not the value), and the
/// semi-structured ARRAY/MAP/MULTISET types as nested containers.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Data(b)); }
  static Value Int(int64_t i) { return Value(Data(i)); }
  static Value Double(double d) { return Value(Data(d)); }
  static Value String(std::string s) { return Value(Data(std::move(s))); }
  static Value Array(std::vector<Value> elems);
  static Value Map(std::vector<std::pair<Value, Value>> entries);
  static Value Geometry(geo::GeometryPtr g) { return Value(Data(std::move(g))); }

  bool IsNull() const { return std::holds_alternative<NullTag>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const;
  bool is_map() const;
  bool is_geometry() const {
    return std::holds_alternative<geo::GeometryPtr>(data_);
  }
  bool is_numeric() const { return is_int() || is_double(); }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const std::vector<Value>& AsArray() const;
  const std::vector<std::pair<Value, Value>>& AsMap() const;
  const geo::GeometryPtr& AsGeometry() const {
    return std::get<geo::GeometryPtr>(data_);
  }

  /// Looks up a key in a MAP value (SQL `map[key]`); returns NULL if absent.
  Value MapLookup(const Value& key) const;

  /// SQL-style three-way comparison for ORDER BY and join keys: returns
  /// <0, 0, >0. NULLs compare equal to each other and sort before non-nulls.
  /// Numeric values compare across int/double representations.
  int Compare(const Value& other) const;

  /// Equality consistent with Compare()==0.
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (ints and integral doubles that are
  /// numerically equal hash identically).
  size_t Hash() const;

  /// Display form used by EXPLAIN and result printing. Strings are rendered
  /// with single quotes; NULL renders as "null".
  std::string ToString() const;

 private:
  struct NullTag {};
  struct Composite {
    // Array/multiset elements, or flattened map entries.
    std::vector<Value> elements;
    std::vector<std::pair<Value, Value>> entries;
    bool is_map = false;
  };
  using Data = std::variant<NullTag, bool, int64_t, double, std::string,
                            geo::GeometryPtr, std::shared_ptr<const Composite>>;

  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// Hash functor for Value keys in unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash functor for Row keys (e.g. hash-join and hash-aggregate tables).
struct RowHash {
  size_t operator()(const Row& row) const;
};

/// Renders a row as "[v1, v2, ...]".
std::string RowToString(const Row& row);

}  // namespace calcite

#endif  // CALCITE_TYPE_VALUE_H_
