#include "type/rel_data_type.h"

#include <algorithm>

#include "util/string_utils.h"

namespace calcite {

const RelDataTypeField* RelDataType::FindField(const std::string& name) const {
  for (const RelDataTypeField& field : fields_) {
    if (EqualsIgnoreCase(field.name, name)) return &field;
  }
  return nullptr;
}

std::string RelDataType::ToString() const {
  std::string result;
  if (is_struct()) {
    result = "RecordType(";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) result += ", ";
      result += fields_[i].type->ToString();
      result += " ";
      result += fields_[i].name;
    }
    result += ")";
    return result;
  }
  result = SqlTypeNameString(type_name_);
  if (precision_ >= 0) {
    result += "(" + std::to_string(precision_);
    if (scale_ >= 0) result += ", " + std::to_string(scale_);
    result += ")";
  }
  if (type_name_ == SqlTypeName::kArray || type_name_ == SqlTypeName::kMultiset) {
    result = (component_type_ ? component_type_->ToString() : "ANY") + " " +
             result;
  } else if (type_name_ == SqlTypeName::kMap) {
    result = "(" + (key_type_ ? key_type_->ToString() : "ANY") + ", " +
             (component_type_ ? component_type_->ToString() : "ANY") + ") MAP";
  }
  if (!nullable_) result += " NOT NULL";
  return result;
}

bool RelDataType::Equals(const RelDataType& other) const {
  if (type_name_ != other.type_name_ || nullable_ != other.nullable_ ||
      precision_ != other.precision_ || scale_ != other.scale_) {
    return false;
  }
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name) return false;
    if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
  }
  if ((component_type_ == nullptr) != (other.component_type_ == nullptr)) {
    return false;
  }
  if (component_type_ && !component_type_->Equals(*other.component_type_)) {
    return false;
  }
  if ((key_type_ == nullptr) != (other.key_type_ == nullptr)) return false;
  if (key_type_ && !key_type_->Equals(*other.key_type_)) return false;
  return true;
}

bool RelDataType::EqualsIgnoringNullability(const RelDataType& other) const {
  if (type_name_ != other.type_name_) return false;
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].type->EqualsIgnoringNullability(*other.fields_[i].type)) {
      return false;
    }
  }
  return true;
}

RelDataTypePtr TypeFactory::CreateSqlType(SqlTypeName name,
                                          bool nullable) const {
  return RelDataTypePtr(new RelDataType(name, nullable, -1, -1));
}

RelDataTypePtr TypeFactory::CreateSqlType(SqlTypeName name, int precision,
                                          bool nullable, int scale) const {
  return RelDataTypePtr(new RelDataType(name, nullable, precision, scale));
}

RelDataTypePtr TypeFactory::CreateStructType(
    const std::vector<std::string>& names,
    const std::vector<RelDataTypePtr>& types) const {
  std::vector<RelDataTypeField> fields;
  fields.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    fields.push_back({names[i], static_cast<int>(i), types[i]});
  }
  return CreateStructType(std::move(fields));
}

RelDataTypePtr TypeFactory::CreateStructType(
    std::vector<RelDataTypeField> fields) const {
  auto* type = new RelDataType(SqlTypeName::kRow, false, -1, -1);
  for (size_t i = 0; i < fields.size(); ++i) {
    fields[i].index = static_cast<int>(i);
  }
  type->fields_ = std::move(fields);
  return RelDataTypePtr(type);
}

RelDataTypePtr TypeFactory::CreateArrayType(RelDataTypePtr component,
                                            bool nullable) const {
  auto* type = new RelDataType(SqlTypeName::kArray, nullable, -1, -1);
  type->component_type_ = std::move(component);
  return RelDataTypePtr(type);
}

RelDataTypePtr TypeFactory::CreateMultisetType(RelDataTypePtr component,
                                               bool nullable) const {
  auto* type = new RelDataType(SqlTypeName::kMultiset, nullable, -1, -1);
  type->component_type_ = std::move(component);
  return RelDataTypePtr(type);
}

RelDataTypePtr TypeFactory::CreateMapType(RelDataTypePtr key,
                                          RelDataTypePtr value,
                                          bool nullable) const {
  auto* type = new RelDataType(SqlTypeName::kMap, nullable, -1, -1);
  type->key_type_ = std::move(key);
  type->component_type_ = std::move(value);
  return RelDataTypePtr(type);
}

RelDataTypePtr TypeFactory::CreateWithNullability(const RelDataTypePtr& type,
                                                  bool nullable) const {
  if (type->nullable() == nullable) return type;
  auto* copy =
      new RelDataType(type->type_name(), nullable, type->precision(),
                      type->scale());
  copy->fields_ = type->fields();
  copy->component_type_ = type->component_type();
  copy->key_type_ = type->key_type();
  return RelDataTypePtr(copy);
}

namespace {

/// Numeric widening order used by LeastRestrictive.
int NumericRank(SqlTypeName name) {
  switch (name) {
    case SqlTypeName::kTinyInt:
      return 1;
    case SqlTypeName::kSmallInt:
      return 2;
    case SqlTypeName::kInteger:
      return 3;
    case SqlTypeName::kBigInt:
      return 4;
    case SqlTypeName::kDecimal:
      return 5;
    case SqlTypeName::kFloat:
      return 6;
    case SqlTypeName::kDouble:
      return 7;
    default:
      return 0;
  }
}

}  // namespace

RelDataTypePtr TypeFactory::LeastRestrictive(
    const std::vector<RelDataTypePtr>& types) const {
  if (types.empty()) return nullptr;
  RelDataTypePtr best = types[0];
  bool nullable = types[0]->nullable();
  for (size_t i = 1; i < types.size(); ++i) {
    const RelDataTypePtr& t = types[i];
    nullable = nullable || t->nullable();
    if (t->type_name() == SqlTypeName::kNull) continue;
    if (best->type_name() == SqlTypeName::kNull) {
      best = t;
      nullable = true;
      continue;
    }
    if (best->type_name() == t->type_name()) {
      if (t->precision() > best->precision()) best = t;
      continue;
    }
    if (best->is_numeric() && t->is_numeric()) {
      if (NumericRank(t->type_name()) > NumericRank(best->type_name())) {
        best = t;
      }
      continue;
    }
    if (best->is_char() && t->is_char()) {
      // CHAR + VARCHAR -> VARCHAR with max precision.
      int precision = std::max(best->precision(), t->precision());
      best = CreateSqlType(SqlTypeName::kVarchar, precision, nullable);
      continue;
    }
    if (best->type_name() == SqlTypeName::kAny ||
        t->type_name() == SqlTypeName::kAny) {
      best = CreateSqlType(SqlTypeName::kAny, nullable);
      continue;
    }
    return nullptr;  // Incompatible.
  }
  return CreateWithNullability(best, nullable);
}

}  // namespace calcite
