#ifndef CALCITE_TYPE_REL_DATA_TYPE_H_
#define CALCITE_TYPE_REL_DATA_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "type/sql_type.h"

namespace calcite {

class RelDataType;
using RelDataTypePtr = std::shared_ptr<const RelDataType>;

/// A named, positioned field within a ROW (struct) type.
struct RelDataTypeField {
  std::string name;
  int index = 0;
  RelDataTypePtr type;
};

/// The type of a relational expression or scalar expression: a SQL type name
/// plus nullability, and — depending on the kind — precision/scale, a
/// component type (ARRAY/MULTISET), key/value types (MAP), or a field list
/// (ROW). RelDataType instances are immutable and shared; create them
/// through TypeFactory so equal types share a canonical representation.
class RelDataType {
 public:
  SqlTypeName type_name() const { return type_name_; }
  bool nullable() const { return nullable_; }

  /// For CHAR/VARCHAR: the max length; for DECIMAL: the precision.
  /// -1 means unspecified.
  int precision() const { return precision_; }
  /// For DECIMAL: the scale. -1 means unspecified.
  int scale() const { return scale_; }

  bool is_struct() const { return type_name_ == SqlTypeName::kRow; }
  bool is_numeric() const { return IsNumericType(type_name_); }
  bool is_char() const { return IsCharType(type_name_); }

  /// Fields of a ROW type; empty for scalar types.
  const std::vector<RelDataTypeField>& fields() const { return fields_; }
  int field_count() const { return static_cast<int>(fields_.size()); }

  /// Finds a field by name (case-insensitive); returns nullptr if absent.
  const RelDataTypeField* FindField(const std::string& name) const;

  /// Component type of ARRAY/MULTISET, or value type of MAP.
  const RelDataTypePtr& component_type() const { return component_type_; }
  /// Key type of MAP.
  const RelDataTypePtr& key_type() const { return key_type_; }

  /// Full textual form, e.g. "VARCHAR(20)", "INTEGER NOT NULL",
  /// "RecordType(INTEGER a, VARCHAR b)".
  std::string ToString() const;

  /// Structural equality (same name, nullability, precision, components).
  bool Equals(const RelDataType& other) const;

  /// Equality ignoring nullability and field names (used when checking that
  /// two plans produce compatible row types).
  bool EqualsIgnoringNullability(const RelDataType& other) const;

 private:
  friend class TypeFactory;

  RelDataType(SqlTypeName name, bool nullable, int precision, int scale)
      : type_name_(name),
        nullable_(nullable),
        precision_(precision),
        scale_(scale) {}

  SqlTypeName type_name_;
  bool nullable_;
  int precision_;
  int scale_;
  std::vector<RelDataTypeField> fields_;
  RelDataTypePtr component_type_;
  RelDataTypePtr key_type_;
};

/// Creates canonical RelDataType instances. The factory is cheap to copy
/// (stateless); types it returns may be shared freely across plans.
class TypeFactory {
 public:
  /// Creates a scalar type of the given name.
  RelDataTypePtr CreateSqlType(SqlTypeName name, bool nullable = false) const;

  /// Creates a CHAR/VARCHAR/DECIMAL type with precision (and scale).
  RelDataTypePtr CreateSqlType(SqlTypeName name, int precision,
                               bool nullable = false, int scale = -1) const;

  /// Creates a ROW type from field names and types.
  RelDataTypePtr CreateStructType(
      const std::vector<std::string>& names,
      const std::vector<RelDataTypePtr>& types) const;

  /// Creates a ROW type from prepared fields (indexes are re-assigned).
  RelDataTypePtr CreateStructType(std::vector<RelDataTypeField> fields) const;

  /// Creates an ARRAY type with the given component type.
  RelDataTypePtr CreateArrayType(RelDataTypePtr component,
                                 bool nullable = false) const;

  /// Creates a MULTISET type with the given component type.
  RelDataTypePtr CreateMultisetType(RelDataTypePtr component,
                                    bool nullable = false) const;

  /// Creates a MAP type.
  RelDataTypePtr CreateMapType(RelDataTypePtr key, RelDataTypePtr value,
                               bool nullable = false) const;

  /// Returns the same type with the requested nullability.
  RelDataTypePtr CreateWithNullability(const RelDataTypePtr& type,
                                       bool nullable) const;

  /// Returns the least-restrictive common type of the inputs (e.g. INTEGER
  /// and DOUBLE -> DOUBLE; VARCHAR(10) and VARCHAR(20) -> VARCHAR(20)), or
  /// nullptr if the inputs are incompatible. Used for set operations, CASE
  /// arms, and arithmetic result typing.
  RelDataTypePtr LeastRestrictive(
      const std::vector<RelDataTypePtr>& types) const;
};

}  // namespace calcite

#endif  // CALCITE_TYPE_REL_DATA_TYPE_H_
