#include "storage/buffer_pool.h"

#include <cstring>

namespace calcite::storage {

using calcite::Result;
using calcite::Status;

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) pool_->MarkDirty(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity) : disk_(disk) {
  if (capacity == 0) capacity = 1;
  frames_.resize(capacity);
  for (Frame& f : frames_) {
    f.data = std::make_unique<char[]>(kPageSize);
  }
}

BufferPool::~BufferPool() { (void)FlushAll(); }

Result<size_t> BufferPool::FindVictim() {
  // Free frame first, then the least-recently-used unpinned frame.
  size_t victim = frames_.size();
  uint64_t best_tick = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.id == kInvalidPageId) return i;
    if (f.pin_count == 0 &&
        (victim == frames_.size() || f.lru_tick < best_tick)) {
      victim = i;
      best_tick = f.lru_tick;
    }
  }
  if (victim == frames_.size()) {
    return Status::RuntimeError(
        "buffer pool exhausted: all " + std::to_string(frames_.size()) +
        " frames are pinned");
  }
  return victim;
}

Status BufferPool::EvictFrame(size_t frame) {
  Frame& f = frames_[frame];
  if (f.id == kInvalidPageId) return Status::OK();
  if (f.dirty) {
    CALCITE_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
    ++writes_;
    f.dirty = false;
  }
  page_table_.erase(f.id);
  f.id = kInvalidPageId;
  return Status::OK();
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> guard(lock_);
  auto it = page_table_.find(id);
  size_t frame;
  if (it != page_table_.end()) {
    frame = it->second;
  } else {
    CALCITE_ASSIGN_OR_RETURN(frame, FindVictim());
    CALCITE_RETURN_IF_ERROR(EvictFrame(frame));
    CALCITE_RETURN_IF_ERROR(disk_->ReadPage(id, frames_[frame].data.get()));
    ++reads_;
    frames_[frame].id = id;
    frames_[frame].dirty = false;
    page_table_.emplace(id, frame);
  }
  Frame& f = frames_[frame];
  ++f.pin_count;
  f.lru_tick = ++tick_;
  return PageGuard(this, frame, f.data.get(), id);
}

Result<PageGuard> BufferPool::New(PageId* out_id) {
  std::lock_guard<std::mutex> guard(lock_);
  size_t frame;
  CALCITE_ASSIGN_OR_RETURN(frame, FindVictim());
  CALCITE_RETURN_IF_ERROR(EvictFrame(frame));
  PageId id = disk_->Allocate();
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = id;
  f.dirty = true;  // a fresh page must reach disk even if never touched
  ++f.pin_count;
  f.lru_tick = ++tick_;
  page_table_.emplace(id, frame);
  *out_id = id;
  return PageGuard(this, frame, f.data.get(), id);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> guard(lock_);
  for (Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      CALCITE_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
      ++writes_;
      f.dirty = false;
    }
  }
  return Status::OK();
}

size_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> guard(lock_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) ++n;
  }
  return n;
}

uint64_t BufferPool::disk_reads() const {
  std::lock_guard<std::mutex> guard(lock_);
  return reads_;
}

uint64_t BufferPool::disk_writes() const {
  std::lock_guard<std::mutex> guard(lock_);
  return writes_;
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> guard(lock_);
  Frame& f = frames_[frame];
  if (f.pin_count > 0) --f.pin_count;
}

void BufferPool::MarkDirty(size_t frame) {
  std::lock_guard<std::mutex> guard(lock_);
  frames_[frame].dirty = true;
}

}  // namespace calcite::storage
