#ifndef CALCITE_STORAGE_BTREE_H_
#define CALCITE_STORAGE_BTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/status.h"

namespace calcite::storage {

/// A disk-resident B+-tree mapping int64 primary keys to record addresses
/// (Rid), with all nodes stored as pages behind the buffer pool. Leaves are
/// chained left-to-right, so a range scan is one seek plus a bounded leaf
/// walk — the physical access path the planner's pushed `$key <op> literal`
/// predicates route to.
///
/// Node layouts (inside the common 12-byte page header; count = entries):
///   leaf:      entries of {int64 key, uint32 page, uint16 slot} (14 B)
///              starting at offset 12; header `next` chains to the right
///              sibling.
///   internal:  leftmost child id (uint32) at offset 12, then entries of
///              {int64 key, uint32 child} (12 B) at offset 16. Key i is the
///              smallest key in the subtree of child i+1, so descending
///              takes the child after the last key <= the probe.
///
/// Keys are unique (primary index). Writes are single-threaded (same
/// contract as table mutation); concurrent reads are safe — they share the
/// buffer pool's internal lock and only pin one node at a time.
class BTree {
 public:
  struct Entry {
    int64_t key;
    Rid rid;
  };

  /// A position in the leaf chain: the streaming handle of an index range
  /// scan. `leaf == kInvalidPageId` means end-of-range.
  struct Cursor {
    PageId leaf = kInvalidPageId;
    uint16_t index = 0;

    bool AtEnd() const { return leaf == kInvalidPageId; }
  };

  /// Allocates an empty root leaf and returns its page id.
  static calcite::Result<PageId> CreateEmpty(BufferPool* pool);

  BTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  /// The current root page id. Changes when the root splits — the owner
  /// persists it (DiskTable's meta page) after mutations.
  PageId root() const { return root_; }

  /// Inserts a key → record address mapping; duplicate keys are rejected
  /// (primary index).
  calcite::Status Insert(int64_t key, Rid rid);

  /// Point lookup; nullopt when the key is absent.
  calcite::Result<std::optional<Rid>> Lookup(int64_t key) const;

  /// Positions a cursor at the first entry with key >= lo.
  calcite::Result<Cursor> SeekFirst(int64_t lo) const;

  /// Copies out up to `max_entries` entries with key <= hi, advancing the
  /// cursor; the cursor reads AtEnd() once the range (or the tree) is
  /// exhausted. Entries are appended to `out` in key order.
  calcite::Status NextRange(Cursor* cursor, int64_t hi, size_t max_entries,
                            std::vector<Entry>* out) const;

  /// Materializes a whole [lo, hi] range (tests and small lookups).
  calcite::Result<std::vector<Entry>> ScanRange(int64_t lo, int64_t hi) const;

 private:
  struct SplitResult {
    bool split = false;
    int64_t up_key = 0;     // separator promoted to the parent
    PageId right = kInvalidPageId;  // new right sibling
  };

  calcite::Result<SplitResult> InsertRec(PageId node, int64_t key, Rid rid);
  calcite::Result<PageId> DescendToLeaf(int64_t key) const;

  BufferPool* pool_;
  PageId root_;
};

}  // namespace calcite::storage

#endif  // CALCITE_STORAGE_BTREE_H_
