#ifndef CALCITE_STORAGE_DISK_MANAGER_H_
#define CALCITE_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/status.h"

namespace calcite::storage {

/// Page-granular file I/O: the single owner of the table file descriptor.
/// Reads and writes whole kPageSize pages at page-aligned offsets via
/// pread/pwrite, so concurrent reads of distinct pages need no locking;
/// page allocation is a lock-free counter seeded from the file size.
///
/// A page id allocated but never written reads back as zeros (reads past
/// EOF zero-fill) — the buffer pool writes every new page back before the
/// frame is reused, so in practice only crash-truncated files hit this.
class DiskManager {
 public:
  /// Opens (or creates) the page file. `truncate` starts it empty.
  static calcite::Result<std::unique_ptr<DiskManager>> Open(
      const std::string& path, bool truncate);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Reads page `id` into `out` (exactly kPageSize bytes).
  calcite::Status ReadPage(PageId id, char* out) const;

  /// Writes page `id` from `data` (exactly kPageSize bytes), extending the
  /// file as needed.
  calcite::Status WritePage(PageId id, const char* data);

  /// Reserves a fresh page id. The page materializes on first WritePage.
  PageId Allocate() {
    return page_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Pages allocated so far (includes allocated-but-unwritten ids).
  size_t page_count() const {
    return page_count_.load(std::memory_order_relaxed);
  }

  calcite::Status Sync();

  const std::string& path() const { return path_; }

 private:
  DiskManager(std::string path, int fd, size_t pages)
      : path_(std::move(path)), fd_(fd), page_count_(pages) {}

  std::string path_;
  int fd_;
  std::atomic<size_t> page_count_;
};

}  // namespace calcite::storage

#endif  // CALCITE_STORAGE_DISK_MANAGER_H_
