#ifndef CALCITE_STORAGE_DISK_TABLE_H_
#define CALCITE_STORAGE_DISK_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "schema/analyze.h"
#include "schema/table.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace calcite::storage {

/// Tuning knobs of a disk table.
struct DiskTableOptions {
  /// Buffer pool capacity in pages. Clamped up to a small minimum — B-tree
  /// inserts pin one node per level plus the pages a split allocates, so a
  /// pool smaller than that could deadlock on its own pins.
  size_t pool_pages = 64;
  /// Heap pages per scan unit ("page run") — the morsel granularity of
  /// parallel scans and the read granularity of serial ones.
  size_t pages_per_run = 8;
  /// Cost-based access-path break-even: with AccessPath::kAuto and ANALYZE
  /// statistics, a pushed key range estimated to select at most this
  /// fraction of the table goes to the B-tree; anything wider scans the
  /// heap. The index pays a random heap fetch per matching row (thrashing
  /// a pool smaller than the table), the heap scan pays one sequential
  /// pass regardless of selectivity — measured break-even sits between 1%
  /// and 50% (BM_CostBasedAccessPath), and 10% is a conservative default.
  double index_scan_max_fraction = 0.1;
};

/// An out-of-core table: rows live in slotted heap pages on disk, cached
/// through a pin/unpin buffer pool, with a B+-tree primary index on one
/// int64 key column. Participates in the execution stack end-to-end:
///
///  - OpenScan streams the heap page chain one page run at a time, so a
///    table far larger than the buffer pool scans in bounded memory.
///  - Pushed `$key <op> literal` conjuncts that bound the primary key can
///    route to an index range scan (B-tree seek + bounded leaf walk); every
///    pushed predicate is still re-checked on the fetched rows, so the
///    index path is a pure access-path change. Under AccessPath::kAuto the
///    choice is cost-based: the ANALYZE histogram of the key column
///    estimates the range's selectivity, and the index is taken only below
///    DiskTableOptions::index_scan_max_fraction (without statistics the
///    legacy rule applies — index whenever a range derives).
///  - Analyze() collects per-column statistics (schema/analyze.h) and
///    persists them into dedicated kStats catalog pages; Open() reloads
///    them, so a reopened table is cost-based immediately.
///  - MaterializedRows()/MaterializedColumns() return nullptr: the columnar
///    cache is bypassed for disk tables (it would pin the whole table in
///    RAM), and the morsel-parallel executor uses the paged scan-unit
///    surface (ScanUnitCount/ScanUnitRows — a page run = a morsel) instead
///    of row-range morsels.
///
/// Mutation (InsertRows) is single-writer and must not run concurrently
/// with scans — the MemTable contract. Readers may run concurrently with
/// each other (the buffer pool is internally locked).
class DiskTable : public Table {
 public:
  /// Creates a fresh table file at `path` (truncating any existing file).
  /// `key_column` must name an int64 (INTEGER/BIGINT) field of `row_type`;
  /// its values must be non-NULL and unique.
  static calcite::Result<std::shared_ptr<DiskTable>> Create(
      const std::string& path, RelDataTypePtr row_type, int key_column,
      DiskTableOptions options = {});

  /// Reopens an existing table file; `row_type` must match the one the
  /// file was created with (the codec is self-describing, so mismatches
  /// surface as decode/type errors, not corruption).
  static calcite::Result<std::shared_ptr<DiskTable>> Open(
      const std::string& path, RelDataTypePtr row_type,
      DiskTableOptions options = {});

  /// Appends rows: encodes each into the heap, indexes its key. Duplicate
  /// or NULL/non-integer keys fail the batch partway — rows before the
  /// offender stay inserted (no rollback; this is a storage engine, not a
  /// transaction manager).
  calcite::Status InsertRows(const std::vector<Row>& rows);

  /// Writes all dirty pages and the meta page back and fsyncs, so a
  /// subsequent Open() sees everything.
  calcite::Status Flush();

  /// ANALYZE: streams the table through the buffer pool (optionally
  /// sampling — see AnalyzeOptions), collects per-column statistics, and
  /// persists them into the table's kStats catalog pages (durable after
  /// the next Flush; Open reloads them). The exact row count replaces the
  /// sample estimate. Same quiescence contract as InsertRows.
  calcite::Status Analyze(const AnalyzeOptions& options = {});

  // ------------------------------ Table ------------------------------

  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }

  TableStats GetStatistic() const override;

  calcite::Result<std::vector<Row>> Scan() const override;

  calcite::Result<RowBatchPuller> ScanBatched(size_t batch_size) const override;

  calcite::Result<RowBatchPuller> ScanBatchedFiltered(
      size_t batch_size, ScanPredicateList predicates) const override;

  /// The unified scan surface. Resolves spec.access_path (kAuto defers to
  /// the deprecated per-table override, then to the cost model) and honours
  /// the scan-unit range with a page-range heap scan, so parallel morsel
  /// workers and ANALYZE sampling go through the same entry point.
  calcite::Result<RowBatchPuller> OpenScan(const ScanSpec& spec) const override;

  size_t ScanUnitCount() const override;
  calcite::Result<std::vector<Row>> ScanUnitRows(size_t unit) const override;

  // --------------------------- observability --------------------------

  /// Deprecated shim over the pre-ScanSpec escape hatch: `true` pins the
  /// table to AccessPath::kForceIndex (the historical "index whenever a
  /// range derives" behavior), `false` to kForceHeap — the parity switch
  /// the differential tests flip. A fresh table is kAuto (cost-based);
  /// prefer ExecOptions::access_path / ScanSpec::access_path per scan.
  void set_index_scan_enabled(bool enabled) {
    default_access_path_ =
        enabled ? AccessPath::kForceIndex : AccessPath::kForceHeap;
  }
  bool index_scan_enabled() const {
    return default_access_path_ != AccessPath::kForceHeap;
  }

  /// The statistics loaded from the catalog pages (empty `columns` until
  /// the first Analyze()).
  const TableStats& stats() const { return stats_; }

  int key_column() const { return key_column_; }
  size_t row_count() const { return row_count_; }
  size_t heap_page_count() const { return heap_pages_.size(); }
  const BufferPool& buffer_pool() const { return *pool_; }

  /// True if the last ScanBatchedFiltered stream was served by the index
  /// path (bench/test introspection; races with concurrent scans are
  /// benign).
  bool last_scan_used_index() const {
    return last_scan_used_index_.load(std::memory_order_relaxed);
  }

 private:
  DiskTable(RelDataTypePtr row_type, int key_column, DiskTableOptions options,
            std::unique_ptr<DiskManager> disk,
            std::unique_ptr<BufferPool> pool);

  calcite::Status WriteMeta();
  calcite::Status LoadMeta();

  /// Serializes stats_ into the kStats catalog chain (reusing the existing
  /// chain's pages before allocating new ones) and points stats_head_ at
  /// it. Persisted by the next WriteMeta/Flush.
  calcite::Status WriteStats();
  /// Loads the catalog chain at `head` into stats_; a chain written by an
  /// unknown future format version is ignored (table reads as unanalyzed).
  calcite::Status LoadStats(PageId head);

  /// Batch stream over heap pages [first_page, last_page) of the chain,
  /// applying `predicates` (possibly empty) to each decoded row; reads one
  /// page run ahead, so concurrent pins stay ~1 regardless of table size.
  RowBatchPuller MakeHeapPuller(size_t first_page, size_t last_page,
                                size_t batch_size,
                                ScanPredicateList predicates) const;

  /// Batch stream over the B-tree range [lo, hi]: seek once, walk the leaf
  /// chain, fetch each entry's heap record, and re-check every pushed
  /// predicate on the decoded row.
  RowBatchPuller MakeIndexPuller(int64_t lo, int64_t hi, size_t batch_size,
                                 ScanPredicateList predicates) const;

  /// Decodes every record of heap pages [first, last) into `out`,
  /// optionally keeping only predicate-passing rows.
  calcite::Status DecodePages(size_t first_page_index, size_t last_page_index,
                              const ScanPredicateList* predicates,
                              std::vector<Row>* out) const;

  RelDataTypePtr row_type_;
  int key_column_;
  DiskTableOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> index_;

  /// Heap page ids in chain order (rebuilt from the chain at Open). Append
  /// only while scans are quiesced — same contract as MemTable::rows().
  std::vector<PageId> heap_pages_;
  size_t row_count_ = 0;
  /// ANALYZE results (stats_head_ = first kStats catalog page, or
  /// kInvalidPageId before the first Analyze()).
  TableStats stats_;
  PageId stats_head_ = kInvalidPageId;
  /// Table-level default when a ScanSpec says kAuto; only the deprecated
  /// set_index_scan_enabled shim moves it off kAuto.
  AccessPath default_access_path_ = AccessPath::kAuto;
  mutable std::atomic<bool> last_scan_used_index_{false};
};

}  // namespace calcite::storage

#endif  // CALCITE_STORAGE_DISK_TABLE_H_
