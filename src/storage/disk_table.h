#ifndef CALCITE_STORAGE_DISK_TABLE_H_
#define CALCITE_STORAGE_DISK_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "schema/table.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace calcite::storage {

/// Tuning knobs of a disk table.
struct DiskTableOptions {
  /// Buffer pool capacity in pages. Clamped up to a small minimum — B-tree
  /// inserts pin one node per level plus the pages a split allocates, so a
  /// pool smaller than that could deadlock on its own pins.
  size_t pool_pages = 64;
  /// Heap pages per scan unit ("page run") — the morsel granularity of
  /// parallel scans and the read granularity of serial ones.
  size_t pages_per_run = 8;
};

/// An out-of-core table: rows live in slotted heap pages on disk, cached
/// through a pin/unpin buffer pool, with a B+-tree primary index on one
/// int64 key column. Participates in the execution stack end-to-end:
///
///  - ScanBatched streams the heap page chain one page run at a time, so a
///    table far larger than the buffer pool scans in bounded memory.
///  - ScanBatchedFiltered routes pushed `$key <op> literal` conjuncts to an
///    index range scan (B-tree seek + bounded leaf walk) when they bound
///    the primary key; every pushed predicate is still re-checked on the
///    fetched rows, so the index path is a pure access-path change.
///  - MaterializedRows()/MaterializedColumns() return nullptr: the columnar
///    cache is bypassed for disk tables (it would pin the whole table in
///    RAM), and the morsel-parallel executor uses the paged scan-unit
///    surface (ScanUnitCount/ScanUnitRows — a page run = a morsel) instead
///    of row-range morsels.
///
/// Mutation (InsertRows) is single-writer and must not run concurrently
/// with scans — the MemTable contract. Readers may run concurrently with
/// each other (the buffer pool is internally locked).
class DiskTable : public Table {
 public:
  /// Creates a fresh table file at `path` (truncating any existing file).
  /// `key_column` must name an int64 (INTEGER/BIGINT) field of `row_type`;
  /// its values must be non-NULL and unique.
  static calcite::Result<std::shared_ptr<DiskTable>> Create(
      const std::string& path, RelDataTypePtr row_type, int key_column,
      DiskTableOptions options = {});

  /// Reopens an existing table file; `row_type` must match the one the
  /// file was created with (the codec is self-describing, so mismatches
  /// surface as decode/type errors, not corruption).
  static calcite::Result<std::shared_ptr<DiskTable>> Open(
      const std::string& path, RelDataTypePtr row_type,
      DiskTableOptions options = {});

  /// Appends rows: encodes each into the heap, indexes its key. Duplicate
  /// or NULL/non-integer keys fail the batch partway — rows before the
  /// offender stay inserted (no rollback; this is a storage engine, not a
  /// transaction manager).
  calcite::Status InsertRows(const std::vector<Row>& rows);

  /// Writes all dirty pages and the meta page back and fsyncs, so a
  /// subsequent Open() sees everything.
  calcite::Status Flush();

  // ------------------------------ Table ------------------------------

  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }

  Statistic GetStatistic() const override;

  calcite::Result<std::vector<Row>> Scan() const override;

  calcite::Result<RowBatchPuller> ScanBatched(size_t batch_size) const override;

  calcite::Result<RowBatchPuller> ScanBatchedFiltered(
      size_t batch_size, ScanPredicateList predicates) const override;

  size_t ScanUnitCount() const override;
  calcite::Result<std::vector<Row>> ScanUnitRows(size_t unit) const override;

  // --------------------------- observability --------------------------

  /// Disables the B-tree routing in ScanBatchedFiltered (full heap scans
  /// only) — the parity switch the differential tests flip.
  void set_index_scan_enabled(bool enabled) { index_scan_enabled_ = enabled; }
  bool index_scan_enabled() const { return index_scan_enabled_; }

  int key_column() const { return key_column_; }
  size_t row_count() const { return row_count_; }
  size_t heap_page_count() const { return heap_pages_.size(); }
  const BufferPool& buffer_pool() const { return *pool_; }

  /// True if the last ScanBatchedFiltered stream was served by the index
  /// path (bench/test introspection; races with concurrent scans are
  /// benign).
  bool last_scan_used_index() const {
    return last_scan_used_index_.load(std::memory_order_relaxed);
  }

 private:
  DiskTable(RelDataTypePtr row_type, int key_column, DiskTableOptions options,
            std::unique_ptr<DiskManager> disk,
            std::unique_ptr<BufferPool> pool);

  calcite::Status WriteMeta();
  calcite::Status LoadMeta();

  /// Batch stream over the heap page chain, applying `predicates` (possibly
  /// empty) to each decoded row; reads one page run ahead, so concurrent
  /// pins stay ~1 regardless of table size.
  RowBatchPuller MakeHeapPuller(size_t batch_size,
                                ScanPredicateList predicates) const;

  /// Batch stream over the B-tree range [lo, hi]: seek once, walk the leaf
  /// chain, fetch each entry's heap record, and re-check every pushed
  /// predicate on the decoded row.
  RowBatchPuller MakeIndexPuller(int64_t lo, int64_t hi, size_t batch_size,
                                 ScanPredicateList predicates) const;

  /// Decodes every record of heap pages [first, last) into `out`,
  /// optionally keeping only predicate-passing rows.
  calcite::Status DecodePages(size_t first_page_index, size_t last_page_index,
                              const ScanPredicateList* predicates,
                              std::vector<Row>* out) const;

  RelDataTypePtr row_type_;
  int key_column_;
  DiskTableOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> index_;

  /// Heap page ids in chain order (rebuilt from the chain at Open). Append
  /// only while scans are quiesced — same contract as MemTable::rows().
  std::vector<PageId> heap_pages_;
  size_t row_count_ = 0;
  bool index_scan_enabled_ = true;
  mutable std::atomic<bool> last_scan_used_index_{false};
};

}  // namespace calcite::storage

#endif  // CALCITE_STORAGE_DISK_TABLE_H_
