#ifndef CALCITE_STORAGE_BUFFER_POOL_H_
#define CALCITE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace calcite::storage {

class BufferPool;

/// RAII pin on one buffer frame. While a guard is alive its frame cannot be
/// evicted, so the data pointer stays valid; dropping the guard unpins.
/// Move-only — a copied pin would double-unpin.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      data_ = o.data_;
      id_ = o.id_;
      o.pool_ = nullptr;
      o.data_ = nullptr;
    }
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the frame dirty: its bytes will be written back before the
  /// frame is reused and at FlushAll. Call after any mutation through
  /// data().
  void MarkDirty();

  /// Unpins early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, char* data, PageId id)
      : pool_(pool), frame_(frame), data_(data), id_(id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  char* data_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// Fixed-capacity page cache between the execution engine and the disk
/// manager: pin/unpin discipline, LRU eviction of unpinned frames, dirty
/// write-back. All bookkeeping (page table, pin counts, LRU ticks, disk
/// transfers into/out of frames) happens under one mutex, so concurrent
/// morsel workers can Fetch/unpin freely; pinned frame bytes are only ever
/// written while the frame is being loaded (under the mutex), so readers
/// holding pins race with nothing.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity);

  /// Flushes every dirty frame; write errors here are unreportable, so
  /// callers that care about durability call FlushAll() first.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss. Fails when every
  /// frame is pinned (pool too small for the working set of pins).
  calcite::Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page id, pins a zeroed frame for it (already marked
  /// dirty), and reports the id through `out_id`.
  calcite::Result<PageGuard> New(PageId* out_id);

  /// Writes every dirty frame back to disk (pages stay cached).
  calcite::Status FlushAll();

  size_t capacity() const { return frames_.size(); }

  /// Currently pinned frames — the pin-leak observability hook: after all
  /// guards are dropped this must read 0.
  size_t pinned_frames() const;

  /// Cumulative disk transfers, for tests asserting eviction really
  /// happened (reads ≫ capacity when data ≫ pool).
  uint64_t disk_reads() const;
  uint64_t disk_writes() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    uint64_t lru_tick = 0;
    std::unique_ptr<char[]> data;
  };

  /// Both require lock_ held.
  calcite::Result<size_t> FindVictim();
  calcite::Status EvictFrame(size_t frame);

  void Unpin(size_t frame);
  void MarkDirty(size_t frame);

  DiskManager* disk_;
  mutable std::mutex lock_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  uint64_t tick_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace calcite::storage

#endif  // CALCITE_STORAGE_BUFFER_POOL_H_
