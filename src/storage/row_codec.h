#ifndef CALCITE_STORAGE_ROW_CODEC_H_
#define CALCITE_STORAGE_ROW_CODEC_H_

#include <string>

#include "type/value.h"
#include "util/status.h"

namespace calcite::storage {

/// Serializes the engine's runtime Row into the byte form stored in slotted
/// heap pages, and back. The format is self-describing (a type tag per
/// field), so decode needs no schema:
///
///   uint16 field_count, then per field:
///     tag 0 = NULL                      (no payload)
///     tag 1 = BOOLEAN false             (no payload)
///     tag 2 = BOOLEAN true              (no payload)
///     tag 3 = BIGINT                    (8-byte little-endian int64)
///     tag 4 = DOUBLE                    (8-byte IEEE double)
///     tag 5 = VARCHAR                   (uint32 length + bytes)
///
/// The composite types (ARRAY/MAP/GEOMETRY) are rejected at encode time —
/// disk tables carry relational scalar data; semi-structured values stay on
/// the in-memory adapters.

/// Appends the encoded form of `row` to `out`.
calcite::Status EncodeRow(const Row& row, std::string* out);

/// Decodes one record. `len` must cover exactly one encoded row.
calcite::Result<Row> DecodeRow(const char* data, size_t len);

}  // namespace calcite::storage

#endif  // CALCITE_STORAGE_ROW_CODEC_H_
