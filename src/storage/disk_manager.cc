#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace calcite::storage {

using calcite::Result;
using calcite::Status;

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path,
                                                       bool truncate) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::RuntimeError("open(" + path +
                                ") failed: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::RuntimeError("fstat(" + path +
                                ") failed: " + std::strerror(err));
  }
  size_t pages = static_cast<size_t>(st.st_size) / kPageSize;
  return std::unique_ptr<DiskManager>(
      new DiskManager(path, fd, pages));
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::ReadPage(PageId id, char* out) const {
  off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, out + done, kPageSize - done,
                        offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::RuntimeError("pread(" + path_ + ", page " +
                                  std::to_string(id) +
                                  ") failed: " + std::strerror(errno));
    }
    if (n == 0) {
      // Past EOF: the page was allocated but never written back yet —
      // zero-fill the remainder (see class comment).
      std::memset(out + done, 0, kPageSize - done);
      return Status::OK();
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pwrite(fd_, data + done, kPageSize - done,
                         offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::RuntimeError("pwrite(" + path_ + ", page " +
                                  std::to_string(id) +
                                  ") failed: " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::RuntimeError("fsync(" + path_ +
                                ") failed: " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace calcite::storage
