#include "storage/disk_table.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "storage/row_codec.h"

namespace calcite::storage {

using calcite::Result;
using calcite::Status;

namespace {

// Meta page (page 0) layout, after the common 12-byte header:
//   offset 12  uint32  magic
//   offset 16  uint32  format version
//   offset 20  uint32  B-tree root page id
//   offset 24  uint32  first heap page id (kInvalidPageId when empty)
//   offset 28  uint32  last heap page id
//   offset 32  uint64  row count
//   offset 40  int32   primary-key column ordinal
constexpr uint32_t kMetaMagic = 0x43414C54;  // "CALT"
constexpr uint32_t kMetaVersion = 1;
constexpr PageId kMetaPageId = 0;

// A B-tree insert pins one node per level plus the sibling pages a split
// allocates, and a scan holds a heap pin while walking a leaf. This floor
// keeps even deliberately tiny test pools (pool ≪ table) deadlock-free.
constexpr size_t kMinPoolPages = 8;

// The bounds the pushed conjuncts place on the integer primary key.
// Conservative by construction: the derived [lo, hi] may admit rows a
// predicate rejects (every predicate is re-applied to fetched rows), but
// must never exclude a row that passes them all.
struct KeyRange {
  bool usable = false;  // at least one conjunct bounded the key
  bool empty = false;   // conjuncts are provably unsatisfiable on the key
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
};

constexpr double kTwoPow63 = 9223372036854775808.0;  // 2^63, exact in double

KeyRange DeriveKeyRange(const ScanPredicateList& predicates, int key_column) {
  KeyRange r;
  // Tightens r.lo to "key >= b" / r.hi to "key <= b" for an integral-valued
  // double bound, saturating at the int64 range.
  auto apply_lo = [&r](double b) {
    r.usable = true;
    if (b >= kTwoPow63) {
      r.empty = true;
    } else if (b >= -kTwoPow63) {
      r.lo = std::max(r.lo, static_cast<int64_t>(b));
    }
  };
  auto apply_hi = [&r](double b) {
    r.usable = true;
    if (b < -kTwoPow63) {
      r.empty = true;
    } else if (b < kTwoPow63) {
      r.hi = std::min(r.hi, static_cast<int64_t>(b));
    }
  };

  using Kind = ScanPredicate::Kind;
  for (const ScanPredicate& pred : predicates) {
    if (pred.column != key_column) continue;
    if (pred.kind == Kind::kIsNull) {
      // Primary keys are never NULL.
      r.usable = true;
      r.empty = true;
      continue;
    }
    if (pred.kind == Kind::kIsNotNull || pred.kind == Kind::kNotEquals) {
      continue;  // no useful contiguous bound
    }
    const Value& lit = pred.literal;
    if (lit.IsNull()) {
      // A comparison against NULL never passes.
      r.usable = true;
      r.empty = true;
      continue;
    }
    if (lit.is_int()) {
      int64_t v = lit.AsInt();
      switch (pred.kind) {
        case Kind::kEquals:
          r.usable = true;
          r.lo = std::max(r.lo, v);
          r.hi = std::min(r.hi, v);
          break;
        case Kind::kLessThan:
          r.usable = true;
          if (v == std::numeric_limits<int64_t>::min()) r.empty = true;
          else r.hi = std::min(r.hi, v - 1);
          break;
        case Kind::kLessThanOrEqual:
          r.usable = true;
          r.hi = std::min(r.hi, v);
          break;
        case Kind::kGreaterThan:
          r.usable = true;
          if (v == std::numeric_limits<int64_t>::max()) r.empty = true;
          else r.lo = std::max(r.lo, v + 1);
          break;
        case Kind::kGreaterThanOrEqual:
          r.usable = true;
          r.lo = std::max(r.lo, v);
          break;
        default:
          break;
      }
      continue;
    }
    if (lit.is_double()) {
      double d = lit.AsDouble();
      if (std::isnan(d)) continue;  // leave NaN semantics to the re-check
      switch (pred.kind) {
        case Kind::kEquals:
          if (d != std::floor(d)) {
            r.usable = true;
            r.empty = true;  // an integer key never equals a fractional value
          } else {
            apply_lo(d);
            apply_hi(d);
          }
          break;
        case Kind::kLessThan:
          apply_hi(std::ceil(d) - 1.0);
          break;
        case Kind::kLessThanOrEqual:
          apply_hi(std::floor(d));
          break;
        case Kind::kGreaterThan:
          apply_lo(std::floor(d) + 1.0);
          break;
        case Kind::kGreaterThanOrEqual:
          apply_lo(std::ceil(d));
          break;
        default:
          break;
      }
      continue;
    }
    // Non-numeric literal: no bound; the heap path (or the re-check, if
    // another conjunct made the range usable) handles it.
  }
  if (r.lo > r.hi) r.empty = true;
  return r;
}

}  // namespace

DiskTable::DiskTable(RelDataTypePtr row_type, int key_column,
                     DiskTableOptions options,
                     std::unique_ptr<DiskManager> disk,
                     std::unique_ptr<BufferPool> pool)
    : row_type_(std::move(row_type)),
      key_column_(key_column),
      options_(options),
      disk_(std::move(disk)),
      pool_(std::move(pool)) {}

Result<std::shared_ptr<DiskTable>> DiskTable::Create(const std::string& path,
                                                     RelDataTypePtr row_type,
                                                     int key_column,
                                                     DiskTableOptions options) {
  if (key_column < 0) {
    return Status::InvalidArgument("primary-key column ordinal is negative");
  }
  if (options.pages_per_run == 0) options.pages_per_run = 1;
  options.pool_pages = std::max(options.pool_pages, kMinPoolPages);
  CALCITE_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                           DiskManager::Open(path, /*truncate=*/true));
  auto pool = std::make_unique<BufferPool>(disk.get(), options.pool_pages);
  BufferPool* pool_raw = pool.get();
  std::shared_ptr<DiskTable> table(new DiskTable(
      std::move(row_type), key_column, options, std::move(disk),
      std::move(pool)));
  {
    PageId meta_id = kInvalidPageId;
    CALCITE_ASSIGN_OR_RETURN(PageGuard meta, pool_raw->New(&meta_id));
    if (meta_id != kMetaPageId) {
      return Status::Internal("fresh table file did not start at page 0");
    }
    SetPageType(meta.data(), PageType::kMeta);
    meta.MarkDirty();
  }
  CALCITE_ASSIGN_OR_RETURN(PageId root, BTree::CreateEmpty(pool_raw));
  table->index_ = std::make_unique<BTree>(pool_raw, root);
  CALCITE_RETURN_IF_ERROR(table->Flush());
  return table;
}

Result<std::shared_ptr<DiskTable>> DiskTable::Open(const std::string& path,
                                                   RelDataTypePtr row_type,
                                                   DiskTableOptions options) {
  if (options.pages_per_run == 0) options.pages_per_run = 1;
  options.pool_pages = std::max(options.pool_pages, kMinPoolPages);
  CALCITE_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                           DiskManager::Open(path, /*truncate=*/false));
  auto pool = std::make_unique<BufferPool>(disk.get(), options.pool_pages);
  std::shared_ptr<DiskTable> table(new DiskTable(
      std::move(row_type), /*key_column=*/0, options, std::move(disk),
      std::move(pool)));
  CALCITE_RETURN_IF_ERROR(table->LoadMeta());
  return table;
}

Status DiskTable::WriteMeta() {
  CALCITE_ASSIGN_OR_RETURN(PageGuard meta, pool_->Fetch(kMetaPageId));
  char* p = meta.data();
  SetPageType(p, PageType::kMeta);
  StoreAt<uint32_t>(p, 12, kMetaMagic);
  StoreAt<uint32_t>(p, 16, kMetaVersion);
  StoreAt<uint32_t>(p, 20, index_ ? index_->root() : kInvalidPageId);
  StoreAt<uint32_t>(p, 24,
                    heap_pages_.empty() ? kInvalidPageId : heap_pages_.front());
  StoreAt<uint32_t>(p, 28,
                    heap_pages_.empty() ? kInvalidPageId : heap_pages_.back());
  StoreAt<uint64_t>(p, 32, static_cast<uint64_t>(row_count_));
  StoreAt<int32_t>(p, 40, static_cast<int32_t>(key_column_));
  meta.MarkDirty();
  return Status::OK();
}

Status DiskTable::LoadMeta() {
  PageId root;
  PageId first_heap;
  {
    CALCITE_ASSIGN_OR_RETURN(PageGuard meta, pool_->Fetch(kMetaPageId));
    const char* p = meta.data();
    if (GetPageType(p) != PageType::kMeta ||
        LoadAt<uint32_t>(p, 12) != kMetaMagic) {
      return Status::InvalidArgument(disk_->path() +
                                     " is not a disk-table file");
    }
    if (LoadAt<uint32_t>(p, 16) != kMetaVersion) {
      return Status::Unsupported("disk-table format version mismatch");
    }
    root = LoadAt<uint32_t>(p, 20);
    first_heap = LoadAt<uint32_t>(p, 24);
    row_count_ = static_cast<size_t>(LoadAt<uint64_t>(p, 32));
    key_column_ = static_cast<int>(LoadAt<int32_t>(p, 40));
  }
  index_ = std::make_unique<BTree>(pool_.get(), root);
  heap_pages_.clear();
  for (PageId id = first_heap; id != kInvalidPageId;) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
    if (GetPageType(guard.data()) != PageType::kHeap) {
      return Status::RuntimeError("heap chain reaches a non-heap page");
    }
    heap_pages_.push_back(id);
    if (heap_pages_.size() > disk_->page_count()) {
      return Status::RuntimeError("heap chain cycle");
    }
    id = GetNextPage(guard.data());
  }
  return Status::OK();
}

Status DiskTable::InsertRows(const std::vector<Row>& rows) {
  auto insert_one = [this](const Row& row) -> Status {
    if (static_cast<size_t>(key_column_) >= row.size()) {
      return Status::InvalidArgument("row narrower than the key column");
    }
    const Value& key_value = row[key_column_];
    if (!key_value.is_int()) {
      return Status::InvalidArgument(
          "primary-key value must be a non-NULL integer; got " +
          key_value.ToString());
    }
    int64_t key = key_value.AsInt();
    CALCITE_ASSIGN_OR_RETURN(std::optional<Rid> existing, index_->Lookup(key));
    if (existing.has_value()) {
      return Status::InvalidArgument("duplicate primary key " +
                                     std::to_string(key));
    }
    std::string encoded;
    CALCITE_RETURN_IF_ERROR(EncodeRow(row, &encoded));
    if (encoded.size() > SlottedPage::MaxRecordSize()) {
      return Status::InvalidArgument("row exceeds the page record limit");
    }
    // Append into the last heap page, chaining a fresh one when it is full.
    Rid rid;
    std::optional<uint16_t> slot;
    if (!heap_pages_.empty()) {
      CALCITE_ASSIGN_OR_RETURN(PageGuard last, pool_->Fetch(heap_pages_.back()));
      SlottedPage page(last.data());
      slot = page.Insert(encoded.data(), encoded.size());
      if (slot.has_value()) {
        last.MarkDirty();
        rid = Rid{heap_pages_.back(), *slot};
      }
    }
    if (!slot.has_value()) {
      PageId new_id = kInvalidPageId;
      CALCITE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->New(&new_id));
      SlottedPage page(fresh.data());
      page.Init(PageType::kHeap);
      slot = page.Insert(encoded.data(), encoded.size());
      if (!slot.has_value()) {
        return Status::Internal("empty heap page rejected a record");
      }
      fresh.MarkDirty();
      fresh.Release();
      if (!heap_pages_.empty()) {
        CALCITE_ASSIGN_OR_RETURN(PageGuard prev, pool_->Fetch(heap_pages_.back()));
        SetNextPage(prev.data(), new_id);
        prev.MarkDirty();
      }
      heap_pages_.push_back(new_id);
      rid = Rid{new_id, *slot};
    }
    CALCITE_RETURN_IF_ERROR(index_->Insert(key, rid));
    ++row_count_;
    return Status::OK();
  };

  Status st = Status::OK();
  for (const Row& row : rows) {
    st = insert_one(row);
    if (!st.ok()) break;
  }
  // Persist the meta even on a partial failure — the rows before the
  // offender are inserted and must stay reachable.
  Status meta = WriteMeta();
  return st.ok() ? meta : st;
}

Status DiskTable::Flush() {
  CALCITE_RETURN_IF_ERROR(WriteMeta());
  CALCITE_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_->Sync();
}

Statistic DiskTable::GetStatistic() const {
  Statistic stat;
  stat.row_count = static_cast<double>(row_count_);
  stat.unique_keys = {{key_column_}};
  return stat;
}

Status DiskTable::DecodePages(size_t first_page_index, size_t last_page_index,
                              const ScanPredicateList* predicates,
                              std::vector<Row>* out) const {
  last_page_index = std::min(last_page_index, heap_pages_.size());
  for (size_t i = first_page_index; i < last_page_index; ++i) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(heap_pages_[i]));
    SlottedPage page(const_cast<char*>(guard.data()));
    uint16_t slots = page.slot_count();
    for (uint16_t s = 0; s < slots; ++s) {
      size_t len = 0;
      const char* bytes = page.Get(s, &len);
      CALCITE_ASSIGN_OR_RETURN(Row row, DecodeRow(bytes, len));
      if (predicates == nullptr || ScanPredicatesMatch(*predicates, row)) {
        out->push_back(std::move(row));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> DiskTable::Scan() const {
  std::vector<Row> out;
  out.reserve(row_count_);
  CALCITE_RETURN_IF_ERROR(
      DecodePages(0, heap_pages_.size(), nullptr, &out));
  return out;
}

size_t DiskTable::ScanUnitCount() const {
  return (heap_pages_.size() + options_.pages_per_run - 1) /
         options_.pages_per_run;
}

Result<std::vector<Row>> DiskTable::ScanUnitRows(size_t unit) const {
  size_t first = unit * options_.pages_per_run;
  if (first >= heap_pages_.size()) {
    return Status::InvalidArgument("scan unit out of range");
  }
  std::vector<Row> out;
  CALCITE_RETURN_IF_ERROR(
      DecodePages(first, first + options_.pages_per_run, nullptr, &out));
  return out;
}

RowBatchPuller DiskTable::MakeHeapPuller(size_t batch_size,
                                         ScanPredicateList predicates) const {
  struct State {
    size_t next_page = 0;
    std::vector<Row> buffer;
    size_t pos = 0;
  };
  auto state = std::make_shared<State>();
  auto preds = std::make_shared<ScanPredicateList>(std::move(predicates));
  return [this, batch_size, state, preds]() -> Result<RowBatch> {
    RowBatch batch;
    // Producers never yield an empty batch mid-stream: keep pulling page
    // runs until at least one row survives or the chain ends.
    while (batch.size() < batch_size) {
      if (state->pos == state->buffer.size()) {
        state->buffer.clear();
        state->pos = 0;
        if (state->next_page >= heap_pages_.size()) break;
        size_t last = state->next_page + options_.pages_per_run;
        CALCITE_RETURN_IF_ERROR(DecodePages(
            state->next_page, last, preds->empty() ? nullptr : preds.get(),
            &state->buffer));
        state->next_page = std::min(last, heap_pages_.size());
        continue;
      }
      size_t take = std::min(batch_size - batch.size(),
                             state->buffer.size() - state->pos);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(state->buffer[state->pos + i]));
      }
      state->pos += take;
    }
    return batch;
  };
}

RowBatchPuller DiskTable::MakeIndexPuller(int64_t lo, int64_t hi,
                                          size_t batch_size,
                                          ScanPredicateList predicates) const {
  struct State {
    BTree::Cursor cursor;
    bool seeked = false;
  };
  auto state = std::make_shared<State>();
  auto preds = std::make_shared<ScanPredicateList>(std::move(predicates));
  return [this, lo, hi, batch_size, state, preds]() -> Result<RowBatch> {
    if (!state->seeked) {
      CALCITE_ASSIGN_OR_RETURN(state->cursor, index_->SeekFirst(lo));
      state->seeked = true;
    }
    RowBatch batch;
    std::vector<BTree::Entry> entries;
    while (batch.size() < batch_size && !state->cursor.AtEnd()) {
      entries.clear();
      CALCITE_RETURN_IF_ERROR(index_->NextRange(
          &state->cursor, hi, batch_size - batch.size(), &entries));
      // Entries arrive in key order, so consecutive rids often share a heap
      // page; hold one pin across the run of same-page fetches.
      PageGuard guard;
      for (const BTree::Entry& entry : entries) {
        if (!guard.valid() || guard.id() != entry.rid.page_id) {
          guard.Release();
          CALCITE_ASSIGN_OR_RETURN(guard, pool_->Fetch(entry.rid.page_id));
          if (GetPageType(guard.data()) != PageType::kHeap) {
            return Status::RuntimeError("index entry points at a non-heap page");
          }
        }
        SlottedPage page(const_cast<char*>(guard.data()));
        if (entry.rid.slot >= page.slot_count()) {
          return Status::RuntimeError("index entry points past the slot count");
        }
        size_t len = 0;
        const char* bytes = page.Get(entry.rid.slot, &len);
        CALCITE_ASSIGN_OR_RETURN(Row row, DecodeRow(bytes, len));
        // The key range is conservative; the pushed predicates decide.
        if (ScanPredicatesMatch(*preds, row)) batch.push_back(std::move(row));
      }
    }
    return batch;
  };
}

Result<RowBatchPuller> DiskTable::ScanBatched(size_t batch_size) const {
  if (batch_size == 0) batch_size = 1;
  return MakeHeapPuller(batch_size, ScanPredicateList{});
}

Result<RowBatchPuller> DiskTable::ScanBatchedFiltered(
    size_t batch_size, ScanPredicateList predicates) const {
  if (batch_size == 0) batch_size = 1;
  if (index_scan_enabled_ && !predicates.empty()) {
    KeyRange range = DeriveKeyRange(predicates, key_column_);
    if (range.usable) {
      last_scan_used_index_ = true;
      if (range.empty) return ChunkRows({}, batch_size);
      return MakeIndexPuller(range.lo, range.hi, batch_size,
                             std::move(predicates));
    }
  }
  last_scan_used_index_ = false;
  return MakeHeapPuller(batch_size, std::move(predicates));
}

}  // namespace calcite::storage
