#include "storage/disk_table.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "storage/row_codec.h"

namespace calcite::storage {

using calcite::Result;
using calcite::Status;

namespace {

// Meta page (page 0) layout, after the common 12-byte header:
//   offset 12  uint32  magic
//   offset 16  uint32  format version
//   offset 20  uint32  B-tree root page id
//   offset 24  uint32  first heap page id (kInvalidPageId when empty)
//   offset 28  uint32  last heap page id
//   offset 32  uint64  row count
//   offset 40  int32   primary-key column ordinal
//   offset 44  uint32  first stats catalog page id (v2+; kInvalidPageId
//                      when the table was never ANALYZEd)
constexpr uint32_t kMetaMagic = 0x43414C54;  // "CALT"
// v1 = pre-statistics layout (no offset-44 field); v2 adds the stats
// catalog pointer. Open() accepts both — a v1 file reads as "no stats".
constexpr uint32_t kMetaVersion = 2;
constexpr uint32_t kMinMetaVersion = 1;
constexpr PageId kMetaPageId = 0;

// A B-tree insert pins one node per level plus the sibling pages a split
// allocates, and a scan holds a heap pin while walking a leaf. This floor
// keeps even deliberately tiny test pools (pool ≪ table) deadlock-free.
constexpr size_t kMinPoolPages = 8;

// The bounds the pushed conjuncts place on the integer primary key.
// Conservative by construction: the derived [lo, hi] may admit rows a
// predicate rejects (every predicate is re-applied to fetched rows), but
// must never exclude a row that passes them all.
struct KeyRange {
  bool usable = false;  // at least one conjunct bounded the key
  bool empty = false;   // conjuncts are provably unsatisfiable on the key
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
};

constexpr double kTwoPow63 = 9223372036854775808.0;  // 2^63, exact in double

KeyRange DeriveKeyRange(const ScanPredicateList& predicates, int key_column) {
  KeyRange r;
  // Tightens r.lo to "key >= b" / r.hi to "key <= b" for an integral-valued
  // double bound, saturating at the int64 range.
  auto apply_lo = [&r](double b) {
    r.usable = true;
    if (b >= kTwoPow63) {
      r.empty = true;
    } else if (b >= -kTwoPow63) {
      r.lo = std::max(r.lo, static_cast<int64_t>(b));
    }
  };
  auto apply_hi = [&r](double b) {
    r.usable = true;
    if (b < -kTwoPow63) {
      r.empty = true;
    } else if (b < kTwoPow63) {
      r.hi = std::min(r.hi, static_cast<int64_t>(b));
    }
  };

  using Kind = ScanPredicate::Kind;
  for (const ScanPredicate& pred : predicates) {
    if (pred.column != key_column) continue;
    if (pred.kind == Kind::kIsNull) {
      // Primary keys are never NULL.
      r.usable = true;
      r.empty = true;
      continue;
    }
    if (pred.kind == Kind::kIsNotNull || pred.kind == Kind::kNotEquals) {
      continue;  // no useful contiguous bound
    }
    const Value& lit = pred.literal;
    if (lit.IsNull()) {
      // A comparison against NULL never passes.
      r.usable = true;
      r.empty = true;
      continue;
    }
    if (lit.is_int()) {
      int64_t v = lit.AsInt();
      switch (pred.kind) {
        case Kind::kEquals:
          r.usable = true;
          r.lo = std::max(r.lo, v);
          r.hi = std::min(r.hi, v);
          break;
        case Kind::kLessThan:
          r.usable = true;
          if (v == std::numeric_limits<int64_t>::min()) r.empty = true;
          else r.hi = std::min(r.hi, v - 1);
          break;
        case Kind::kLessThanOrEqual:
          r.usable = true;
          r.hi = std::min(r.hi, v);
          break;
        case Kind::kGreaterThan:
          r.usable = true;
          if (v == std::numeric_limits<int64_t>::max()) r.empty = true;
          else r.lo = std::max(r.lo, v + 1);
          break;
        case Kind::kGreaterThanOrEqual:
          r.usable = true;
          r.lo = std::max(r.lo, v);
          break;
        default:
          break;
      }
      continue;
    }
    if (lit.is_double()) {
      double d = lit.AsDouble();
      if (std::isnan(d)) continue;  // leave NaN semantics to the re-check
      switch (pred.kind) {
        case Kind::kEquals:
          if (d != std::floor(d)) {
            r.usable = true;
            r.empty = true;  // an integer key never equals a fractional value
          } else {
            apply_lo(d);
            apply_hi(d);
          }
          break;
        case Kind::kLessThan:
          apply_hi(std::ceil(d) - 1.0);
          break;
        case Kind::kLessThanOrEqual:
          apply_hi(std::floor(d));
          break;
        case Kind::kGreaterThan:
          apply_lo(std::floor(d) + 1.0);
          break;
        case Kind::kGreaterThanOrEqual:
          apply_lo(std::ceil(d));
          break;
        default:
          break;
      }
      continue;
    }
    // Non-numeric literal: no bound; the heap path (or the re-check, if
    // another conjunct made the range usable) handles it.
  }
  if (r.lo > r.hi) r.empty = true;
  return r;
}

/// Estimated fraction of the table's rows with key in [lo, hi], from the
/// key column's ANALYZE stats. Histogram when present (continuous reading:
/// F(hi+1) - F(lo), integer keys), uniform [min, max] interpolation
/// otherwise; 1.0 when the stats cannot bound it (cost model then prefers
/// the heap scan, the safe default).
double EstimateKeyRangeFraction(const ColumnStats& stats, int64_t lo,
                                int64_t hi) {
  double lo_d = static_cast<double>(lo);
  double hi_d = static_cast<double>(hi) + 1.0;
  if (!stats.histogram.empty()) {
    return std::max(0.0, stats.histogram.FractionBelow(hi_d) -
                             stats.histogram.FractionBelow(lo_d));
  }
  if (!stats.min.is_numeric() || !stats.max.is_numeric()) return 1.0;
  double min = stats.min.AsDouble();
  double max = stats.max.AsDouble();
  if (max <= min) return lo_d <= min && min < hi_d ? 1.0 : 0.0;
  double below_hi = std::clamp((hi_d - min) / (max - min), 0.0, 1.0);
  double below_lo = std::clamp((lo_d - min) / (max - min), 0.0, 1.0);
  return below_hi - below_lo;
}

}  // namespace

DiskTable::DiskTable(RelDataTypePtr row_type, int key_column,
                     DiskTableOptions options,
                     std::unique_ptr<DiskManager> disk,
                     std::unique_ptr<BufferPool> pool)
    : row_type_(std::move(row_type)),
      key_column_(key_column),
      options_(options),
      disk_(std::move(disk)),
      pool_(std::move(pool)) {}

Result<std::shared_ptr<DiskTable>> DiskTable::Create(const std::string& path,
                                                     RelDataTypePtr row_type,
                                                     int key_column,
                                                     DiskTableOptions options) {
  if (key_column < 0) {
    return Status::InvalidArgument("primary-key column ordinal is negative");
  }
  if (options.pages_per_run == 0) options.pages_per_run = 1;
  options.pool_pages = std::max(options.pool_pages, kMinPoolPages);
  CALCITE_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                           DiskManager::Open(path, /*truncate=*/true));
  auto pool = std::make_unique<BufferPool>(disk.get(), options.pool_pages);
  BufferPool* pool_raw = pool.get();
  std::shared_ptr<DiskTable> table(new DiskTable(
      std::move(row_type), key_column, options, std::move(disk),
      std::move(pool)));
  {
    PageId meta_id = kInvalidPageId;
    CALCITE_ASSIGN_OR_RETURN(PageGuard meta, pool_raw->New(&meta_id));
    if (meta_id != kMetaPageId) {
      return Status::Internal("fresh table file did not start at page 0");
    }
    SetPageType(meta.data(), PageType::kMeta);
    meta.MarkDirty();
  }
  CALCITE_ASSIGN_OR_RETURN(PageId root, BTree::CreateEmpty(pool_raw));
  table->index_ = std::make_unique<BTree>(pool_raw, root);
  CALCITE_RETURN_IF_ERROR(table->Flush());
  return table;
}

Result<std::shared_ptr<DiskTable>> DiskTable::Open(const std::string& path,
                                                   RelDataTypePtr row_type,
                                                   DiskTableOptions options) {
  if (options.pages_per_run == 0) options.pages_per_run = 1;
  options.pool_pages = std::max(options.pool_pages, kMinPoolPages);
  CALCITE_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                           DiskManager::Open(path, /*truncate=*/false));
  auto pool = std::make_unique<BufferPool>(disk.get(), options.pool_pages);
  std::shared_ptr<DiskTable> table(new DiskTable(
      std::move(row_type), /*key_column=*/0, options, std::move(disk),
      std::move(pool)));
  CALCITE_RETURN_IF_ERROR(table->LoadMeta());
  return table;
}

Status DiskTable::WriteMeta() {
  CALCITE_ASSIGN_OR_RETURN(PageGuard meta, pool_->Fetch(kMetaPageId));
  char* p = meta.data();
  SetPageType(p, PageType::kMeta);
  StoreAt<uint32_t>(p, 12, kMetaMagic);
  StoreAt<uint32_t>(p, 16, kMetaVersion);
  StoreAt<uint32_t>(p, 20, index_ ? index_->root() : kInvalidPageId);
  StoreAt<uint32_t>(p, 24,
                    heap_pages_.empty() ? kInvalidPageId : heap_pages_.front());
  StoreAt<uint32_t>(p, 28,
                    heap_pages_.empty() ? kInvalidPageId : heap_pages_.back());
  StoreAt<uint64_t>(p, 32, static_cast<uint64_t>(row_count_));
  StoreAt<int32_t>(p, 40, static_cast<int32_t>(key_column_));
  StoreAt<uint32_t>(p, 44, stats_head_);
  meta.MarkDirty();
  return Status::OK();
}

Status DiskTable::LoadMeta() {
  PageId root;
  PageId first_heap;
  PageId stats_head = kInvalidPageId;
  {
    CALCITE_ASSIGN_OR_RETURN(PageGuard meta, pool_->Fetch(kMetaPageId));
    const char* p = meta.data();
    if (GetPageType(p) != PageType::kMeta ||
        LoadAt<uint32_t>(p, 12) != kMetaMagic) {
      return Status::InvalidArgument(disk_->path() +
                                     " is not a disk-table file");
    }
    uint32_t version = LoadAt<uint32_t>(p, 16);
    if (version < kMinMetaVersion || version > kMetaVersion) {
      return Status::Unsupported("disk-table format version mismatch");
    }
    root = LoadAt<uint32_t>(p, 20);
    first_heap = LoadAt<uint32_t>(p, 24);
    row_count_ = static_cast<size_t>(LoadAt<uint64_t>(p, 32));
    key_column_ = static_cast<int>(LoadAt<int32_t>(p, 40));
    // v1 files predate the stats catalog: they reopen as unanalyzed.
    if (version >= 2) stats_head = LoadAt<uint32_t>(p, 44);
  }
  index_ = std::make_unique<BTree>(pool_.get(), root);
  heap_pages_.clear();
  for (PageId id = first_heap; id != kInvalidPageId;) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
    if (GetPageType(guard.data()) != PageType::kHeap) {
      return Status::RuntimeError("heap chain reaches a non-heap page");
    }
    heap_pages_.push_back(id);
    if (heap_pages_.size() > disk_->page_count()) {
      return Status::RuntimeError("heap chain cycle");
    }
    id = GetNextPage(guard.data());
  }
  return LoadStats(stats_head);
}

Status DiskTable::InsertRows(const std::vector<Row>& rows) {
  auto insert_one = [this](const Row& row) -> Status {
    if (static_cast<size_t>(key_column_) >= row.size()) {
      return Status::InvalidArgument("row narrower than the key column");
    }
    const Value& key_value = row[key_column_];
    if (!key_value.is_int()) {
      return Status::InvalidArgument(
          "primary-key value must be a non-NULL integer; got " +
          key_value.ToString());
    }
    int64_t key = key_value.AsInt();
    CALCITE_ASSIGN_OR_RETURN(std::optional<Rid> existing, index_->Lookup(key));
    if (existing.has_value()) {
      return Status::InvalidArgument("duplicate primary key " +
                                     std::to_string(key));
    }
    std::string encoded;
    CALCITE_RETURN_IF_ERROR(EncodeRow(row, &encoded));
    if (encoded.size() > SlottedPage::MaxRecordSize()) {
      return Status::InvalidArgument("row exceeds the page record limit");
    }
    // Append into the last heap page, chaining a fresh one when it is full.
    Rid rid;
    std::optional<uint16_t> slot;
    if (!heap_pages_.empty()) {
      CALCITE_ASSIGN_OR_RETURN(PageGuard last, pool_->Fetch(heap_pages_.back()));
      SlottedPage page(last.data());
      slot = page.Insert(encoded.data(), encoded.size());
      if (slot.has_value()) {
        last.MarkDirty();
        rid = Rid{heap_pages_.back(), *slot};
      }
    }
    if (!slot.has_value()) {
      PageId new_id = kInvalidPageId;
      CALCITE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->New(&new_id));
      SlottedPage page(fresh.data());
      page.Init(PageType::kHeap);
      slot = page.Insert(encoded.data(), encoded.size());
      if (!slot.has_value()) {
        return Status::Internal("empty heap page rejected a record");
      }
      fresh.MarkDirty();
      fresh.Release();
      if (!heap_pages_.empty()) {
        CALCITE_ASSIGN_OR_RETURN(PageGuard prev, pool_->Fetch(heap_pages_.back()));
        SetNextPage(prev.data(), new_id);
        prev.MarkDirty();
      }
      heap_pages_.push_back(new_id);
      rid = Rid{new_id, *slot};
    }
    CALCITE_RETURN_IF_ERROR(index_->Insert(key, rid));
    ++row_count_;
    return Status::OK();
  };

  Status st = Status::OK();
  for (const Row& row : rows) {
    st = insert_one(row);
    if (!st.ok()) break;
  }
  // Persist the meta even on a partial failure — the rows before the
  // offender are inserted and must stay reachable.
  Status meta = WriteMeta();
  return st.ok() ? meta : st;
}

Status DiskTable::Flush() {
  CALCITE_RETURN_IF_ERROR(WriteMeta());
  CALCITE_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_->Sync();
}

TableStats DiskTable::GetStatistic() const {
  TableStats stat = stats_;
  stat.row_count = static_cast<double>(row_count_);
  stat.unique_keys = {{key_column_}};
  return stat;
}

// ------------------------- statistics catalog -------------------------
//
// The catalog is a chain of kStats slotted pages holding self-describing
// codec rows (row_codec.h), so it needs no schema of its own:
//   record 0:  [version, column_count, row_count]
//   record i:  [column_ordinal, min, max, null_fraction, ndv,
//               histogram_lo, histogram_hi, bucket_count, bucket_0 ...]
// Column records follow the header in ordinal order, spilling onto chained
// pages as needed.

namespace {

constexpr size_t kStatsColumnFixedFields = 8;

Result<std::string> EncodeColumnStatsRecord(int ordinal,
                                            const ColumnStats& cs) {
  Row record;
  record.reserve(kStatsColumnFixedFields + cs.histogram.buckets.size());
  record.push_back(Value::Int(ordinal));
  record.push_back(cs.min);
  record.push_back(cs.max);
  record.push_back(Value::Double(cs.null_fraction));
  record.push_back(Value::Double(cs.ndv));
  record.push_back(Value::Double(cs.histogram.lo));
  record.push_back(Value::Double(cs.histogram.hi));
  record.push_back(
      Value::Int(static_cast<int64_t>(cs.histogram.buckets.size())));
  for (double b : cs.histogram.buckets) record.push_back(Value::Double(b));
  std::string encoded;
  Status st = EncodeRow(record, &encoded);
  if (st.ok() && encoded.size() <= SlottedPage::MaxRecordSize()) {
    return encoded;
  }
  // Degrade until the record fits one page: first drop the histogram
  // (over-sized bucket counts), then the min/max (pathological VARCHAR
  // extremes). The remaining scalars always fit.
  record.resize(kStatsColumnFixedFields);
  record[7] = Value::Int(0);
  encoded.clear();
  st = EncodeRow(record, &encoded);
  if (!st.ok() || encoded.size() > SlottedPage::MaxRecordSize()) {
    record[1] = Value::Null();
    record[2] = Value::Null();
    encoded.clear();
    CALCITE_RETURN_IF_ERROR(EncodeRow(record, &encoded));
    if (encoded.size() > SlottedPage::MaxRecordSize()) {
      return Status::Internal("column stats record cannot fit a page");
    }
  }
  return encoded;
}

}  // namespace

Status DiskTable::WriteStats() {
  std::vector<std::string> records;
  records.reserve(1 + stats_.columns.size());
  {
    Row header{Value::Int(static_cast<int64_t>(stats_.version)),
               Value::Int(static_cast<int64_t>(stats_.columns.size())),
               Value::Double(stats_.row_count.value_or(
                   static_cast<double>(row_count_)))};
    std::string encoded;
    CALCITE_RETURN_IF_ERROR(EncodeRow(header, &encoded));
    records.push_back(std::move(encoded));
  }
  for (size_t i = 0; i < stats_.columns.size(); ++i) {
    CALCITE_ASSIGN_OR_RETURN(
        std::string encoded,
        EncodeColumnStatsRecord(static_cast<int>(i), stats_.columns[i]));
    records.push_back(std::move(encoded));
  }

  // Re-ANALYZE reuses the existing chain's pages before allocating fresh
  // ones (the engine has no free list; a shrinking chain strands its tail
  // pages, which is fine for a catalog that only ever grows by columns).
  std::vector<PageId> reusable;
  for (PageId id = stats_head_; id != kInvalidPageId;) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
    if (GetPageType(guard.data()) != PageType::kStats) {
      return Status::RuntimeError("stats chain reaches a non-stats page");
    }
    reusable.push_back(id);
    if (reusable.size() > disk_->page_count()) {
      return Status::RuntimeError("stats chain cycle");
    }
    id = GetNextPage(guard.data());
  }

  PageId head = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t next_record = 0;
  size_t reuse_index = 0;
  while (next_record < records.size()) {
    PageId id = kInvalidPageId;
    PageGuard guard;
    if (reuse_index < reusable.size()) {
      id = reusable[reuse_index++];
      CALCITE_ASSIGN_OR_RETURN(guard, pool_->Fetch(id));
    } else {
      CALCITE_ASSIGN_OR_RETURN(guard, pool_->New(&id));
    }
    SlottedPage page(guard.data());
    page.Init(PageType::kStats);
    while (next_record < records.size() &&
           page.Insert(records[next_record].data(),
                       records[next_record].size())
               .has_value()) {
      ++next_record;
    }
    guard.MarkDirty();
    guard.Release();
    if (head == kInvalidPageId) head = id;
    if (prev != kInvalidPageId) {
      CALCITE_ASSIGN_OR_RETURN(PageGuard prev_guard, pool_->Fetch(prev));
      SetNextPage(prev_guard.data(), id);
      prev_guard.MarkDirty();
    }
    prev = id;
  }
  stats_head_ = head;
  return Status::OK();
}

Status DiskTable::LoadStats(PageId head) {
  stats_ = TableStats{};
  stats_head_ = head;
  if (head == kInvalidPageId) return Status::OK();
  std::vector<Row> records;
  size_t chain_length = 0;
  for (PageId id = head; id != kInvalidPageId;) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
    if (GetPageType(guard.data()) != PageType::kStats) {
      return Status::RuntimeError("stats chain reaches a non-stats page");
    }
    if (++chain_length > disk_->page_count()) {
      return Status::RuntimeError("stats chain cycle");
    }
    SlottedPage page(const_cast<char*>(guard.data()));
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      size_t len = 0;
      const char* bytes = page.Get(s, &len);
      CALCITE_ASSIGN_OR_RETURN(Row record, DecodeRow(bytes, len));
      records.push_back(std::move(record));
    }
    id = GetNextPage(guard.data());
  }
  if (records.empty()) return Status::OK();
  const Row& header = records[0];
  if (header.size() < 3 || !header[0].is_int() || !header[1].is_int()) {
    return Status::RuntimeError("stats catalog header is malformed");
  }
  auto version = static_cast<uint32_t>(header[0].AsInt());
  if (version == 0 || version > TableStats::kFormatVersion) {
    // Written by a newer build: ignore rather than misread (the table just
    // reads as unanalyzed until re-ANALYZEd).
    return Status::OK();
  }
  auto column_count = static_cast<size_t>(header[1].AsInt());
  if (header[2].is_numeric()) stats_.row_count = header[2].AsDouble();
  stats_.columns.assign(column_count, ColumnStats{});
  for (size_t r = 1; r < records.size(); ++r) {
    Row& record = records[r];
    if (record.size() < kStatsColumnFixedFields || !record[0].is_int() ||
        !record[7].is_int()) {
      return Status::RuntimeError("stats catalog record is malformed");
    }
    auto ordinal = static_cast<size_t>(record[0].AsInt());
    if (ordinal >= column_count) {
      return Status::RuntimeError("stats catalog ordinal out of range");
    }
    ColumnStats& cs = stats_.columns[ordinal];
    cs.min = std::move(record[1]);
    cs.max = std::move(record[2]);
    cs.null_fraction = record[3].IsNull() ? 0.0 : record[3].AsDouble();
    cs.ndv = record[4].IsNull() ? 0.0 : record[4].AsDouble();
    auto bucket_count = static_cast<size_t>(record[7].AsInt());
    if (record.size() != kStatsColumnFixedFields + bucket_count) {
      return Status::RuntimeError("stats catalog histogram is malformed");
    }
    if (bucket_count > 0) {
      cs.histogram.lo = record[5].IsNull() ? 0.0 : record[5].AsDouble();
      cs.histogram.hi = record[6].IsNull() ? 0.0 : record[6].AsDouble();
      cs.histogram.buckets.reserve(bucket_count);
      for (size_t b = 0; b < bucket_count; ++b) {
        const Value& v = record[kStatsColumnFixedFields + b];
        cs.histogram.buckets.push_back(v.IsNull() ? 0.0 : v.AsDouble());
      }
    }
    cs.analyzed = true;
  }
  stats_.version = version;
  return Status::OK();
}

Status DiskTable::Analyze(const AnalyzeOptions& options) {
  CALCITE_ASSIGN_OR_RETURN(TableStats stats, AnalyzeTable(*this, options));
  // The meta page tracks the exact count; never let a sample estimate
  // shadow it.
  stats.row_count = static_cast<double>(row_count_);
  stats_ = std::move(stats);
  CALCITE_RETURN_IF_ERROR(WriteStats());
  return WriteMeta();
}

Status DiskTable::DecodePages(size_t first_page_index, size_t last_page_index,
                              const ScanPredicateList* predicates,
                              std::vector<Row>* out) const {
  last_page_index = std::min(last_page_index, heap_pages_.size());
  for (size_t i = first_page_index; i < last_page_index; ++i) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(heap_pages_[i]));
    SlottedPage page(const_cast<char*>(guard.data()));
    uint16_t slots = page.slot_count();
    for (uint16_t s = 0; s < slots; ++s) {
      size_t len = 0;
      const char* bytes = page.Get(s, &len);
      CALCITE_ASSIGN_OR_RETURN(Row row, DecodeRow(bytes, len));
      if (predicates == nullptr || ScanPredicatesMatch(*predicates, row)) {
        out->push_back(std::move(row));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> DiskTable::Scan() const {
  std::vector<Row> out;
  out.reserve(row_count_);
  CALCITE_RETURN_IF_ERROR(
      DecodePages(0, heap_pages_.size(), nullptr, &out));
  return out;
}

size_t DiskTable::ScanUnitCount() const {
  return (heap_pages_.size() + options_.pages_per_run - 1) /
         options_.pages_per_run;
}

Result<std::vector<Row>> DiskTable::ScanUnitRows(size_t unit) const {
  size_t first = unit * options_.pages_per_run;
  if (first >= heap_pages_.size()) {
    return Status::InvalidArgument("scan unit out of range");
  }
  std::vector<Row> out;
  CALCITE_RETURN_IF_ERROR(
      DecodePages(first, first + options_.pages_per_run, nullptr, &out));
  return out;
}

RowBatchPuller DiskTable::MakeHeapPuller(size_t first_page, size_t last_page,
                                         size_t batch_size,
                                         ScanPredicateList predicates) const {
  struct State {
    size_t next_page = 0;
    std::vector<Row> buffer;
    size_t pos = 0;
  };
  auto state = std::make_shared<State>();
  state->next_page = first_page;
  last_page = std::min(last_page, heap_pages_.size());
  auto preds = std::make_shared<ScanPredicateList>(std::move(predicates));
  return [this, batch_size, state, preds, last_page]() -> Result<RowBatch> {
    RowBatch batch;
    // Producers never yield an empty batch mid-stream: keep pulling page
    // runs until at least one row survives or the chain ends.
    while (batch.size() < batch_size) {
      if (state->pos == state->buffer.size()) {
        state->buffer.clear();
        state->pos = 0;
        if (state->next_page >= last_page) break;
        size_t last = std::min(state->next_page + options_.pages_per_run,
                               last_page);
        CALCITE_RETURN_IF_ERROR(DecodePages(
            state->next_page, last, preds->empty() ? nullptr : preds.get(),
            &state->buffer));
        state->next_page = last;
        continue;
      }
      size_t take = std::min(batch_size - batch.size(),
                             state->buffer.size() - state->pos);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(state->buffer[state->pos + i]));
      }
      state->pos += take;
    }
    return batch;
  };
}

RowBatchPuller DiskTable::MakeIndexPuller(int64_t lo, int64_t hi,
                                          size_t batch_size,
                                          ScanPredicateList predicates) const {
  struct State {
    BTree::Cursor cursor;
    bool seeked = false;
  };
  auto state = std::make_shared<State>();
  auto preds = std::make_shared<ScanPredicateList>(std::move(predicates));
  return [this, lo, hi, batch_size, state, preds]() -> Result<RowBatch> {
    if (!state->seeked) {
      CALCITE_ASSIGN_OR_RETURN(state->cursor, index_->SeekFirst(lo));
      state->seeked = true;
    }
    RowBatch batch;
    std::vector<BTree::Entry> entries;
    while (batch.size() < batch_size && !state->cursor.AtEnd()) {
      entries.clear();
      CALCITE_RETURN_IF_ERROR(index_->NextRange(
          &state->cursor, hi, batch_size - batch.size(), &entries));
      // Entries arrive in key order, so consecutive rids often share a heap
      // page; hold one pin across the run of same-page fetches.
      PageGuard guard;
      for (const BTree::Entry& entry : entries) {
        if (!guard.valid() || guard.id() != entry.rid.page_id) {
          guard.Release();
          CALCITE_ASSIGN_OR_RETURN(guard, pool_->Fetch(entry.rid.page_id));
          if (GetPageType(guard.data()) != PageType::kHeap) {
            return Status::RuntimeError("index entry points at a non-heap page");
          }
        }
        SlottedPage page(const_cast<char*>(guard.data()));
        if (entry.rid.slot >= page.slot_count()) {
          return Status::RuntimeError("index entry points past the slot count");
        }
        size_t len = 0;
        const char* bytes = page.Get(entry.rid.slot, &len);
        CALCITE_ASSIGN_OR_RETURN(Row row, DecodeRow(bytes, len));
        // The key range is conservative; the pushed predicates decide.
        if (ScanPredicatesMatch(*preds, row)) batch.push_back(std::move(row));
      }
    }
    return batch;
  };
}

Result<RowBatchPuller> DiskTable::ScanBatched(size_t batch_size) const {
  if (batch_size == 0) batch_size = 1;
  return MakeHeapPuller(0, heap_pages_.size(), batch_size,
                        ScanPredicateList{});
}

Result<RowBatchPuller> DiskTable::ScanBatchedFiltered(
    size_t batch_size, ScanPredicateList predicates) const {
  ScanSpec spec;
  spec.batch_size = batch_size;
  spec.predicates = std::move(predicates);
  return OpenScan(spec);
}

Result<RowBatchPuller> DiskTable::OpenScan(const ScanSpec& raw_spec) const {
  ScanSpec spec = raw_spec.Normalized();

  if (spec.has_unit_range()) {
    // Morsel path: a contiguous run of scan units maps to a contiguous run
    // of heap pages; the access-path machinery does not apply (the unit
    // tiling is heap order by definition).
    size_t units = ScanUnitCount();
    if (spec.unit_begin > units) {
      return Status::InvalidArgument("scan unit range out of bounds");
    }
    size_t first_page = spec.unit_begin * options_.pages_per_run;
    size_t last_page = spec.unit_end >= units
                           ? heap_pages_.size()
                           : spec.unit_end * options_.pages_per_run;
    return ApplyScanSpecDecorators(
        MakeHeapPuller(first_page, last_page, spec.batch_size,
                       std::move(spec.predicates)),
        spec);
  }

  // kAuto in the spec defers to the table-level default (kAuto unless the
  // deprecated set_index_scan_enabled shim pinned a path).
  AccessPath path = spec.access_path == AccessPath::kAuto
                        ? default_access_path_
                        : spec.access_path;

  KeyRange range;
  bool use_index = false;
  if (path != AccessPath::kForceHeap && !spec.predicates.empty()) {
    range = DeriveKeyRange(spec.predicates, key_column_);
    if (range.usable) {
      if (path == AccessPath::kForceIndex) {
        use_index = true;
      } else if (const ColumnStats* key_stats = stats_.column(key_column_)) {
        // Cost-based choice: index only below the break-even fraction.
        use_index = range.empty ||
                    EstimateKeyRangeFraction(*key_stats, range.lo, range.hi) <=
                        options_.index_scan_max_fraction;
      } else {
        // No statistics: legacy rule — index whenever a range derives.
        use_index = true;
      }
    }
  }

  last_scan_used_index_ = use_index;
  RowBatchPuller puller;
  if (use_index) {
    puller = range.empty
                 ? ChunkRows({}, spec.batch_size)
                 : MakeIndexPuller(range.lo, range.hi, spec.batch_size,
                                   std::move(spec.predicates));
  } else {
    puller = MakeHeapPuller(0, heap_pages_.size(), spec.batch_size,
                            std::move(spec.predicates));
  }
  return ApplyScanSpecDecorators(std::move(puller), spec);
}

}  // namespace calcite::storage
