#include "storage/btree.h"

#include <cstring>

namespace calcite::storage {

using calcite::Result;
using calcite::Status;

namespace {

// ----------------------------- leaf layout ---------------------------------

constexpr size_t kLeafEntrySize = 14;  // int64 key + uint32 page + uint16 slot
constexpr size_t kLeafEntriesOffset = kPageHeaderSize;
constexpr size_t kLeafCapacity =
    (kPageSize - kLeafEntriesOffset) / kLeafEntrySize;

int64_t LeafKey(const char* page, size_t i) {
  return LoadAt<int64_t>(page, kLeafEntriesOffset + i * kLeafEntrySize);
}

Rid LeafRid(const char* page, size_t i) {
  size_t base = kLeafEntriesOffset + i * kLeafEntrySize;
  Rid rid;
  rid.page_id = LoadAt<uint32_t>(page, base + 8);
  rid.slot = LoadAt<uint16_t>(page, base + 12);
  return rid;
}

void LeafSetEntry(char* page, size_t i, int64_t key, Rid rid) {
  size_t base = kLeafEntriesOffset + i * kLeafEntrySize;
  StoreAt<int64_t>(page, base, key);
  StoreAt<uint32_t>(page, base + 8, rid.page_id);
  StoreAt<uint16_t>(page, base + 12, rid.slot);
}

/// First index with key >= probe (== count when all keys are smaller).
size_t LeafLowerBound(const char* page, int64_t probe) {
  size_t lo = 0, hi = GetPageCount(page);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) < probe) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// --------------------------- internal layout -------------------------------

constexpr size_t kInternalEntrySize = 12;  // int64 key + uint32 child
constexpr size_t kInternalChild0Offset = kPageHeaderSize;
constexpr size_t kInternalEntriesOffset = kPageHeaderSize + 4;
constexpr size_t kInternalCapacity =
    (kPageSize - kInternalEntriesOffset) / kInternalEntrySize;

int64_t InternalKey(const char* page, size_t i) {
  return LoadAt<int64_t>(page, kInternalEntriesOffset + i * kInternalEntrySize);
}

PageId InternalChild(const char* page, size_t i) {
  if (i == 0) return LoadAt<uint32_t>(page, kInternalChild0Offset);
  return LoadAt<uint32_t>(
      page, kInternalEntriesOffset + (i - 1) * kInternalEntrySize + 8);
}

void InternalSetEntry(char* page, size_t i, int64_t key, PageId child) {
  size_t base = kInternalEntriesOffset + i * kInternalEntrySize;
  StoreAt<int64_t>(page, base, key);
  StoreAt<uint32_t>(page, base + 8, child);
}

/// Child slot for `probe`: the child after the last separator <= probe.
size_t InternalChildIndex(const char* page, int64_t probe) {
  size_t lo = 0, hi = GetPageCount(page);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) <= probe) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void InitNode(char* page, PageType type) {
  std::memset(page, 0, kPageSize);
  SetPageType(page, type);
  SetPageCount(page, 0);
  SetNextPage(page, kInvalidPageId);
}

}  // namespace

Result<PageId> BTree::CreateEmpty(BufferPool* pool) {
  PageId root;
  CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool->New(&root));
  InitNode(guard.data(), PageType::kBTreeLeaf);
  guard.MarkDirty();
  return root;
}

Result<PageId> BTree::DescendToLeaf(int64_t key) const {
  PageId node = root_;
  for (;;) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(node));
    if (GetPageType(guard.data()) == PageType::kBTreeLeaf) return node;
    node = InternalChild(guard.data(),
                         InternalChildIndex(guard.data(), key));
  }
}

Result<std::optional<Rid>> BTree::Lookup(int64_t key) const {
  CALCITE_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(key));
  CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(leaf));
  const char* page = guard.data();
  size_t i = LeafLowerBound(page, key);
  if (i < GetPageCount(page) && LeafKey(page, i) == key) {
    return std::optional<Rid>(LeafRid(page, i));
  }
  return std::optional<Rid>(std::nullopt);
}

Result<BTree::Cursor> BTree::SeekFirst(int64_t lo) const {
  CALCITE_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(lo));
  CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(leaf));
  const char* page = guard.data();
  size_t i = LeafLowerBound(page, lo);
  Cursor cursor;
  if (i < GetPageCount(page)) {
    cursor.leaf = leaf;
    cursor.index = static_cast<uint16_t>(i);
  } else {
    // All keys on this leaf are < lo; the first candidate (if any) starts
    // the right sibling.
    cursor.leaf = GetNextPage(page);
    cursor.index = 0;
  }
  return cursor;
}

Status BTree::NextRange(Cursor* cursor, int64_t hi, size_t max_entries,
                        std::vector<Entry>* out) const {
  while (!cursor->AtEnd() && out->size() < max_entries) {
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(cursor->leaf));
    const char* page = guard.data();
    uint16_t count = GetPageCount(page);
    while (cursor->index < count && out->size() < max_entries) {
      int64_t key = LeafKey(page, cursor->index);
      if (key > hi) {
        cursor->leaf = kInvalidPageId;
        return Status::OK();
      }
      out->push_back(Entry{key, LeafRid(page, cursor->index)});
      ++cursor->index;
    }
    if (cursor->index >= count) {
      cursor->leaf = GetNextPage(page);
      cursor->index = 0;
    }
  }
  return Status::OK();
}

Result<std::vector<BTree::Entry>> BTree::ScanRange(int64_t lo,
                                                   int64_t hi) const {
  std::vector<Entry> out;
  if (lo > hi) return out;
  CALCITE_ASSIGN_OR_RETURN(Cursor cursor, SeekFirst(lo));
  while (!cursor.AtEnd()) {
    CALCITE_RETURN_IF_ERROR(NextRange(&cursor, hi, out.size() + 1024, &out));
  }
  return out;
}

Status BTree::Insert(int64_t key, Rid rid) {
  CALCITE_ASSIGN_OR_RETURN(SplitResult result, InsertRec(root_, key, rid));
  if (result.split) {
    // Root split: grow the tree by one level. The old root becomes the
    // leftmost child of a fresh internal root.
    PageId new_root;
    CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->New(&new_root));
    char* page = guard.data();
    InitNode(page, PageType::kBTreeInternal);
    StoreAt<uint32_t>(page, kInternalChild0Offset, root_);
    InternalSetEntry(page, 0, result.up_key, result.right);
    SetPageCount(page, 1);
    guard.MarkDirty();
    root_ = new_root;
  }
  return Status::OK();
}

Result<BTree::SplitResult> BTree::InsertRec(PageId node, int64_t key,
                                            Rid rid) {
  CALCITE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(node));
  char* page = guard.data();

  if (GetPageType(page) == PageType::kBTreeLeaf) {
    size_t count = GetPageCount(page);
    size_t pos = LeafLowerBound(page, key);
    if (pos < count && LeafKey(page, pos) == key) {
      return Status::InvalidArgument("duplicate primary key " +
                                     std::to_string(key));
    }
    if (count < kLeafCapacity) {
      char* base = page + kLeafEntriesOffset;
      std::memmove(base + (pos + 1) * kLeafEntrySize,
                   base + pos * kLeafEntrySize,
                   (count - pos) * kLeafEntrySize);
      LeafSetEntry(page, pos, key, rid);
      SetPageCount(page, static_cast<uint16_t>(count + 1));
      guard.MarkDirty();
      return SplitResult{};
    }
    // Full leaf: materialize all entries plus the new one in order, keep
    // the lower half here, move the upper half to a new right sibling.
    // Splits are rare enough that the copy-out keeps the code simple.
    std::vector<Entry> entries;
    entries.reserve(count + 1);
    for (size_t i = 0; i < count; ++i) {
      entries.push_back(Entry{LeafKey(page, i), LeafRid(page, i)});
    }
    entries.insert(entries.begin() + static_cast<ptrdiff_t>(pos),
                   Entry{key, rid});
    size_t left_count = entries.size() / 2;

    PageId right_id;
    CALCITE_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->New(&right_id));
    char* right = right_guard.data();
    InitNode(right, PageType::kBTreeLeaf);
    for (size_t i = left_count; i < entries.size(); ++i) {
      LeafSetEntry(right, i - left_count, entries[i].key, entries[i].rid);
    }
    SetPageCount(right, static_cast<uint16_t>(entries.size() - left_count));
    SetNextPage(right, GetNextPage(page));
    right_guard.MarkDirty();

    for (size_t i = 0; i < left_count; ++i) {
      LeafSetEntry(page, i, entries[i].key, entries[i].rid);
    }
    SetPageCount(page, static_cast<uint16_t>(left_count));
    SetNextPage(page, right_id);
    guard.MarkDirty();

    SplitResult result;
    result.split = true;
    result.up_key = entries[left_count].key;
    result.right = right_id;
    return result;
  }

  // Internal node: descend, then absorb a child split if one happened.
  size_t child_idx = InternalChildIndex(page, key);
  PageId child = InternalChild(page, child_idx);
  // The guard stays pinned across the recursion (pins = tree height), so
  // `page` remains valid when the child's split result comes back.
  CALCITE_ASSIGN_OR_RETURN(SplitResult child_split,
                           InsertRec(child, key, rid));
  if (!child_split.split) return SplitResult{};

  size_t count = GetPageCount(page);
  if (count < kInternalCapacity) {
    char* base = page + kInternalEntriesOffset;
    std::memmove(base + (child_idx + 1) * kInternalEntrySize,
                 base + child_idx * kInternalEntrySize,
                 (count - child_idx) * kInternalEntrySize);
    InternalSetEntry(page, child_idx, child_split.up_key, child_split.right);
    SetPageCount(page, static_cast<uint16_t>(count + 1));
    guard.MarkDirty();
    return SplitResult{};
  }

  // Full internal node: materialize separators + children, insert the
  // promoted entry, split around the middle separator (which moves up, not
  // sideways).
  struct Sep {
    int64_t key;
    PageId child;
  };
  std::vector<Sep> seps;
  seps.reserve(count + 1);
  for (size_t i = 0; i < count; ++i) {
    seps.push_back(Sep{InternalKey(page, i), InternalChild(page, i + 1)});
  }
  seps.insert(seps.begin() + static_cast<ptrdiff_t>(child_idx),
              Sep{child_split.up_key, child_split.right});
  PageId child0 = InternalChild(page, 0);

  size_t mid = seps.size() / 2;
  PageId right_id;
  CALCITE_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->New(&right_id));
  char* right = right_guard.data();
  InitNode(right, PageType::kBTreeInternal);
  StoreAt<uint32_t>(right, kInternalChild0Offset, seps[mid].child);
  for (size_t i = mid + 1; i < seps.size(); ++i) {
    InternalSetEntry(right, i - (mid + 1), seps[i].key, seps[i].child);
  }
  SetPageCount(right, static_cast<uint16_t>(seps.size() - mid - 1));
  right_guard.MarkDirty();

  std::memset(page + kPageHeaderSize, 0, kPageSize - kPageHeaderSize);
  StoreAt<uint32_t>(page, kInternalChild0Offset, child0);
  for (size_t i = 0; i < mid; ++i) {
    InternalSetEntry(page, i, seps[i].key, seps[i].child);
  }
  SetPageCount(page, static_cast<uint16_t>(mid));
  guard.MarkDirty();

  SplitResult result;
  result.split = true;
  result.up_key = seps[mid].key;
  result.right = right_id;
  return result;
}

}  // namespace calcite::storage
