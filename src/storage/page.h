#ifndef CALCITE_STORAGE_PAGE_H_
#define CALCITE_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <optional>

namespace calcite::storage {

/// The out-of-core storage engine works in fixed-size pages: the disk
/// manager reads and writes whole pages, the buffer pool caches frames of
/// exactly this size, and every on-disk structure (heap pages, B-tree
/// nodes, the table meta page) lays its bytes out inside one page.
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Discriminates the on-disk structures sharing the common page header.
enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,
  kHeap = 2,
  kBTreeLeaf = 3,
  kBTreeInternal = 4,
  /// ANALYZE catalog pages: a slotted chain holding the table's persisted
  /// statistics (disk_table.cc), pointed at by the meta page (format v2+).
  kStats = 5,
};

/// Unaligned little-endian field access. Page bytes are packed with no
/// padding, so every multi-byte field goes through memcpy — the portable
/// way to read/write unaligned storage without UB.
template <typename T>
inline T LoadAt(const char* base, size_t offset) {
  T v;
  std::memcpy(&v, base + offset, sizeof(T));
  return v;
}

template <typename T>
inline void StoreAt(char* base, size_t offset, T v) {
  std::memcpy(base + offset, &v, sizeof(T));
}

/// Common 12-byte page header, shared by every page type:
///
///   offset 0  uint16  page type (PageType)
///   offset 2  uint16  count — slots on a heap page, entries in a B-tree node
///   offset 4  uint16  free_end — heap pages only: start of the cell region
///   offset 6  uint16  reserved
///   offset 8  uint32  next — heap chain / B-tree leaf chain (kInvalidPageId
///                     when last)
inline constexpr size_t kPageHeaderSize = 12;

inline PageType GetPageType(const char* page) {
  return static_cast<PageType>(LoadAt<uint16_t>(page, 0));
}
inline void SetPageType(char* page, PageType t) {
  StoreAt<uint16_t>(page, 0, static_cast<uint16_t>(t));
}
inline uint16_t GetPageCount(const char* page) {
  return LoadAt<uint16_t>(page, 2);
}
inline void SetPageCount(char* page, uint16_t n) { StoreAt<uint16_t>(page, 2, n); }
inline PageId GetNextPage(const char* page) { return LoadAt<uint32_t>(page, 8); }
inline void SetNextPage(char* page, PageId id) { StoreAt<uint32_t>(page, 8, id); }

/// A record's physical address: heap page + slot. The B-tree's leaf
/// payload.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

/// Slotted heap page view over one page buffer (classic slotted layout):
/// the slot directory grows forward from the header, cell bytes grow
/// backward from the end of the page, and the space between is free.
///
///   [header][slot 0][slot 1]...        ...[cell 1][cell 0]
///
/// Each slot is {uint16 offset, uint16 length}. Records are never deleted
/// or updated in place (the engine is insert-only for now), so there is no
/// compaction path and slot indexes are stable — a Rid stays valid for the
/// life of the file.
class SlottedPage {
 public:
  explicit SlottedPage(char* data) : data_(data) {}

  static constexpr size_t kSlotSize = 4;

  void Init(PageType type) {
    std::memset(data_, 0, kPageSize);
    SetPageType(data_, type);
    SetPageCount(data_, 0);
    StoreAt<uint16_t>(data_, 4, static_cast<uint16_t>(kPageSize));
    SetNextPage(data_, kInvalidPageId);
  }

  uint16_t slot_count() const { return GetPageCount(data_); }
  uint16_t free_end() const { return LoadAt<uint16_t>(data_, 4); }
  PageId next_page() const { return GetNextPage(data_); }
  void set_next_page(PageId id) { SetNextPage(data_, id); }

  size_t FreeSpace() const {
    size_t used_front = kPageHeaderSize + slot_count() * kSlotSize;
    return free_end() > used_front ? free_end() - used_front : 0;
  }

  /// True if a record of `len` bytes (plus its slot) fits.
  bool Fits(size_t len) const { return FreeSpace() >= len + kSlotSize; }

  /// Appends a record; returns its slot index, or nullopt when full.
  std::optional<uint16_t> Insert(const char* bytes, size_t len) {
    if (!Fits(len)) return std::nullopt;
    uint16_t slot = slot_count();
    uint16_t cell_start = static_cast<uint16_t>(free_end() - len);
    std::memcpy(data_ + cell_start, bytes, len);
    StoreAt<uint16_t>(data_, kPageHeaderSize + slot * kSlotSize, cell_start);
    StoreAt<uint16_t>(data_, kPageHeaderSize + slot * kSlotSize + 2,
                      static_cast<uint16_t>(len));
    StoreAt<uint16_t>(data_, 4, cell_start);
    SetPageCount(data_, static_cast<uint16_t>(slot + 1));
    return slot;
  }

  /// Record bytes of `slot` (undefined for out-of-range slots; callers
  /// validate against slot_count()).
  const char* Get(uint16_t slot, size_t* len) const {
    uint16_t offset = LoadAt<uint16_t>(data_, kPageHeaderSize + slot * kSlotSize);
    *len = LoadAt<uint16_t>(data_, kPageHeaderSize + slot * kSlotSize + 2);
    return data_ + offset;
  }

  /// Largest record a freshly-initialized heap page can hold.
  static constexpr size_t MaxRecordSize() {
    return kPageSize - kPageHeaderSize - kSlotSize;
  }

 private:
  char* data_;
};

}  // namespace calcite::storage

#endif  // CALCITE_STORAGE_PAGE_H_
