#include "storage/row_codec.h"

#include <cstdint>
#include <cstring>

namespace calcite::storage {

using calcite::Result;
using calcite::Status;

namespace {

enum : uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
};

template <typename T>
void AppendRaw(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadRaw(const char* data, size_t len, size_t* pos, T* out) {
  if (*pos + sizeof(T) > len) return false;
  std::memcpy(out, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

Status EncodeRow(const Row& row, std::string* out) {
  if (row.size() > UINT16_MAX) {
    return Status::InvalidArgument("row too wide for the disk codec");
  }
  AppendRaw<uint16_t>(out, static_cast<uint16_t>(row.size()));
  for (const Value& v : row) {
    if (v.IsNull()) {
      out->push_back(static_cast<char>(kTagNull));
    } else if (v.is_bool()) {
      out->push_back(static_cast<char>(v.AsBool() ? kTagTrue : kTagFalse));
    } else if (v.is_int()) {
      out->push_back(static_cast<char>(kTagInt));
      AppendRaw<int64_t>(out, v.AsInt());
    } else if (v.is_double()) {
      out->push_back(static_cast<char>(kTagDouble));
      AppendRaw<double>(out, v.AsDouble());
    } else if (v.is_string()) {
      const std::string& s = v.AsString();
      if (s.size() > UINT32_MAX) {
        return Status::InvalidArgument("string too long for the disk codec");
      }
      out->push_back(static_cast<char>(kTagString));
      AppendRaw<uint32_t>(out, static_cast<uint32_t>(s.size()));
      out->append(s);
    } else {
      return Status::Unsupported(
          "disk tables store scalar values only (NULL/BOOLEAN/BIGINT/DOUBLE/"
          "VARCHAR); got " + v.ToString());
    }
  }
  return Status::OK();
}

Result<Row> DecodeRow(const char* data, size_t len) {
  size_t pos = 0;
  uint16_t fields;
  if (!ReadRaw(data, len, &pos, &fields)) {
    return Status::RuntimeError("corrupt record: truncated field count");
  }
  Row row;
  row.reserve(fields);
  for (uint16_t f = 0; f < fields; ++f) {
    if (pos >= len) {
      return Status::RuntimeError("corrupt record: truncated field tag");
    }
    uint8_t tag = static_cast<uint8_t>(data[pos++]);
    switch (tag) {
      case kTagNull:
        row.push_back(Value::Null());
        break;
      case kTagFalse:
        row.push_back(Value::Bool(false));
        break;
      case kTagTrue:
        row.push_back(Value::Bool(true));
        break;
      case kTagInt: {
        int64_t v;
        if (!ReadRaw(data, len, &pos, &v)) {
          return Status::RuntimeError("corrupt record: truncated BIGINT");
        }
        row.push_back(Value::Int(v));
        break;
      }
      case kTagDouble: {
        double v;
        if (!ReadRaw(data, len, &pos, &v)) {
          return Status::RuntimeError("corrupt record: truncated DOUBLE");
        }
        row.push_back(Value::Double(v));
        break;
      }
      case kTagString: {
        uint32_t n;
        if (!ReadRaw(data, len, &pos, &n)) {
          return Status::RuntimeError("corrupt record: truncated length");
        }
        if (pos + n > len) {
          return Status::RuntimeError("corrupt record: truncated VARCHAR");
        }
        row.push_back(Value::String(std::string(data + pos, n)));
        pos += n;
        break;
      }
      default:
        return Status::RuntimeError("corrupt record: unknown tag " +
                                    std::to_string(tag));
    }
  }
  if (pos != len) {
    return Status::RuntimeError("corrupt record: trailing bytes");
  }
  return row;
}

}  // namespace calcite::storage
