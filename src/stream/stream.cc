#include "stream/stream.h"

#include <map>

namespace calcite::stream {

namespace {

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Status StreamTable::Append(Row event) {
  if (rowtime_column_ < 0 ||
      static_cast<size_t>(rowtime_column_) >= event.size()) {
    return Status::InvalidArgument("event lacks the rowtime column");
  }
  if (!events_.empty()) {
    const Value& last =
        events_.back()[static_cast<size_t>(rowtime_column_)];
    const Value& now = event[static_cast<size_t>(rowtime_column_)];
    if (now.Compare(last) < 0) {
      return Status::InvalidArgument(
          "stream events must arrive in rowtime order (got " +
          now.ToString() + " after " + last.ToString() + ")");
    }
  }
  events_.push_back(std::move(event));
  columnar_.Invalidate();
  return Status::OK();
}

Result<std::vector<Row>> StreamExecutor::Run(StreamTable* table,
                                             std::vector<Row> events,
                                             size_t batch_size,
                                             EmitFn emit) {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  // Multiset of already-emitted rows: emission count per distinct row.
  std::map<Row, size_t, RowLess> emitted;
  std::vector<Row> all_emitted;

  size_t pos = 0;
  while (pos < events.size()) {
    size_t end = std::min(events.size(), pos + batch_size);
    for (size_t i = pos; i < end; ++i) {
      CALCITE_RETURN_IF_ERROR(table->Append(std::move(events[i])));
    }
    pos = end;

    auto result = connection_->Query(sql_);
    if (!result.ok()) return result.status();

    // Delta: rows (with multiplicity) not yet emitted. For monotonic
    // queries this is exactly the set of newly produced rows.
    std::map<Row, size_t, RowLess> current;
    for (const Row& row : result.value().rows) ++current[row];
    std::vector<Row> batch_emit;
    for (const auto& [row, count] : current) {
      size_t seen = 0;
      if (auto it = emitted.find(row); it != emitted.end()) seen = it->second;
      for (size_t i = seen; i < count; ++i) batch_emit.push_back(row);
      emitted[row] = std::max(seen, count);
    }
    if (emit && !batch_emit.empty()) emit(batch_emit);
    for (Row& row : batch_emit) all_emitted.push_back(std::move(row));
  }
  return all_emitted;
}

}  // namespace calcite::stream
