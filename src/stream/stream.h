#ifndef CALCITE_STREAM_STREAM_H_
#define CALCITE_STREAM_STREAM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "schema/table.h"
#include "tools/frameworks.h"
#include "util/status.h"

namespace calcite::stream {

/// A stream: "time-ordered sets of records or events that are not persisted
/// to the disk" (§1, §7.2). Backed in the simulation by an in-memory event
/// log ordered by the rowtime column, which is declared monotonic so the
/// validator accepts windowed streaming aggregations.
class StreamTable final : public Table {
 public:
  /// `rowtime_column`: index of the event-time column (monotonically
  /// non-decreasing across the log).
  StreamTable(RelDataTypePtr row_type, int rowtime_column)
      : row_type_(std::move(row_type)), rowtime_column_(rowtime_column) {}

  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }

  TableStats GetStatistic() const override {
    TableStats stat;
    stat.row_count = static_cast<double>(events_.size());
    stat.monotonic_columns = {rowtime_column_};
    return stat;
  }

  Result<std::vector<Row>> Scan() const override { return events_; }

  /// Replays the event log a batch at a time (arrival order preserved).
  Result<RowBatchPuller> ScanBatched(size_t batch_size) const override {
    return SliceRows(events_, batch_size);
  }

  /// Predicate pushdown only drops events, never reorders them, so the
  /// stream's arrival-order contract survives.
  Result<RowBatchPuller> ScanBatchedFiltered(
      size_t batch_size, ScanPredicateList predicates) const override {
    return FilterSliceRows(events_, batch_size, std::move(predicates));
  }

  bool IsStream() const override { return true; }

  /// Columnar replay of the log so far. Append() invalidates the cached
  /// decomposition; scans already in flight keep their snapshot alive.
  TableColumnsPtr MaterializedColumns(const TypeFactory&) const override {
    return columnar_.Get(events_, row_type_);
  }

  int rowtime_column() const { return rowtime_column_; }
  const std::vector<Row>& events() const { return events_; }

  /// Appends an event; rowtime must be >= the previous event's rowtime.
  Status Append(Row event);

 private:
  RelDataTypePtr row_type_;
  int rowtime_column_;
  std::vector<Row> events_;
  ColumnarCache columnar_;
};

/// Executes a STREAM query incrementally: events are delivered to the query
/// in arrival batches, and after each batch the executor emits the *new*
/// result rows — the "incoming records, not existing ones" semantics of the
/// STREAM directive. For monotonic queries (windowed aggregations grouped
/// on TUMBLE(rowtime, ...), filtered projections of the stream) the emitted
/// union over all batches equals the batch query over the full log.
///
/// Note on windows: an aggregate row for a window is only final once the
/// stream has advanced past the window end (the watermark); unfinished
/// windows are withheld.
class StreamExecutor {
 public:
  /// `connection` must resolve the stream table named in `sql`.
  StreamExecutor(Connection* connection, std::string sql)
      : connection_(connection), sql_(std::move(sql)) {}

  /// Callback receiving newly emitted rows after each batch.
  using EmitFn = std::function<void(const std::vector<Row>&)>;

  /// Replays `events` into `table` in `batch_size`-event batches, running
  /// the query after each batch and emitting the delta. Returns all emitted
  /// rows in order.
  Result<std::vector<Row>> Run(StreamTable* table, std::vector<Row> events,
                               size_t batch_size, EmitFn emit = nullptr);

 private:
  Connection* connection_;
  std::string sql_;
};

}  // namespace calcite::stream

#endif  // CALCITE_STREAM_STREAM_H_
