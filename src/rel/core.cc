#include "rel/core.h"

#include <cassert>

#include "rex/rex_util.h"
#include "util/string_utils.h"

namespace calcite {

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeft:
      return "left";
    case JoinType::kRight:
      return "right";
    case JoinType::kFull:
      return "full";
    case JoinType::kSemi:
      return "semi";
    case JoinType::kAnti:
      return "anti";
  }
  return "?";
}

std::string AggregateCall::ToString() const {
  std::string out = AggKindName(kind);
  out += "(";
  if (distinct) out += "DISTINCT ";
  if (kind == AggKind::kCountStar) {
    out += "*";
  } else {
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += "$" + std::to_string(args[i]);
    }
  }
  out += ")";
  return out;
}

std::string RelNode::Digest() const {
  std::string digest = op_name();
  digest += "#";
  digest += traits_.ToString();
  std::string attrs = DigestAttributes();
  if (!attrs.empty()) {
    digest += "{" + attrs + "}";
  }
  digest += "(";
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (i > 0) digest += ",";
    digest += inputs_[i]->Digest();
  }
  digest += ")";
  return digest;
}

std::string TableScan::DigestAttributes() const {
  return "table=[" + JoinStrings(qualified_name_, ".") + "]";
}

std::string Project::DigestAttributes() const {
  std::string out = "exprs=[";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += "], names=[";
  const auto& fields = row_type()->fields();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields[i].name;
  }
  return out + "]";
}

std::string Aggregate::DigestAttributes() const {
  std::string out = "group=[";
  for (size_t i = 0; i < group_keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + std::to_string(group_keys_[i]);
  }
  out += "], aggs=[";
  for (size_t i = 0; i < agg_calls_.size(); ++i) {
    if (i > 0) out += ", ";
    out += agg_calls_[i].ToString();
  }
  return out + "]";
}

std::string Sort::DigestAttributes() const {
  std::string out = "collation=" + collation_.ToString();
  if (offset_ > 0) out += ", offset=" + std::to_string(offset_);
  if (fetch_ >= 0) out += ", fetch=" + std::to_string(fetch_);
  return out;
}

std::string Values::DigestAttributes() const {
  std::string out = "tuples=[";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += RowToString(tuples_[i]);
  }
  return out + "]";
}

std::string WindowGroup::ToString() const {
  std::string out = "partition=[";
  for (size_t i = 0; i < partition_keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + std::to_string(partition_keys[i]);
  }
  out += "], order=" + order.ToString();
  out += is_rows ? ", ROWS" : ", RANGE";
  out += " preceding=" + std::to_string(preceding);
  out += " following=" + std::to_string(following);
  out += ", aggs=[";
  for (size_t i = 0; i < agg_calls.size(); ++i) {
    if (i > 0) out += ", ";
    out += agg_calls[i].ToString();
  }
  return out + "]";
}

std::string Window::DigestAttributes() const {
  std::string out = "groups=[";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i > 0) out += "; ";
    out += groups_[i].ToString();
  }
  return out + "]";
}

std::string Converter::DigestAttributes() const {
  return "from=[" + from()->name() + "], to=[" + to()->name() + "]";
}

bool Join::AnalyzeEquiKeys(std::vector<std::pair<int, int>>* keys,
                           std::vector<RexNodePtr>* remaining) const {
  keys->clear();
  remaining->clear();
  int left_count = left()->row_type()->field_count();
  for (const RexNodePtr& conjunct : RexUtil::FlattenAnd(condition_)) {
    const RexCall* call = AsCall(conjunct);
    bool handled = false;
    if (call != nullptr && call->op() == OpKind::kEquals) {
      const RexInputRef* a = AsInputRef(call->operand(0));
      const RexInputRef* b = AsInputRef(call->operand(1));
      if (a != nullptr && b != nullptr) {
        int ai = a->index();
        int bi = b->index();
        if (ai < left_count && bi >= left_count) {
          keys->push_back({ai, bi - left_count});
          handled = true;
        } else if (bi < left_count && ai >= left_count) {
          keys->push_back({bi, ai - left_count});
          handled = true;
        }
      }
    }
    if (!handled) remaining->push_back(conjunct);
  }
  return !keys->empty();
}

// --------------------------- row-type derivation ---------------------------

RelDataTypePtr DeriveProjectRowType(const std::vector<RexNodePtr>& exprs,
                                    const std::vector<std::string>& field_names,
                                    const TypeFactory& factory) {
  assert(exprs.size() == field_names.size());
  std::vector<RelDataTypeField> fields;
  fields.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    fields.push_back(
        {field_names[i], static_cast<int>(i), exprs[i]->type()});
  }
  return factory.CreateStructType(std::move(fields));
}

RelDataTypePtr DeriveJoinRowType(const RelDataTypePtr& left,
                                 const RelDataTypePtr& right, JoinType type,
                                 const TypeFactory& factory) {
  std::vector<RelDataTypeField> fields;
  bool left_nullable = type == JoinType::kRight || type == JoinType::kFull;
  bool right_nullable = type == JoinType::kLeft || type == JoinType::kFull;
  for (const RelDataTypeField& f : left->fields()) {
    RelDataTypePtr t =
        left_nullable ? factory.CreateWithNullability(f.type, true) : f.type;
    fields.push_back({f.name, static_cast<int>(fields.size()), std::move(t)});
  }
  if (type != JoinType::kSemi && type != JoinType::kAnti) {
    for (const RelDataTypeField& f : right->fields()) {
      RelDataTypePtr t = right_nullable
                             ? factory.CreateWithNullability(f.type, true)
                             : f.type;
      std::string name = f.name;
      // Disambiguate duplicated field names as Calcite does (name0).
      int suffix = 0;
      while (true) {
        bool clash = false;
        for (const RelDataTypeField& existing : fields) {
          if (EqualsIgnoreCase(existing.name, name)) {
            clash = true;
            break;
          }
        }
        if (!clash) break;
        name = f.name + std::to_string(suffix++);
      }
      fields.push_back({std::move(name), static_cast<int>(fields.size()),
                        std::move(t)});
    }
  }
  return factory.CreateStructType(std::move(fields));
}

RelDataTypePtr DeriveAggCallType(AggKind kind, const std::vector<int>& args,
                                 const RelDataTypePtr& input,
                                 const TypeFactory& factory) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kCountStar:
      return factory.CreateSqlType(SqlTypeName::kBigInt);
    case AggKind::kSum: {
      RelDataTypePtr arg = input->fields()[static_cast<size_t>(args[0])].type;
      // SUM of integers widens to BIGINT; of approx stays DOUBLE.
      if (IsExactNumericType(arg->type_name())) {
        return factory.CreateSqlType(SqlTypeName::kBigInt, true);
      }
      return factory.CreateSqlType(SqlTypeName::kDouble, true);
    }
    case AggKind::kAvg:
      return factory.CreateSqlType(SqlTypeName::kDouble, true);
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kSingleValue: {
      RelDataTypePtr arg = input->fields()[static_cast<size_t>(args[0])].type;
      return factory.CreateWithNullability(arg, true);
    }
  }
  return factory.CreateSqlType(SqlTypeName::kAny, true);
}

RelDataTypePtr DeriveAggregateRowType(const RelDataTypePtr& input,
                                      const std::vector<int>& group_keys,
                                      const std::vector<AggregateCall>& calls,
                                      const TypeFactory& factory) {
  std::vector<RelDataTypeField> fields;
  for (int key : group_keys) {
    const RelDataTypeField& f = input->fields()[static_cast<size_t>(key)];
    fields.push_back({f.name, static_cast<int>(fields.size()), f.type});
  }
  for (const AggregateCall& call : calls) {
    RelDataTypePtr type = call.type != nullptr
                              ? call.type
                              : DeriveAggCallType(call.kind, call.args, input,
                                                  factory);
    fields.push_back({call.name.empty()
                          ? std::string(AggKindName(call.kind))
                          : call.name,
                      static_cast<int>(fields.size()), std::move(type)});
  }
  return factory.CreateStructType(std::move(fields));
}

RelDataTypePtr DeriveWindowRowType(const RelDataTypePtr& input,
                                   const std::vector<WindowGroup>& groups,
                                   const TypeFactory& factory) {
  std::vector<RelDataTypeField> fields = input->fields();
  for (const WindowGroup& group : groups) {
    for (const AggregateCall& call : group.agg_calls) {
      RelDataTypePtr type = call.type != nullptr
                                ? call.type
                                : DeriveAggCallType(call.kind, call.args,
                                                    input, factory);
      fields.push_back({call.name.empty()
                            ? std::string(AggKindName(call.kind))
                            : call.name,
                        static_cast<int>(fields.size()), std::move(type)});
    }
  }
  return factory.CreateStructType(std::move(fields));
}

// --------------------------- logical constructors --------------------------

RelNodePtr LogicalTableScan::Create(TablePtr table,
                                    std::vector<std::string> name,
                                    const Convention* table_convention,
                                    const TypeFactory& factory) {
  RelDataTypePtr row_type = table->GetRowType(factory);
  return RelNodePtr(new LogicalTableScan(
      RelTraitSet(Convention::Logical()), std::move(row_type),
      std::move(table), std::move(name), table_convention));
}

RelNodePtr LogicalTableScan::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  assert(inputs.empty());
  (void)inputs;
  return RelNodePtr(new LogicalTableScan(std::move(traits), row_type(), table_,
                                         qualified_name_, table_convention_));
}

RelNodePtr LogicalFilter::Create(RelNodePtr input, RexNodePtr condition) {
  return RelNodePtr(new LogicalFilter(RelTraitSet(Convention::Logical()),
                                      std::move(input), std::move(condition)));
}

RelNodePtr LogicalFilter::Copy(RelTraitSet traits,
                               std::vector<RelNodePtr> inputs) const {
  assert(inputs.size() == 1);
  return RelNodePtr(new LogicalFilter(std::move(traits), row_type(),
                                      std::move(inputs[0]), condition_));
}

RelNodePtr LogicalProject::Create(RelNodePtr input,
                                  std::vector<RexNodePtr> exprs,
                                  const std::vector<std::string>& field_names,
                                  const TypeFactory& factory) {
  RelDataTypePtr row_type = DeriveProjectRowType(exprs, field_names, factory);
  return RelNodePtr(new LogicalProject(RelTraitSet(Convention::Logical()),
                                       std::move(row_type), std::move(input),
                                       std::move(exprs)));
}

RelNodePtr LogicalProject::Copy(RelTraitSet traits,
                                std::vector<RelNodePtr> inputs) const {
  assert(inputs.size() == 1);
  return RelNodePtr(new LogicalProject(std::move(traits), row_type(),
                                       std::move(inputs[0]), exprs_));
}

RelNodePtr LogicalJoin::Create(RelNodePtr left, RelNodePtr right,
                               RexNodePtr condition, JoinType join_type,
                               const TypeFactory& factory) {
  RelDataTypePtr row_type = DeriveJoinRowType(left->row_type(),
                                              right->row_type(), join_type,
                                              factory);
  return RelNodePtr(new LogicalJoin(
      RelTraitSet(Convention::Logical()), std::move(row_type), std::move(left),
      std::move(right), std::move(condition), join_type));
}

RelNodePtr LogicalJoin::Copy(RelTraitSet traits,
                             std::vector<RelNodePtr> inputs) const {
  assert(inputs.size() == 2);
  return RelNodePtr(new LogicalJoin(std::move(traits), row_type(),
                                    std::move(inputs[0]), std::move(inputs[1]),
                                    condition_, join_type_));
}

RelNodePtr LogicalAggregate::Create(RelNodePtr input,
                                    std::vector<int> group_keys,
                                    std::vector<AggregateCall> agg_calls,
                                    const TypeFactory& factory) {
  for (AggregateCall& call : agg_calls) {
    if (call.type == nullptr) {
      call.type = DeriveAggCallType(call.kind, call.args, input->row_type(),
                                    factory);
    }
  }
  RelDataTypePtr row_type = DeriveAggregateRowType(input->row_type(),
                                                   group_keys, agg_calls,
                                                   factory);
  return RelNodePtr(new LogicalAggregate(
      RelTraitSet(Convention::Logical()), std::move(row_type),
      std::move(input), std::move(group_keys), std::move(agg_calls)));
}

RelNodePtr LogicalAggregate::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  assert(inputs.size() == 1);
  return RelNodePtr(new LogicalAggregate(std::move(traits), row_type(),
                                         std::move(inputs[0]), group_keys_,
                                         agg_calls_));
}

RelNodePtr LogicalSort::Create(RelNodePtr input, RelCollation collation,
                               int64_t offset, int64_t fetch) {
  return RelNodePtr(new LogicalSort(RelTraitSet(Convention::Logical()),
                                    std::move(input), std::move(collation),
                                    offset, fetch));
}

RelNodePtr LogicalSort::Copy(RelTraitSet traits,
                             std::vector<RelNodePtr> inputs) const {
  assert(inputs.size() == 1);
  return RelNodePtr(new LogicalSort(std::move(traits), row_type(),
                                    std::move(inputs[0]), collation_, offset_,
                                    fetch_));
}

std::string LogicalSetOp::op_name() const {
  switch (set_kind()) {
    case Kind::kUnion:
      return "LogicalUnion";
    case Kind::kIntersect:
      return "LogicalIntersect";
    case Kind::kMinus:
      return "LogicalMinus";
  }
  return "LogicalSetOp";
}

RelNodePtr LogicalSetOp::Create(std::vector<RelNodePtr> inputs, Kind kind,
                                bool all, const TypeFactory& factory) {
  assert(!inputs.empty());
  // Result type: least-restrictive across inputs, keeping the first input's
  // field names.
  std::vector<RelDataTypeField> fields = inputs[0]->row_type()->fields();
  for (size_t f = 0; f < fields.size(); ++f) {
    std::vector<RelDataTypePtr> types;
    for (const RelNodePtr& input : inputs) {
      types.push_back(input->row_type()->fields()[f].type);
    }
    RelDataTypePtr lr = factory.LeastRestrictive(types);
    if (lr != nullptr) fields[f].type = lr;
  }
  RelDataTypePtr row_type = factory.CreateStructType(std::move(fields));
  return RelNodePtr(new LogicalSetOp(RelTraitSet(Convention::Logical()),
                                     std::move(row_type), std::move(inputs),
                                     kind, all));
}

RelNodePtr LogicalSetOp::Copy(RelTraitSet traits,
                              std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new LogicalSetOp(std::move(traits), row_type(),
                                     std::move(inputs), set_kind_, all_));
}

RelNodePtr LogicalValues::Create(RelDataTypePtr row_type,
                                 std::vector<Row> tuples) {
  return RelNodePtr(new LogicalValues(RelTraitSet(Convention::Logical()),
                                      std::move(row_type), std::move(tuples)));
}

RelNodePtr LogicalValues::Copy(RelTraitSet traits,
                               std::vector<RelNodePtr> inputs) const {
  assert(inputs.empty());
  (void)inputs;
  return RelNodePtr(
      new LogicalValues(std::move(traits), row_type(), tuples_));
}

RelNodePtr LogicalWindow::Create(RelNodePtr input,
                                 std::vector<WindowGroup> groups,
                                 const TypeFactory& factory) {
  for (WindowGroup& group : groups) {
    for (AggregateCall& call : group.agg_calls) {
      if (call.type == nullptr) {
        call.type = DeriveAggCallType(call.kind, call.args, input->row_type(),
                                      factory);
      }
    }
  }
  RelDataTypePtr row_type =
      DeriveWindowRowType(input->row_type(), groups, factory);
  return RelNodePtr(new LogicalWindow(RelTraitSet(Convention::Logical()),
                                      std::move(row_type), std::move(input),
                                      std::move(groups)));
}

RelNodePtr LogicalWindow::Copy(RelTraitSet traits,
                               std::vector<RelNodePtr> inputs) const {
  assert(inputs.size() == 1);
  return RelNodePtr(new LogicalWindow(std::move(traits), row_type(),
                                      std::move(inputs[0]), groups_));
}

RelNodePtr LogicalDelta::Create(RelNodePtr input) {
  return RelNodePtr(
      new LogicalDelta(RelTraitSet(Convention::Logical()), std::move(input)));
}

RelNodePtr LogicalDelta::Copy(RelTraitSet traits,
                              std::vector<RelNodePtr> inputs) const {
  assert(inputs.size() == 1);
  return RelNodePtr(
      new LogicalDelta(std::move(traits), row_type(), std::move(inputs[0])));
}

}  // namespace calcite
