#ifndef CALCITE_REL_REL_NODE_H_
#define CALCITE_REL_REL_NODE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/column_batch.h"
#include "exec/row_batch.h"
#include "plan/traits.h"
#include "rex/rex_node.h"
#include "type/rel_data_type.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

class RelNode;
class MetadataQuery;
using RelNodePtr = std::shared_ptr<const RelNode>;

/// Join semantics supported by the Join operator.
enum class JoinType { kInner, kLeft, kRight, kFull, kSemi, kAnti };

/// Returns "inner", "left", ...
const char* JoinTypeName(JoinType type);

/// One aggregate function application within an Aggregate or Window
/// operator: e.g. `SUM(DISTINCT $2) AS total`.
struct AggregateCall {
  AggKind kind = AggKind::kCountStar;
  bool distinct = false;
  std::vector<int> args;  // input field indexes; empty for COUNT(*)
  std::string name;       // output field name
  RelDataTypePtr type;    // output type

  /// "SUM($2)" / "COUNT(DISTINCT $0)".
  std::string ToString() const;
};

/// Base class of all relational operators (§4). A RelNode is an immutable
/// node in an operator tree/DAG: it has input operators, an output row type,
/// and a trait set describing its physical properties (calling convention
/// and collation). Calcite "does not use different entities to represent
/// logical and physical operators"; the convention trait distinguishes them.
class RelNode : public std::enable_shared_from_this<RelNode> {
 public:
  virtual ~RelNode() = default;

  RelNode(const RelNode&) = delete;
  RelNode& operator=(const RelNode&) = delete;

  const RelTraitSet& traits() const { return traits_; }
  const Convention* convention() const { return traits_.convention(); }
  const RelDataTypePtr& row_type() const { return row_type_; }
  const std::vector<RelNodePtr>& inputs() const { return inputs_; }
  const RelNodePtr& input(int i) const {
    return inputs_[static_cast<size_t>(i)];
  }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }

  /// Operator display name, e.g. "LogicalFilter", "EnumerableHashJoin",
  /// "CassandraSort".
  virtual std::string op_name() const = 0;

  /// The node's attributes rendered for digests/EXPLAIN (without inputs),
  /// e.g. "condition=[>($1, 10)]".
  virtual std::string DigestAttributes() const { return ""; }

  /// Creates a copy of this node with new traits and inputs; all other
  /// attributes are preserved. The planner uses this to re-parent
  /// expressions onto equivalence-set subsets.
  virtual RelNodePtr Copy(RelTraitSet traits,
                          std::vector<RelNodePtr> inputs) const = 0;

  /// Convenience: copy with same traits.
  RelNodePtr CopyWithNewInputs(std::vector<RelNodePtr> inputs) const {
    return Copy(traits_, std::move(inputs));
  }

  /// Recursive canonical digest: "op{attrs}(inputDigest,...)". Two nodes
  /// with equal digests are semantically identical expressions; the Volcano
  /// planner registers digests to detect duplicates and merge equivalence
  /// sets (§6).
  std::string Digest() const;

  /// The cost of executing *this operator alone* (not its inputs), or
  /// nullopt to let the default metadata provider estimate it. Adapter
  /// nodes override this to advertise push-down benefits.
  virtual std::optional<RelOptCost> SelfCost(MetadataQuery*) const {
    return std::nullopt;
  }

  /// Row-count estimate override for this node, or nullopt for the default
  /// provider's formula.
  virtual std::optional<double> SelfRowCount(MetadataQuery*) const {
    return std::nullopt;
  }

  /// Cumulative-cost override. Used by planner subset placeholders, whose
  /// cumulative cost is the best cost of their equivalence subset rather
  /// than a sum over inputs.
  virtual std::optional<RelOptCost> SelfCumulativeCost(MetadataQuery*) const {
    return std::nullopt;
  }

  /// Column-uniqueness override; subset placeholders delegate to their
  /// equivalence set's canonical expression.
  virtual std::optional<bool> SelfColumnsUnique(
      MetadataQuery*, const std::vector<int>&) const {
    return std::nullopt;
  }

  /// Executes the node, materializing its full result. Only physical
  /// (non-logical convention) operators are executable; logical operators
  /// return an error. Execution is pull-based internally (iterator
  /// interface; §5) but the public surface materializes for simplicity.
  virtual Result<std::vector<Row>> Execute() const {
    return Status::PlanError("operator " + op_name() +
                             " is not executable (logical convention)");
  }

  /// Executes the node as a vectorized pull pipeline: the returned puller
  /// yields RowBatch chunks of at most `opts.batch_size` rows (an empty
  /// batch ends the stream). The enumerable convention's operators override
  /// this with native batch implementations; foreign-convention adapter
  /// nodes inherit this default, which materializes through Execute() and
  /// re-chunks — exactly the per-row transfer the EnumerableInterpreter's
  /// cost model charges for. The returned puller shares ownership of this
  /// node, so it stays valid after the caller drops its plan reference.
  virtual Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts) const {
    auto rows = Execute();
    if (!rows.ok()) return rows.status();
    RowBatchPuller puller = ChunkRows(std::move(rows).value(), opts.batch_size);
    RelNodePtr self = shared_from_this();
    return RowBatchPuller(
        [self, puller]() -> Result<RowBatch> { return puller(); });
  }

  /// Selection-aware batch execution: like ExecuteBatched, but each yielded
  /// batch may carry a selection vector naming its live rows, so a filter
  /// can hand its selection to the consumer instead of physically
  /// compacting the batch. Selection-aware consumers (project, aggregate,
  /// join probes, the morsel-parallel exchange) iterate only the selected
  /// indexes; everything else bridges through CompactSelBatches. The
  /// default lifts ExecuteBatched's compact batches (all rows live), so
  /// only operators that benefit — today the enumerable Filter — override
  /// it. Same ownership contract as ExecuteBatched.
  virtual Result<SelBatchPuller> ExecuteSelBatched(
      const ExecOptions& opts) const {
    auto batched = ExecuteBatched(opts);
    if (!batched.ok()) return batched.status();
    return LiftToSelBatches(std::move(batched).value());
  }

  /// Columnar batch execution: when this operator can produce its output as
  /// column-major ColumnBatch streams natively (zero row materialization),
  /// it returns a puller; nullopt means "no native columnar path" and the
  /// caller stays on the row protocol. Only the converted enumerable
  /// operators (table scan over columnar-capable tables, filter, project)
  /// override this; consumers (aggregate, join probe, the conversion
  /// boundary) probe their input with it. Implementations must respect
  /// opts.enable_columnar and return nullopt when it is off. Same ownership
  /// contract as ExecuteBatched: the puller shares ownership of the node,
  /// and each yielded batch owns (or pins) everything its columns point
  /// into.
  virtual std::optional<Result<ColumnBatchPuller>> TryExecuteColumnar(
      const ExecOptions& opts) const {
    (void)opts;
    return std::nullopt;
  }

 protected:
  RelNode(RelTraitSet traits, RelDataTypePtr row_type,
          std::vector<RelNodePtr> inputs)
      : traits_(std::move(traits)),
        row_type_(std::move(row_type)),
        inputs_(std::move(inputs)) {}

 private:
  RelTraitSet traits_;
  RelDataTypePtr row_type_;
  std::vector<RelNodePtr> inputs_;
};

}  // namespace calcite

#endif  // CALCITE_REL_REL_NODE_H_
