#ifndef CALCITE_REL_CORE_H_
#define CALCITE_REL_CORE_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rel/rel_node.h"
#include "schema/schema.h"
#include "schema/table.h"

namespace calcite {

// ---------------------------------------------------------------------------
// Abstract core operators. Adapter conventions subclass these; the Logical*
// classes below are their logical-convention instantiations. This mirrors
// Calcite's core/logical split (§4).
// ---------------------------------------------------------------------------

/// Reads all rows of a table. "When a query is parsed and converted to a
/// relational algebra expression, an operator is created for each table
/// representing a scan of the data on that table. It is the minimal
/// interface that an adapter must implement." (§5)
class TableScan : public RelNode {
 public:
  const TablePtr& table() const { return table_; }
  const std::vector<std::string>& qualified_name() const {
    return qualified_name_;
  }
  /// Convention of the backend that stores this table.
  const Convention* table_convention() const { return table_convention_; }

  std::string DigestAttributes() const override;

  std::optional<double> SelfRowCount(MetadataQuery*) const override {
    return table_->GetStatistic().row_count;
  }

 protected:
  TableScan(RelTraitSet traits, RelDataTypePtr row_type, TablePtr table,
            std::vector<std::string> qualified_name,
            const Convention* table_convention)
      : RelNode(std::move(traits), std::move(row_type), {}),
        table_(std::move(table)),
        qualified_name_(std::move(qualified_name)),
        table_convention_(table_convention) {}

  TablePtr table_;
  std::vector<std::string> qualified_name_;
  const Convention* table_convention_;
};

/// Emits the input rows that satisfy a boolean condition.
class Filter : public RelNode {
 public:
  const RexNodePtr& condition() const { return condition_; }

  std::string DigestAttributes() const override {
    return "condition=[" + condition_->ToString() + "]";
  }

 protected:
  Filter(RelTraitSet traits, RelNodePtr input, RexNodePtr condition)
      : RelNode(std::move(traits), input->row_type(), {input}),
        condition_(std::move(condition)) {}
  // Constructor for planner copies where the input may be a subset
  // placeholder whose row type must be supplied explicitly.
  Filter(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
         RexNodePtr condition)
      : RelNode(std::move(traits), std::move(row_type), {std::move(input)}),
        condition_(std::move(condition)) {}

  RexNodePtr condition_;
};

/// Computes a list of scalar expressions over each input row.
class Project : public RelNode {
 public:
  const std::vector<RexNodePtr>& exprs() const { return exprs_; }

  std::string DigestAttributes() const override;

 protected:
  Project(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
          std::vector<RexNodePtr> exprs)
      : RelNode(std::move(traits), std::move(row_type), {std::move(input)}),
        exprs_(std::move(exprs)) {}

  std::vector<RexNodePtr> exprs_;
};

/// Combines two inputs on a join condition. The output row type is the
/// concatenation of the input row types (right side fields become nullable
/// for LEFT/FULL, left side for RIGHT/FULL; SEMI/ANTI emit only the left).
class Join : public RelNode {
 public:
  const RexNodePtr& condition() const { return condition_; }
  JoinType join_type() const { return join_type_; }
  const RelNodePtr& left() const { return input(0); }
  const RelNodePtr& right() const { return input(1); }

  std::string DigestAttributes() const override {
    return std::string("condition=[") + condition_->ToString() +
           "], joinType=[" + JoinTypeName(join_type_) + "]";
  }

  /// Extracts equi-join keys: pairs (left_field, right_field_offset_in_join)
  /// from conjuncts of the form $l = $r. Non-equi conjuncts are reported in
  /// `remaining`. Returns false if the condition has no equi part.
  bool AnalyzeEquiKeys(std::vector<std::pair<int, int>>* keys,
                       std::vector<RexNodePtr>* remaining) const;

 protected:
  Join(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr left,
       RelNodePtr right, RexNodePtr condition, JoinType join_type)
      : RelNode(std::move(traits), std::move(row_type),
                {std::move(left), std::move(right)}),
        condition_(std::move(condition)),
        join_type_(join_type) {}

  RexNodePtr condition_;
  JoinType join_type_;
};

/// Groups rows by key columns and computes aggregate functions.
class Aggregate : public RelNode {
 public:
  const std::vector<int>& group_keys() const { return group_keys_; }
  const std::vector<AggregateCall>& agg_calls() const { return agg_calls_; }

  std::string DigestAttributes() const override;

 protected:
  Aggregate(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
            std::vector<int> group_keys, std::vector<AggregateCall> agg_calls)
      : RelNode(std::move(traits), std::move(row_type), {std::move(input)}),
        group_keys_(std::move(group_keys)),
        agg_calls_(std::move(agg_calls)) {}

  std::vector<int> group_keys_;
  std::vector<AggregateCall> agg_calls_;
};

/// Sorts the input by a collation; optionally applies OFFSET/FETCH (LIMIT).
class Sort : public RelNode {
 public:
  const RelCollation& collation() const { return collation_; }
  /// Number of leading rows to skip; 0 for none.
  int64_t offset() const { return offset_; }
  /// Max rows to return; -1 for unlimited.
  int64_t fetch() const { return fetch_; }

  std::string DigestAttributes() const override;

 protected:
  Sort(RelTraitSet traits, RelNodePtr input, RelCollation collation,
       int64_t offset, int64_t fetch)
      : RelNode(std::move(traits), input->row_type(), {input}),
        collation_(std::move(collation)),
        offset_(offset),
        fetch_(fetch) {}
  Sort(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
       RelCollation collation, int64_t offset, int64_t fetch)
      : RelNode(std::move(traits), std::move(row_type), {std::move(input)}),
        collation_(std::move(collation)),
        offset_(offset),
        fetch_(fetch) {}

  RelCollation collation_;
  int64_t offset_;
  int64_t fetch_;
};

/// Base of the set operators UNION / INTERSECT / MINUS.
class SetOp : public RelNode {
 public:
  enum class Kind { kUnion, kIntersect, kMinus };

  Kind set_kind() const { return set_kind_; }
  /// True for the ALL variant (bag semantics).
  bool all() const { return all_; }

  std::string DigestAttributes() const override {
    return std::string("all=[") + (all_ ? "true" : "false") + "]";
  }

 protected:
  SetOp(RelTraitSet traits, RelDataTypePtr row_type,
        std::vector<RelNodePtr> inputs, Kind kind, bool all)
      : RelNode(std::move(traits), std::move(row_type), std::move(inputs)),
        set_kind_(kind),
        all_(all) {}

  Kind set_kind_;
  bool all_;
};

/// A constant relation: an inline list of tuples.
class Values : public RelNode {
 public:
  const std::vector<Row>& tuples() const { return tuples_; }

  std::string DigestAttributes() const override;

  std::optional<double> SelfRowCount(MetadataQuery*) const override {
    return static_cast<double>(tuples_.size());
  }

 protected:
  Values(RelTraitSet traits, RelDataTypePtr row_type, std::vector<Row> tuples)
      : RelNode(std::move(traits), std::move(row_type), {}),
        tuples_(std::move(tuples)) {}

  std::vector<Row> tuples_;
};

/// Specification of one window within a Window operator (§4: "Calcite
/// introduces a window operator that encapsulates the window definition,
/// i.e., upper and lower bound, partitioning etc., and the aggregate
/// functions to execute on each window").
struct WindowGroup {
  std::vector<int> partition_keys;
  RelCollation order;
  /// True for ROWS frames (physical offsets); false for RANGE frames
  /// (value offsets on the ordering key).
  bool is_rows = false;
  /// Lower bound: how far the frame extends before the current row
  /// (rows or range units); -1 means UNBOUNDED PRECEDING.
  int64_t preceding = -1;
  /// Upper bound after the current row; 0 means CURRENT ROW.
  int64_t following = 0;
  std::vector<AggregateCall> agg_calls;

  std::string ToString() const;
};

/// Computes windowed aggregate functions. Output = input fields followed by
/// one field per aggregate call.
class Window : public RelNode {
 public:
  const std::vector<WindowGroup>& groups() const { return groups_; }

  std::string DigestAttributes() const override;

 protected:
  Window(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
         std::vector<WindowGroup> groups)
      : RelNode(std::move(traits), std::move(row_type), {std::move(input)}),
        groups_(std::move(groups)) {}

  std::vector<WindowGroup> groups_;
};

/// Marks the streaming interpretation of a query (§7.2): `SELECT STREAM ...`
/// wraps the source in a Delta operator, asking for incoming rows rather
/// than existing ones.
class Delta : public RelNode {
 public:
  std::string DigestAttributes() const override { return ""; }

 protected:
  Delta(RelTraitSet traits, RelNodePtr input)
      : RelNode(std::move(traits), input->row_type(), {input}) {}
  Delta(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input)
      : RelNode(std::move(traits), std::move(row_type), {std::move(input)}) {}
};

/// Converts an expression from one calling convention to another (§4:
/// "relational operators can implement a converter interface that indicates
/// how to convert traits of an expression from one value to another").
/// Concrete converters live with their target convention's adapter.
class Converter : public RelNode {
 public:
  const Convention* from() const { return input(0)->convention(); }
  const Convention* to() const { return convention(); }

  std::string DigestAttributes() const override;

 protected:
  Converter(RelTraitSet traits, RelNodePtr input)
      : RelNode(std::move(traits), input->row_type(), {input}) {}
  Converter(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input)
      : RelNode(std::move(traits), std::move(row_type), {std::move(input)}) {}
};

// ---------------------------------------------------------------------------
// Logical (convention-free) operators: what the SQL converter and RelBuilder
// produce, before the planner assigns implementations.
// ---------------------------------------------------------------------------

class LogicalTableScan final : public TableScan {
 public:
  static RelNodePtr Create(TablePtr table, std::vector<std::string> name,
                           const Convention* table_convention,
                           const TypeFactory& factory);

  std::string op_name() const override { return "LogicalTableScan"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using TableScan::TableScan;
};

class LogicalFilter final : public Filter {
 public:
  static RelNodePtr Create(RelNodePtr input, RexNodePtr condition);

  std::string op_name() const override { return "LogicalFilter"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Filter::Filter;
};

class LogicalProject final : public Project {
 public:
  /// Field names must match exprs in count; the row type is derived.
  static RelNodePtr Create(RelNodePtr input, std::vector<RexNodePtr> exprs,
                           const std::vector<std::string>& field_names,
                           const TypeFactory& factory);

  std::string op_name() const override { return "LogicalProject"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Project::Project;
};

class LogicalJoin final : public Join {
 public:
  static RelNodePtr Create(RelNodePtr left, RelNodePtr right,
                           RexNodePtr condition, JoinType join_type,
                           const TypeFactory& factory);

  std::string op_name() const override { return "LogicalJoin"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Join::Join;
};

class LogicalAggregate final : public Aggregate {
 public:
  static RelNodePtr Create(RelNodePtr input, std::vector<int> group_keys,
                           std::vector<AggregateCall> agg_calls,
                           const TypeFactory& factory);

  std::string op_name() const override { return "LogicalAggregate"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Aggregate::Aggregate;
};

class LogicalSort final : public Sort {
 public:
  static RelNodePtr Create(RelNodePtr input, RelCollation collation,
                           int64_t offset = 0, int64_t fetch = -1);

  std::string op_name() const override { return "LogicalSort"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Sort::Sort;
};

class LogicalSetOp final : public SetOp {
 public:
  static RelNodePtr Create(std::vector<RelNodePtr> inputs, Kind kind, bool all,
                           const TypeFactory& factory);

  std::string op_name() const override;
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using SetOp::SetOp;
};

class LogicalValues final : public Values {
 public:
  static RelNodePtr Create(RelDataTypePtr row_type, std::vector<Row> tuples);

  std::string op_name() const override { return "LogicalValues"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Values::Values;
};

class LogicalWindow final : public Window {
 public:
  static RelNodePtr Create(RelNodePtr input, std::vector<WindowGroup> groups,
                           const TypeFactory& factory);

  std::string op_name() const override { return "LogicalWindow"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Window::Window;
};

class LogicalDelta final : public Delta {
 public:
  static RelNodePtr Create(RelNodePtr input);

  std::string op_name() const override { return "LogicalDelta"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;

 private:
  using Delta::Delta;
};

// ---------------------------------------------------------------------------
// Row-type derivation helpers shared by logical and physical operators.
// ---------------------------------------------------------------------------

/// Output type of a projection: exprs[i] typed, named field_names[i].
RelDataTypePtr DeriveProjectRowType(const std::vector<RexNodePtr>& exprs,
                                    const std::vector<std::string>& field_names,
                                    const TypeFactory& factory);

/// Output type of a join of the given type over the two input row types.
RelDataTypePtr DeriveJoinRowType(const RelDataTypePtr& left,
                                 const RelDataTypePtr& right, JoinType type,
                                 const TypeFactory& factory);

/// Output type of an aggregate: group key fields then agg call fields.
RelDataTypePtr DeriveAggregateRowType(const RelDataTypePtr& input,
                                      const std::vector<int>& group_keys,
                                      const std::vector<AggregateCall>& calls,
                                      const TypeFactory& factory);

/// Output type of a window: input fields then agg call fields per group.
RelDataTypePtr DeriveWindowRowType(const RelDataTypePtr& input,
                                   const std::vector<WindowGroup>& groups,
                                   const TypeFactory& factory);

/// Result type of an aggregate function over the given input field types.
RelDataTypePtr DeriveAggCallType(AggKind kind, const std::vector<int>& args,
                                 const RelDataTypePtr& input,
                                 const TypeFactory& factory);

}  // namespace calcite

#endif  // CALCITE_REL_CORE_H_
