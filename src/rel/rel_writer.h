#ifndef CALCITE_REL_REL_WRITER_H_
#define CALCITE_REL_REL_WRITER_H_

#include <string>

#include "rel/rel_node.h"

namespace calcite {

/// Renders a plan tree in Calcite's EXPLAIN format:
///
///   LogicalAggregate(group=[$0], aggs=[COUNT()])
///     LogicalFilter(condition=[IS NOT NULL($2)])
///       LogicalTableScan(table=[sales])
///
/// With `include_traits`, each line is suffixed with the node's trait set —
/// useful when inspecting convention assignment (Figure 2).
std::string ExplainPlan(const RelNodePtr& node, bool include_traits = false);

/// Counts the nodes in a plan tree.
int PlanNodeCount(const RelNodePtr& node);

}  // namespace calcite

#endif  // CALCITE_REL_REL_WRITER_H_
