#include "rel/rel_writer.h"

namespace calcite {

namespace {

void ExplainRec(const RelNodePtr& node, bool include_traits, int depth,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node->op_name());
  std::string attrs = node->DigestAttributes();
  out->push_back('(');
  out->append(attrs);
  out->push_back(')');
  if (include_traits) {
    out->append(": ");
    out->append(node->traits().ToString());
  }
  out->push_back('\n');
  for (const RelNodePtr& input : node->inputs()) {
    ExplainRec(input, include_traits, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const RelNodePtr& node, bool include_traits) {
  std::string out;
  ExplainRec(node, include_traits, 0, &out);
  return out;
}

int PlanNodeCount(const RelNodePtr& node) {
  int count = 1;
  for (const RelNodePtr& input : node->inputs()) {
    count += PlanNodeCount(input);
  }
  return count;
}

}  // namespace calcite
