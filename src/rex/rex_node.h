#ifndef CALCITE_REX_REX_NODE_H_
#define CALCITE_REX_REX_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "rex/operator.h"
#include "type/rel_data_type.h"
#include "type/value.h"

namespace calcite {

class RexNode;
using RexNodePtr = std::shared_ptr<const RexNode>;

/// A row expression — a scalar expression evaluated against the fields of an
/// input row. RexNodes are immutable and shared between plans; every node
/// carries its static type. This mirrors Calcite's RexNode (§4).
class RexNode {
 public:
  enum class NodeKind { kInputRef, kLiteral, kCall };

  virtual ~RexNode() = default;

  NodeKind node_kind() const { return node_kind_; }
  const RelDataTypePtr& type() const { return type_; }

  bool is_input_ref() const { return node_kind_ == NodeKind::kInputRef; }
  bool is_literal() const { return node_kind_ == NodeKind::kLiteral; }
  bool is_call() const { return node_kind_ == NodeKind::kCall; }

  /// Canonical textual form used in digests and EXPLAIN output, e.g.
  /// "=($0, 10)" or "AND(>($1, 5), IS NOT NULL($2))".
  virtual std::string ToString() const = 0;

 protected:
  RexNode(NodeKind node_kind, RelDataTypePtr type)
      : node_kind_(node_kind), type_(std::move(type)) {}

 private:
  NodeKind node_kind_;
  RelDataTypePtr type_;
};

/// Reference to a field of the input row by zero-based index ("$n").
class RexInputRef final : public RexNode {
 public:
  RexInputRef(int index, RelDataTypePtr type)
      : RexNode(NodeKind::kInputRef, std::move(type)), index_(index) {}

  int index() const { return index_; }

  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

 private:
  int index_;
};

/// A constant value with its type.
class RexLiteral final : public RexNode {
 public:
  RexLiteral(Value value, RelDataTypePtr type)
      : RexNode(NodeKind::kLiteral, std::move(type)), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// An operator or function applied to operand expressions.
class RexCall final : public RexNode {
 public:
  RexCall(OpKind op, std::vector<RexNodePtr> operands, RelDataTypePtr type)
      : RexNode(NodeKind::kCall, std::move(type)),
        op_(op),
        operands_(std::move(operands)) {}

  OpKind op() const { return op_; }
  const std::vector<RexNodePtr>& operands() const { return operands_; }
  const RexNodePtr& operand(int i) const { return operands_[i]; }

  std::string ToString() const override;

 private:
  OpKind op_;
  std::vector<RexNodePtr> operands_;
};

/// Downcast helpers. Return nullptr when the node is not of that kind.
inline const RexInputRef* AsInputRef(const RexNodePtr& node) {
  return node && node->is_input_ref()
             ? static_cast<const RexInputRef*>(node.get())
             : nullptr;
}
inline const RexLiteral* AsLiteral(const RexNodePtr& node) {
  return node && node->is_literal()
             ? static_cast<const RexLiteral*>(node.get())
             : nullptr;
}
inline const RexCall* AsCall(const RexNodePtr& node) {
  return node && node->is_call() ? static_cast<const RexCall*>(node.get())
                                 : nullptr;
}

}  // namespace calcite

#endif  // CALCITE_REX_REX_NODE_H_
