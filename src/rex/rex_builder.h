#ifndef CALCITE_REX_REX_BUILDER_H_
#define CALCITE_REX_REX_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "rex/rex_node.h"
#include "type/rel_data_type.h"
#include "util/status.h"

namespace calcite {

/// Factory for typed row expressions. Infers result types for operator
/// calls (comparisons yield BOOLEAN, arithmetic widens its operands, ITEM
/// yields the container's component type, and so on), mirroring Calcite's
/// RexBuilder.
class RexBuilder {
 public:
  explicit RexBuilder(TypeFactory type_factory = {})
      : type_factory_(type_factory) {}

  const TypeFactory& type_factory() const { return type_factory_; }

  /// $index with the given type.
  RexNodePtr MakeInputRef(int index, RelDataTypePtr type) const;

  /// $index typed from the input row type's field.
  RexNodePtr MakeInputRef(const RelDataTypePtr& row_type, int index) const;

  RexNodePtr MakeLiteral(Value value, RelDataTypePtr type) const;
  RexNodePtr MakeBoolLiteral(bool b) const;
  RexNodePtr MakeIntLiteral(int64_t i) const;
  RexNodePtr MakeBigIntLiteral(int64_t i) const;
  RexNodePtr MakeDoubleLiteral(double d) const;
  RexNodePtr MakeStringLiteral(const std::string& s) const;
  RexNodePtr MakeNullLiteral(RelDataTypePtr type) const;
  /// Day-time interval literal, stored in milliseconds.
  RexNodePtr MakeIntervalLiteral(int64_t millis) const;

  /// Builds an operator call, inferring the result type. Returns an error
  /// for arity or operand-type violations.
  Result<RexNodePtr> MakeCall(OpKind op,
                              std::vector<RexNodePtr> operands) const;

  /// Builds a call with an explicit result type (used for CAST and cases
  /// where the caller has better type information).
  RexNodePtr MakeCallOfType(OpKind op, RelDataTypePtr type,
                            std::vector<RexNodePtr> operands) const;

  /// CAST(expr AS type).
  RexNodePtr MakeCast(RelDataTypePtr type, RexNodePtr operand) const;

  /// Conjunction of the given predicates; returns TRUE literal when empty,
  /// the sole element when singleton.
  RexNodePtr MakeAnd(std::vector<RexNodePtr> operands) const;

  /// Disjunction; returns FALSE literal when empty.
  RexNodePtr MakeOr(std::vector<RexNodePtr> operands) const;

  /// a = b.
  RexNodePtr MakeEquals(RexNodePtr a, RexNodePtr b) const;

 private:
  TypeFactory type_factory_;
};

}  // namespace calcite

#endif  // CALCITE_REX_REX_BUILDER_H_
