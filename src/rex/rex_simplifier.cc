#include "rex/rex_simplifier.h"

#include <vector>

#include "rex/rex_interpreter.h"
#include "rex/rex_util.h"

namespace calcite {

RexNodePtr RexSimplifier::TryFoldConstant(const RexNodePtr& node) const {
  if (!node->is_call() || !RexUtil::IsConstant(node)) return node;
  const RexCall* call = AsCall(node);
  // Do not fold non-deterministic or window-group functions; everything in
  // our operator table is deterministic, but SESSION assignment is
  // context-dependent.
  if (call->op() == OpKind::kSession || call->op() == OpKind::kSessionEnd) {
    return node;
  }
  Row empty;
  auto result = RexInterpreter::Eval(node, empty);
  if (!result.ok()) return node;  // e.g. division by zero: keep for runtime
  return std::make_shared<RexLiteral>(std::move(result).value(), node->type());
}

RexNodePtr RexSimplifier::Simplify(const RexNodePtr& node) const {
  if (node == nullptr || !node->is_call()) return node;
  const RexCall* call = AsCall(node);

  // Simplify operands first (bottom-up).
  std::vector<RexNodePtr> operands;
  operands.reserve(call->operands().size());
  bool changed = false;
  for (const RexNodePtr& operand : call->operands()) {
    RexNodePtr simplified = Simplify(operand);
    changed = changed || simplified.get() != operand.get();
    operands.push_back(std::move(simplified));
  }
  RexNodePtr rewritten =
      changed ? std::make_shared<RexCall>(call->op(), operands, node->type())
              : node;
  return SimplifyCall(*AsCall(rewritten), rewritten->type());
}

RexNodePtr RexSimplifier::SimplifyCall(const RexCall& call,
                                       const RelDataTypePtr& type) const {
  RexNodePtr node = std::make_shared<RexCall>(call.op(), call.operands(), type);
  switch (call.op()) {
    case OpKind::kAnd: {
      std::vector<RexNodePtr> conjuncts;
      std::vector<std::string> seen;
      for (const RexNodePtr& operand : call.operands()) {
        if (RexUtil::IsLiteralTrue(operand)) continue;
        if (RexUtil::IsLiteralFalse(operand)) {
          return builder_.MakeBoolLiteral(false);
        }
        std::string digest = operand->ToString();
        bool duplicate = false;
        for (const std::string& s : seen) {
          if (s == digest) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        seen.push_back(std::move(digest));
        conjuncts.push_back(operand);
      }
      return builder_.MakeAnd(std::move(conjuncts));
    }
    case OpKind::kOr: {
      std::vector<RexNodePtr> disjuncts;
      std::vector<std::string> seen;
      for (const RexNodePtr& operand : call.operands()) {
        if (RexUtil::IsLiteralFalse(operand)) continue;
        if (RexUtil::IsLiteralTrue(operand)) {
          return builder_.MakeBoolLiteral(true);
        }
        std::string digest = operand->ToString();
        bool duplicate = false;
        for (const std::string& s : seen) {
          if (s == digest) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        seen.push_back(std::move(digest));
        disjuncts.push_back(operand);
      }
      return builder_.MakeOr(std::move(disjuncts));
    }
    case OpKind::kNot: {
      const RexNodePtr& operand = call.operand(0);
      if (RexUtil::IsLiteralTrue(operand)) return builder_.MakeBoolLiteral(false);
      if (RexUtil::IsLiteralFalse(operand)) return builder_.MakeBoolLiteral(true);
      if (const RexCall* inner = AsCall(operand)) {
        if (inner->op() == OpKind::kNot) return inner->operand(0);
        if (IsComparison(inner->op())) {
          // NOT(a < b) => a >= b. Safe for filters: both forms yield UNKNOWN
          // on NULL operands.
          return builder_.MakeCallOfType(NegateComparison(inner->op()),
                                         operand->type(), inner->operands());
        }
        if (inner->op() == OpKind::kIsNull) {
          return builder_.MakeCallOfType(OpKind::kIsNotNull, operand->type(),
                                         inner->operands());
        }
        if (inner->op() == OpKind::kIsNotNull) {
          return builder_.MakeCallOfType(OpKind::kIsNull, operand->type(),
                                         inner->operands());
        }
      }
      return TryFoldConstant(node);
    }
    case OpKind::kCase: {
      // Drop statically-false arms; collapse when the first live condition
      // is statically true.
      const auto& ops = call.operands();
      std::vector<RexNodePtr> pruned;
      for (size_t i = 0; i + 1 < ops.size(); i += 2) {
        if (RexUtil::IsLiteralFalse(ops[i])) continue;
        if (RexUtil::IsLiteralTrue(ops[i]) && pruned.empty()) {
          return ops[i + 1];
        }
        pruned.push_back(ops[i]);
        pruned.push_back(ops[i + 1]);
      }
      pruned.push_back(ops.back());
      if (pruned.size() == 1) return pruned[0];
      if (pruned.size() != ops.size()) {
        return builder_.MakeCallOfType(OpKind::kCase, type, std::move(pruned));
      }
      return TryFoldConstant(node);
    }
    case OpKind::kCast:
      // CAST(x AS t) where x already has type t.
      if (call.operand(0)->type()->Equals(*type)) return call.operand(0);
      return TryFoldConstant(node);
    case OpKind::kIsNotNull:
      if (!call.operand(0)->type()->nullable()) {
        return builder_.MakeBoolLiteral(true);
      }
      return TryFoldConstant(node);
    case OpKind::kIsNull:
      if (!call.operand(0)->type()->nullable()) {
        return builder_.MakeBoolLiteral(false);
      }
      return TryFoldConstant(node);
    default:
      return TryFoldConstant(node);
  }
}

}  // namespace calcite
