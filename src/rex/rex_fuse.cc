#include "rex/rex_fuse.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>

#include "rex/operator.h"
#include "rex/rex_columnar.h"

namespace calcite {
namespace {

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

bool NumericPhys(PhysType t) {
  return t == PhysType::kInt64 || t == PhysType::kDouble;
}

std::optional<simd::Cmp> CmpOf(OpKind op) {
  switch (op) {
    case OpKind::kEquals: return simd::Cmp::kEq;
    case OpKind::kNotEquals: return simd::Cmp::kNe;
    case OpKind::kLessThan: return simd::Cmp::kLt;
    case OpKind::kLessThanOrEqual: return simd::Cmp::kLe;
    case OpKind::kGreaterThan: return simd::Cmp::kGt;
    case OpKind::kGreaterThanOrEqual: return simd::Cmp::kGe;
    default: return std::nullopt;
  }
}

std::optional<simd::Arith> ArithOf(OpKind op) {
  switch (op) {
    case OpKind::kPlus: return simd::Arith::kAdd;
    case OpKind::kMinus: return simd::Arith::kSub;
    case OpKind::kTimes: return simd::Arith::kMul;
    default: return std::nullopt;
  }
}

/// A range atom inside an AND: a direct `$col <op> literal` (or flipped)
/// bound with a non-NULL numeric literal over a numeric column — the shape
/// the AND lowering pairs into single kInRange interval tests.
struct RangeAtom {
  int col = 0;
  PhysType col_phys = PhysType::kValue;
  bool is_lower = false;  // true: col > / >= lit; false: col < / <= lit
  bool strict = false;
  const RexLiteral* lit = nullptr;
};

std::optional<RangeAtom> ClassifyRangeAtom(
    const RexNodePtr& node, const std::vector<PhysType>& input_phys) {
  const RexCall* call = AsCall(node);
  if (call == nullptr || call->operands().size() != 2) return std::nullopt;
  OpKind op = call->op();
  const RexInputRef* ref = AsInputRef(call->operand(0));
  const RexLiteral* lit = AsLiteral(call->operand(1));
  if (ref == nullptr && lit == nullptr) {
    ref = AsInputRef(call->operand(1));
    lit = AsLiteral(call->operand(0));
    if (ref == nullptr || lit == nullptr) return std::nullopt;
    op = ReverseComparison(op);
  }
  if (ref == nullptr || lit == nullptr) return std::nullopt;
  if (!lit->value().is_numeric()) return std::nullopt;
  if (ref->index() < 0 ||
      static_cast<size_t>(ref->index()) >= input_phys.size()) {
    return std::nullopt;
  }
  RangeAtom atom;
  atom.col = ref->index();
  atom.col_phys = input_phys[atom.col];
  if (!NumericPhys(atom.col_phys)) return std::nullopt;
  atom.lit = lit;
  switch (op) {
    case OpKind::kGreaterThan: atom.is_lower = true; atom.strict = true; break;
    case OpKind::kGreaterThanOrEqual: atom.is_lower = true; break;
    case OpKind::kLessThan: atom.is_lower = false; atom.strict = true; break;
    case OpKind::kLessThanOrEqual: atom.is_lower = false; break;
    default: return std::nullopt;
  }
  return atom;
}

/// Register class of one lowered subtree.
struct Operand {
  uint8_t reg = 0;
  PhysType phys = PhysType::kValue;
};

/// Post-order lowering pass with Sethi-Ullman-style register allocation:
/// operand registers are freed as each operator consumes them and
/// destinations come from the free list first, so live registers track the
/// tree depth, not the node count. Any unsupported shape sets failed_ and
/// the whole compile returns nullptr — trees are never partially fused.
class Lowerer {
 public:
  explicit Lowerer(const std::vector<PhysType>& input_phys)
      : input_phys_(input_phys) {}

  std::optional<Operand> Lower(const RexNodePtr& node);

  bool failed() const { return failed_; }
  std::vector<FuseInstr> TakeInstrs() { return std::move(instrs_); }
  int num_registers() const { return next_reg_; }

 private:
  static constexpr int kMaxRegisters = 250;

  std::optional<Operand> Fail() {
    failed_ = true;
    return std::nullopt;
  }

  uint8_t AllocReg() {
    if (!free_regs_.empty()) {
      uint8_t r = free_regs_.back();
      free_regs_.pop_back();
      return r;
    }
    if (next_reg_ >= kMaxRegisters) {
      failed_ = true;
      return 0;
    }
    return static_cast<uint8_t>(next_reg_++);
  }
  void FreeReg(uint8_t r) { free_regs_.push_back(r); }

  FuseInstr& Emit(FuseOp op, uint8_t dst) {
    instrs_.emplace_back();
    FuseInstr& in = instrs_.back();
    in.op = op;
    in.dst = dst;
    return in;
  }

  /// Widens an int64 operand to double. The destination is allocated
  /// *before* the operand register is freed: an in-place int64->double
  /// rewrite through differently-typed pointers would let the compiler
  /// assume no aliasing, so casts never reuse their operand's slot.
  Operand EmitWiden(Operand a) {
    uint8_t dst = AllocReg();
    FuseInstr& in = Emit(FuseOp::kCastI64F64, dst);
    in.a = a.reg;
    in.vtype = PhysType::kDouble;
    FreeReg(a.reg);
    return Operand{dst, PhysType::kDouble};
  }

  std::optional<Operand> LowerInputRef(const RexInputRef& ref);
  std::optional<Operand> LowerLiteral(const RexLiteral& lit,
                                      const RelDataTypePtr& type);
  std::optional<Operand> LowerArith(const RexCall& call);
  std::optional<Operand> LowerDivMod(const RexCall& call);
  std::optional<Operand> LowerCompare(const RexCall& call);
  std::optional<Operand> LowerAndOr(const RexCall& call);
  std::optional<Operand> LowerRangePair(const RangeAtom& lower,
                                        const RangeAtom& upper);

  const std::vector<PhysType>& input_phys_;
  std::vector<FuseInstr> instrs_;
  std::vector<uint8_t> free_regs_;
  int next_reg_ = 0;
  bool failed_ = false;
};

std::optional<Operand> Lowerer::LowerInputRef(const RexInputRef& ref) {
  if (ref.index() < 0 ||
      static_cast<size_t>(ref.index()) >= input_phys_.size()) {
    return Fail();
  }
  PhysType phys = input_phys_[ref.index()];
  if (!NumericPhys(phys) && phys != PhysType::kBool) return Fail();
  uint8_t dst = AllocReg();
  FuseInstr& in = Emit(FuseOp::kLoadCol, dst);
  in.vtype = phys;
  in.col = ref.index();
  return Operand{dst, phys};
}

std::optional<Operand> Lowerer::LowerLiteral(const RexLiteral& lit,
                                             const RelDataTypePtr& type) {
  const Value& v = lit.value();
  if (v.IsNull()) {
    PhysType phys = PhysTypeForRel(*type);
    if (!NumericPhys(phys) && phys != PhysType::kBool) return Fail();
    uint8_t dst = AllocReg();
    FuseInstr& in = Emit(FuseOp::kLoadNull, dst);
    in.vtype = phys;
    return Operand{dst, phys};
  }
  uint8_t dst = AllocReg();
  if (v.is_int()) {
    FuseInstr& in = Emit(FuseOp::kLoadLitI64, dst);
    in.vtype = PhysType::kInt64;
    in.imm_i64 = v.AsInt();
    return Operand{dst, PhysType::kInt64};
  }
  if (v.is_double()) {
    FuseInstr& in = Emit(FuseOp::kLoadLitF64, dst);
    in.vtype = PhysType::kDouble;
    in.imm_f64 = v.AsDouble();
    return Operand{dst, PhysType::kDouble};
  }
  if (v.is_bool()) {
    FuseInstr& in = Emit(FuseOp::kLoadLitBool, dst);
    in.vtype = PhysType::kBool;
    in.imm_i64 = v.AsBool() ? 1 : 0;
    return Operand{dst, PhysType::kBool};
  }
  FreeReg(dst);
  return Fail();
}

std::optional<Operand> Lowerer::LowerArith(const RexCall& call) {
  const OpKind op = call.op();
  const simd::Arith arith = *ArithOf(op);
  // Literal-fold peephole: a direct non-NULL numeric literal operand folds
  // into the kernel's broadcast slot. + and * commute so either side folds;
  // the subtraction kernel computes a[i] - lit, so only the right side of a
  // MINUS folds.
  const RexLiteral* lit = AsLiteral(call.operand(1));
  const RexNodePtr* other = &call.operand(0);
  if (lit == nullptr || lit->value().IsNull() || !lit->value().is_numeric()) {
    lit = nullptr;
    if (op == OpKind::kPlus || op == OpKind::kTimes) {
      lit = AsLiteral(call.operand(0));
      other = &call.operand(1);
      if (lit != nullptr &&
          (lit->value().IsNull() || !lit->value().is_numeric())) {
        lit = nullptr;
      }
    }
  }
  if (lit != nullptr) {
    std::optional<Operand> a = Lower(*other);
    if (!a) return std::nullopt;
    if (!NumericPhys(a->phys)) return Fail();
    const bool integral = a->phys == PhysType::kInt64 && lit->value().is_int();
    if (!integral && a->phys == PhysType::kInt64) a = EmitWiden(*a);
    FreeReg(a->reg);
    uint8_t dst = AllocReg();
    FuseInstr& in = Emit(FuseOp::kArithLit, dst);
    in.a = a->reg;
    in.arith = arith;
    if (integral) {
      in.vtype = PhysType::kInt64;
      in.imm_i64 = lit->value().AsInt();
    } else {
      in.vtype = PhysType::kDouble;
      in.imm_f64 = lit->value().AsDouble();
    }
    return Operand{dst, in.vtype};
  }
  std::optional<Operand> a = Lower(call.operand(0));
  if (!a) return std::nullopt;
  std::optional<Operand> b = Lower(call.operand(1));
  if (!b) return std::nullopt;
  if (!NumericPhys(a->phys) || !NumericPhys(b->phys)) return Fail();
  const bool integral =
      a->phys == PhysType::kInt64 && b->phys == PhysType::kInt64;
  if (!integral) {
    if (a->phys == PhysType::kInt64) a = EmitWiden(*a);
    if (b->phys == PhysType::kInt64) b = EmitWiden(*b);
  }
  FreeReg(a->reg);
  FreeReg(b->reg);
  uint8_t dst = AllocReg();
  FuseInstr& in = Emit(FuseOp::kArith, dst);
  in.a = a->reg;
  in.b = b->reg;
  in.arith = arith;
  in.vtype = integral ? PhysType::kInt64 : PhysType::kDouble;
  return Operand{dst, in.vtype};
}

std::optional<Operand> Lowerer::LowerDivMod(const RexCall& call) {
  // Totality rule: division and modulus fuse only when the divisor is a
  // direct literal that can never raise — NULL (the result is then all
  // NULL without evaluating anything) or a non-zero numeric. Everything
  // else could divide by zero at runtime and must stay on the per-node
  // path, which owns error semantics.
  const RexLiteral* lit = AsLiteral(call.operand(1));
  if (lit == nullptr) return Fail();
  std::optional<Operand> a = Lower(call.operand(0));
  if (!a) return std::nullopt;
  if (!NumericPhys(a->phys)) return Fail();
  if (lit->value().IsNull()) {
    PhysType lit_phys = PhysTypeForRel(*call.operand(1)->type());
    if (!NumericPhys(lit_phys)) return Fail();
    const bool integral =
        a->phys == PhysType::kInt64 && lit_phys == PhysType::kInt64;
    FreeReg(a->reg);
    uint8_t dst = AllocReg();
    FuseInstr& in = Emit(FuseOp::kLoadNull, dst);
    in.vtype = integral ? PhysType::kInt64 : PhysType::kDouble;
    return Operand{dst, in.vtype};
  }
  if (!lit->value().is_numeric()) return Fail();
  const bool zero = lit->value().is_int() ? lit->value().AsInt() == 0
                                          : lit->value().AsDouble() == 0.0;
  if (zero) return Fail();
  const bool integral = a->phys == PhysType::kInt64 && lit->value().is_int();
  if (!integral && a->phys == PhysType::kInt64) a = EmitWiden(*a);
  FreeReg(a->reg);
  uint8_t dst = AllocReg();
  FuseInstr& in = Emit(FuseOp::kDivModLit, dst);
  in.a = a->reg;
  in.is_mod = call.op() == OpKind::kMod;
  if (integral) {
    in.vtype = PhysType::kInt64;
    in.imm_i64 = lit->value().AsInt();
  } else {
    in.vtype = PhysType::kDouble;
    in.imm_f64 = lit->value().AsDouble();
  }
  return Operand{dst, in.vtype};
}

std::optional<Operand> Lowerer::LowerCompare(const RexCall& call) {
  simd::Cmp cmp = *CmpOf(call.op());
  // Literal peephole, mirroring the per-node CompareLitDense fast path:
  // one direct non-NULL numeric literal side folds into the kernel, a
  // literal on the left flipping the comparison.
  const RexLiteral* lit = AsLiteral(call.operand(1));
  const RexNodePtr* other = &call.operand(0);
  if (lit == nullptr || lit->value().IsNull() || !lit->value().is_numeric()) {
    lit = AsLiteral(call.operand(0));
    other = &call.operand(1);
    if (lit != nullptr && !lit->value().IsNull() &&
        lit->value().is_numeric() && !call.operand(1)->is_literal()) {
      cmp = *CmpOf(ReverseComparison(call.op()));
    } else {
      lit = nullptr;
      other = nullptr;
    }
  }
  if (lit != nullptr) {
    std::optional<Operand> a = Lower(*other);
    if (!a) return std::nullopt;
    if (!NumericPhys(a->phys)) return Fail();
    const bool integral = a->phys == PhysType::kInt64 && lit->value().is_int();
    if (!integral && a->phys == PhysType::kInt64) a = EmitWiden(*a);
    FreeReg(a->reg);
    uint8_t dst = AllocReg();
    FuseInstr& in = Emit(FuseOp::kCmpLit, dst);
    in.a = a->reg;
    in.cmp = cmp;
    in.vtype = PhysType::kBool;
    in.is_f64 = !integral;
    if (integral) {
      in.imm_i64 = lit->value().AsInt();
    } else {
      in.imm_f64 = lit->value().AsDouble();
    }
    return Operand{dst, PhysType::kBool};
  }
  cmp = *CmpOf(call.op());
  std::optional<Operand> a = Lower(call.operand(0));
  if (!a) return std::nullopt;
  std::optional<Operand> b = Lower(call.operand(1));
  if (!b) return std::nullopt;
  // Only numeric comparisons fuse; bool-vs-bool (and anything string-y,
  // which never lowers) stays per-node.
  if (!NumericPhys(a->phys) || !NumericPhys(b->phys)) return Fail();
  const bool integral =
      a->phys == PhysType::kInt64 && b->phys == PhysType::kInt64;
  if (!integral) {
    if (a->phys == PhysType::kInt64) a = EmitWiden(*a);
    if (b->phys == PhysType::kInt64) b = EmitWiden(*b);
  }
  FreeReg(a->reg);
  FreeReg(b->reg);
  uint8_t dst = AllocReg();
  FuseInstr& in = Emit(FuseOp::kCmp, dst);
  in.a = a->reg;
  in.b = b->reg;
  in.cmp = cmp;
  in.vtype = PhysType::kBool;
  in.is_f64 = !integral;
  return Operand{dst, PhysType::kBool};
}

std::optional<Operand> Lowerer::LowerRangePair(const RangeAtom& lower,
                                               const RangeAtom& upper) {
  const bool integral = lower.col_phys == PhysType::kInt64 &&
                        lower.lit->value().is_int() &&
                        upper.lit->value().is_int();
  uint8_t colreg = AllocReg();
  FuseInstr& load = Emit(FuseOp::kLoadCol, colreg);
  load.vtype = lower.col_phys;
  load.col = lower.col;
  Operand c{colreg, lower.col_phys};
  if (!integral && c.phys == PhysType::kInt64) c = EmitWiden(c);
  FreeReg(c.reg);
  uint8_t dst = AllocReg();
  FuseInstr& in = Emit(FuseOp::kInRange, dst);
  in.a = c.reg;
  in.vtype = PhysType::kBool;
  in.is_f64 = !integral;
  in.lo_strict = lower.strict;
  in.hi_strict = upper.strict;
  if (integral) {
    in.imm_i64 = lower.lit->value().AsInt();
    in.imm2_i64 = upper.lit->value().AsInt();
  } else {
    in.imm_f64 = lower.lit->value().AsDouble();
    in.imm2_f64 = upper.lit->value().AsDouble();
  }
  return Operand{dst, PhysType::kBool};
}

std::optional<Operand> Lowerer::LowerAndOr(const RexCall& call) {
  const bool is_and = call.op() == OpKind::kAnd;
  const std::vector<RexNodePtr>& ops = call.operands();
  if (ops.empty()) return Fail();

  // Range-fusion peephole (AND only): a lower and an upper bound on the
  // same column pair into a single kInRange interval test. Greedy — each
  // unconsumed lower bound takes the first later opposite bound on its
  // column; everything unpaired lowers normally.
  std::vector<std::optional<RangeAtom>> atoms(ops.size());
  std::vector<int> pair_of(ops.size(), -1);   // index of the paired upper
  std::vector<char> consumed(ops.size(), 0);  // folded into an earlier pair
  if (is_and && ops.size() >= 2) {
    for (size_t i = 0; i < ops.size(); ++i) {
      atoms[i] = ClassifyRangeAtom(ops[i], input_phys_);
    }
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!atoms[i] || consumed[i] || pair_of[i] >= 0) continue;
      for (size_t j = i + 1; j < ops.size(); ++j) {
        if (!atoms[j] || consumed[j] || pair_of[j] >= 0) continue;
        if (atoms[j]->col != atoms[i]->col) continue;
        if (atoms[j]->is_lower == atoms[i]->is_lower) continue;
        pair_of[i] = static_cast<int>(j);
        consumed[j] = 1;
        break;
      }
    }
  }

  std::optional<Operand> acc;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (consumed[i]) continue;
    std::optional<Operand> piece;
    if (pair_of[i] >= 0) {
      const RangeAtom& a = *atoms[i];
      const RangeAtom& b = *atoms[pair_of[i]];
      piece = a.is_lower ? LowerRangePair(a, b) : LowerRangePair(b, a);
    } else {
      piece = Lower(ops[i]);
    }
    if (!piece) return std::nullopt;
    if (piece->phys != PhysType::kBool) return Fail();
    if (!acc) {
      acc = piece;
      continue;
    }
    FreeReg(acc->reg);
    FreeReg(piece->reg);
    uint8_t dst = AllocReg();
    FuseInstr& in = Emit(is_and ? FuseOp::kAnd : FuseOp::kOr, dst);
    in.a = acc->reg;
    in.b = piece->reg;
    in.vtype = PhysType::kBool;
    acc = Operand{dst, PhysType::kBool};
  }
  return acc;
}

std::optional<Operand> Lowerer::Lower(const RexNodePtr& node) {
  if (failed_ || node == nullptr) return Fail();
  switch (node->node_kind()) {
    case RexNode::NodeKind::kInputRef:
      return LowerInputRef(*static_cast<const RexInputRef*>(node.get()));
    case RexNode::NodeKind::kLiteral:
      return LowerLiteral(*static_cast<const RexLiteral*>(node.get()),
                          node->type());
    case RexNode::NodeKind::kCall:
      break;
  }
  const RexCall& call = *static_cast<const RexCall*>(node.get());
  const OpKind op = call.op();
  if (ArithOf(op) && call.operands().size() == 2) return LowerArith(call);
  if ((op == OpKind::kDivide || op == OpKind::kMod) &&
      call.operands().size() == 2) {
    return LowerDivMod(call);
  }
  if (CmpOf(op) && call.operands().size() == 2) return LowerCompare(call);
  if (op == OpKind::kAnd || op == OpKind::kOr) return LowerAndOr(call);

  // Remaining unary shapes share the lower-operand prologue.
  if (call.operands().size() != 1) return Fail();
  std::optional<Operand> a = Lower(call.operand(0));
  if (!a) return std::nullopt;
  switch (op) {
    case OpKind::kNot:
    case OpKind::kIsTrue:
    case OpKind::kIsFalse: {
      if (a->phys != PhysType::kBool) return Fail();
      FreeReg(a->reg);
      uint8_t dst = AllocReg();
      FuseOp fop = op == OpKind::kNot
                       ? FuseOp::kNot
                       : (op == OpKind::kIsTrue ? FuseOp::kIsTrue
                                                : FuseOp::kIsFalse);
      FuseInstr& in = Emit(fop, dst);
      in.a = a->reg;
      in.vtype = PhysType::kBool;
      return Operand{dst, PhysType::kBool};
    }
    case OpKind::kIsNull:
    case OpKind::kIsNotNull: {
      FreeReg(a->reg);
      uint8_t dst = AllocReg();
      FuseInstr& in = Emit(
          op == OpKind::kIsNull ? FuseOp::kIsNull : FuseOp::kIsNotNull, dst);
      in.a = a->reg;
      in.vtype = PhysType::kBool;
      return Operand{dst, PhysType::kBool};
    }
    case OpKind::kUnaryMinus: {
      if (!NumericPhys(a->phys)) return Fail();
      FreeReg(a->reg);
      uint8_t dst = AllocReg();
      FuseInstr& in = Emit(FuseOp::kNeg, dst);
      in.a = a->reg;
      in.vtype = a->phys;
      return Operand{dst, a->phys};
    }
    case OpKind::kCast: {
      if (!NumericPhys(a->phys)) return Fail();
      PhysType target = PhysTypeForRel(*node->type());
      if (!NumericPhys(target)) return Fail();
      if (target == a->phys) return a;  // identity cast elided
      if (target == PhysType::kDouble) return EmitWiden(*a);
      // double -> int64: like EmitWiden, dst is allocated before the
      // operand frees so the differently-typed rewrite is never in place.
      uint8_t dst = AllocReg();
      FuseInstr& in = Emit(FuseOp::kCastF64I64, dst);
      in.a = a->reg;
      in.vtype = PhysType::kInt64;
      FreeReg(a->reg);
      return Operand{dst, PhysType::kInt64};
    }
    default:
      return Fail();
  }
}

// ---------------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------------

const char* PhysName(PhysType t) {
  switch (t) {
    case PhysType::kInt64: return "i64";
    case PhysType::kDouble: return "f64";
    case PhysType::kBool: return "bool";
    case PhysType::kString: return "str";
    case PhysType::kValue: return "val";
  }
  return "?";
}

const char* CmpName(simd::Cmp c) {
  switch (c) {
    case simd::Cmp::kEq: return "eq";
    case simd::Cmp::kNe: return "ne";
    case simd::Cmp::kLt: return "lt";
    case simd::Cmp::kLe: return "le";
    case simd::Cmp::kGt: return "gt";
    case simd::Cmp::kGe: return "ge";
  }
  return "?";
}

const char* ArithName(simd::Arith a) {
  switch (a) {
    case simd::Arith::kAdd: return "add";
    case simd::Arith::kSub: return "sub";
    case simd::Arith::kMul: return "mul";
  }
  return "?";
}

std::string FmtF64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string FmtImm(const FuseInstr& in) {
  return in.vtype == PhysType::kInt64 ? std::to_string(in.imm_i64)
                                      : FmtF64(in.imm_f64);
}

}  // namespace

// ---------------------------------------------------------------------------
// FuseProgram
// ---------------------------------------------------------------------------

std::shared_ptr<const FuseProgram> FuseProgram::Compile(
    const RexNodePtr& node, const std::vector<PhysType>& input_phys) {
  if (node == nullptr) return nullptr;
  Lowerer lw(input_phys);
  std::optional<Operand> res = lw.Lower(node);
  if (!res || lw.failed()) return nullptr;
  std::shared_ptr<FuseProgram> p(new FuseProgram());
  p->instrs_ = lw.TakeInstrs();
  p->num_registers_ = lw.num_registers();
  p->result_reg_ = res->reg;
  p->result_phys_ = res->phys;
  return p;
}

std::string FuseProgram::Disassemble() const {
  std::string out;
  for (const FuseInstr& in : instrs_) {
    std::string line = "r" + std::to_string(in.dst) + " = ";
    const std::string ra = "r" + std::to_string(in.a);
    const std::string rb = "r" + std::to_string(in.b);
    // The operand lane suffix: result class for arith, operand width for
    // the bool-producing compares.
    const char* lane = in.is_f64 ? "f64" : "i64";
    switch (in.op) {
      case FuseOp::kLoadCol:
        line += "col $" + std::to_string(in.col) + " " + PhysName(in.vtype);
        break;
      case FuseOp::kLoadLitI64:
        line += "lit.i64 #" + std::to_string(in.imm_i64);
        break;
      case FuseOp::kLoadLitF64:
        line += "lit.f64 #" + FmtF64(in.imm_f64);
        break;
      case FuseOp::kLoadLitBool:
        line += "lit.bool #" + std::to_string(in.imm_i64);
        break;
      case FuseOp::kLoadNull:
        line += std::string("null.") + PhysName(in.vtype);
        break;
      case FuseOp::kArith:
        line += std::string(ArithName(in.arith)) + "." + PhysName(in.vtype) +
                " " + ra + " " + rb;
        break;
      case FuseOp::kArithLit:
        line += std::string(ArithName(in.arith)) + "." + PhysName(in.vtype) +
                " " + ra + " #" + FmtImm(in);
        break;
      case FuseOp::kDivModLit:
        line += std::string(in.is_mod ? "mod." : "div.") + PhysName(in.vtype) +
                " " + ra + " #" + FmtImm(in);
        break;
      case FuseOp::kCmp:
        line += std::string(CmpName(in.cmp)) + "." + lane + " " + ra + " " +
                rb;
        break;
      case FuseOp::kCmpLit:
        line += std::string(CmpName(in.cmp)) + "." + lane + " " + ra + " #" +
                (in.is_f64 ? FmtF64(in.imm_f64) : std::to_string(in.imm_i64));
        break;
      case FuseOp::kInRange:
        line += std::string("inrange.") + lane + " " + ra + " " +
                (in.lo_strict ? "(" : "[") +
                (in.is_f64 ? FmtF64(in.imm_f64) : std::to_string(in.imm_i64)) +
                ", " +
                (in.is_f64 ? FmtF64(in.imm2_f64)
                           : std::to_string(in.imm2_i64)) +
                (in.hi_strict ? ")" : "]");
        break;
      case FuseOp::kAnd:
        line += "and " + ra + " " + rb;
        break;
      case FuseOp::kOr:
        line += "or " + ra + " " + rb;
        break;
      case FuseOp::kNot:
        line += "not " + ra;
        break;
      case FuseOp::kIsNull:
        line += "isnull " + ra;
        break;
      case FuseOp::kIsNotNull:
        line += "isnotnull " + ra;
        break;
      case FuseOp::kIsTrue:
        line += "istrue " + ra;
        break;
      case FuseOp::kIsFalse:
        line += "isfalse " + ra;
        break;
      case FuseOp::kNeg:
        line += std::string("neg.") + PhysName(in.vtype) + " " + ra;
        break;
      case FuseOp::kCastI64F64:
        line += "i64tof64 " + ra;
        break;
      case FuseOp::kCastF64I64:
        line += "f64toi64 " + ra;
        break;
    }
    out += line;
    out += "\n";
  }
  out += "ret r" + std::to_string(result_reg_) + " " + PhysName(result_phys_) +
         " regs=" + std::to_string(num_registers_) + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// FusedExpr interpreter
// ---------------------------------------------------------------------------

namespace {

size_t WidthOf(PhysType t) { return t == PhysType::kBool ? 1 : 8; }

const uint8_t* ColData(const ColumnVector& c, size_t base) {
  switch (c.type) {
    case PhysType::kInt64:
      return reinterpret_cast<const uint8_t*>(c.i64 + base);
    case PhysType::kDouble:
      return reinterpret_cast<const uint8_t*>(c.f64 + base);
    default:
      return c.b8 + base;
  }
}

}  // namespace

const FuseProgram* FusedExpr::ProgramFor(const ColumnBatch& in) {
  bool same = compiled_ && compiled_phys_.size() == in.cols.size();
  if (same) {
    for (size_t i = 0; i < compiled_phys_.size(); ++i) {
      if (in.cols[i].type != compiled_phys_[i]) {
        same = false;
        break;
      }
    }
  }
  if (same) return program_.get();
  compiled_ = true;
  compiled_phys_.clear();
  compiled_phys_.reserve(in.cols.size());
  for (const ColumnVector& c : in.cols) compiled_phys_.push_back(c.type);
  program_ = FuseProgram::Compile(node_, compiled_phys_);
  return program_.get();
}

void FusedExpr::EnsureScratch() {
  const size_t nregs = static_cast<size_t>(program_->num_registers());
  constexpr size_t kStride = 8 * kFuseBlockRows + kFuseBlockRows;
  if (scratch_.size() < nregs * kStride) scratch_.resize(nregs * kStride);
  if (regs_.size() < nregs) regs_.resize(nregs);
  uint8_t* base = scratch_.data();
  for (size_t i = 0; i < nregs; ++i) {
    regs_[i].slot_data = base + i * kStride;
    regs_[i].slot_nulls = base + i * kStride + 8 * kFuseBlockRows;
  }
}

/// Copies or aliases `s`'s null map into `d`. External pointers (input
/// batch storage) are stable for the block and alias freely; another
/// register's slot may be overwritten by register reuse before `d` is
/// consumed, so slot-backed maps are copied (skipped when `d` *is* that
/// register and the pointers already coincide).
void FusedExpr::CopyNulls(Reg* d, const Reg& s, size_t len) {
  if (s.nulls == nullptr) {
    d->nulls = nullptr;
    return;
  }
  if (s.nulls_external) {
    d->nulls = s.nulls;
    d->nulls_external = true;
    return;
  }
  if (d->slot_nulls != s.nulls) std::memcpy(d->slot_nulls, s.nulls, len);
  d->nulls = d->slot_nulls;
  d->nulls_external = false;
}

/// NULL-strict fold of two operands' null maps into `d` (the union).
void FusedExpr::FoldNulls(Reg* d, const Reg& a, const Reg& b, size_t len) {
  if (a.nulls != nullptr && b.nulls != nullptr) {
    simd::OrMasks(a.nulls, b.nulls, len, d->slot_nulls);
    d->nulls = d->slot_nulls;
    d->nulls_external = false;
    return;
  }
  CopyNulls(d, a.nulls != nullptr ? a : b, len);
}

void FusedExpr::RunBlock(const ColumnBatch& in, size_t base,
                         const uint32_t* sel, size_t len) {
  for (const FuseInstr& ins : program_->instrs()) {
    Reg& d = regs_[ins.dst];
    switch (ins.op) {
      case FuseOp::kLoadCol: {
        const ColumnVector& c = in.cols[ins.col];
        if (sel == nullptr) {
          d.data = ColData(c, base);
          d.data_external = true;
          d.nulls = c.nulls != nullptr ? c.nulls + base : nullptr;
          d.nulls_external = true;
          break;
        }
        if (c.type == PhysType::kInt64) {
          int64_t* slot = reinterpret_cast<int64_t*>(d.slot_data);
          for (size_t i = 0; i < len; ++i) slot[i] = c.i64[sel[i]];
        } else if (c.type == PhysType::kDouble) {
          double* slot = reinterpret_cast<double*>(d.slot_data);
          for (size_t i = 0; i < len; ++i) slot[i] = c.f64[sel[i]];
        } else {
          for (size_t i = 0; i < len; ++i) d.slot_data[i] = c.b8[sel[i]];
        }
        d.data = d.slot_data;
        d.data_external = false;
        if (c.nulls != nullptr) {
          for (size_t i = 0; i < len; ++i) d.slot_nulls[i] = c.nulls[sel[i]];
          d.nulls = d.slot_nulls;
        } else {
          d.nulls = nullptr;
        }
        d.nulls_external = false;
        break;
      }
      case FuseOp::kLoadLitI64: {
        int64_t* slot = reinterpret_cast<int64_t*>(d.slot_data);
        for (size_t i = 0; i < len; ++i) slot[i] = ins.imm_i64;
        d.data = d.slot_data;
        d.data_external = false;
        d.nulls = nullptr;
        break;
      }
      case FuseOp::kLoadLitF64: {
        double* slot = reinterpret_cast<double*>(d.slot_data);
        for (size_t i = 0; i < len; ++i) slot[i] = ins.imm_f64;
        d.data = d.slot_data;
        d.data_external = false;
        d.nulls = nullptr;
        break;
      }
      case FuseOp::kLoadLitBool:
        std::memset(d.slot_data, ins.imm_i64 != 0 ? 1 : 0, len);
        d.data = d.slot_data;
        d.data_external = false;
        d.nulls = nullptr;
        break;
      case FuseOp::kLoadNull:
        std::memset(d.slot_data, 0, WidthOf(ins.vtype) * len);
        std::memset(d.slot_nulls, 1, len);
        d.data = d.slot_data;
        d.data_external = false;
        d.nulls = d.slot_nulls;
        d.nulls_external = false;
        break;
      case FuseOp::kArith: {
        const Reg& a = regs_[ins.a];
        const Reg& b = regs_[ins.b];
        FoldNulls(&d, a, b, len);
        if (ins.vtype == PhysType::kInt64) {
          int64_t* out = reinterpret_cast<int64_t*>(d.slot_data);
          simd::ArithI64(ins.arith, reinterpret_cast<const int64_t*>(a.data),
                         reinterpret_cast<const int64_t*>(b.data), len, out);
          if (d.nulls != nullptr) simd::MaskZeroI64(out, d.nulls, len);
        } else {
          double* out = reinterpret_cast<double*>(d.slot_data);
          simd::ArithF64(ins.arith, reinterpret_cast<const double*>(a.data),
                         reinterpret_cast<const double*>(b.data), len, out);
          if (d.nulls != nullptr) simd::MaskZeroF64(out, d.nulls, len);
        }
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kArithLit: {
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        if (ins.vtype == PhysType::kInt64) {
          int64_t* out = reinterpret_cast<int64_t*>(d.slot_data);
          simd::ArithI64Lit(ins.arith,
                            reinterpret_cast<const int64_t*>(a.data),
                            ins.imm_i64, len, out);
          if (d.nulls != nullptr) simd::MaskZeroI64(out, d.nulls, len);
        } else {
          double* out = reinterpret_cast<double*>(d.slot_data);
          simd::ArithF64Lit(ins.arith, reinterpret_cast<const double*>(a.data),
                            ins.imm_f64, len, out);
          if (d.nulls != nullptr) simd::MaskZeroF64(out, d.nulls, len);
        }
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kDivModLit: {
        // Total by construction: the divisor is a non-NULL non-zero
        // literal, and NULL rows' canonical-zero data slots divide to
        // (-)0 — defined, and re-zeroed by any later arithmetic's mask.
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        if (ins.vtype == PhysType::kInt64) {
          const int64_t* x = reinterpret_cast<const int64_t*>(a.data);
          int64_t* out = reinterpret_cast<int64_t*>(d.slot_data);
          const int64_t lit = ins.imm_i64;
          if (ins.is_mod) {
            for (size_t i = 0; i < len; ++i) out[i] = x[i] % lit;
          } else {
            for (size_t i = 0; i < len; ++i) out[i] = x[i] / lit;
          }
        } else {
          const double* x = reinterpret_cast<const double*>(a.data);
          double* out = reinterpret_cast<double*>(d.slot_data);
          const double lit = ins.imm_f64;
          if (ins.is_mod) {
            for (size_t i = 0; i < len; ++i) out[i] = std::fmod(x[i], lit);
          } else {
            for (size_t i = 0; i < len; ++i) out[i] = x[i] / lit;
          }
        }
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kCmp: {
        const Reg& a = regs_[ins.a];
        const Reg& b = regs_[ins.b];
        FoldNulls(&d, a, b, len);
        if (ins.is_f64) {
          simd::CmpF64(ins.cmp, reinterpret_cast<const double*>(a.data),
                       reinterpret_cast<const double*>(b.data), len,
                       d.slot_data);
        } else {
          simd::CmpI64(ins.cmp, reinterpret_cast<const int64_t*>(a.data),
                       reinterpret_cast<const int64_t*>(b.data), len,
                       d.slot_data);
        }
        if (d.nulls != nullptr) simd::MaskZeroU8(d.slot_data, d.nulls, len);
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kCmpLit: {
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        if (ins.is_f64) {
          simd::CmpF64Lit(ins.cmp, reinterpret_cast<const double*>(a.data),
                          ins.imm_f64, len, d.slot_data);
        } else {
          simd::CmpI64Lit(ins.cmp, reinterpret_cast<const int64_t*>(a.data),
                          ins.imm_i64, len, d.slot_data);
        }
        if (d.nulls != nullptr) simd::MaskZeroU8(d.slot_data, d.nulls, len);
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kInRange: {
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        if (ins.is_f64) {
          simd::InRangeF64(reinterpret_cast<const double*>(a.data),
                           ins.imm_f64, ins.lo_strict, ins.imm2_f64,
                           ins.hi_strict, len, d.slot_data);
        } else {
          simd::InRangeI64(reinterpret_cast<const int64_t*>(a.data),
                           ins.imm_i64, ins.lo_strict, ins.imm2_i64,
                           ins.hi_strict, len, d.slot_data);
        }
        if (d.nulls != nullptr) simd::MaskZeroU8(d.slot_data, d.nulls, len);
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kAnd:
      case FuseOp::kOr: {
        // Kleene three-valued logic, evaluated blind. Operand data slots
        // are canonical-zero at NULL rows, so a 1 byte always means
        // "non-NULL true"; blind AND/OR of the values then agrees with
        // the short-circuit row oracle because both connectives commute
        // in Kleene logic.
        const Reg& a = regs_[ins.a];
        const Reg& b = regs_[ins.b];
        const uint8_t* av = a.data;
        const uint8_t* bv = b.data;
        uint8_t* out = d.slot_data;
        if (a.nulls == nullptr && b.nulls == nullptr) {
          if (ins.op == FuseOp::kAnd) {
            simd::AndMasks(av, bv, len, out);
          } else {
            simd::OrMasks(av, bv, len, out);
          }
          d.nulls = nullptr;
        } else {
          const uint8_t* an = a.nulls;
          const uint8_t* bn = b.nulls;
          uint8_t* dn = d.slot_nulls;
          if (ins.op == FuseOp::kAnd) {
            for (size_t i = 0; i < len; ++i) {
              const bool anul = an != nullptr && an[i] != 0;
              const bool bnul = bn != nullptr && bn[i] != 0;
              const bool off = (!anul && av[i] == 0) || (!bnul && bv[i] == 0);
              const uint8_t val = av[i] & bv[i] & 1;
              dn[i] = ((anul || bnul) && !off) ? 1 : 0;
              out[i] = val;
            }
          } else {
            for (size_t i = 0; i < len; ++i) {
              const bool anul = an != nullptr && an[i] != 0;
              const bool bnul = bn != nullptr && bn[i] != 0;
              const uint8_t val = (av[i] | bv[i]) & 1;
              dn[i] = ((anul || bnul) && val == 0) ? 1 : 0;
              out[i] = val;
            }
          }
          d.nulls = dn;
          d.nulls_external = false;
        }
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kNot: {
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        const uint8_t* av = a.data;
        uint8_t* out = d.slot_data;
        for (size_t i = 0; i < len; ++i) out[i] = av[i] == 0 ? 1 : 0;
        if (d.nulls != nullptr) simd::MaskZeroU8(out, d.nulls, len);
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kIsNull:
      case FuseOp::kIsNotNull: {
        const Reg& a = regs_[ins.a];
        const bool want_null = ins.op == FuseOp::kIsNull;
        if (a.nulls == nullptr) {
          std::memset(d.slot_data, want_null ? 0 : 1, len);
        } else {
          const uint8_t* an = a.nulls;
          uint8_t* out = d.slot_data;
          for (size_t i = 0; i < len; ++i) {
            out[i] = (an[i] != 0) == want_null ? 1 : 0;
          }
        }
        d.data = d.slot_data;
        d.data_external = false;
        d.nulls = nullptr;
        break;
      }
      case FuseOp::kIsTrue:
      case FuseOp::kIsFalse: {
        const Reg& a = regs_[ins.a];
        const bool want = ins.op == FuseOp::kIsTrue;
        const uint8_t* av = a.data;
        const uint8_t* an = a.nulls;
        uint8_t* out = d.slot_data;
        for (size_t i = 0; i < len; ++i) {
          const bool is_null = an != nullptr && an[i] != 0;
          out[i] = (!is_null && (av[i] != 0) == want) ? 1 : 0;
        }
        d.data = d.slot_data;
        d.data_external = false;
        d.nulls = nullptr;
        break;
      }
      case FuseOp::kNeg: {
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        if (ins.vtype == PhysType::kInt64) {
          const int64_t* x = reinterpret_cast<const int64_t*>(a.data);
          int64_t* out = reinterpret_cast<int64_t*>(d.slot_data);
          for (size_t i = 0; i < len; ++i) out[i] = -x[i];
        } else {
          const double* x = reinterpret_cast<const double*>(a.data);
          double* out = reinterpret_cast<double*>(d.slot_data);
          for (size_t i = 0; i < len; ++i) out[i] = -x[i];
        }
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kCastI64F64: {
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        simd::I64ToF64(reinterpret_cast<const int64_t*>(a.data), len,
                       reinterpret_cast<double*>(d.slot_data));
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
      case FuseOp::kCastF64I64: {
        const Reg& a = regs_[ins.a];
        CopyNulls(&d, a, len);
        const double* x = reinterpret_cast<const double*>(a.data);
        int64_t* out = reinterpret_cast<int64_t*>(d.slot_data);
        // Blind truncation: NULL rows hold (-)0.0 and cast to 0, keeping
        // the canonical-zero invariant without a mask pass.
        for (size_t i = 0; i < len; ++i) {
          out[i] = static_cast<int64_t>(x[i]);
        }
        d.data = d.slot_data;
        d.data_external = false;
        break;
      }
    }
  }
}

void FusedExpr::RunDense(const ColumnBatch& in, ColumnBatch* out) {
  const FuseProgram& p = *program_;
  EnsureScratch();
  const size_t n = in.ActiveCount();
  const PhysType rt = p.result_phys();
  const size_t width = WidthOf(rt);
  uint8_t* data_buf =
      static_cast<uint8_t*>(out->arena->Allocate(width * (n > 0 ? n : 1)));
  uint8_t* nulls_buf = nullptr;
  Reg& res = regs_[p.result_reg()];
  const uint32_t* s = in.has_sel ? in.sel.data() : nullptr;
  size_t pos = 0;
  while (pos < n) {
    const size_t len = std::min(kFuseBlockRows, n - pos);
    // Contiguous selection runs (and dense batches) address columns
    // zero-copy at a base offset; genuinely sparse blocks gather.
    size_t base = pos;
    const uint32_t* g = nullptr;
    if (s != nullptr) {
      if (s[pos + len - 1] - s[pos] == len - 1) {
        base = s[pos];
      } else {
        g = s + pos;
      }
    }
    // Redirect the result register's slot into the output buffer so the
    // final instruction writes in place. Only for 8-byte results: an
    // intermediate reusing the register writes register width, which
    // would overrun a 1-byte-per-row bool region.
    uint8_t* saved_slot = res.slot_data;
    if (width == 8) res.slot_data = data_buf + pos * 8;
    RunBlock(in, base, g, len);
    if (width == 8) {
      if (res.data != res.slot_data) {
        std::memcpy(data_buf + pos * 8, res.data, len * 8);
      }
      res.slot_data = saved_slot;
    } else {
      std::memcpy(data_buf + pos, res.data, len);
    }
    if (res.nulls != nullptr) {
      if (nulls_buf == nullptr) {
        nulls_buf = static_cast<uint8_t*>(out->arena->Allocate(n));
        std::memset(nulls_buf, 0, pos);
      }
      std::memcpy(nulls_buf + pos, res.nulls, len);
    } else if (nulls_buf != nullptr) {
      std::memset(nulls_buf + pos, 0, len);
    }
    pos += len;
  }
  ColumnVector cv;
  cv.type = rt;
  switch (rt) {
    case PhysType::kInt64:
      cv.i64 = reinterpret_cast<const int64_t*>(data_buf);
      break;
    case PhysType::kDouble:
      cv.f64 = reinterpret_cast<const double*>(data_buf);
      break;
    default:
      cv.b8 = data_buf;
      break;
  }
  cv.nulls = nulls_buf;
  out->cols.push_back(cv);
}

void FusedExpr::RunNarrow(const ColumnBatch& batch, SelectionVector* sel) {
  const FuseProgram& p = *program_;
  EnsureScratch();
  uint32_t* s = sel->data();
  const size_t n = sel->size();
  Reg& res = regs_[p.result_reg()];
  size_t pos = 0;
  size_t write = 0;
  while (pos < n) {
    const size_t len = std::min(kFuseBlockRows, n - pos);
    const uint32_t* selblk = s + pos;
    size_t base = 0;
    const uint32_t* g = selblk;
    if (selblk[len - 1] - selblk[0] == len - 1) {
      base = selblk[0];
      g = nullptr;
    }
    RunBlock(batch, base, g, len);
    const uint8_t* mask;
    if (res.nulls != nullptr) {
      simd::AndNotMask(res.data, res.nulls, len, res.slot_data);
      mask = res.slot_data;
    } else {
      mask = res.data;
    }
    // CompactSel reads at-or-ahead of its writes and write <= pos, so
    // compacting each block into the already-consumed prefix is safe.
    write += simd::CompactSel(mask, selblk, len, s + write);
    pos += len;
  }
  sel->resize(write);
}

Status FusedExpr::AppendEvalColumn(const ColumnBatch& in, ColumnBatch* out) {
  // Plain input refs stay on the per-node path, which aliases the column
  // zero-copy instead of copying it through a register.
  if (enable_fusion_ && !node_->is_input_ref()) {
    if (ProgramFor(in) != nullptr) {
      RunDense(in, out);
      return Status::OK();
    }
  }
  return RexColumnar::AppendEvalColumn(node_, in, out);
}

Status FusedExpr::NarrowSelection(const ColumnBatch& batch,
                                  const ArenaPtr& scratch,
                                  SelectionVector* sel) {
  if (sel->empty()) return Status::OK();
  if (enable_fusion_) {
    const FuseProgram* p = ProgramFor(batch);
    if (p != nullptr && p->result_phys() == PhysType::kBool) {
      RunNarrow(batch, sel);
      return Status::OK();
    }
    // A conjunction that does not fuse whole still narrows conjunct by
    // conjunct — fusing each conjunct that lowers — with the per-node
    // path's progressive early exit (which also preserves its error
    // suppression: later conjuncts only see surviving rows).
    const RexCall* call = AsCall(node_);
    if (call != nullptr && call->op() == OpKind::kAnd) {
      if (conjuncts_.empty()) {
        conjuncts_.reserve(call->operands().size());
        for (const RexNodePtr& op : call->operands()) {
          conjuncts_.push_back(std::make_unique<FusedExpr>(op));
        }
      }
      for (const std::unique_ptr<FusedExpr>& c : conjuncts_) {
        Status s = c->NarrowSelection(batch, scratch, sel);
        if (!s.ok()) return s;
        if (sel->empty()) break;
      }
      return Status::OK();
    }
  }
  return RexColumnar::NarrowSelection(node_, batch, scratch, sel);
}

}  // namespace calcite
