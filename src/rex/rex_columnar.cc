#include "rex/rex_columnar.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <string_view>
#include <utility>

#include "exec/simd.h"
#include "rex/operator.h"
#include "rex/rex_interpreter.h"

namespace calcite {
namespace {

bool IsArithOp(OpKind op) {
  switch (op) {
    case OpKind::kPlus:
    case OpKind::kMinus:
    case OpKind::kTimes:
    case OpKind::kDivide:
    case OpKind::kMod:
      return true;
    default:
      return false;
  }
}

bool IsNumericPhys(PhysType t) {
  return t == PhysType::kInt64 || t == PhysType::kDouble;
}

/// Physical class of a literal column; nullopt when no typed layout exists.
std::optional<PhysType> LiteralPhys(const RexLiteral& lit) {
  const Value& v = lit.value();
  if (v.IsNull()) {
    PhysType t = PhysTypeForRel(*lit.type());
    if (t == PhysType::kValue) return std::nullopt;
    return t;  // typed all-null column
  }
  if (v.is_int()) return PhysType::kInt64;
  if (v.is_double()) return PhysType::kDouble;
  if (v.is_bool()) return PhysType::kBool;
  if (v.is_string()) return PhysType::kString;
  return std::nullopt;
}

bool CmpPasses(OpKind op, int c) {
  switch (op) {
    case OpKind::kEquals:
      return c == 0;
    case OpKind::kNotEquals:
      return c != 0;
    case OpKind::kLessThan:
      return c < 0;
    case OpKind::kLessThanOrEqual:
      return c <= 0;
    case OpKind::kGreaterThan:
      return c > 0;
    case OpKind::kGreaterThanOrEqual:
      return c >= 0;
    default:
      return false;
  }
}

/// Evaluation context: `in` supplies the active rows, `out` owns all result
/// storage (arena for typed data, boxed_pool for Value columns, pins for
/// aliased inputs).
struct Ctx {
  const ColumnBatch& in;
  ColumnBatch* out;
  size_t n;  // active row count; every dense column has exactly n entries

  Arena& arena() { return *out->arena; }

  template <typename T>
  T* AllocZeroed() {
    T* p = out->arena->AllocateArray<T>(n);
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return p;
  }
};

Status EvalDense(Ctx& ctx, const RexNodePtr& node, ColumnVector* res);

std::optional<simd::Cmp> SimdCmp(OpKind op) {
  switch (op) {
    case OpKind::kEquals:
      return simd::Cmp::kEq;
    case OpKind::kNotEquals:
      return simd::Cmp::kNe;
    case OpKind::kLessThan:
      return simd::Cmp::kLt;
    case OpKind::kLessThanOrEqual:
      return simd::Cmp::kLe;
    case OpKind::kGreaterThan:
      return simd::Cmp::kGt;
    case OpKind::kGreaterThanOrEqual:
      return simd::Cmp::kGe;
    default:
      return std::nullopt;
  }
}

std::optional<simd::Arith> SimdArith(OpKind op) {
  switch (op) {
    case OpKind::kPlus:
      return simd::Arith::kAdd;
    case OpKind::kMinus:
      return simd::Arith::kSub;
    case OpKind::kTimes:
      return simd::Arith::kMul;
    default:
      return std::nullopt;
  }
}

/// OR-folds the operand null maps lane-wise into a fresh result map;
/// nullptr when neither operand can be NULL.
uint8_t* FoldNulls(Ctx& ctx, const uint8_t* an, const uint8_t* bn) {
  if (an == nullptr && bn == nullptr) return nullptr;
  uint8_t* rn = ctx.arena().AllocateArray<uint8_t>(ctx.n);
  if (an != nullptr && bn != nullptr) {
    simd::OrMasks(an, bn, ctx.n, rn);
  } else {
    std::memcpy(rn, an != nullptr ? an : bn, ctx.n);
  }
  return rn;
}

/// Dense double view of a numeric column: the column itself for kDouble,
/// an arena-widened copy for kInt64 (NULL slots are zero and widen to 0.0,
/// staying canonical).
const double* AsF64Dense(Ctx& ctx, const ColumnVector& col) {
  if (col.type == PhysType::kDouble) return col.f64;
  double* d = ctx.arena().AllocateArray<double>(ctx.n);
  simd::I64ToF64(col.i64, ctx.n, d);
  return d;
}

/// Materializes an input-ref column densely over the active rows: a
/// zero-copy alias when the batch has no selection, a typed gather when it
/// does. Handles every physical class, including boxed.
Status RefDense(Ctx& ctx, const RexInputRef& ref, ColumnVector* res) {
  const size_t idx = static_cast<size_t>(ref.index());
  if (idx >= ctx.in.cols.size()) {
    return Status::RuntimeError("input reference $" + std::to_string(idx) +
                                " out of range");
  }
  const ColumnVector& src = ctx.in.cols[idx];
  if (!ctx.in.has_sel) {
    *res = src;
    return Status::OK();
  }
  const SelectionVector& sel = ctx.in.sel;
  const size_t n = ctx.n;
  res->type = src.type;
  uint8_t* nn = nullptr;
  if (src.type != PhysType::kValue && src.nulls != nullptr) {
    nn = ctx.AllocZeroed<uint8_t>();
    for (size_t k = 0; k < n; ++k) nn[k] = src.nulls[sel[k]];
    res->nulls = nn;
  }
  switch (src.type) {
    case PhysType::kInt64: {
      int64_t* d = ctx.AllocZeroed<int64_t>();
      for (size_t k = 0; k < n; ++k) d[k] = src.i64[sel[k]];
      res->i64 = d;
      break;
    }
    case PhysType::kDouble: {
      double* d = ctx.AllocZeroed<double>();
      for (size_t k = 0; k < n; ++k) d[k] = src.f64[sel[k]];
      res->f64 = d;
      break;
    }
    case PhysType::kBool: {
      uint8_t* d = ctx.AllocZeroed<uint8_t>();
      for (size_t k = 0; k < n; ++k) d[k] = src.b8[sel[k]];
      res->b8 = d;
      break;
    }
    case PhysType::kString: {
      // Gathered spans keep pointing into the source blob, which the output
      // batch pins via ShareStorage.
      StringRef* d = ctx.AllocZeroed<StringRef>();
      for (size_t k = 0; k < n; ++k) d[k] = src.str[sel[k]];
      res->str = d;
      break;
    }
    case PhysType::kValue: {
      auto vals = std::make_shared<std::vector<Value>>();
      vals->reserve(n);
      for (size_t k = 0; k < n; ++k) vals->push_back(src.boxed[sel[k]]);
      ctx.out->boxed_pool.push_back(vals);
      res->boxed = vals->data();
      break;
    }
  }
  return Status::OK();
}

/// Broadcasts a literal to a dense column.
Status LiteralDense(Ctx& ctx, const RexLiteral& lit, ColumnVector* res) {
  const Value& v = lit.value();
  const size_t n = ctx.n;
  if (v.IsNull()) {
    auto phys = LiteralPhys(lit);
    assert(phys.has_value());
    res->type = *phys;
    uint8_t* nn = ctx.AllocZeroed<uint8_t>();
    std::memset(nn, 1, n);
    res->nulls = nn;
    switch (*phys) {
      case PhysType::kInt64:
        res->i64 = ctx.AllocZeroed<int64_t>();
        break;
      case PhysType::kDouble:
        res->f64 = ctx.AllocZeroed<double>();
        break;
      case PhysType::kBool:
        res->b8 = ctx.AllocZeroed<uint8_t>();
        break;
      case PhysType::kString:
        res->str = ctx.AllocZeroed<StringRef>();
        break;
      case PhysType::kValue:
        break;
    }
    return Status::OK();
  }
  if (v.is_int()) {
    int64_t* d = ctx.arena().AllocateArray<int64_t>(n);
    for (size_t k = 0; k < n; ++k) d[k] = v.AsInt();
    res->type = PhysType::kInt64;
    res->i64 = d;
  } else if (v.is_double()) {
    double* d = ctx.arena().AllocateArray<double>(n);
    for (size_t k = 0; k < n; ++k) d[k] = v.AsDouble();
    res->type = PhysType::kDouble;
    res->f64 = d;
  } else if (v.is_bool()) {
    uint8_t* d = ctx.arena().AllocateArray<uint8_t>(n);
    std::memset(d, v.AsBool() ? 1 : 0, n);
    res->type = PhysType::kBool;
    res->b8 = d;
  } else if (v.is_string()) {
    const std::string& s = v.AsString();
    char* bytes = ctx.arena().AllocateArray<char>(s.size());
    std::memcpy(bytes, s.data(), s.size());
    StringRef span{bytes, static_cast<uint32_t>(s.size())};
    StringRef* d = ctx.arena().AllocateArray<StringRef>(n);
    for (size_t k = 0; k < n; ++k) d[k] = span;
    res->type = PhysType::kString;
    res->str = d;
  } else {
    auto vals = std::make_shared<std::vector<Value>>(n, v);
    ctx.out->boxed_pool.push_back(vals);
    res->type = PhysType::kValue;
    res->boxed = vals->data();
  }
  return Status::OK();
}

/// Binary arithmetic over dense numeric columns. NULL-strict with the NULL
/// check strictly before the division-by-zero check, like EvalArithmetic.
/// Data slots of NULL rows are zero, so blind stores stay defined.
Status ArithDense(Ctx& ctx, OpKind op, const ColumnVector& a,
                  const ColumnVector& b, ColumnVector* res) {
  const size_t n = ctx.n;
  uint8_t* rn = FoldNulls(ctx, a.nulls, b.nulls);
  res->nulls = rn;
  const auto va = SimdArith(op);
  const bool integral = a.type == PhysType::kInt64 && b.type == PhysType::kInt64;
  if (integral) {
    const int64_t* x = a.i64;
    const int64_t* y = b.i64;
    res->type = PhysType::kInt64;
    if (va.has_value()) {
      // Blind +-* over every slot (NULL slots are zero, so lanes stay
      // defined), then re-zero NULL rows so their data slots stay canonical.
      int64_t* d = ctx.arena().AllocateArray<int64_t>(n);
      simd::ArithI64(*va, x, y, n, d);
      if (rn != nullptr) simd::MaskZeroI64(d, rn, n);
      res->i64 = d;
      return Status::OK();
    }
    // Division/modulus stay scalar: they raise per-row errors and must skip
    // NULL rows (the NULL check comes strictly before the zero check).
    int64_t* d = ctx.AllocZeroed<int64_t>();
    res->i64 = d;
    for (size_t i = 0; i < n; ++i) {
      if (rn != nullptr && rn[i]) continue;
      if (y[i] == 0) return Status::RuntimeError("division by zero");
      d[i] = op == OpKind::kDivide ? x[i] / y[i] : x[i] % y[i];
    }
    return Status::OK();
  }
  const double* x = AsF64Dense(ctx, a);
  const double* y = AsF64Dense(ctx, b);
  res->type = PhysType::kDouble;
  if (va.has_value()) {
    double* d = ctx.arena().AllocateArray<double>(n);
    simd::ArithF64(*va, x, y, n, d);
    if (rn != nullptr) simd::MaskZeroF64(d, rn, n);
    res->f64 = d;
    return Status::OK();
  }
  double* d = ctx.AllocZeroed<double>();
  res->f64 = d;
  for (size_t i = 0; i < n; ++i) {
    if (rn != nullptr && rn[i]) continue;
    if (y[i] == 0) return Status::RuntimeError("division by zero");
    d[i] = op == OpKind::kDivide ? x[i] / y[i] : std::fmod(x[i], y[i]);
  }
  return Status::OK();
}

/// Comparison over dense columns of compatible classes; result is a BOOLEAN
/// column, NULL where either side is NULL (three-valued logic).
Status CompareDense(Ctx& ctx, OpKind op, const ColumnVector& a,
                    const ColumnVector& b, ColumnVector* res) {
  const size_t n = ctx.n;
  uint8_t* rn = FoldNulls(ctx, a.nulls, b.nulls);
  res->nulls = rn;
  res->type = PhysType::kBool;
  const auto vc = SimdCmp(op);
  if (!vc.has_value()) return Status::Internal("unexpected comparison operator");
  if (a.type == PhysType::kInt64 && b.type == PhysType::kInt64) {
    uint8_t* d = ctx.arena().AllocateArray<uint8_t>(n);
    simd::CmpI64(*vc, a.i64, b.i64, n, d);
    if (rn != nullptr) simd::MaskZeroU8(d, rn, n);
    res->b8 = d;
    return Status::OK();
  }
  if (IsNumericPhys(a.type) && IsNumericPhys(b.type)) {
    const double* x = AsF64Dense(ctx, a);
    const double* y = AsF64Dense(ctx, b);
    uint8_t* d = ctx.arena().AllocateArray<uint8_t>(n);
    simd::CmpF64(*vc, x, y, n, d);
    if (rn != nullptr) simd::MaskZeroU8(d, rn, n);
    res->b8 = d;
    return Status::OK();
  }
  uint8_t* d = ctx.AllocZeroed<uint8_t>();
  res->b8 = d;
  if (a.type == PhysType::kString && b.type == PhysType::kString) {
    for (size_t i = 0; i < n; ++i) {
      if (rn != nullptr && rn[i]) continue;
      d[i] = CmpPasses(op, a.str[i].view().compare(b.str[i].view()));
    }
  } else if (a.type == PhysType::kBool && b.type == PhysType::kBool) {
    for (size_t i = 0; i < n; ++i) {
      d[i] = CmpPasses(op, static_cast<int>(a.b8[i]) -
                               static_cast<int>(b.b8[i]));
    }
    if (rn != nullptr) simd::MaskZeroU8(d, rn, n);
  } else {
    return Status::Internal("incomparable columnar operand classes");
  }
  return Status::OK();
}

/// Comparison of a dense numeric column against a non-NULL numeric constant:
/// skips the literal broadcast entirely and runs the fused column-vs-scalar
/// kernel. The literal side is never NULL, so the result nulls are exactly
/// the operand's bytemap (aliased, not copied).
Status CompareLitDense(Ctx& ctx, OpKind op, const ColumnVector& a,
                       const Value& lit, ColumnVector* res) {
  const size_t n = ctx.n;
  const auto vc = SimdCmp(op);
  if (!vc.has_value()) return Status::Internal("unexpected comparison operator");
  uint8_t* d = ctx.arena().AllocateArray<uint8_t>(n);
  if (a.type == PhysType::kInt64 && lit.is_int()) {
    simd::CmpI64Lit(*vc, a.i64, lit.AsInt(), n, d);
  } else {
    simd::CmpF64Lit(*vc, AsF64Dense(ctx, a), lit.AsDouble(), n, d);
  }
  res->type = PhysType::kBool;
  res->b8 = d;
  if (a.nulls != nullptr) {
    res->nulls = a.nulls;
    simd::MaskZeroU8(d, a.nulls, n);
  }
  return Status::OK();
}

Status CallDense(Ctx& ctx, const RexCall& call, const RelDataTypePtr& type,
                 ColumnVector* res) {
  const OpKind op = call.op();
  const size_t n = ctx.n;

  if (IsArithOp(op)) {
    ColumnVector a, b;
    Status s = EvalDense(ctx, call.operand(0), &a);
    if (!s.ok()) return s;
    s = EvalDense(ctx, call.operand(1), &b);
    if (!s.ok()) return s;
    return ArithDense(ctx, op, a, b, res);
  }
  if (IsComparison(op)) {
    // Expression-vs-literal peephole: exactly one side a non-NULL numeric
    // constant folds into the column-vs-scalar kernel (literal-on-left
    // flips the operator instead of broadcasting).
    const RexLiteral* lita = AsLiteral(call.operand(0));
    const RexLiteral* litb = AsLiteral(call.operand(1));
    const RexLiteral* lit = litb != nullptr ? litb : lita;
    if (lit != nullptr && (lita == nullptr || litb == nullptr) &&
        !lit->value().IsNull() && lit->value().is_numeric()) {
      ColumnVector a;
      Status s = EvalDense(ctx, call.operand(lit == litb ? 0 : 1), &a);
      if (!s.ok()) return s;
      if (IsNumericPhys(a.type)) {
        const OpKind eff = lit == litb ? op : ReverseComparison(op);
        return CompareLitDense(ctx, eff, a, lit->value(), res);
      }
      ColumnVector b;
      s = LiteralDense(ctx, *lit, &b);
      if (!s.ok()) return s;
      return lit == litb ? CompareDense(ctx, op, a, b, res)
                         : CompareDense(ctx, op, b, a, res);
    }
    ColumnVector a, b;
    Status s = EvalDense(ctx, call.operand(0), &a);
    if (!s.ok()) return s;
    s = EvalDense(ctx, call.operand(1), &b);
    if (!s.ok()) return s;
    return CompareDense(ctx, op, a, b, res);
  }

  switch (op) {
    case OpKind::kIsNull:
    case OpKind::kIsNotNull: {
      ColumnVector a;
      Status s = EvalDense(ctx, call.operand(0), &a);
      if (!s.ok()) return s;
      uint8_t* d = ctx.AllocZeroed<uint8_t>();
      const bool want_null = op == OpKind::kIsNull;
      if (a.nulls == nullptr) {
        std::memset(d, want_null ? 0 : 1, n);
      } else {
        for (size_t i = 0; i < n; ++i) {
          d[i] = (a.nulls[i] != 0) == want_null;
        }
      }
      res->type = PhysType::kBool;
      res->b8 = d;
      return Status::OK();
    }
    case OpKind::kIsTrue:
    case OpKind::kIsFalse: {
      ColumnVector a;
      Status s = EvalDense(ctx, call.operand(0), &a);
      if (!s.ok()) return s;
      uint8_t* d = ctx.AllocZeroed<uint8_t>();
      const bool want = op == OpKind::kIsTrue;
      for (size_t i = 0; i < n; ++i) {
        bool is_null = a.nulls != nullptr && a.nulls[i];
        d[i] = !is_null && (a.b8[i] != 0) == want;
      }
      res->type = PhysType::kBool;
      res->b8 = d;
      return Status::OK();
    }
    case OpKind::kNot: {
      ColumnVector a;
      Status s = EvalDense(ctx, call.operand(0), &a);
      if (!s.ok()) return s;
      uint8_t* d = ctx.AllocZeroed<uint8_t>();
      for (size_t i = 0; i < n; ++i) d[i] = a.b8[i] == 0;
      if (a.nulls != nullptr) {
        for (size_t i = 0; i < n; ++i) {
          if (a.nulls[i]) d[i] = 0;
        }
      }
      res->type = PhysType::kBool;
      res->b8 = d;
      res->nulls = a.nulls;  // NULL-strict: NOT NULL is NULL
      return Status::OK();
    }
    case OpKind::kUnaryMinus: {
      ColumnVector a;
      Status s = EvalDense(ctx, call.operand(0), &a);
      if (!s.ok()) return s;
      res->nulls = a.nulls;
      if (a.type == PhysType::kInt64) {
        int64_t* d = ctx.AllocZeroed<int64_t>();
        for (size_t i = 0; i < n; ++i) d[i] = -a.i64[i];
        res->type = PhysType::kInt64;
        res->i64 = d;
      } else {
        double* d = ctx.AllocZeroed<double>();
        for (size_t i = 0; i < n; ++i) d[i] = -a.f64[i];
        res->type = PhysType::kDouble;
        res->f64 = d;
      }
      return Status::OK();
    }
    case OpKind::kCast: {
      ColumnVector a;
      Status s = EvalDense(ctx, call.operand(0), &a);
      if (!s.ok()) return s;
      const PhysType target = PhysTypeForRel(*type);
      if (target == a.type) {
        *res = a;  // numeric identity cast: alias the operand
        return Status::OK();
      }
      res->nulls = a.nulls;
      if (target == PhysType::kInt64) {
        int64_t* d = ctx.AllocZeroed<int64_t>();
        for (size_t i = 0; i < n; ++i) {
          if (a.nulls != nullptr && a.nulls[i]) continue;
          d[i] = static_cast<int64_t>(a.f64[i]);
        }
        res->type = PhysType::kInt64;
        res->i64 = d;
      } else {
        double* d = ctx.AllocZeroed<double>();
        for (size_t i = 0; i < n; ++i) d[i] = static_cast<double>(a.i64[i]);
        res->type = PhysType::kDouble;
        res->f64 = d;
      }
      return Status::OK();
    }
    default:
      return Status::Internal("unsupported columnar operator");
  }
}

Status EvalDense(Ctx& ctx, const RexNodePtr& node, ColumnVector* res) {
  switch (node->node_kind()) {
    case RexNode::NodeKind::kInputRef:
      return RefDense(ctx, *static_cast<const RexInputRef*>(node.get()), res);
    case RexNode::NodeKind::kLiteral:
      return LiteralDense(ctx, *static_cast<const RexLiteral*>(node.get()),
                          res);
    case RexNode::NodeKind::kCall:
      return CallDense(ctx, *static_cast<const RexCall*>(node.get()),
                       node->type(), res);
  }
  return Status::Internal("unknown rex node kind");
}

/// Gathers the active rows and evaluates per-row — the semantic anchor for
/// everything the typed kernels do not cover.
Status FallbackDense(Ctx& ctx, const RexNodePtr& node, ColumnVector* res) {
  auto vals = std::make_shared<std::vector<Value>>();
  vals->reserve(ctx.n);
  for (size_t k = 0; k < ctx.n; ++k) {
    Row row = ctx.in.GatherRow(ctx.in.ActiveIndex(k));
    auto v = RexInterpreter::Eval(node, row);
    if (!v.ok()) return v.status();
    vals->push_back(std::move(v).value());
  }
  ctx.out->boxed_pool.push_back(vals);
  res->type = PhysType::kValue;
  res->boxed = vals->data();
  return Status::OK();
}

/// Recognizes `node` as a pushdown-shaped predicate (`$col <op> literal`,
/// `literal <op> $col`, `$col IS [NOT] NULL`) and converts it, so narrowing
/// reuses the typed leaf-predicate loops.
std::optional<ScanPredicate> AsScanPredicateShape(const RexNodePtr& node) {
  const RexCall* call = AsCall(node);
  if (call == nullptr) return std::nullopt;
  const OpKind op = call->op();
  if (op == OpKind::kIsNull || op == OpKind::kIsNotNull) {
    const RexInputRef* ref = AsInputRef(call->operand(0));
    if (ref == nullptr) return std::nullopt;
    ScanPredicate pred;
    pred.kind = op == OpKind::kIsNull ? ScanPredicate::Kind::kIsNull
                                      : ScanPredicate::Kind::kIsNotNull;
    pred.column = ref->index();
    return pred;
  }
  if (!IsComparison(op)) return std::nullopt;
  const RexInputRef* ref = AsInputRef(call->operand(0));
  const RexLiteral* lit = AsLiteral(call->operand(1));
  OpKind effective = op;
  if (ref == nullptr || lit == nullptr) {
    ref = AsInputRef(call->operand(1));
    lit = AsLiteral(call->operand(0));
    if (ref == nullptr || lit == nullptr) return std::nullopt;
    effective = ReverseComparison(op);
  }
  ScanPredicate pred;
  switch (effective) {
    case OpKind::kEquals:
      pred.kind = ScanPredicate::Kind::kEquals;
      break;
    case OpKind::kNotEquals:
      pred.kind = ScanPredicate::Kind::kNotEquals;
      break;
    case OpKind::kLessThan:
      pred.kind = ScanPredicate::Kind::kLessThan;
      break;
    case OpKind::kLessThanOrEqual:
      pred.kind = ScanPredicate::Kind::kLessThanOrEqual;
      break;
    case OpKind::kGreaterThan:
      pred.kind = ScanPredicate::Kind::kGreaterThan;
      break;
    case OpKind::kGreaterThanOrEqual:
      pred.kind = ScanPredicate::Kind::kGreaterThanOrEqual;
      break;
    default:
      return std::nullopt;
  }
  pred.column = ref->index();
  pred.literal = lit->value();
  return pred;
}

}  // namespace

std::optional<PhysType> RexColumnar::ColumnarPhys(
    const RexNodePtr& node, const std::vector<PhysType>& input_phys) {
  if (node == nullptr) return std::nullopt;
  switch (node->node_kind()) {
    case RexNode::NodeKind::kInputRef: {
      const auto* ref = static_cast<const RexInputRef*>(node.get());
      const size_t idx = static_cast<size_t>(ref->index());
      if (ref->index() < 0 || idx >= input_phys.size()) return std::nullopt;
      if (input_phys[idx] == PhysType::kValue) return std::nullopt;
      return input_phys[idx];
    }
    case RexNode::NodeKind::kLiteral:
      return LiteralPhys(*static_cast<const RexLiteral*>(node.get()));
    case RexNode::NodeKind::kCall:
      break;
  }
  const auto* call = static_cast<const RexCall*>(node.get());
  const OpKind op = call->op();
  if (IsArithOp(op)) {
    if (call->operands().size() != 2) return std::nullopt;
    auto a = ColumnarPhys(call->operand(0), input_phys);
    auto b = ColumnarPhys(call->operand(1), input_phys);
    if (!a || !b || !IsNumericPhys(*a) || !IsNumericPhys(*b)) {
      return std::nullopt;
    }
    return (*a == PhysType::kInt64 && *b == PhysType::kInt64)
               ? PhysType::kInt64
               : PhysType::kDouble;
  }
  if (IsComparison(op)) {
    if (call->operands().size() != 2) return std::nullopt;
    auto a = ColumnarPhys(call->operand(0), input_phys);
    auto b = ColumnarPhys(call->operand(1), input_phys);
    if (!a || !b) return std::nullopt;
    const bool compatible = (IsNumericPhys(*a) && IsNumericPhys(*b)) ||
                            (*a == PhysType::kString && *b == PhysType::kString) ||
                            (*a == PhysType::kBool && *b == PhysType::kBool);
    if (!compatible) return std::nullopt;
    return PhysType::kBool;
  }
  switch (op) {
    case OpKind::kIsNull:
    case OpKind::kIsNotNull: {
      if (call->operands().size() != 1) return std::nullopt;
      if (!ColumnarPhys(call->operand(0), input_phys)) return std::nullopt;
      return PhysType::kBool;
    }
    case OpKind::kIsTrue:
    case OpKind::kIsFalse:
    case OpKind::kNot: {
      if (call->operands().size() != 1) return std::nullopt;
      auto a = ColumnarPhys(call->operand(0), input_phys);
      if (!a || *a != PhysType::kBool) return std::nullopt;
      return PhysType::kBool;
    }
    case OpKind::kUnaryMinus: {
      if (call->operands().size() != 1) return std::nullopt;
      auto a = ColumnarPhys(call->operand(0), input_phys);
      if (!a || !IsNumericPhys(*a)) return std::nullopt;
      return *a;
    }
    case OpKind::kCast: {
      if (call->operands().size() != 1) return std::nullopt;
      auto a = ColumnarPhys(call->operand(0), input_phys);
      if (!a || !IsNumericPhys(*a)) return std::nullopt;
      const PhysType target = PhysTypeForRel(*node->type());
      if (!IsNumericPhys(target)) return std::nullopt;
      return target;
    }
    default:
      return std::nullopt;
  }
}

std::optional<PhysType> RexColumnar::ColumnarPhys(const RexNodePtr& node,
                                                  const ColumnBatch& in) {
  std::vector<PhysType> phys;
  phys.reserve(in.cols.size());
  for (const ColumnVector& col : in.cols) phys.push_back(col.type);
  return ColumnarPhys(node, phys);
}

Status RexColumnar::AppendEvalColumn(const RexNodePtr& node,
                                     const ColumnBatch& in, ColumnBatch* out) {
  Ctx ctx{in, out, in.ActiveCount()};
  ColumnVector res;
  Status s;
  if (const RexInputRef* ref = AsInputRef(node)) {
    // Plain column references alias (or gather) regardless of class.
    s = RefDense(ctx, *ref, &res);
  } else if (ColumnarPhys(node, in).has_value()) {
    s = EvalDense(ctx, node, &res);
  } else {
    s = FallbackDense(ctx, node, &res);
  }
  if (!s.ok()) return s;
  out->cols.push_back(res);
  return Status::OK();
}

Status RexColumnar::NarrowSelection(const RexNodePtr& node,
                                    const ColumnBatch& batch,
                                    const ArenaPtr& scratch,
                                    SelectionVector* sel) {
  if (sel->empty()) return Status::OK();

  // Conjunctions narrow progressively: later conjuncts only see earlier
  // survivors, so their evaluation errors on dropped rows are suppressed —
  // identical to RexInterpreter::NarrowSelection.
  if (const RexCall* call = AsCall(node)) {
    if (call->op() == OpKind::kAnd) {
      for (const RexNodePtr& operand : call->operands()) {
        Status s = NarrowSelection(operand, batch, scratch, sel);
        if (!s.ok()) return s;
        if (sel->empty()) break;
      }
      return Status::OK();
    }
  }

  // Fused typed loops for pushdown-shaped predicates on the raw columns.
  if (auto pred = AsScanPredicateShape(node)) {
    NarrowByScanPredicate(*pred, batch, sel);
    return Status::OK();
  }

  // Dense-evaluable boolean expression: evaluate over the candidate rows
  // into scratch storage, then keep rows whose result is TRUE.
  if (ColumnarPhys(node, batch) == PhysType::kBool) {
    ColumnBatch view = batch;  // shallow: shares column storage
    view.sel = *sel;
    view.has_sel = true;
    ColumnBatch tmp;
    tmp.arena = scratch != nullptr ? scratch : std::make_shared<Arena>();
    tmp.num_rows = sel->size();
    tmp.ShareStorage(view);
    Ctx ctx{view, &tmp, sel->size()};
    ColumnVector res;
    Status s = EvalDense(ctx, node, &res);
    if (!s.ok()) return s;
    // res is a positional bytemask over the candidates (TRUE and not NULL
    // passes). Identity selections refill via the table-driven expansion;
    // narrowed ones compact in place.
    const size_t n = sel->size();
    const uint8_t* pass = res.b8;
    if (res.nulls != nullptr) {
      uint8_t* m = tmp.arena->AllocateArray<uint8_t>(n);
      simd::AndNotMask(res.b8, res.nulls, n, m);
      pass = m;
    }
    if (sel->back() + 1 == n) {
      sel->resize(n + simd::kSelSlack);
      sel->resize(simd::MaskToSel(pass, n, sel->data()));
    } else {
      sel->resize(simd::CompactSel(pass, sel->data(), n, sel->data()));
    }
    return Status::OK();
  }

  // Row-oracle fallback over the candidate rows only.
  size_t out = 0;
  for (size_t k = 0; k < sel->size(); ++k) {
    Row row = batch.GatherRow((*sel)[k]);
    auto pass = RexInterpreter::EvalPredicate(node, row);
    if (!pass.ok()) return pass.status();
    if (pass.value()) (*sel)[out++] = (*sel)[k];
  }
  sel->resize(out);
  return Status::OK();
}

}  // namespace calcite
