#include "rex/rex_interpreter.h"

#include <cmath>
#include <cstdlib>

#include "geo/geometry.h"
#include "util/string_utils.h"

namespace calcite {

namespace {

Status TypeError(const std::string& msg) { return Status::RuntimeError(msg); }

/// Arithmetic on two non-null numeric values. Integer ops stay integral when
/// both sides are integral (except '/' which follows SQL integer division).
Result<Value> EvalArithmetic(OpKind op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return TypeError(std::string("non-numeric operand to ") + OpKindName(op));
  }
  bool integral = a.is_int() && b.is_int();
  if (integral) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    switch (op) {
      case OpKind::kPlus:
        return Value::Int(x + y);
      case OpKind::kMinus:
        return Value::Int(x - y);
      case OpKind::kTimes:
        return Value::Int(x * y);
      case OpKind::kDivide:
        if (y == 0) return TypeError("division by zero");
        return Value::Int(x / y);
      case OpKind::kMod:
        if (y == 0) return TypeError("division by zero");
        return Value::Int(x % y);
      default:
        break;
    }
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case OpKind::kPlus:
      return Value::Double(x + y);
    case OpKind::kMinus:
      return Value::Double(x - y);
    case OpKind::kTimes:
      return Value::Double(x * y);
    case OpKind::kDivide:
      if (y == 0) return TypeError("division by zero");
      return Value::Double(x / y);
    case OpKind::kMod:
      if (y == 0) return TypeError("division by zero");
      return Value::Double(std::fmod(x, y));
    default:
      break;
  }
  return TypeError("unexpected arithmetic operator");
}

Result<Value> EvalComparison(OpKind op, const Value& a, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case OpKind::kEquals:
      return Value::Bool(c == 0);
    case OpKind::kNotEquals:
      return Value::Bool(c != 0);
    case OpKind::kLessThan:
      return Value::Bool(c < 0);
    case OpKind::kLessThanOrEqual:
      return Value::Bool(c <= 0);
    case OpKind::kGreaterThan:
      return Value::Bool(c > 0);
    case OpKind::kGreaterThanOrEqual:
      return Value::Bool(c >= 0);
    default:
      return TypeError("unexpected comparison operator");
  }
}

Result<Value> RequireGeometry(const Value& v) {
  if (v.is_geometry()) return v;
  if (v.is_string()) {
    auto geom = geo::GeomFromText(v.AsString());
    if (!geom.ok()) return geom.status();
    return Value::Geometry(geom.value());
  }
  return TypeError("expected GEOMETRY value");
}

}  // namespace

Result<Value> RexInterpreter::CastValue(const Value& value,
                                        const RelDataType& type) {
  if (value.IsNull()) return Value::Null();
  switch (type.type_name()) {
    case SqlTypeName::kBoolean:
      if (value.is_bool()) return value;
      if (value.is_string()) {
        if (EqualsIgnoreCase(value.AsString(), "true")) return Value::Bool(true);
        if (EqualsIgnoreCase(value.AsString(), "false")) {
          return Value::Bool(false);
        }
        return TypeError("cannot cast '" + value.AsString() + "' to BOOLEAN");
      }
      if (value.is_numeric()) return Value::Bool(value.AsDouble() != 0);
      return TypeError("cannot cast to BOOLEAN");
    case SqlTypeName::kTinyInt:
    case SqlTypeName::kSmallInt:
    case SqlTypeName::kInteger:
    case SqlTypeName::kBigInt:
    case SqlTypeName::kDate:
    case SqlTypeName::kTime:
    case SqlTypeName::kTimestamp:
    case SqlTypeName::kIntervalDay:
      if (value.is_int()) return value;
      if (value.is_double()) {
        return Value::Int(static_cast<int64_t>(value.AsDouble()));
      }
      if (value.is_bool()) return Value::Int(value.AsBool() ? 1 : 0);
      if (value.is_string()) {
        char* end = nullptr;
        const std::string& s = value.AsString();
        double d = std::strtod(s.c_str(), &end);
        if (end == s.c_str()) {
          return TypeError("cannot cast '" + s + "' to " +
                           SqlTypeNameString(type.type_name()));
        }
        return Value::Int(static_cast<int64_t>(d));
      }
      return TypeError("cannot cast to integer type");
    case SqlTypeName::kFloat:
    case SqlTypeName::kDouble:
    case SqlTypeName::kDecimal:
      if (value.is_numeric()) return Value::Double(value.AsDouble());
      if (value.is_bool()) return Value::Double(value.AsBool() ? 1 : 0);
      if (value.is_string()) {
        char* end = nullptr;
        const std::string& s = value.AsString();
        double d = std::strtod(s.c_str(), &end);
        if (end == s.c_str()) {
          return TypeError("cannot cast '" + s + "' to DOUBLE");
        }
        return Value::Double(d);
      }
      return TypeError("cannot cast to floating type");
    case SqlTypeName::kChar:
    case SqlTypeName::kVarchar: {
      std::string s;
      if (value.is_string()) {
        s = value.AsString();
      } else if (value.is_int()) {
        s = std::to_string(value.AsInt());
      } else if (value.is_double()) {
        Value v = value;
        s = v.ToString();
      } else if (value.is_bool()) {
        s = value.AsBool() ? "true" : "false";
      } else if (value.is_geometry()) {
        s = value.AsGeometry()->ToWkt();
      } else {
        Value v = value;
        s = v.ToString();
      }
      if (type.precision() >= 0 &&
          s.size() > static_cast<size_t>(type.precision())) {
        s = s.substr(0, static_cast<size_t>(type.precision()));
      }
      return Value::String(std::move(s));
    }
    case SqlTypeName::kGeometry:
      return RequireGeometry(value);
    case SqlTypeName::kAny:
    case SqlTypeName::kArray:
    case SqlTypeName::kMap:
    case SqlTypeName::kMultiset:
    case SqlTypeName::kRow:
    case SqlTypeName::kNull:
      return value;
  }
  return value;
}

Result<Value> RexInterpreter::Eval(const RexNodePtr& node, const Row& input) {
  switch (node->node_kind()) {
    case RexNode::NodeKind::kInputRef: {
      const auto* ref = static_cast<const RexInputRef*>(node.get());
      if (ref->index() < 0 || static_cast<size_t>(ref->index()) >= input.size()) {
        return TypeError("input ref $" + std::to_string(ref->index()) +
                         " out of range for row of " +
                         std::to_string(input.size()));
      }
      return input[static_cast<size_t>(ref->index())];
    }
    case RexNode::NodeKind::kLiteral:
      return static_cast<const RexLiteral*>(node.get())->value();
    case RexNode::NodeKind::kCall:
      break;
  }
  const auto* call = static_cast<const RexCall*>(node.get());
  const OpKind op = call->op();

  // Short-circuiting boolean connectives with three-valued logic.
  if (op == OpKind::kAnd || op == OpKind::kOr) {
    bool saw_null = false;
    for (const RexNodePtr& operand : call->operands()) {
      auto v = Eval(operand, input);
      if (!v.ok()) return v;
      if (v.value().IsNull()) {
        saw_null = true;
        continue;
      }
      bool b = v.value().AsBool();
      if (op == OpKind::kAnd && !b) return Value::Bool(false);
      if (op == OpKind::kOr && b) return Value::Bool(true);
    }
    if (saw_null) return Value::Null();
    return Value::Bool(op == OpKind::kAnd);
  }
  if (op == OpKind::kCase) {
    // [cond1, val1, ..., else]
    const auto& ops = call->operands();
    for (size_t i = 0; i + 1 < ops.size(); i += 2) {
      auto cond = Eval(ops[i], input);
      if (!cond.ok()) return cond;
      if (!cond.value().IsNull() && cond.value().AsBool()) {
        return Eval(ops[i + 1], input);
      }
    }
    return Eval(ops.back(), input);
  }
  if (op == OpKind::kCoalesce) {
    for (const RexNodePtr& operand : call->operands()) {
      auto v = Eval(operand, input);
      if (!v.ok()) return v;
      if (!v.value().IsNull()) return v;
    }
    return Value::Null();
  }

  // Strict evaluation of operands for the remaining operators.
  std::vector<Value> args;
  args.reserve(call->operands().size());
  for (const RexNodePtr& operand : call->operands()) {
    auto v = Eval(operand, input);
    if (!v.ok()) return v;
    args.push_back(std::move(v).value());
  }

  // NULL-tolerant operators first.
  switch (op) {
    case OpKind::kIsNull:
      return Value::Bool(args[0].IsNull());
    case OpKind::kIsNotNull:
      return Value::Bool(!args[0].IsNull());
    case OpKind::kIsTrue:
      return Value::Bool(!args[0].IsNull() && args[0].AsBool());
    case OpKind::kIsFalse:
      return Value::Bool(!args[0].IsNull() && !args[0].AsBool());
    case OpKind::kCast:
      return CastValue(args[0], *node->type());
    default:
      break;
  }

  // All remaining operators are NULL-strict.
  for (const Value& arg : args) {
    if (arg.IsNull()) return Value::Null();
  }

  switch (op) {
    case OpKind::kPlus:
    case OpKind::kMinus:
    case OpKind::kTimes:
    case OpKind::kDivide:
    case OpKind::kMod:
      return EvalArithmetic(op, args[0], args[1]);
    case OpKind::kUnaryMinus:
      if (args[0].is_int()) return Value::Int(-args[0].AsInt());
      if (args[0].is_double()) return Value::Double(-args[0].AsDouble());
      return TypeError("non-numeric operand to unary minus");
    case OpKind::kEquals:
    case OpKind::kNotEquals:
    case OpKind::kLessThan:
    case OpKind::kLessThanOrEqual:
    case OpKind::kGreaterThan:
    case OpKind::kGreaterThanOrEqual:
      return EvalComparison(op, args[0], args[1]);
    case OpKind::kNot:
      return Value::Bool(!args[0].AsBool());
    case OpKind::kLike:
      return Value::Bool(SqlLikeMatch(args[0].AsString(), args[1].AsString()));
    case OpKind::kIn: {
      bool saw_null = false;
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i].IsNull()) {
          saw_null = true;
          continue;
        }
        if (args[0] == args[i]) return Value::Bool(true);
      }
      return saw_null ? Value::Null() : Value::Bool(false);
    }
    case OpKind::kBetween:
      return Value::Bool(args[0].Compare(args[1]) >= 0 &&
                         args[0].Compare(args[2]) <= 0);
    case OpKind::kItem:
      if (args[0].is_map()) return args[0].MapLookup(args[1]);
      if (args[0].is_array()) {
        if (!args[1].is_numeric()) return TypeError("array index not numeric");
        int64_t idx = args[1].AsInt();
        const auto& elems = args[0].AsArray();
        // SQL arrays are 1-based; we additionally accept 0-based index 0 for
        // the paper's MongoDB example `_MAP['loc'][0]`.
        if (idx >= 1 && static_cast<size_t>(idx) <= elems.size()) {
          return elems[static_cast<size_t>(idx - 1)];
        }
        if (idx == 0 && !elems.empty()) return elems[0];
        return Value::Null();
      }
      return Value::Null();
    case OpKind::kConcat:
      return Value::String(args[0].AsString() + args[1].AsString());
    case OpKind::kUpper:
      return Value::String(ToUpper(args[0].AsString()));
    case OpKind::kLower:
      return Value::String(ToLower(args[0].AsString()));
    case OpKind::kTrim:
      return Value::String(Trim(args[0].AsString()));
    case OpKind::kCharLength:
      return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
    case OpKind::kSubstring: {
      const std::string& s = args[0].AsString();
      int64_t start = args[1].AsInt();  // 1-based
      int64_t len = args.size() > 2 ? args[2].AsInt()
                                    : static_cast<int64_t>(s.size());
      if (start < 1) start = 1;
      if (start > static_cast<int64_t>(s.size())) return Value::String("");
      return Value::String(
          s.substr(static_cast<size_t>(start - 1),
                   static_cast<size_t>(std::max<int64_t>(0, len))));
    }
    case OpKind::kAbs:
      if (args[0].is_int()) return Value::Int(std::abs(args[0].AsInt()));
      return Value::Double(std::abs(args[0].AsDouble()));
    case OpKind::kFloor:
      if (args[0].is_int()) return args[0];
      return Value::Double(std::floor(args[0].AsDouble()));
    case OpKind::kCeil:
      if (args[0].is_int()) return args[0];
      return Value::Double(std::ceil(args[0].AsDouble()));
    case OpKind::kPower:
      return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
    case OpKind::kSqrt:
      return Value::Double(std::sqrt(args[0].AsDouble()));
    case OpKind::kStGeomFromText: {
      auto geom = geo::GeomFromText(args[0].AsString());
      if (!geom.ok()) return geom.status();
      return Value::Geometry(geom.value());
    }
    case OpKind::kStAsText: {
      auto g = RequireGeometry(args[0]);
      if (!g.ok()) return g;
      return Value::String(g.value().AsGeometry()->ToWkt());
    }
    case OpKind::kStMakePoint:
      return Value::Geometry(
          geo::Geometry::MakePoint(args[0].AsDouble(), args[1].AsDouble()));
    case OpKind::kStContains: {
      auto a = RequireGeometry(args[0]);
      if (!a.ok()) return a;
      auto b = RequireGeometry(args[1]);
      if (!b.ok()) return b;
      return Value::Bool(
          geo::Contains(*a.value().AsGeometry(), *b.value().AsGeometry()));
    }
    case OpKind::kStWithin: {
      auto a = RequireGeometry(args[0]);
      if (!a.ok()) return a;
      auto b = RequireGeometry(args[1]);
      if (!b.ok()) return b;
      return Value::Bool(
          geo::Within(*a.value().AsGeometry(), *b.value().AsGeometry()));
    }
    case OpKind::kStIntersects: {
      auto a = RequireGeometry(args[0]);
      if (!a.ok()) return a;
      auto b = RequireGeometry(args[1]);
      if (!b.ok()) return b;
      return Value::Bool(
          geo::Intersects(*a.value().AsGeometry(), *b.value().AsGeometry()));
    }
    case OpKind::kStDistance: {
      auto a = RequireGeometry(args[0]);
      if (!a.ok()) return a;
      auto b = RequireGeometry(args[1]);
      if (!b.ok()) return b;
      return Value::Double(
          geo::Distance(*a.value().AsGeometry(), *b.value().AsGeometry()));
    }
    case OpKind::kStArea: {
      auto g = RequireGeometry(args[0]);
      if (!g.ok()) return g;
      return Value::Double(g.value().AsGeometry()->Area());
    }
    case OpKind::kStX: {
      auto g = RequireGeometry(args[0]);
      if (!g.ok()) return g;
      return Value::Double(g.value().AsGeometry()->X());
    }
    case OpKind::kStY: {
      auto g = RequireGeometry(args[0]);
      if (!g.ok()) return g;
      return Value::Double(g.value().AsGeometry()->Y());
    }
    // Streaming window functions: TUMBLE(ts, interval) assigns the window
    // start; *_END the window end. HOP takes (ts, slide, size). SESSION's
    // runtime assignment happens in the stream executor; here we map the
    // timestamp to its containing tumbling/hopping bucket.
    case OpKind::kTumble: {
      int64_t ts = args[0].AsInt();
      int64_t size = args[1].AsInt();
      if (size <= 0) return TypeError("TUMBLE interval must be positive");
      return Value::Int(ts - (ts % size + size) % size);
    }
    case OpKind::kTumbleStart: {
      int64_t ts = args[0].AsInt();
      int64_t size = args[1].AsInt();
      if (size <= 0) return TypeError("TUMBLE interval must be positive");
      return Value::Int(ts - (ts % size + size) % size);
    }
    case OpKind::kTumbleEnd: {
      int64_t ts = args[0].AsInt();
      int64_t size = args[1].AsInt();
      if (size <= 0) return TypeError("TUMBLE interval must be positive");
      return Value::Int(ts - (ts % size + size) % size + size);
    }
    case OpKind::kHop: {
      int64_t ts = args[0].AsInt();
      int64_t slide = args[1].AsInt();
      if (slide <= 0) return TypeError("HOP slide must be positive");
      return Value::Int(ts - (ts % slide + slide) % slide);
    }
    case OpKind::kHopEnd: {
      int64_t ts = args[0].AsInt();
      int64_t slide = args[1].AsInt();
      int64_t size = args[2].AsInt();
      if (slide <= 0) return TypeError("HOP slide must be positive");
      return Value::Int(ts - (ts % slide + slide) % slide + size);
    }
    case OpKind::kSession:
    case OpKind::kSessionEnd:
      // Sessionization depends on neighbouring rows; the stream executor
      // rewrites SESSION groups before evaluation. Standalone evaluation
      // degenerates to the timestamp itself.
      return args[0];
    default:
      break;
  }
  return TypeError(std::string("cannot evaluate operator ") + OpKindName(op));
}

Result<bool> RexInterpreter::EvalPredicate(const RexNodePtr& node,
                                           const Row& input) {
  auto v = Eval(node, input);
  if (!v.ok()) return v.status();
  if (v.value().IsNull()) return false;
  return v.value().AsBool();
}

namespace {

/// A predicate operand that can be fetched without recursive evaluation:
/// either an input column or a literal constant.
struct ColumnOrConst {
  bool ok = false;
  int col = -1;                // input column when >= 0
  const Value* lit = nullptr;  // literal otherwise
};

ColumnOrConst Classify(const RexNodePtr& node) {
  ColumnOrConst out;
  switch (node->node_kind()) {
    case RexNode::NodeKind::kInputRef:
      out.col = static_cast<const RexInputRef*>(node.get())->index();
      out.ok = out.col >= 0;
      return out;
    case RexNode::NodeKind::kLiteral:
      out.lit = &static_cast<const RexLiteral*>(node.get())->value();
      out.ok = true;
      return out;
    case RexNode::NodeKind::kCall:
      return out;
  }
  return out;
}

Result<const Value*> FetchOperand(const ColumnOrConst& operand,
                                  const Row& row) {
  if (operand.lit != nullptr) return operand.lit;
  if (static_cast<size_t>(operand.col) >= row.size()) {
    return TypeError("input ref $" + std::to_string(operand.col) +
                     " out of range for row of " + std::to_string(row.size()));
  }
  return &row[static_cast<size_t>(operand.col)];
}

bool ComparisonPasses(OpKind op, int c) {
  switch (op) {
    case OpKind::kEquals:
      return c == 0;
    case OpKind::kNotEquals:
      return c != 0;
    case OpKind::kLessThan:
      return c < 0;
    case OpKind::kLessThanOrEqual:
      return c <= 0;
    case OpKind::kGreaterThan:
      return c > 0;
    case OpKind::kGreaterThanOrEqual:
      return c >= 0;
    default:
      return false;
  }
}

bool IsComparisonOp(OpKind op) {
  switch (op) {
    case OpKind::kEquals:
    case OpKind::kNotEquals:
    case OpKind::kLessThan:
    case OpKind::kLessThanOrEqual:
    case OpKind::kGreaterThan:
    case OpKind::kGreaterThanOrEqual:
      return true;
    default:
      return false;
  }
}

/// Narrows `sel` to the rows passing `node`. Conjunctions recurse so that
/// each conjunct only sees the survivors of the previous one; comparisons
/// and NULL tests over input refs / literals run as branch-light loops with
/// no per-row Result wrapping.
Status FilterSelection(const RexNodePtr& node, const RowBatch& batch,
                       SelectionVector* sel) {
  if (sel->empty()) return Status::OK();
  if (node->node_kind() == RexNode::NodeKind::kCall) {
    const auto* call = static_cast<const RexCall*>(node.get());
    const OpKind op = call->op();
    if (op == OpKind::kAnd) {
      for (const RexNodePtr& operand : call->operands()) {
        CALCITE_RETURN_IF_ERROR(FilterSelection(operand, batch, sel));
        if (sel->empty()) return Status::OK();
      }
      return Status::OK();
    }
    if (IsComparisonOp(op) && call->operands().size() == 2) {
      ColumnOrConst lhs = Classify(call->operands()[0]);
      ColumnOrConst rhs = Classify(call->operands()[1]);
      if (lhs.ok && rhs.ok) {
        size_t kept = 0;
        for (uint32_t idx : *sel) {
          const Row& row = batch[idx];
          auto a = FetchOperand(lhs, row);
          if (!a.ok()) return a.status();
          auto b = FetchOperand(rhs, row);
          if (!b.ok()) return b.status();
          if (a.value()->IsNull() || b.value()->IsNull()) continue;
          if (ComparisonPasses(op, a.value()->Compare(*b.value()))) {
            (*sel)[kept++] = idx;
          }
        }
        sel->resize(kept);
        return Status::OK();
      }
    }
    if ((op == OpKind::kIsNull || op == OpKind::kIsNotNull) &&
        call->operands().size() == 1) {
      ColumnOrConst arg = Classify(call->operands()[0]);
      if (arg.ok) {
        const bool want_null = op == OpKind::kIsNull;
        size_t kept = 0;
        for (uint32_t idx : *sel) {
          auto v = FetchOperand(arg, batch[idx]);
          if (!v.ok()) return v.status();
          if (v.value()->IsNull() == want_null) (*sel)[kept++] = idx;
        }
        sel->resize(kept);
        return Status::OK();
      }
    }
  }
  // General fallback: scalar evaluation per candidate row (OR trees, CASE,
  // LIKE, geo predicates, ...). Still one batch-level dispatch upstream.
  size_t kept = 0;
  for (uint32_t idx : *sel) {
    auto pass = RexInterpreter::EvalPredicate(node, batch[idx]);
    if (!pass.ok()) return pass.status();
    if (pass.value()) (*sel)[kept++] = idx;
  }
  sel->resize(kept);
  return Status::OK();
}

/// The number of rows EvalBatchSel will touch.
size_t ActiveCount(const RowBatch& batch, const SelectionVector* sel) {
  return sel != nullptr ? sel->size() : batch.size();
}

/// The k-th row under the (possibly absent) selection.
const Row& ActiveRow(const RowBatch& batch, const SelectionVector* sel,
                     size_t k) {
  return sel != nullptr ? batch[(*sel)[k]] : batch[k];
}

bool IsArithmeticOp(OpKind op) {
  switch (op) {
    case OpKind::kPlus:
    case OpKind::kMinus:
    case OpKind::kTimes:
    case OpKind::kDivide:
    case OpKind::kMod:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status RexInterpreter::EvalBatch(const RexNodePtr& node, const RowBatch& batch,
                                 std::vector<Value>* out) {
  return EvalBatchSel(node, batch, /*sel=*/nullptr, out);
}

Status RexInterpreter::EvalBatchSel(const RexNodePtr& node,
                                    const RowBatch& batch,
                                    const SelectionVector* sel,
                                    std::vector<Value>* out) {
  const size_t n = ActiveCount(batch, sel);
  out->clear();
  out->reserve(n);
  switch (node->node_kind()) {
    case RexNode::NodeKind::kInputRef: {
      const auto* ref = static_cast<const RexInputRef*>(node.get());
      const int col = ref->index();
      for (size_t k = 0; k < n; ++k) {
        const Row& row = ActiveRow(batch, sel, k);
        if (col < 0 || static_cast<size_t>(col) >= row.size()) {
          return TypeError("input ref $" + std::to_string(col) +
                           " out of range for row of " +
                           std::to_string(row.size()));
        }
        out->push_back(row[static_cast<size_t>(col)]);
      }
      return Status::OK();
    }
    case RexNode::NodeKind::kLiteral: {
      const Value& value = static_cast<const RexLiteral*>(node.get())->value();
      out->assign(n, value);
      return Status::OK();
    }
    case RexNode::NodeKind::kCall:
      break;
  }
  const auto* call = static_cast<const RexCall*>(node.get());
  const OpKind op = call->op();
  const std::vector<RexNodePtr>& operands = call->operands();

  // Fused binary kernels: arithmetic / comparison over two operands that
  // are each an input column or a literal. One batch loop, no per-row tree
  // dispatch; NULL-strict semantics and error behaviour identical to Eval
  // (FetchOperand raises the same range error, EvalArithmetic the same
  // division-by-zero / type errors, on the same first offending row).
  if (operands.size() == 2 && (IsArithmeticOp(op) || IsComparisonOp(op))) {
    ColumnOrConst lhs = Classify(operands[0]);
    ColumnOrConst rhs = Classify(operands[1]);
    if (lhs.ok && rhs.ok) {
      const bool is_arith = IsArithmeticOp(op);
      for (size_t k = 0; k < n; ++k) {
        const Row& row = ActiveRow(batch, sel, k);
        auto a = FetchOperand(lhs, row);
        if (!a.ok()) return a.status();
        auto b = FetchOperand(rhs, row);
        if (!b.ok()) return b.status();
        if (a.value()->IsNull() || b.value()->IsNull()) {
          out->push_back(Value::Null());
          continue;
        }
        if (is_arith) {
          auto v = EvalArithmetic(op, *a.value(), *b.value());
          if (!v.ok()) return v.status();
          out->push_back(std::move(v).value());
        } else {
          out->push_back(
              Value::Bool(ComparisonPasses(op, a.value()->Compare(*b.value()))));
        }
      }
      return Status::OK();
    }
  }

  // Fused unary kernels: NULL tests, NOT, unary minus, and single-step
  // CASTs whose operand is an input column or literal.
  if (operands.size() == 1) {
    ColumnOrConst arg = Classify(operands[0]);
    bool fused_unary = arg.ok;
    switch (op) {
      case OpKind::kIsNull:
      case OpKind::kIsNotNull:
      case OpKind::kIsTrue:
      case OpKind::kIsFalse:
      case OpKind::kNot:
      case OpKind::kUnaryMinus:
      case OpKind::kCast:
        break;
      default:
        fused_unary = false;
        break;
    }
    if (fused_unary) {
      for (size_t k = 0; k < n; ++k) {
        auto v = FetchOperand(arg, ActiveRow(batch, sel, k));
        if (!v.ok()) return v.status();
        const Value& value = *v.value();
        switch (op) {
          case OpKind::kIsNull:
            out->push_back(Value::Bool(value.IsNull()));
            break;
          case OpKind::kIsNotNull:
            out->push_back(Value::Bool(!value.IsNull()));
            break;
          case OpKind::kIsTrue:
            out->push_back(Value::Bool(!value.IsNull() && value.AsBool()));
            break;
          case OpKind::kIsFalse:
            out->push_back(Value::Bool(!value.IsNull() && !value.AsBool()));
            break;
          case OpKind::kNot:
            out->push_back(value.IsNull() ? Value::Null()
                                          : Value::Bool(!value.AsBool()));
            break;
          case OpKind::kUnaryMinus:
            if (value.IsNull()) {
              out->push_back(Value::Null());
            } else if (value.is_int()) {
              out->push_back(Value::Int(-value.AsInt()));
            } else if (value.is_double()) {
              out->push_back(Value::Double(-value.AsDouble()));
            } else {
              return TypeError("non-numeric operand to unary minus");
            }
            break;
          case OpKind::kCast: {
            auto cast = CastValue(value, *node->type());
            if (!cast.ok()) return cast.status();
            out->push_back(std::move(cast).value());
            break;
          }
          default:
            break;
        }
      }
      return Status::OK();
    }
  }

  // General fallback: per-row tree interpretation over the selected rows
  // only — rows outside the selection are never evaluated.
  for (size_t k = 0; k < n; ++k) {
    auto v = Eval(node, ActiveRow(batch, sel, k));
    if (!v.ok()) return v.status();
    out->push_back(std::move(v).value());
  }
  return Status::OK();
}

Status RexInterpreter::NarrowSelection(const RexNodePtr& node,
                                       const RowBatch& batch,
                                       SelectionVector* sel) {
  return FilterSelection(node, batch, sel);
}

}  // namespace calcite
