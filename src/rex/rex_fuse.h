#ifndef CALCITE_REX_REX_FUSE_H_
#define CALCITE_REX_REX_FUSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/column_batch.h"
#include "exec/simd.h"
#include "rex/rex_node.h"
#include "util/status.h"

namespace calcite {

/// Tree-fusing bytecode layer over the columnar expression kernels.
///
/// RexColumnar runs one SIMD kernel per *node*, materializing an arena
/// temporary per operator. FuseProgram instead lowers a whole RexNode tree
/// into a flat register-allocated bytecode program, and FusedExpr executes
/// it block-at-a-time (kFuseBlockRows rows) against the simd.h primitives:
/// every intermediate lives in a fixed per-register scratch slot reused
/// across blocks, so a fused evaluation allocates exactly the result column
/// from the output arena and nothing else, and intermediates stay L1-hot
/// instead of streaming full-batch temporaries through memory.
///
/// Register allocation is Sethi-Ullman-shaped: operands are lowered in
/// post-order, their registers are freed as each operator consumes them,
/// and destinations come from the free list first — so a program uses at
/// most (tree depth + 1) registers, not one per node.
///
/// Semantics are bit-identical to the per-node and per-row paths — the
/// differential fuzz suite diffs all three on every generated tree. Two
/// rules make that safe:
///
///  - Totality: every fusible instruction is error-free. Division and
///    modulus fuse only when the divisor is a non-NULL non-zero numeric
///    literal; anything that could raise at runtime fails compilation
///    instead, so executing a program never fails and — since any such
///    tree is just as error-free under per-node/per-row evaluation —
///    error behavior cannot diverge between the paths.
///  - Fallback: Compile() returns nullptr for any tree it cannot lower
///    (strings, boxed columns, bool-vs-bool comparisons, non-literal
///    divisors, unsupported operators), and FusedExpr transparently routes
///    those trees to RexColumnar.
///
/// AND lowering additionally folds range pairs: a lower and an upper bound
/// on the same column ($0 >= a AND $0 < b) fuse into one kInRange interval
/// instruction instead of two compares and a mask AND.
inline constexpr size_t kFuseBlockRows = 1024;

/// One bytecode operation. The operand fields are a union-in-spirit; which
/// ones are meaningful depends on the op (see FuseInstr).
enum class FuseOp : uint8_t {
  kLoadCol,     // dst <- input column `col` (alias when dense, gather via sel)
  kLoadLitI64,  // dst <- broadcast imm_i64
  kLoadLitF64,  // dst <- broadcast imm_f64
  kLoadLitBool, // dst <- broadcast imm_i64 (0/1)
  kLoadNull,    // dst <- typed all-NULL column
  kArith,       // dst <- a (+|-|*) b, NULL-strict, null slots re-zeroed
  kArithLit,    // dst <- a (+|-|*) literal
  kDivModLit,   // dst <- a (/|%) literal  (literal non-NULL, non-zero)
  kCmp,         // dst <- a <cmp> b as 0/1 bytes, NULL-strict
  kCmpLit,      // dst <- a <cmp> literal
  kInRange,     // dst <- lo (<|<=) a (<|<=) hi fused interval test
  kAnd,         // dst <- a AND b, Kleene three-valued
  kOr,          // dst <- a OR b, Kleene three-valued
  kNot,         // dst <- NOT a, NULL-propagating
  kIsNull,      // dst <- a IS NULL (never NULL itself)
  kIsNotNull,   // dst <- a IS NOT NULL
  kIsTrue,      // dst <- a IS TRUE  (NULL -> false)
  kIsFalse,     // dst <- a IS FALSE (NULL -> false)
  kNeg,         // dst <- -a, NULL-propagating
  kCastI64F64,  // dst <- double(a)
  kCastF64I64,  // dst <- int64(trunc(a)) on non-NULL rows
};

/// One instruction. `dst`/`a`/`b` are register numbers; `vtype` is the
/// physical class of the *result* (kInt64/kDouble/kBool). For kCmp/kCmpLit/
/// kInRange — whose result is bool — `is_f64` records the operand lane
/// width instead. Literal operands ride in imm_i64/imm_f64; kInRange uses
/// imm/imm2 as the lo/hi bounds with lo_strict/hi_strict picking > vs >=
/// and < vs <=. kLoadCol reads input column `col`.
struct FuseInstr {
  FuseOp op;
  uint8_t dst = 0;
  uint8_t a = 0;
  uint8_t b = 0;
  PhysType vtype = PhysType::kValue;
  bool is_f64 = false;
  simd::Cmp cmp = simd::Cmp::kEq;
  simd::Arith arith = simd::Arith::kAdd;
  bool is_mod = false;
  bool lo_strict = false;
  bool hi_strict = false;
  int32_t col = 0;
  int64_t imm_i64 = 0;
  int64_t imm2_i64 = 0;
  double imm_f64 = 0.0;
  double imm2_f64 = 0.0;
};

/// A compiled, immutable bytecode program for one RexNode tree against one
/// input column-class layout. Shareable across threads (execution state
/// lives in FusedExpr).
class FuseProgram {
 public:
  /// Lowers `node` against inputs of the given physical classes. Returns
  /// nullptr when any part of the tree is unsupported — the caller must
  /// fall back to the per-node path. Never partially fuses a tree.
  static std::shared_ptr<const FuseProgram> Compile(
      const RexNodePtr& node, const std::vector<PhysType>& input_phys);

  const std::vector<FuseInstr>& instrs() const { return instrs_; }
  int num_registers() const { return num_registers_; }
  int result_reg() const { return result_reg_; }
  PhysType result_phys() const { return result_phys_; }

  /// Human-readable listing, one instruction per line plus a `ret` footer —
  /// the golden-test surface (tests/rex_fuse_test.cc).
  std::string Disassemble() const;

 private:
  FuseProgram() = default;

  std::vector<FuseInstr> instrs_;
  int num_registers_ = 0;
  int result_reg_ = 0;
  PhysType result_phys_ = PhysType::kValue;
};

/// Executable wrapper owning the per-thread interpreter state (register
/// scratch, cached program). Like ArenaPool it is NOT thread-safe: each
/// producer thread owns its own FusedExpr for a given expression.
///
/// Both entry points are drop-in replacements for the RexColumnar calls of
/// the same name: when fusion is disabled or the tree does not lower, they
/// delegate to RexColumnar, so callers need no second code path.
class FusedExpr {
 public:
  explicit FusedExpr(RexNodePtr node, bool enable_fusion = true)
      : node_(std::move(node)), enable_fusion_(enable_fusion) {}

  const RexNodePtr& node() const { return node_; }

  /// Fused analogue of RexColumnar::AppendEvalColumn (same contract).
  Status AppendEvalColumn(const ColumnBatch& in, ColumnBatch* out);

  /// Fused analogue of RexColumnar::NarrowSelection (same contract).
  /// Top-level ANDs whose whole tree does not fuse still narrow conjunct
  /// by conjunct — fusing each conjunct that lowers — with the same
  /// progressive early-exit as the per-node path.
  Status NarrowSelection(const ColumnBatch& batch, const ArenaPtr& scratch,
                         SelectionVector* sel);

 private:
  /// Interpreter register: `data`/`nulls` point at the current block's
  /// content — either this register's scratch slot or, zero-copy, at input
  /// batch storage (marked external; external pointers are stable for the
  /// block, so later instructions may alias them, while another register's
  /// slot may be overwritten by reuse and must be copied instead).
  struct Reg {
    const uint8_t* data = nullptr;
    const uint8_t* nulls = nullptr;  // nullptr = no NULL rows
    bool data_external = false;
    bool nulls_external = false;
    uint8_t* slot_data = nullptr;
    uint8_t* slot_nulls = nullptr;
  };

  /// Program for `in`'s column classes; compiles on first use and
  /// recompiles only when the input layout changes (it never does within
  /// one pipeline). nullptr = tree not fusible for this layout.
  const FuseProgram* ProgramFor(const ColumnBatch& in);

  void EnsureScratch();
  void CopyNulls(Reg* d, const Reg& s, size_t len);
  void FoldNulls(Reg* d, const Reg& a, const Reg& b, size_t len);
  /// Executes the program over one block: rows base..base+len-1 when `sel`
  /// is null, else the rows named by sel[0..len). Total — never fails.
  void RunBlock(const ColumnBatch& in, size_t base, const uint32_t* sel,
                size_t len);
  void RunDense(const ColumnBatch& in, ColumnBatch* out);
  void RunNarrow(const ColumnBatch& batch, SelectionVector* sel);

  RexNodePtr node_;
  bool enable_fusion_;
  bool compiled_ = false;
  std::vector<PhysType> compiled_phys_;
  std::shared_ptr<const FuseProgram> program_;
  std::vector<uint8_t> scratch_;
  std::vector<Reg> regs_;
  /// Lazy per-conjunct fused exprs for the AND-narrowing path.
  std::vector<std::unique_ptr<FusedExpr>> conjuncts_;
};

}  // namespace calcite

#endif  // CALCITE_REX_REX_FUSE_H_
