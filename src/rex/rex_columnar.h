#ifndef CALCITE_REX_REX_COLUMNAR_H_
#define CALCITE_REX_REX_COLUMNAR_H_

#include <optional>
#include <vector>

#include "exec/column_batch.h"
#include "rex/rex_node.h"
#include "util/status.h"

namespace calcite {

/// Columnar expression kernels: the RexInterpreter's fused batch loops
/// rewritten as tight loops over contiguous typed columns. Semantics are
/// identical to per-row Eval — SQL three-valued logic, NULL-strict
/// arithmetic with the NULL check before the division-by-zero check, errors
/// raised only for rows in the active selection — which the differential
/// fuzz suite (tests/rex_kernel_fuzz_test.cc) enforces against the row
/// oracle.
class RexColumnar {
 public:
  /// Physical class of `node`'s result when evaluated over inputs with the
  /// given column classes, or nullopt when no typed kernel covers the whole
  /// subtree (the caller then falls back to per-row Eval). Covered: input
  /// refs of typed columns, typed literals, binary arithmetic, comparisons
  /// over compatible classes, NOT / IS [NOT] NULL / IS [NOT] TRUE-FALSE,
  /// unary minus, and numeric CASTs.
  static std::optional<PhysType> ColumnarPhys(
      const RexNodePtr& node, const std::vector<PhysType>& input_phys);

  /// Convenience over a batch's column classes.
  static std::optional<PhysType> ColumnarPhys(const RexNodePtr& node,
                                              const ColumnBatch& in);

  /// Evaluates `node` over the *active* rows of `in` and appends the result
  /// as a dense column (one entry per active row, no selection) to `out`.
  /// Typed results are bump-allocated from out->arena; unsupported subtrees
  /// fall back to per-row Eval into a boxed column owned by out->boxed_pool,
  /// so every expression evaluates. The caller must have called
  /// out->ShareStorage(in) (input columns may be aliased zero-copy) and set
  /// out->num_rows == in.ActiveCount().
  static Status AppendEvalColumn(const RexNodePtr& node, const ColumnBatch& in,
                                 ColumnBatch* out);

  /// Narrows `sel` — ascending candidate indexes into `batch`'s physical
  /// rows — to those where `node` passes as a filter (NULL/UNKNOWN fail),
  /// in place. Conjunctions narrow progressively; ref-vs-literal
  /// comparisons and NULL tests run as fused typed loops on the raw
  /// columns; other supported predicates evaluate densely into `scratch`
  /// (reset by the caller between batches); everything else gathers rows
  /// and asks the row oracle. Mirrors RexInterpreter::NarrowSelection.
  static Status NarrowSelection(const RexNodePtr& node,
                                const ColumnBatch& batch,
                                const ArenaPtr& scratch,
                                SelectionVector* sel);
};

}  // namespace calcite

#endif  // CALCITE_REX_REX_COLUMNAR_H_
