#ifndef CALCITE_REX_REX_UTIL_H_
#define CALCITE_REX_REX_UTIL_H_

#include <set>
#include <vector>

#include "exec/row_batch.h"
#include "rex/rex_builder.h"
#include "rex/rex_node.h"

namespace calcite {

/// Static analysis and rewriting helpers over row expressions; the C++
/// equivalent of Calcite's RexUtil. Used heavily by planner rules
/// (FilterIntoJoinRule splits conjunctions and classifies them by the side
/// of the join they reference).
class RexUtil {
 public:
  /// Splits a predicate into its top-level conjuncts (flattening nested
  /// ANDs). A TRUE literal produces an empty list.
  static std::vector<RexNodePtr> FlattenAnd(const RexNodePtr& node);

  /// Conjoins predicates (inverse of FlattenAnd).
  static RexNodePtr ComposeConjunction(const RexBuilder& builder,
                                       std::vector<RexNodePtr> conjuncts);

  /// Collects the indexes of all input fields referenced by `node`.
  static std::set<int> InputRefs(const RexNodePtr& node);

  /// True if every input reference in `node` falls in [lower, upper).
  static bool AllRefsInRange(const RexNodePtr& node, int lower, int upper);

  /// Rewrites input references by adding `offset` to each index (used when
  /// predicates move across a join: right-side refs shift by the left field
  /// count).
  static RexNodePtr ShiftRefs(const RexNodePtr& node, int offset);

  /// Rewrites input references through a field mapping: each $i becomes
  /// $mapping[i]. Indexes not present map unchanged. Used when pushing
  /// expressions through projections.
  static RexNodePtr RemapRefs(const RexNodePtr& node,
                              const std::vector<int>& mapping);

  /// Replaces each input reference $i by the expression exprs[i] (inlining
  /// through a projection).
  static RexNodePtr ReplaceRefs(const RexNodePtr& node,
                                const std::vector<RexNodePtr>& exprs);

  /// True if the expression contains no input references (evaluable at plan
  /// time given deterministic operators).
  static bool IsConstant(const RexNodePtr& node);

  /// True if the expression is a TRUE literal.
  static bool IsLiteralTrue(const RexNodePtr& node);

  /// True if the expression is a FALSE literal.
  static bool IsLiteralFalse(const RexNodePtr& node);

  /// Structural equality of two expressions (compares digests).
  static bool Equal(const RexNodePtr& a, const RexNodePtr& b);

  /// True if the projection expressions are exactly $0..$n-1 of an input
  /// with `input_field_count` fields — i.e. the projection is the identity.
  static bool IsIdentity(const std::vector<RexNodePtr>& exprs,
                         int input_field_count);
};

/// Splits a filter condition into leaf-pushable scan predicates and a
/// residual. Flattens the top-level conjunction and extracts every conjunct
/// of the shapes `$col <op> literal`, `literal <op> $col` (comparison
/// flipped) and `$col IS [NOT] NULL` — with $col a direct input reference
/// below scan_width — into `pushed`; everything else lands in `residual`.
/// Returns true if anything was pushed. Shared by the batch filter pipeline
/// (pushdown into Table scans) and the statistics-backed selectivity
/// estimator (metadata/table_stats_provider.h), so both agree on exactly
/// which predicate shapes the stats can see.
bool ExtractScanPredicates(const RexNodePtr& condition, int scan_width,
                           ScanPredicateList* pushed,
                           std::vector<RexNodePtr>* residual);

/// Monotonicity of an expression with respect to the input's sort order —
/// needed to validate streaming window queries (§7.2: "streaming queries
/// involving window aggregates require the presence of monotonic or
/// quasi-monotonic expressions in the GROUP BY clause").
enum class Monotonicity {
  kIncreasing,
  kDecreasing,
  kConstant,
  kNotMonotonic,
};

/// Derives the monotonicity of `node` given the set of input columns known
/// to be (strictly or weakly) increasing — e.g. a stream's rowtime column.
/// TUMBLE/HOP/SESSION of a monotonic timestamp are monotonic; so are CAST,
/// FLOOR/CEIL and +/- of a monotonic expression with a constant.
Monotonicity DeriveMonotonicity(const RexNodePtr& node,
                                const std::set<int>& increasing_inputs);

}  // namespace calcite

#endif  // CALCITE_REX_REX_UTIL_H_
