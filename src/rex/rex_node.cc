#include "rex/rex_node.h"

namespace calcite {

std::string RexCall::ToString() const {
  if (op_ == OpKind::kCast) {
    return "CAST(" + operands_[0]->ToString() + " AS " + type()->ToString() +
           ")";
  }
  std::string result = OpKindName(op_);
  result += "(";
  for (size_t i = 0; i < operands_.size(); ++i) {
    if (i > 0) result += ", ";
    result += operands_[i]->ToString();
  }
  result += ")";
  return result;
}

}  // namespace calcite
