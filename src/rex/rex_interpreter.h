#ifndef CALCITE_REX_REX_INTERPRETER_H_
#define CALCITE_REX_REX_INTERPRETER_H_

#include "exec/row_batch.h"
#include "rex/rex_node.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Evaluates row expressions against an input row. This is the framework's
/// expression executor: where Calcite generates Java bytecode through
/// Janino, we interpret (documented substitution in DESIGN.md §2). Follows
/// SQL three-valued logic: comparisons and arithmetic over NULL yield NULL;
/// AND/OR short-circuit with UNKNOWN handling; predicates used as filters
/// treat UNKNOWN as not-passing.
class RexInterpreter {
 public:
  /// Evaluates `node` with `input` bound as the source row ($i refers to
  /// input[i]). Returns an error for malformed expressions (e.g. ITEM on a
  /// non-container) — never for NULL values.
  static Result<Value> Eval(const RexNodePtr& node, const Row& input);

  /// Evaluates a predicate for filtering: NULL/UNKNOWN results are false.
  static Result<bool> EvalPredicate(const RexNodePtr& node, const Row& input);

  /// Batch-granularity evaluation: computes `node` for every row of `batch`
  /// into the column vector `out` (resized to batch.size()). Input refs and
  /// literals take vectorized fast paths (column copy / broadcast); common
  /// call shapes run as fused batch loops (see EvalBatchSel); other
  /// expressions fall back to a tight per-row Eval loop, still amortizing
  /// the caller's per-batch dispatch.
  static Status EvalBatch(const RexNodePtr& node, const RowBatch& batch,
                          std::vector<Value>* out);

  /// Selection-aware batch evaluation: computes `node` for the rows of
  /// `batch` named by `sel` (all rows when `sel` is nullptr), writing one
  /// output Value per *selected* row into `out` (out->size() ends up
  /// sel->size(), in selection order). Rows outside the selection are never
  /// evaluated — a pushed-down filter therefore also suppresses evaluation
  /// errors (e.g. division by zero) its surviving expression would have hit
  /// on filtered-out rows, exactly as the compacting pipeline did.
  ///
  /// Fused kernels (single batch loop, no per-row tree walk) cover the call
  /// shapes profiling exposed as dominant: binary arithmetic and comparison
  /// over input refs / literals, NOT / IS [NOT] NULL / IS [NOT] TRUE-FALSE
  /// and unary minus over an input ref or literal, and single-step CASTs of
  /// an input ref or literal. Everything else falls back to per-row Eval
  /// over the selected rows only.
  static Status EvalBatchSel(const RexNodePtr& node, const RowBatch& batch,
                             const SelectionVector* sel,
                             std::vector<Value>* out);

  /// Narrows `sel` — which must hold ascending candidate indexes into
  /// `batch` — to the rows for which `node` passes as a filter
  /// (NULL/UNKNOWN do not pass), in place and without touching the batch.
  /// This is the selection-pushdown primitive: stacked filters intersect
  /// their selections through it instead of compacting between stages.
  /// Conjunctions narrow progressively (later conjuncts only see earlier
  /// survivors); comparisons and NULL tests over input refs / literals run
  /// as branch-light fused loops.
  static Status NarrowSelection(const RexNodePtr& node, const RowBatch& batch,
                                SelectionVector* sel);

  /// Casts a runtime value to the target SQL type (implements CAST
  /// semantics: numeric narrowing/widening, to/from VARCHAR, etc.).
  static Result<Value> CastValue(const Value& value, const RelDataType& type);
};

}  // namespace calcite

#endif  // CALCITE_REX_REX_INTERPRETER_H_
