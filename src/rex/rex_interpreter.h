#ifndef CALCITE_REX_REX_INTERPRETER_H_
#define CALCITE_REX_REX_INTERPRETER_H_

#include "exec/row_batch.h"
#include "rex/rex_node.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Evaluates row expressions against an input row. This is the framework's
/// expression executor: where Calcite generates Java bytecode through
/// Janino, we interpret (documented substitution in DESIGN.md §2). Follows
/// SQL three-valued logic: comparisons and arithmetic over NULL yield NULL;
/// AND/OR short-circuit with UNKNOWN handling; predicates used as filters
/// treat UNKNOWN as not-passing.
class RexInterpreter {
 public:
  /// Evaluates `node` with `input` bound as the source row ($i refers to
  /// input[i]). Returns an error for malformed expressions (e.g. ITEM on a
  /// non-container) — never for NULL values.
  static Result<Value> Eval(const RexNodePtr& node, const Row& input);

  /// Evaluates a predicate for filtering: NULL/UNKNOWN results are false.
  static Result<bool> EvalPredicate(const RexNodePtr& node, const Row& input);

  /// Batch-granularity evaluation: computes `node` for every row of `batch`
  /// into the column vector `out` (resized to batch.size()). Input refs and
  /// literals take vectorized fast paths (column copy / broadcast); other
  /// expressions fall back to a tight per-row Eval loop, still amortizing
  /// the caller's per-batch dispatch.
  static Status EvalBatch(const RexNodePtr& node, const RowBatch& batch,
                          std::vector<Value>* out);

  /// Batch-granularity predicate: fills `sel` (cleared first) with the
  /// indexes, ascending, of the rows of `batch` for which the predicate
  /// passes (NULL/UNKNOWN do not pass). Every row of the batch is a
  /// candidate; callers chaining predicates should AND them into one
  /// expression, which narrows the selection progressively so later
  /// conjuncts only evaluate surviving rows. Comparisons and IS [NOT] NULL
  /// over input refs run as tight loops without per-row dispatch.
  static Status EvalPredicateBatch(const RexNodePtr& node,
                                   const RowBatch& batch,
                                   SelectionVector* sel);

  /// Casts a runtime value to the target SQL type (implements CAST
  /// semantics: numeric narrowing/widening, to/from VARCHAR, etc.).
  static Result<Value> CastValue(const Value& value, const RelDataType& type);
};

}  // namespace calcite

#endif  // CALCITE_REX_REX_INTERPRETER_H_
