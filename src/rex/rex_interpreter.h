#ifndef CALCITE_REX_REX_INTERPRETER_H_
#define CALCITE_REX_REX_INTERPRETER_H_

#include "rex/rex_node.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Evaluates row expressions against an input row. This is the framework's
/// expression executor: where Calcite generates Java bytecode through
/// Janino, we interpret (documented substitution in DESIGN.md §2). Follows
/// SQL three-valued logic: comparisons and arithmetic over NULL yield NULL;
/// AND/OR short-circuit with UNKNOWN handling; predicates used as filters
/// treat UNKNOWN as not-passing.
class RexInterpreter {
 public:
  /// Evaluates `node` with `input` bound as the source row ($i refers to
  /// input[i]). Returns an error for malformed expressions (e.g. ITEM on a
  /// non-container) — never for NULL values.
  static Result<Value> Eval(const RexNodePtr& node, const Row& input);

  /// Evaluates a predicate for filtering: NULL/UNKNOWN results are false.
  static Result<bool> EvalPredicate(const RexNodePtr& node, const Row& input);

  /// Casts a runtime value to the target SQL type (implements CAST
  /// semantics: numeric narrowing/widening, to/from VARCHAR, etc.).
  static Result<Value> CastValue(const Value& value, const RelDataType& type);
};

}  // namespace calcite

#endif  // CALCITE_REX_REX_INTERPRETER_H_
