#include "rex/operator.h"

namespace calcite {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kPlus:
      return "+";
    case OpKind::kMinus:
      return "-";
    case OpKind::kTimes:
      return "*";
    case OpKind::kDivide:
      return "/";
    case OpKind::kMod:
      return "MOD";
    case OpKind::kUnaryMinus:
      return "-";
    case OpKind::kEquals:
      return "=";
    case OpKind::kNotEquals:
      return "<>";
    case OpKind::kLessThan:
      return "<";
    case OpKind::kLessThanOrEqual:
      return "<=";
    case OpKind::kGreaterThan:
      return ">";
    case OpKind::kGreaterThanOrEqual:
      return ">=";
    case OpKind::kAnd:
      return "AND";
    case OpKind::kOr:
      return "OR";
    case OpKind::kNot:
      return "NOT";
    case OpKind::kIsNull:
      return "IS NULL";
    case OpKind::kIsNotNull:
      return "IS NOT NULL";
    case OpKind::kIsTrue:
      return "IS TRUE";
    case OpKind::kIsFalse:
      return "IS FALSE";
    case OpKind::kLike:
      return "LIKE";
    case OpKind::kIn:
      return "IN";
    case OpKind::kBetween:
      return "BETWEEN";
    case OpKind::kCase:
      return "CASE";
    case OpKind::kCoalesce:
      return "COALESCE";
    case OpKind::kCast:
      return "CAST";
    case OpKind::kItem:
      return "ITEM";
    case OpKind::kConcat:
      return "||";
    case OpKind::kUpper:
      return "UPPER";
    case OpKind::kLower:
      return "LOWER";
    case OpKind::kCharLength:
      return "CHAR_LENGTH";
    case OpKind::kSubstring:
      return "SUBSTRING";
    case OpKind::kTrim:
      return "TRIM";
    case OpKind::kAbs:
      return "ABS";
    case OpKind::kFloor:
      return "FLOOR";
    case OpKind::kCeil:
      return "CEIL";
    case OpKind::kPower:
      return "POWER";
    case OpKind::kSqrt:
      return "SQRT";
    case OpKind::kStGeomFromText:
      return "ST_GeomFromText";
    case OpKind::kStAsText:
      return "ST_AsText";
    case OpKind::kStContains:
      return "ST_Contains";
    case OpKind::kStWithin:
      return "ST_Within";
    case OpKind::kStDistance:
      return "ST_Distance";
    case OpKind::kStIntersects:
      return "ST_Intersects";
    case OpKind::kStArea:
      return "ST_Area";
    case OpKind::kStX:
      return "ST_X";
    case OpKind::kStY:
      return "ST_Y";
    case OpKind::kStMakePoint:
      return "ST_MakePoint";
    case OpKind::kTumble:
      return "TUMBLE";
    case OpKind::kTumbleEnd:
      return "TUMBLE_END";
    case OpKind::kTumbleStart:
      return "TUMBLE_START";
    case OpKind::kHop:
      return "HOP";
    case OpKind::kHopEnd:
      return "HOP_END";
    case OpKind::kSession:
      return "SESSION";
    case OpKind::kSessionEnd:
      return "SESSION_END";
  }
  return "?";
}

bool IsComparison(OpKind kind) {
  switch (kind) {
    case OpKind::kEquals:
    case OpKind::kNotEquals:
    case OpKind::kLessThan:
    case OpKind::kLessThanOrEqual:
    case OpKind::kGreaterThan:
    case OpKind::kGreaterThanOrEqual:
      return true;
    default:
      return false;
  }
}

bool IsInfix(OpKind kind) {
  switch (kind) {
    case OpKind::kPlus:
    case OpKind::kMinus:
    case OpKind::kTimes:
    case OpKind::kDivide:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kConcat:
    case OpKind::kLike:
      return true;
    default:
      return IsComparison(kind);
  }
}

OpKind ReverseComparison(OpKind kind) {
  switch (kind) {
    case OpKind::kLessThan:
      return OpKind::kGreaterThan;
    case OpKind::kLessThanOrEqual:
      return OpKind::kGreaterThanOrEqual;
    case OpKind::kGreaterThan:
      return OpKind::kLessThan;
    case OpKind::kGreaterThanOrEqual:
      return OpKind::kLessThanOrEqual;
    default:
      return kind;
  }
}

OpKind NegateComparison(OpKind kind) {
  switch (kind) {
    case OpKind::kEquals:
      return OpKind::kNotEquals;
    case OpKind::kNotEquals:
      return OpKind::kEquals;
    case OpKind::kLessThan:
      return OpKind::kGreaterThanOrEqual;
    case OpKind::kLessThanOrEqual:
      return OpKind::kGreaterThan;
    case OpKind::kGreaterThan:
      return OpKind::kLessThanOrEqual;
    case OpKind::kGreaterThanOrEqual:
      return OpKind::kLessThan;
    default:
      return kind;
  }
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kCountStar:
      return "COUNT";
    case AggKind::kSingleValue:
      return "SINGLE_VALUE";
  }
  return "?";
}

}  // namespace calcite
