#ifndef CALCITE_REX_REX_SIMPLIFIER_H_
#define CALCITE_REX_REX_SIMPLIFIER_H_

#include "rex/rex_builder.h"
#include "rex/rex_node.h"

namespace calcite {

/// Expression simplification used by ReduceExpressionsRule and during
/// SQL-to-Rel conversion:
///  - constant folding via the interpreter (`1 + 2` -> `3`),
///  - boolean algebra (`x AND TRUE` -> `x`, `x OR TRUE` -> `TRUE`,
///    `NOT NOT x` -> `x`, `NOT (a = b)` -> `a <> b`),
///  - CASE pruning when a condition is a constant,
///  - CAST of a literal folded to a literal,
///  - duplicate conjunct elimination.
/// Simplification is semantics-preserving under SQL three-valued logic:
/// e.g. `x AND FALSE` folds to FALSE, which is equivalent for filters.
class RexSimplifier {
 public:
  explicit RexSimplifier(RexBuilder builder) : builder_(std::move(builder)) {}

  /// Returns a simplified, semantically-equal expression. Idempotent.
  RexNodePtr Simplify(const RexNodePtr& node) const;

 private:
  RexNodePtr SimplifyCall(const RexCall& call,
                          const RelDataTypePtr& type) const;
  RexNodePtr TryFoldConstant(const RexNodePtr& node) const;

  RexBuilder builder_;
};

}  // namespace calcite

#endif  // CALCITE_REX_REX_SIMPLIFIER_H_
