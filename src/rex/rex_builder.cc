#include "rex/rex_builder.h"

#include <cassert>

namespace calcite {

RexNodePtr RexBuilder::MakeInputRef(int index, RelDataTypePtr type) const {
  return std::make_shared<RexInputRef>(index, std::move(type));
}

RexNodePtr RexBuilder::MakeInputRef(const RelDataTypePtr& row_type,
                                    int index) const {
  assert(index >= 0 && index < row_type->field_count());
  return std::make_shared<RexInputRef>(index,
                                       row_type->fields()[index].type);
}

RexNodePtr RexBuilder::MakeLiteral(Value value, RelDataTypePtr type) const {
  return std::make_shared<RexLiteral>(std::move(value), std::move(type));
}

RexNodePtr RexBuilder::MakeBoolLiteral(bool b) const {
  return MakeLiteral(Value::Bool(b),
                     type_factory_.CreateSqlType(SqlTypeName::kBoolean));
}

RexNodePtr RexBuilder::MakeIntLiteral(int64_t i) const {
  return MakeLiteral(Value::Int(i),
                     type_factory_.CreateSqlType(SqlTypeName::kInteger));
}

RexNodePtr RexBuilder::MakeBigIntLiteral(int64_t i) const {
  return MakeLiteral(Value::Int(i),
                     type_factory_.CreateSqlType(SqlTypeName::kBigInt));
}

RexNodePtr RexBuilder::MakeDoubleLiteral(double d) const {
  return MakeLiteral(Value::Double(d),
                     type_factory_.CreateSqlType(SqlTypeName::kDouble));
}

RexNodePtr RexBuilder::MakeStringLiteral(const std::string& s) const {
  return MakeLiteral(
      Value::String(s),
      type_factory_.CreateSqlType(SqlTypeName::kVarchar,
                                  static_cast<int>(s.size())));
}

RexNodePtr RexBuilder::MakeNullLiteral(RelDataTypePtr type) const {
  return MakeLiteral(Value::Null(),
                     type_factory_.CreateWithNullability(type, true));
}

RexNodePtr RexBuilder::MakeIntervalLiteral(int64_t millis) const {
  return MakeLiteral(Value::Int(millis),
                     type_factory_.CreateSqlType(SqlTypeName::kIntervalDay));
}

namespace {

bool AnyNullable(const std::vector<RexNodePtr>& operands) {
  for (const RexNodePtr& op : operands) {
    if (op->type()->nullable()) return true;
  }
  return false;
}

}  // namespace

Result<RexNodePtr> RexBuilder::MakeCall(OpKind op,
                                        std::vector<RexNodePtr> operands) const {
  auto check_arity = [&](size_t min, size_t max) -> Status {
    if (operands.size() < min || operands.size() > max) {
      return Status::ValidationError(
          std::string("operator ") + OpKindName(op) + " expects " +
          std::to_string(min) + ".." + std::to_string(max) + " operands, got " +
          std::to_string(operands.size()));
    }
    return Status::OK();
  };
  bool nullable = AnyNullable(operands);
  const TypeFactory& tf = type_factory_;

  switch (op) {
    case OpKind::kPlus:
    case OpKind::kMinus:
    case OpKind::kTimes:
    case OpKind::kDivide:
    case OpKind::kMod: {
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      RelDataTypePtr result =
          tf.LeastRestrictive({operands[0]->type(), operands[1]->type()});
      if (result == nullptr || !result->is_numeric()) {
        // Datetime arithmetic: TIMESTAMP +/- INTERVAL stays TIMESTAMP.
        if ((op == OpKind::kPlus || op == OpKind::kMinus) &&
            IsDatetimeType(operands[0]->type()->type_name())) {
          result = operands[0]->type();
        } else {
          return Status::ValidationError(
              std::string("cannot apply '") + OpKindName(op) + "' to " +
              operands[0]->type()->ToString() + " and " +
              operands[1]->type()->ToString());
        }
      }
      return MakeCallOfType(op, tf.CreateWithNullability(result, nullable),
                            std::move(operands));
    }
    case OpKind::kUnaryMinus: {
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      RelDataTypePtr result = operands[0]->type();
      return MakeCallOfType(op, std::move(result), std::move(operands));
    }
    case OpKind::kEquals:
    case OpKind::kNotEquals:
    case OpKind::kLessThan:
    case OpKind::kLessThanOrEqual:
    case OpKind::kGreaterThan:
    case OpKind::kGreaterThanOrEqual:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kBoolean, nullable),
          std::move(operands));
    case OpKind::kAnd:
    case OpKind::kOr:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 1000));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kBoolean, nullable),
          std::move(operands));
    case OpKind::kNot:
    case OpKind::kIsTrue:
    case OpKind::kIsFalse:
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      return MakeCallOfType(
          op,
          tf.CreateSqlType(SqlTypeName::kBoolean,
                           op == OpKind::kNot && nullable),
          std::move(operands));
    case OpKind::kIsNull:
    case OpKind::kIsNotNull:
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      return MakeCallOfType(op, tf.CreateSqlType(SqlTypeName::kBoolean),
                            std::move(operands));
    case OpKind::kLike:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kBoolean, nullable),
          std::move(operands));
    case OpKind::kIn:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 1000));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kBoolean, nullable),
          std::move(operands));
    case OpKind::kBetween:
      CALCITE_RETURN_IF_ERROR(check_arity(3, 3));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kBoolean, nullable),
          std::move(operands));
    case OpKind::kCase: {
      // Operands: [cond1, val1, cond2, val2, ..., else].
      if (operands.size() < 3 || operands.size() % 2 == 0) {
        return Status::ValidationError("malformed CASE operand list");
      }
      std::vector<RelDataTypePtr> value_types;
      for (size_t i = 1; i < operands.size(); i += 2) {
        value_types.push_back(operands[i]->type());
      }
      value_types.push_back(operands.back()->type());
      RelDataTypePtr result = tf.LeastRestrictive(value_types);
      if (result == nullptr) {
        return Status::ValidationError("incompatible CASE branch types");
      }
      return MakeCallOfType(op, result, std::move(operands));
    }
    case OpKind::kCoalesce: {
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1000));
      std::vector<RelDataTypePtr> types;
      for (const RexNodePtr& o : operands) types.push_back(o->type());
      RelDataTypePtr result = tf.LeastRestrictive(types);
      if (result == nullptr) {
        return Status::ValidationError("incompatible COALESCE operand types");
      }
      return MakeCallOfType(op, result, std::move(operands));
    }
    case OpKind::kCast:
      return Status::InvalidArgument("use MakeCast for CAST");
    case OpKind::kItem: {
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      const RelDataTypePtr& container = operands[0]->type();
      RelDataTypePtr component = container->component_type();
      if (component == nullptr) {
        component = tf.CreateSqlType(SqlTypeName::kAny, true);
      }
      return MakeCallOfType(op, tf.CreateWithNullability(component, true),
                            std::move(operands));
    }
    case OpKind::kConcat:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kVarchar, -1, nullable),
          std::move(operands));
    case OpKind::kUpper:
    case OpKind::kLower:
    case OpKind::kTrim: {
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      RelDataTypePtr result =
          tf.CreateWithNullability(operands[0]->type(), nullable);
      return MakeCallOfType(op, std::move(result), std::move(operands));
    }
    case OpKind::kSubstring:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 3));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kVarchar, -1, nullable),
          std::move(operands));
    case OpKind::kCharLength:
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kInteger, nullable),
          std::move(operands));
    case OpKind::kAbs: {
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      RelDataTypePtr result = operands[0]->type();
      return MakeCallOfType(op, std::move(result), std::move(operands));
    }
    case OpKind::kFloor:
    case OpKind::kCeil: {
      CALCITE_RETURN_IF_ERROR(check_arity(1, 2));
      RelDataTypePtr result = operands[0]->type();
      return MakeCallOfType(op, std::move(result), std::move(operands));
    }
    case OpKind::kPower:
    case OpKind::kSqrt:
      CALCITE_RETURN_IF_ERROR(check_arity(1, 2));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kDouble, nullable),
          std::move(operands));
    case OpKind::kStGeomFromText:
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kGeometry, nullable),
          std::move(operands));
    case OpKind::kStMakePoint:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kGeometry, nullable),
          std::move(operands));
    case OpKind::kStAsText:
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kVarchar, -1, nullable),
          std::move(operands));
    case OpKind::kStContains:
    case OpKind::kStWithin:
    case OpKind::kStIntersects:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kBoolean, nullable),
          std::move(operands));
    case OpKind::kStDistance:
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kDouble, nullable),
          std::move(operands));
    case OpKind::kStArea:
    case OpKind::kStX:
    case OpKind::kStY:
      CALCITE_RETURN_IF_ERROR(check_arity(1, 1));
      return MakeCallOfType(
          op, tf.CreateSqlType(SqlTypeName::kDouble, nullable),
          std::move(operands));
    case OpKind::kTumble:
    case OpKind::kTumbleEnd:
    case OpKind::kTumbleStart: {
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      RelDataTypePtr result = operands[0]->type();
      return MakeCallOfType(op, std::move(result), std::move(operands));
    }
    case OpKind::kHop:
    case OpKind::kHopEnd: {
      CALCITE_RETURN_IF_ERROR(check_arity(3, 3));
      RelDataTypePtr result = operands[0]->type();
      return MakeCallOfType(op, std::move(result), std::move(operands));
    }
    case OpKind::kSession:
    case OpKind::kSessionEnd: {
      CALCITE_RETURN_IF_ERROR(check_arity(2, 2));
      RelDataTypePtr result = operands[0]->type();
      return MakeCallOfType(op, std::move(result), std::move(operands));
    }
  }
  return Status::Internal("unhandled operator kind");
}

RexNodePtr RexBuilder::MakeCallOfType(OpKind op, RelDataTypePtr type,
                                      std::vector<RexNodePtr> operands) const {
  return std::make_shared<RexCall>(op, std::move(operands), std::move(type));
}

RexNodePtr RexBuilder::MakeCast(RelDataTypePtr type, RexNodePtr operand) const {
  if (operand->type()->Equals(*type)) return operand;
  return MakeCallOfType(OpKind::kCast, std::move(type), {std::move(operand)});
}

RexNodePtr RexBuilder::MakeAnd(std::vector<RexNodePtr> operands) const {
  if (operands.empty()) return MakeBoolLiteral(true);
  if (operands.size() == 1) return operands[0];
  return MakeCallOfType(
      OpKind::kAnd,
      type_factory_.CreateSqlType(SqlTypeName::kBoolean,
                                  AnyNullable(operands)),
      std::move(operands));
}

RexNodePtr RexBuilder::MakeOr(std::vector<RexNodePtr> operands) const {
  if (operands.empty()) return MakeBoolLiteral(false);
  if (operands.size() == 1) return operands[0];
  return MakeCallOfType(
      OpKind::kOr,
      type_factory_.CreateSqlType(SqlTypeName::kBoolean,
                                  AnyNullable(operands)),
      std::move(operands));
}

RexNodePtr RexBuilder::MakeEquals(RexNodePtr a, RexNodePtr b) const {
  bool nullable = a->type()->nullable() || b->type()->nullable();
  return MakeCallOfType(
      OpKind::kEquals,
      type_factory_.CreateSqlType(SqlTypeName::kBoolean, nullable),
      {std::move(a), std::move(b)});
}

}  // namespace calcite
