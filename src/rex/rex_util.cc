#include "rex/rex_util.h"

#include <cassert>
#include <optional>
#include <utility>

namespace calcite {

std::vector<RexNodePtr> RexUtil::FlattenAnd(const RexNodePtr& node) {
  std::vector<RexNodePtr> result;
  if (node == nullptr || IsLiteralTrue(node)) return result;
  if (const RexCall* call = AsCall(node); call && call->op() == OpKind::kAnd) {
    for (const RexNodePtr& operand : call->operands()) {
      auto sub = FlattenAnd(operand);
      result.insert(result.end(), sub.begin(), sub.end());
    }
    return result;
  }
  result.push_back(node);
  return result;
}

RexNodePtr RexUtil::ComposeConjunction(const RexBuilder& builder,
                                       std::vector<RexNodePtr> conjuncts) {
  return builder.MakeAnd(std::move(conjuncts));
}

namespace {

void CollectRefs(const RexNodePtr& node, std::set<int>* refs) {
  if (const RexInputRef* ref = AsInputRef(node)) {
    refs->insert(ref->index());
    return;
  }
  if (const RexCall* call = AsCall(node)) {
    for (const RexNodePtr& operand : call->operands()) {
      CollectRefs(operand, refs);
    }
  }
}

}  // namespace

std::set<int> RexUtil::InputRefs(const RexNodePtr& node) {
  std::set<int> refs;
  CollectRefs(node, &refs);
  return refs;
}

bool RexUtil::AllRefsInRange(const RexNodePtr& node, int lower, int upper) {
  for (int ref : InputRefs(node)) {
    if (ref < lower || ref >= upper) return false;
  }
  return true;
}

RexNodePtr RexUtil::ShiftRefs(const RexNodePtr& node, int offset) {
  if (offset == 0) return node;
  if (const RexInputRef* ref = AsInputRef(node)) {
    return std::make_shared<RexInputRef>(ref->index() + offset, node->type());
  }
  if (const RexCall* call = AsCall(node)) {
    std::vector<RexNodePtr> operands;
    operands.reserve(call->operands().size());
    for (const RexNodePtr& operand : call->operands()) {
      operands.push_back(ShiftRefs(operand, offset));
    }
    return std::make_shared<RexCall>(call->op(), std::move(operands),
                                     node->type());
  }
  return node;
}

RexNodePtr RexUtil::RemapRefs(const RexNodePtr& node,
                              const std::vector<int>& mapping) {
  if (const RexInputRef* ref = AsInputRef(node)) {
    int index = ref->index();
    if (index >= 0 && static_cast<size_t>(index) < mapping.size()) {
      index = mapping[static_cast<size_t>(index)];
    }
    return std::make_shared<RexInputRef>(index, node->type());
  }
  if (const RexCall* call = AsCall(node)) {
    std::vector<RexNodePtr> operands;
    operands.reserve(call->operands().size());
    for (const RexNodePtr& operand : call->operands()) {
      operands.push_back(RemapRefs(operand, mapping));
    }
    return std::make_shared<RexCall>(call->op(), std::move(operands),
                                     node->type());
  }
  return node;
}

RexNodePtr RexUtil::ReplaceRefs(const RexNodePtr& node,
                                const std::vector<RexNodePtr>& exprs) {
  if (const RexInputRef* ref = AsInputRef(node)) {
    int index = ref->index();
    assert(index >= 0 && static_cast<size_t>(index) < exprs.size());
    return exprs[static_cast<size_t>(index)];
  }
  if (const RexCall* call = AsCall(node)) {
    std::vector<RexNodePtr> operands;
    operands.reserve(call->operands().size());
    for (const RexNodePtr& operand : call->operands()) {
      operands.push_back(ReplaceRefs(operand, exprs));
    }
    return std::make_shared<RexCall>(call->op(), std::move(operands),
                                     node->type());
  }
  return node;
}

bool RexUtil::IsConstant(const RexNodePtr& node) {
  return InputRefs(node).empty();
}

bool RexUtil::IsLiteralTrue(const RexNodePtr& node) {
  const RexLiteral* lit = AsLiteral(node);
  return lit != nullptr && lit->value().is_bool() && lit->value().AsBool();
}

bool RexUtil::IsLiteralFalse(const RexNodePtr& node) {
  const RexLiteral* lit = AsLiteral(node);
  return lit != nullptr && lit->value().is_bool() && !lit->value().AsBool();
}

bool RexUtil::Equal(const RexNodePtr& a, const RexNodePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->ToString() == b->ToString();
}

bool RexUtil::IsIdentity(const std::vector<RexNodePtr>& exprs,
                         int input_field_count) {
  if (static_cast<int>(exprs.size()) != input_field_count) return false;
  for (size_t i = 0; i < exprs.size(); ++i) {
    const RexInputRef* ref = AsInputRef(exprs[i]);
    if (ref == nullptr || ref->index() != static_cast<int>(i)) return false;
  }
  return true;
}

Monotonicity DeriveMonotonicity(const RexNodePtr& node,
                                const std::set<int>& increasing_inputs) {
  if (const RexInputRef* ref = AsInputRef(node)) {
    return increasing_inputs.count(ref->index()) > 0
               ? Monotonicity::kIncreasing
               : Monotonicity::kNotMonotonic;
  }
  if (node->is_literal()) return Monotonicity::kConstant;
  const RexCall* call = AsCall(node);
  if (call == nullptr) return Monotonicity::kNotMonotonic;
  switch (call->op()) {
    case OpKind::kTumble:
    case OpKind::kTumbleStart:
    case OpKind::kTumbleEnd:
    case OpKind::kHop:
    case OpKind::kHopEnd:
    case OpKind::kSession:
    case OpKind::kSessionEnd:
    case OpKind::kFloor:
    case OpKind::kCeil:
    case OpKind::kCast: {
      // Monotone transforms of the first operand (remaining operands must be
      // constants, which the builder enforces for window functions).
      Monotonicity m = DeriveMonotonicity(call->operand(0), increasing_inputs);
      for (size_t i = 1; i < call->operands().size(); ++i) {
        if (DeriveMonotonicity(call->operands()[i], increasing_inputs) !=
            Monotonicity::kConstant) {
          return Monotonicity::kNotMonotonic;
        }
      }
      return m;
    }
    case OpKind::kPlus:
    case OpKind::kMinus: {
      Monotonicity a = DeriveMonotonicity(call->operand(0), increasing_inputs);
      Monotonicity b = DeriveMonotonicity(call->operand(1), increasing_inputs);
      if (a == Monotonicity::kConstant && b == Monotonicity::kConstant) {
        return Monotonicity::kConstant;
      }
      if (b == Monotonicity::kConstant) return a;
      if (a == Monotonicity::kConstant) {
        if (call->op() == OpKind::kPlus) return b;
        // constant - increasing = decreasing.
        return b == Monotonicity::kIncreasing ? Monotonicity::kDecreasing
               : b == Monotonicity::kDecreasing ? Monotonicity::kIncreasing
                                                : b;
      }
      return Monotonicity::kNotMonotonic;
    }
    case OpKind::kUnaryMinus: {
      Monotonicity m = DeriveMonotonicity(call->operand(0), increasing_inputs);
      if (m == Monotonicity::kIncreasing) return Monotonicity::kDecreasing;
      if (m == Monotonicity::kDecreasing) return Monotonicity::kIncreasing;
      return m;
    }
    default: {
      // An expression over constants only is constant.
      for (const RexNodePtr& operand : call->operands()) {
        if (DeriveMonotonicity(operand, increasing_inputs) !=
            Monotonicity::kConstant) {
          return Monotonicity::kNotMonotonic;
        }
      }
      return Monotonicity::kConstant;
    }
  }
}

bool ExtractScanPredicates(const RexNodePtr& condition, int scan_width,
                           ScanPredicateList* pushed,
                           std::vector<RexNodePtr>* residual) {
  // Flatten the top-level conjunction (nested ANDs included, mirroring the
  // interpreter's recursive narrowing).
  std::vector<RexNodePtr> conjuncts;
  std::vector<RexNodePtr> stack = {condition};
  while (!stack.empty()) {
    RexNodePtr node = std::move(stack.back());
    stack.pop_back();
    const RexCall* call = AsCall(node);
    if (call != nullptr && call->op() == OpKind::kAnd) {
      // Preserve left-to-right conjunct order: the stack is LIFO.
      for (auto it = call->operands().rbegin(); it != call->operands().rend();
           ++it) {
        stack.push_back(*it);
      }
      continue;
    }
    conjuncts.push_back(std::move(node));
  }

  auto ref_index = [scan_width](const RexNodePtr& node) -> int {
    const RexInputRef* ref = AsInputRef(node);
    if (ref == nullptr || ref->index() < 0 || ref->index() >= scan_width) {
      return -1;
    }
    return ref->index();
  };
  auto comparison_kind =
      [](OpKind op, bool flipped) -> std::optional<ScanPredicate::Kind> {
    switch (op) {
      case OpKind::kEquals:
        return ScanPredicate::Kind::kEquals;
      case OpKind::kNotEquals:
        return ScanPredicate::Kind::kNotEquals;
      case OpKind::kLessThan:
        return flipped ? ScanPredicate::Kind::kGreaterThan
                       : ScanPredicate::Kind::kLessThan;
      case OpKind::kLessThanOrEqual:
        return flipped ? ScanPredicate::Kind::kGreaterThanOrEqual
                       : ScanPredicate::Kind::kLessThanOrEqual;
      case OpKind::kGreaterThan:
        return flipped ? ScanPredicate::Kind::kLessThan
                       : ScanPredicate::Kind::kGreaterThan;
      case OpKind::kGreaterThanOrEqual:
        return flipped ? ScanPredicate::Kind::kLessThanOrEqual
                       : ScanPredicate::Kind::kGreaterThanOrEqual;
      default:
        return std::nullopt;
    }
  };

  bool any = false;
  for (RexNodePtr& conjunct : conjuncts) {
    const RexCall* call = AsCall(conjunct);
    if (call != nullptr && call->operands().size() == 1 &&
        (call->op() == OpKind::kIsNull || call->op() == OpKind::kIsNotNull)) {
      int col = ref_index(call->operand(0));
      if (col >= 0) {
        ScanPredicate pred;
        pred.kind = call->op() == OpKind::kIsNull
                        ? ScanPredicate::Kind::kIsNull
                        : ScanPredicate::Kind::kIsNotNull;
        pred.column = col;
        pushed->push_back(std::move(pred));
        any = true;
        continue;
      }
    }
    if (call != nullptr && call->operands().size() == 2) {
      const RexLiteral* lhs_lit = AsLiteral(call->operand(0));
      const RexLiteral* rhs_lit = AsLiteral(call->operand(1));
      int lhs_col = ref_index(call->operand(0));
      int rhs_col = ref_index(call->operand(1));
      std::optional<ScanPredicate::Kind> kind;
      ScanPredicate pred;
      if (lhs_col >= 0 && rhs_lit != nullptr) {
        kind = comparison_kind(call->op(), /*flipped=*/false);
        pred.column = lhs_col;
        pred.literal = rhs_lit->value();
      } else if (lhs_lit != nullptr && rhs_col >= 0) {
        kind = comparison_kind(call->op(), /*flipped=*/true);
        pred.column = rhs_col;
        pred.literal = lhs_lit->value();
      }
      if (kind.has_value()) {
        pred.kind = *kind;
        pushed->push_back(std::move(pred));
        any = true;
        continue;
      }
    }
    residual->push_back(std::move(conjunct));
  }
  return any;
}

}  // namespace calcite
