#ifndef CALCITE_REX_OPERATOR_H_
#define CALCITE_REX_OPERATOR_H_

#include <string>

namespace calcite {

/// Kinds of scalar operators and functions supported in row expressions.
/// Covers standard SQL operators, the `[]` ITEM operator for semi-structured
/// data (§7.1), the ST_* geospatial functions (§7.3), and the streaming
/// window grouping functions TUMBLE/HOP/SESSION (§7.2).
enum class OpKind {
  // Binary arithmetic.
  kPlus,
  kMinus,
  kTimes,
  kDivide,
  kMod,
  // Unary arithmetic.
  kUnaryMinus,
  // Comparison.
  kEquals,
  kNotEquals,
  kLessThan,
  kLessThanOrEqual,
  kGreaterThan,
  kGreaterThanOrEqual,
  // Boolean.
  kAnd,
  kOr,
  kNot,
  // Null tests / predicates.
  kIsNull,
  kIsNotNull,
  kIsTrue,
  kIsFalse,
  kLike,
  kIn,
  kBetween,
  // Conditional.
  kCase,
  kCoalesce,
  // Type & structure.
  kCast,
  kItem,  // map[key] / array[index]
  // String functions.
  kConcat,
  kUpper,
  kLower,
  kCharLength,
  kSubstring,
  kTrim,
  // Numeric functions.
  kAbs,
  kFloor,
  kCeil,
  kPower,
  kSqrt,
  // Geospatial (OpenGIS subset).
  kStGeomFromText,
  kStAsText,
  kStContains,
  kStWithin,
  kStDistance,
  kStIntersects,
  kStArea,
  kStX,
  kStY,
  kStMakePoint,
  // Streaming window group functions.
  kTumble,
  kTumbleEnd,
  kTumbleStart,
  kHop,
  kHopEnd,
  kSession,
  kSessionEnd,
};

/// Returns the SQL name of an operator ("=", "AND", "ST_Contains", ...).
const char* OpKindName(OpKind kind);

/// True for the six comparison operators.
bool IsComparison(OpKind kind);

/// True for operators rendered infix in SQL ("a + b").
bool IsInfix(OpKind kind);

/// Returns the mirrored comparison (a < b becomes b > a); kind itself for
/// symmetric operators; used by join-condition normalization.
OpKind ReverseComparison(OpKind kind);

/// Returns the negated comparison (a < b becomes a >= b).
OpKind NegateComparison(OpKind kind);

/// Aggregate function kinds (used by Aggregate and Window operators).
enum class AggKind {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kCountStar,
  kSingleValue,
};

/// Returns the SQL name of an aggregate function ("COUNT", "SUM", ...).
const char* AggKindName(AggKind kind);

}  // namespace calcite

#endif  // CALCITE_REX_OPERATOR_H_
