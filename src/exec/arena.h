#ifndef CALCITE_EXEC_ARENA_H_
#define CALCITE_EXEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace calcite {

/// Bump allocator backing ColumnBatch storage. Batch memory is carved out of
/// large chunks with a pointer increment per allocation and released
/// wholesale: a batch never frees individual columns, it drops (or recycles)
/// its whole arena. Only trivially-destructible payloads may live here —
/// int64/double/bool columns, StringRef spans and the character data they
/// point into, null bytemaps — because Reset() reclaims the memory without
/// running any destructors. Boxed Values (non-trivial) are stored outside the
/// arena (see ColumnBatch::boxed_pool).
///
/// Not thread-safe: an Arena belongs to one producer at a time. Parallel
/// workers each draw from their own ArenaPool.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 1u << 18;  // 256 KiB

  /// Every allocation starts on a 64-byte boundary: a full cache line, and
  /// wide enough for any SIMD register the kernel layer (exec/simd.h) uses —
  /// column storage handed out here never needs unaligned-head peeling.
  static constexpr size_t kAlignment = 64;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kAlignment ? kAlignment : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to kAlignment. Never returns
  /// nullptr; bytes==0 yields a valid unique pointer.
  void* Allocate(size_t bytes);

  /// Typed convenience: uninitialized array of `n` Ts. T must be trivially
  /// destructible (nothing in the arena is ever destroyed).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena payloads must not need destructors");
    return static_cast<T*>(Allocate(n * sizeof(T)));
  }

  /// Rewinds the arena so its memory can be reused by the next batch.
  /// Previously returned pointers become dangling. If allocation spilled
  /// into multiple chunks, they are coalesced into one larger chunk so the
  /// steady state is a single chunk sized to the workload.
  void Reset();

  /// Bytes handed out since construction/Reset (diagnostics and tests).
  size_t bytes_used() const { return bytes_used_; }
  /// Number of backing chunks currently held.
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    char* base = nullptr;  // first kAlignment-aligned byte inside data
    size_t size = 0;       // usable bytes starting at base
  };

  void AddChunk(size_t min_bytes);

  std::vector<Chunk> chunks_;
  size_t active_ = 0;      // index of the chunk being bumped
  size_t offset_ = 0;      // bump offset within the active chunk
  size_t chunk_bytes_;
  size_t bytes_used_ = 0;
};

using ArenaPtr = std::shared_ptr<Arena>;

/// Per-query arena recycler. Batches own their arena via shared_ptr; once the
/// consumer drops a batch, the arena's use count falls back to 1 (the pool's
/// reference) and the next Acquire() resets and reuses it instead of mapping
/// fresh memory. A pipeline that keeps at most k batches in flight therefore
/// touches at most k+1 arenas total, regardless of row count.
///
/// Not thread-safe: one pool per producer thread. Consumers on other threads
/// only *release* arenas (by dropping shared_ptrs), which is safe — a stale
/// use_count read merely makes Acquire allocate a fresh arena.
class ArenaPool {
 public:
  explicit ArenaPool(size_t chunk_bytes = Arena::kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  /// Returns an arena owned jointly by the pool and the caller. Reuses a
  /// pooled arena when its only remaining owner is the pool.
  ArenaPtr Acquire();

 private:
  static constexpr size_t kMaxPooled = 8;

  size_t chunk_bytes_;
  std::vector<ArenaPtr> pool_;
};

}  // namespace calcite

#endif  // CALCITE_EXEC_ARENA_H_
