#include "exec/column_batch.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "exec/simd.h"

namespace calcite {

PhysType PhysTypeForSql(SqlTypeName name) {
  switch (name) {
    case SqlTypeName::kBoolean:
      return PhysType::kBool;
    case SqlTypeName::kTinyInt:
    case SqlTypeName::kSmallInt:
    case SqlTypeName::kInteger:
    case SqlTypeName::kBigInt:
    case SqlTypeName::kDate:
    case SqlTypeName::kTime:
    case SqlTypeName::kTimestamp:
    case SqlTypeName::kIntervalDay:
      return PhysType::kInt64;
    case SqlTypeName::kFloat:
    case SqlTypeName::kDouble:
    case SqlTypeName::kDecimal:
      return PhysType::kDouble;
    case SqlTypeName::kChar:
    case SqlTypeName::kVarchar:
      return PhysType::kString;
    default:
      return PhysType::kValue;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (type == PhysType::kValue) return boxed[i];
  if (nulls != nullptr && nulls[i] != 0) return Value::Null();
  switch (type) {
    case PhysType::kInt64:
      return Value::Int(i64[i]);
    case PhysType::kDouble:
      return Value::Double(f64[i]);
    case PhysType::kBool:
      return Value::Bool(b8[i] != 0);
    case PhysType::kString:
      return Value::String(std::string(str[i].view()));
    case PhysType::kValue:
      break;
  }
  return Value::Null();
}

void ColumnBatch::ShareStorage(const ColumnBatch& other) {
  if (other.arena != nullptr && other.arena != arena) {
    pins.push_back(other.arena);
  }
  pins.insert(pins.end(), other.pins.begin(), other.pins.end());
  boxed_pool.insert(boxed_pool.end(), other.boxed_pool.begin(),
                    other.boxed_pool.end());
}

Row ColumnBatch::GatherRow(size_t row) const {
  Row out;
  out.reserve(cols.size());
  for (const ColumnVector& col : cols) out.push_back(col.GetValue(row));
  return out;
}

std::shared_ptr<const TableColumns> TableColumns::Build(
    const std::vector<Row>& rows, const RelDataType& row_type) {
  const auto& fields = row_type.fields();
  const size_t width = fields.size();
  for (const Row& row : rows) {
    if (row.size() != width) return nullptr;  // ragged: stay on the row path
  }

  auto out = std::make_shared<TableColumns>();
  out->num_rows = rows.size();
  out->cols.resize(width);
  const size_t n = rows.size();

  for (size_t c = 0; c < width; ++c) {
    Col& col = out->cols[c];
    PhysType declared = PhysTypeForRel(*fields[c].type);

    // Pass 1: check that every stored value fits the declared physical
    // class (degrading to boxed otherwise) and size the string blob.
    bool any_null = false;
    size_t blob_bytes = 0;
    PhysType phys = declared;
    if (phys != PhysType::kValue) {
      for (size_t i = 0; i < n; ++i) {
        const Value& v = rows[i][c];
        if (v.IsNull()) {
          any_null = true;
          continue;
        }
        bool fits = false;
        switch (phys) {
          case PhysType::kInt64:
            fits = v.is_int();
            break;
          case PhysType::kDouble:
            fits = v.is_double();
            break;
          case PhysType::kBool:
            fits = v.is_bool();
            break;
          case PhysType::kString:
            fits = v.is_string();
            if (fits) blob_bytes += v.AsString().size();
            break;
          case PhysType::kValue:
            break;
        }
        if (!fits) {
          phys = PhysType::kValue;
          break;
        }
      }
    }
    col.type = phys;

    // Pass 2: fill the typed storage.
    if (phys == PhysType::kValue) {
      col.boxed.reserve(n);
      for (size_t i = 0; i < n; ++i) col.boxed.push_back(rows[i][c]);
      continue;
    }
    if (any_null) col.nulls.assign(n, 0);
    switch (phys) {
      case PhysType::kInt64: {
        col.i64.assign(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = rows[i][c];
          if (v.IsNull()) {
            col.nulls[i] = 1;
          } else {
            col.i64[i] = v.AsInt();
          }
        }
        break;
      }
      case PhysType::kDouble: {
        col.f64.assign(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = rows[i][c];
          if (v.IsNull()) {
            col.nulls[i] = 1;
          } else {
            col.f64[i] = v.AsDouble();
          }
        }
        break;
      }
      case PhysType::kBool: {
        col.b8.assign(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = rows[i][c];
          if (v.IsNull()) {
            col.nulls[i] = 1;
          } else {
            col.b8[i] = v.AsBool() ? 1 : 0;
          }
        }
        break;
      }
      case PhysType::kString: {
        // Two passes over the blob: append every string's bytes recording
        // offsets, then resolve spans once the blob's address is final.
        col.str_blob.reserve(blob_bytes);
        std::vector<std::pair<size_t, uint32_t>> spans(n, {0, 0});
        for (size_t i = 0; i < n; ++i) {
          const Value& v = rows[i][c];
          if (v.IsNull()) {
            col.nulls[i] = 1;
            continue;
          }
          const std::string& s = v.AsString();
          spans[i] = {col.str_blob.size(), static_cast<uint32_t>(s.size())};
          col.str_blob.append(s);
        }
        col.str.assign(n, StringRef{});
        const char* base = col.str_blob.data();
        for (size_t i = 0; i < n; ++i) {
          col.str[i] = StringRef{base + spans[i].first, spans[i].second};
        }
        break;
      }
      case PhysType::kValue:
        break;
    }
  }
  return out;
}

ColumnVector TableColumns::View(size_t col, size_t offset) const {
  const Col& c = cols[col];
  ColumnVector v;
  v.type = c.type;
  switch (c.type) {
    case PhysType::kInt64:
      v.i64 = c.i64.data() + offset;
      break;
    case PhysType::kDouble:
      v.f64 = c.f64.data() + offset;
      break;
    case PhysType::kBool:
      v.b8 = c.b8.data() + offset;
      break;
    case PhysType::kString:
      v.str = c.str.data() + offset;
      break;
    case PhysType::kValue:
      v.boxed = c.boxed.data() + offset;
      break;
  }
  if (!c.nulls.empty()) v.nulls = c.nulls.data() + offset;
  return v;
}

TableColumnsPtr ColumnarCache::Get(const std::vector<Row>& rows,
                                   const RelDataTypePtr& row_type) const {
  if (row_type == nullptr || !row_type->is_struct()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (columns_ == nullptr) columns_ = TableColumns::Build(rows, *row_type);
  return columns_;
}

void ColumnarCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  columns_.reset();
}

ColumnBatch SliceTableColumns(const TableColumnsPtr& columns, size_t begin,
                              size_t count, std::shared_ptr<const void> pin) {
  ColumnBatch batch;
  batch.num_rows = count;
  batch.cols.reserve(columns->cols.size());
  for (size_t c = 0; c < columns->cols.size(); ++c) {
    batch.cols.push_back(columns->View(c, begin));
  }
  batch.pins.push_back(columns);
  if (pin != nullptr) batch.pins.push_back(std::move(pin));
  return batch;
}

namespace {

/// Keeps the selected indexes for which `pass` holds.
template <typename Pass>
void NarrowWith(SelectionVector* sel, Pass pass) {
  size_t out = 0;
  for (uint32_t idx : *sel) {
    if (pass(idx)) (*sel)[out++] = idx;
  }
  sel->resize(out);
}

bool ComparisonKindPasses(ScanPredicate::Kind kind, int c) {
  switch (kind) {
    case ScanPredicate::Kind::kEquals:
      return c == 0;
    case ScanPredicate::Kind::kNotEquals:
      return c != 0;
    case ScanPredicate::Kind::kLessThan:
      return c < 0;
    case ScanPredicate::Kind::kLessThanOrEqual:
      return c <= 0;
    case ScanPredicate::Kind::kGreaterThan:
      return c > 0;
    case ScanPredicate::Kind::kGreaterThanOrEqual:
      return c >= 0;
    default:
      return false;
  }
}

template <typename T>
int Cmp3(T a, T b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::optional<simd::Cmp> SimdCmpOf(ScanPredicate::Kind kind) {
  switch (kind) {
    case ScanPredicate::Kind::kEquals:
      return simd::Cmp::kEq;
    case ScanPredicate::Kind::kNotEquals:
      return simd::Cmp::kNe;
    case ScanPredicate::Kind::kLessThan:
      return simd::Cmp::kLt;
    case ScanPredicate::Kind::kLessThanOrEqual:
      return simd::Cmp::kLe;
    case ScanPredicate::Kind::kGreaterThan:
      return simd::Cmp::kGt;
    case ScanPredicate::Kind::kGreaterThanOrEqual:
      return simd::Cmp::kGe;
    default:
      return std::nullopt;
  }
}

/// Below this candidate count the refill bookkeeping costs more than the
/// scalar loop it replaces.
constexpr size_t kVectorNarrowMinRows = 32;

/// Vectorized narrow: compare the whole candidate row range in lanes into a
/// bytemask, then rebuild the selection from the mask. Handles the typed
/// numeric column/literal pairings; returns false to fall back to the
/// scalar per-row loops (sparse selections, strings, bools, mixed
/// int-column/double-literal).
bool NarrowVectorized(const ScanPredicate& pred, const ColumnVector& col,
                      SelectionVector* sel) {
  const size_t cand = sel->size();
  if (cand < kVectorNarrowMinRows) return false;
  const auto cmp = SimdCmpOf(pred.kind);
  if (!cmp.has_value()) return false;
  const bool i64_path = col.type == PhysType::kInt64 && pred.literal.is_int();
  const bool f64_path =
      col.type == PhysType::kDouble && pred.literal.is_numeric();
  if (!i64_path && !f64_path) return false;
  // The compare runs over rows [0, hi); only worth it while the candidates
  // are reasonably dense in that range.
  const size_t hi = static_cast<size_t>(sel->back()) + 1;
  if (cand * 4 < hi) return false;

  thread_local std::vector<uint8_t> mask;
  if (mask.size() < hi) mask.resize(hi);
  if (i64_path) {
    simd::CmpI64Lit(*cmp, col.i64, pred.literal.AsInt(), hi, mask.data());
  } else {
    simd::CmpF64Lit(*cmp, col.f64, pred.literal.AsDouble(), hi, mask.data());
  }
  if (col.nulls != nullptr) {
    simd::MaskZeroU8(mask.data(), col.nulls, hi);  // NULL never passes
  }
  // An ascending selection whose last entry is cand-1 is the identity, so
  // the mask positions are the selection: table-driven refill. Otherwise
  // filter the existing entries through the mask in place.
  if (hi == cand) {
    sel->resize(hi + simd::kSelSlack);
    sel->resize(simd::MaskToSel(mask.data(), hi, sel->data()));
  } else {
    sel->resize(simd::FilterSelByMask(mask.data(), sel->data(), cand,
                                      sel->data()));
  }
  return true;
}

/// Vectorized fused-interval narrow, the two-bound analogue of
/// NarrowVectorized (same density gates, same refill). Returns false to
/// fall back to applying the two bounds separately.
bool NarrowRangeVectorized(const FusedScanRange& range,
                           const ColumnVector& col, SelectionVector* sel) {
  const size_t cand = sel->size();
  if (cand < kVectorNarrowMinRows) return false;
  const Value& lo = range.lower.literal;
  const Value& hi = range.upper.literal;
  const bool i64_path =
      col.type == PhysType::kInt64 && lo.is_int() && hi.is_int();
  const bool f64_path =
      col.type == PhysType::kDouble && lo.is_numeric() && hi.is_numeric();
  if (!i64_path && !f64_path) return false;
  const size_t hi_row = static_cast<size_t>(sel->back()) + 1;
  if (cand * 4 < hi_row) return false;

  const bool lo_strict = range.lower.kind == ScanPredicate::Kind::kGreaterThan;
  const bool hi_strict = range.upper.kind == ScanPredicate::Kind::kLessThan;
  thread_local std::vector<uint8_t> mask;
  if (mask.size() < hi_row) mask.resize(hi_row);
  if (i64_path) {
    simd::InRangeI64(col.i64, lo.AsInt(), lo_strict, hi.AsInt(), hi_strict,
                     hi_row, mask.data());
  } else {
    simd::InRangeF64(col.f64, lo.AsDouble(), lo_strict, hi.AsDouble(),
                     hi_strict, hi_row, mask.data());
  }
  if (col.nulls != nullptr) {
    simd::MaskZeroU8(mask.data(), col.nulls, hi_row);  // NULL never passes
  }
  if (hi_row == cand) {
    sel->resize(hi_row + simd::kSelSlack);
    sel->resize(simd::MaskToSel(mask.data(), hi_row, sel->data()));
  } else {
    sel->resize(simd::FilterSelByMask(mask.data(), sel->data(), cand,
                                      sel->data()));
  }
  return true;
}

/// True for a comparison predicate usable as one side of a fused range:
/// a strict or inclusive bound with a non-NULL numeric literal.
bool IsRangeBound(const ScanPredicate& pred, bool* is_lower) {
  switch (pred.kind) {
    case ScanPredicate::Kind::kGreaterThan:
    case ScanPredicate::Kind::kGreaterThanOrEqual:
      *is_lower = true;
      break;
    case ScanPredicate::Kind::kLessThan:
    case ScanPredicate::Kind::kLessThanOrEqual:
      *is_lower = false;
      break;
    default:
      return false;
  }
  return !pred.literal.IsNull() && pred.literal.is_numeric();
}

}  // namespace

void FuseScanRanges(ScanPredicateList preds,
                    std::vector<FusedScanRange>* ranges,
                    ScanPredicateList* rest) {
  std::vector<bool> consumed(preds.size(), false);
  for (size_t i = 0; i < preds.size(); ++i) {
    if (consumed[i]) continue;
    bool i_lower = false;
    if (!IsRangeBound(preds[i], &i_lower)) {
      rest->push_back(std::move(preds[i]));
      continue;
    }
    size_t partner = preds.size();
    for (size_t j = i + 1; j < preds.size(); ++j) {
      if (consumed[j] || preds[j].column != preds[i].column) continue;
      bool j_lower = false;
      if (IsRangeBound(preds[j], &j_lower) && j_lower != i_lower) {
        partner = j;
        break;
      }
    }
    if (partner == preds.size()) {
      rest->push_back(std::move(preds[i]));
      continue;
    }
    consumed[partner] = true;
    FusedScanRange range;
    range.lower = std::move(i_lower ? preds[i] : preds[partner]);
    range.upper = std::move(i_lower ? preds[partner] : preds[i]);
    ranges->push_back(std::move(range));
  }
}

void NarrowByFusedRange(const FusedScanRange& range, const ColumnBatch& batch,
                        SelectionVector* sel) {
  const int column = range.lower.column;
  if (column >= 0 && static_cast<size_t>(column) < batch.cols.size() &&
      NarrowRangeVectorized(range, batch.cols[static_cast<size_t>(column)],
                            sel)) {
    return;
  }
  NarrowByScanPredicate(range.lower, batch, sel);
  if (!sel->empty()) NarrowByScanPredicate(range.upper, batch, sel);
}

void NarrowByScanPredicate(const ScanPredicate& pred, const ColumnBatch& batch,
                           SelectionVector* sel) {
  if (pred.column < 0 ||
      static_cast<size_t>(pred.column) >= batch.cols.size()) {
    sel->clear();
    return;
  }
  const ColumnVector& col = batch.cols[static_cast<size_t>(pred.column)];
  const uint8_t* nulls = col.nulls;

  switch (pred.kind) {
    case ScanPredicate::Kind::kIsNull:
      NarrowWith(sel, [&](uint32_t i) { return col.IsNullAt(i); });
      return;
    case ScanPredicate::Kind::kIsNotNull:
      NarrowWith(sel, [&](uint32_t i) { return !col.IsNullAt(i); });
      return;
    default:
      break;
  }
  // SQL comparison: NULL on either side never passes.
  if (pred.literal.IsNull()) {
    sel->clear();
    return;
  }

  if (NarrowVectorized(pred, col, sel)) return;

  const ScanPredicate::Kind kind = pred.kind;
  if (col.type == PhysType::kInt64 && pred.literal.is_int()) {
    const int64_t lit = pred.literal.AsInt();
    const int64_t* v = col.i64;
    NarrowWith(sel, [&](uint32_t i) {
      if (nulls != nullptr && nulls[i]) return false;
      return ComparisonKindPasses(kind, Cmp3(v[i], lit));
    });
  } else if ((col.type == PhysType::kInt64 && pred.literal.is_double()) ||
             (col.type == PhysType::kDouble && pred.literal.is_numeric())) {
    // Cross-representation numeric comparison happens in double, exactly as
    // Value::Compare does.
    const double lit = pred.literal.AsDouble();
    NarrowWith(sel, [&](uint32_t i) {
      if (nulls != nullptr && nulls[i]) return false;
      double v = col.type == PhysType::kInt64
                     ? static_cast<double>(col.i64[i])
                     : col.f64[i];
      return ComparisonKindPasses(kind, Cmp3(v, lit));
    });
  } else if (col.type == PhysType::kString && pred.literal.is_string()) {
    const std::string_view lit = pred.literal.AsString();
    const StringRef* v = col.str;
    NarrowWith(sel, [&](uint32_t i) {
      if (nulls != nullptr && nulls[i]) return false;
      int c = v[i].view().compare(lit);
      return ComparisonKindPasses(kind, c);
    });
  } else if (col.type == PhysType::kBool && pred.literal.is_bool()) {
    const int lit = pred.literal.AsBool() ? 1 : 0;
    const uint8_t* v = col.b8;
    NarrowWith(sel, [&](uint32_t i) {
      if (nulls != nullptr && nulls[i]) return false;
      return ComparisonKindPasses(kind, static_cast<int>(v[i]) - lit);
    });
  } else {
    // Mixed or boxed representations: box per candidate row and use the
    // Value comparison the row path uses.
    NarrowWith(sel, [&](uint32_t i) {
      Value v = col.GetValue(i);
      if (v.IsNull()) return false;
      return ComparisonKindPasses(kind, v.Compare(pred.literal));
    });
  }
}

ColumnBatchPuller ScanTableColumns(TableColumnsPtr columns, size_t batch_size,
                                   ScanPredicateList predicates,
                                   std::shared_ptr<const void> pin,
                                   bool fuse_ranges) {
  if (batch_size == 0) batch_size = 1;
  // Bound pairs fuse once at puller construction, not per batch.
  auto ranges = std::make_shared<std::vector<FusedScanRange>>();
  auto preds = std::make_shared<ScanPredicateList>();
  if (fuse_ranges) {
    FuseScanRanges(std::move(predicates), ranges.get(), preds.get());
  } else {
    *preds = std::move(predicates);
  }
  size_t pos = 0;
  return [columns, batch_size, ranges, preds, pin,
          pos]() mutable -> Result<ColumnBatch> {
    while (pos < columns->num_rows) {
      const size_t count = std::min(batch_size, columns->num_rows - pos);
      ColumnBatch batch = SliceTableColumns(columns, pos, count, pin);
      pos += count;
      if (!ranges->empty() || !preds->empty()) {
        SelectionVector sel(count);
        for (size_t i = 0; i < count; ++i) sel[i] = static_cast<uint32_t>(i);
        for (const FusedScanRange& range : *ranges) {
          NarrowByFusedRange(range, batch, &sel);
          if (sel.empty()) break;
        }
        for (const ScanPredicate& pred : *preds) {
          if (sel.empty()) break;
          NarrowByScanPredicate(pred, batch, &sel);
        }
        if (sel.empty()) continue;  // never yield an empty batch mid-stream
        if (sel.size() < count) {
          batch.sel = std::move(sel);
          batch.has_sel = true;
        }
      }
      return batch;
    }
    return ColumnBatch{};
  };
}

void ColumnsToRows(const ColumnBatch& batch, RowBatch* out) {
  out->clear();
  const size_t active = batch.ActiveCount();
  out->reserve(active);
  for (size_t k = 0; k < active; ++k) {
    out->push_back(batch.GatherRow(batch.ActiveIndex(k)));
  }
}

Result<ColumnBatch> RowsToColumns(const RowBatch& rows,
                                  const RelDataType& row_type) {
  TableColumnsPtr columns = TableColumns::Build(rows, row_type);
  if (columns == nullptr) {
    return Status::Internal("cannot decompose ragged rows into columns");
  }
  return SliceTableColumns(columns, 0, rows.size(), nullptr);
}

namespace {

/// Bool cells get distinct fixed seeds so they collide with nothing numeric.
inline uint64_t HashBool64(bool b) {
  return simd::Mix64(b ? 0x9001u : 0x9000u);
}

}  // namespace

uint64_t HashValue64(const Value& v) {
  if (v.IsNull()) return simd::kNullHash;
  if (v.is_int()) return simd::HashI64One(v.AsInt());
  if (v.is_double()) return simd::HashF64One(v.AsDouble());
  if (v.is_bool()) return HashBool64(v.AsBool());
  if (v.is_string()) {
    const std::string& s = v.AsString();
    return simd::HashBytes(s.data(), s.size());
  }
  return v.Hash();  // composite: only ever meets other boxed cells
}

uint64_t HashRowKey64(const Row& key) {
  if (key.size() == 1) return HashValue64(key[0]);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : key) h = (h ^ HashValue64(v)) * 0x100000001b3ULL;
  return h;
}

void HashColumn(const ColumnVector& col, const uint32_t* sel, size_t n,
                uint64_t* out) {
  switch (col.type) {
    case PhysType::kInt64:
      if (sel == nullptr) {
        simd::HashI64(col.i64, n, out);
      } else {
        thread_local std::vector<int64_t> gathered;
        if (gathered.size() < n) gathered.resize(n);
        for (size_t k = 0; k < n; ++k) gathered[k] = col.i64[sel[k]];
        simd::HashI64(gathered.data(), n, out);
      }
      break;
    case PhysType::kDouble:
      if (sel == nullptr) {
        simd::HashF64(col.f64, n, out);
      } else {
        thread_local std::vector<double> gathered;
        if (gathered.size() < n) gathered.resize(n);
        for (size_t k = 0; k < n; ++k) gathered[k] = col.f64[sel[k]];
        simd::HashF64(gathered.data(), n, out);
      }
      break;
    case PhysType::kBool:
      for (size_t k = 0; k < n; ++k) {
        out[k] = HashBool64(col.b8[sel != nullptr ? sel[k] : k] != 0);
      }
      break;
    case PhysType::kString:
      for (size_t k = 0; k < n; ++k) {
        const StringRef& s = col.str[sel != nullptr ? sel[k] : k];
        out[k] = simd::HashBytes(s.data, s.size);
      }
      break;
    case PhysType::kValue:
      for (size_t k = 0; k < n; ++k) {
        out[k] = HashValue64(col.boxed[sel != nullptr ? sel[k] : k]);
      }
      return;  // boxed cells carry their own null state
  }
  if (col.nulls != nullptr) {
    for (size_t k = 0; k < n; ++k) {
      if (col.nulls[sel != nullptr ? sel[k] : k] != 0) {
        out[k] = simd::kNullHash;
      }
    }
  }
}

}  // namespace calcite
