#include "exec/arena.h"

#include <algorithm>
#include <cstring>

namespace calcite {

namespace {
constexpr size_t kAlign = Arena::kAlignment;

size_t AlignUp(size_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }
}  // namespace

void Arena::AddChunk(size_t min_bytes) {
  Chunk chunk;
  chunk.size = std::max(min_bytes, chunk_bytes_);
  // new char[] only guarantees max_align_t; over-allocate and round the base
  // up so every bump offset (always a multiple of kAlign) stays aligned.
  chunk.data.reset(new char[chunk.size + kAlign - 1]);
  const uintptr_t raw = reinterpret_cast<uintptr_t>(chunk.data.get());
  chunk.base = chunk.data.get() +
               (AlignUp(raw) - raw);
  chunks_.push_back(std::move(chunk));
  active_ = chunks_.size() - 1;
  offset_ = 0;
}

void* Arena::Allocate(size_t bytes) {
  bytes = AlignUp(bytes == 0 ? 1 : bytes);
  if (chunks_.empty() || offset_ + bytes > chunks_[active_].size) {
    // Try the next already-held chunk (after a Reset) before growing.
    if (!chunks_.empty() && active_ + 1 < chunks_.size() &&
        bytes <= chunks_[active_ + 1].size) {
      ++active_;
      offset_ = 0;
    } else {
      AddChunk(bytes);
    }
  }
  char* ptr = chunks_[active_].base + offset_;
  offset_ += bytes;
  bytes_used_ += bytes;
  return ptr;
}

void Arena::Reset() {
  if (chunks_.size() > 1) {
    // Coalesce so the steady state after warm-up is one right-sized chunk.
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    chunks_.clear();
    AddChunk(total);
  }
  active_ = 0;
  offset_ = 0;
  bytes_used_ = 0;
}

ArenaPtr ArenaPool::Acquire() {
  for (ArenaPtr& arena : pool_) {
    if (arena.use_count() == 1) {
      arena->Reset();
      return arena;
    }
  }
  ArenaPtr fresh = std::make_shared<Arena>(chunk_bytes_);
  if (pool_.size() < kMaxPooled) pool_.push_back(fresh);
  return fresh;
}

}  // namespace calcite
