#ifndef CALCITE_EXEC_SIMD_H_
#define CALCITE_EXEC_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

/// Explicit SIMD kernel layer under the columnar engine.
///
/// Dispatch is decided at compile time: the CALCITE_SIMD CMake option
/// (default ON) probes the compiler for -mavx2 / -msse4.2 and defines
/// CALCITE_SIMD_ENABLED, from which this header derives CALCITE_SIMD_LEVEL:
///
///   2  AVX2    — 4x int64/double lanes, 32-byte mask blocks
///   1  SSE4.2  — 2x int64/double lanes (comparison kernels only)
///   0  scalar  — portable reference implementations
///
/// The scalar implementations are always compiled regardless of level; they
/// are the semantic reference the vector paths must match bit-for-bit. At
/// runtime SetEnabled(false) forces every kernel onto the scalar path, which
/// the differential test suites use to diff SIMD against scalar within one
/// binary (and which makes the scalar path testable on any build).
///
/// All mask arguments are *bytemaps*: one byte per row, nonzero = set. Kernel
/// outputs are canonical 0/1 bytes. Inputs need not be aligned — column views
/// sliced at arbitrary offsets are only element-aligned — so every vector
/// path uses unaligned loads; the Arena's 64-byte allocation alignment just
/// keeps full batches from straddling cache lines.
#if defined(CALCITE_SIMD_ENABLED) && defined(__AVX2__)
#define CALCITE_SIMD_LEVEL 2
#elif defined(CALCITE_SIMD_ENABLED) && defined(__SSE4_2__)
#define CALCITE_SIMD_LEVEL 1
#else
#define CALCITE_SIMD_LEVEL 0
#endif

namespace calcite {
namespace simd {

/// Widest dispatch level compiled into this binary (0/1/2 as above).
int CompiledLevel();
/// Human-readable name of the compiled level ("avx2", "sse4.2", "scalar").
const char* CompiledLevelName();

/// Runtime dispatch switch. True (the default) routes kernels to the widest
/// compiled level; false forces the scalar reference path. Always false when
/// the binary was built scalar-only. Reads are relaxed atomics, so tests may
/// flip the switch between queries even in multi-threaded suites.
bool Enabled();
void SetEnabled(bool on);

/// RAII dispatch override for tests: force SIMD on or off for a scope.
struct ScopedDispatch {
  explicit ScopedDispatch(bool enable_simd) : prev_(Enabled()) {
    SetEnabled(enable_simd);
  }
  ~ScopedDispatch() { SetEnabled(prev_); }
  ScopedDispatch(const ScopedDispatch&) = delete;
  ScopedDispatch& operator=(const ScopedDispatch&) = delete;

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// Comparison kernels -> predicate bytemasks
// ---------------------------------------------------------------------------

/// Comparison operator. The double kernels implement the engine's three-way
/// ordering (x<y ? -1 : x>y ? 1 : 0), under which NaN compares "equal" to
/// everything: kEq/kLe/kGe pass on NaN operands, kNe/kLt/kGt do not —
/// exactly what the scalar Value::Compare-based loops produce.
enum class Cmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// out[i] = 1 iff (a[i] <op> b[i]), blind over all n rows (callers fold null
/// bytemaps separately and re-zero null slots).
void CmpI64(Cmp op, const int64_t* a, const int64_t* b, size_t n,
            uint8_t* out);
void CmpF64(Cmp op, const double* a, const double* b, size_t n, uint8_t* out);
/// Column-vs-literal forms (the broadcast is folded into the kernel).
void CmpI64Lit(Cmp op, const int64_t* a, int64_t lit, size_t n, uint8_t* out);
void CmpF64Lit(Cmp op, const double* a, double lit, size_t n, uint8_t* out);

// ---------------------------------------------------------------------------
// Arithmetic kernels
// ---------------------------------------------------------------------------

/// Blind element-wise arithmetic. Division and modulus stay scalar in the
/// callers: they need per-row divide-by-zero errors gated on the null mask.
enum class Arith : uint8_t { kAdd, kSub, kMul };

void ArithI64(Arith op, const int64_t* a, const int64_t* b, size_t n,
              int64_t* out);
void ArithF64(Arith op, const double* a, const double* b, size_t n,
              double* out);
/// Column-vs-literal forms (the broadcast is folded into the kernel; kSub
/// computes a[i] - lit, so a literal-on-the-left subtraction does not fold).
void ArithI64Lit(Arith op, const int64_t* a, int64_t lit, size_t n,
                 int64_t* out);
void ArithF64Lit(Arith op, const double* a, double lit, size_t n,
                 double* out);

/// out[i] = double(v[i]) — the widening used by mixed int/double operands.
void I64ToF64(const int64_t* v, size_t n, double* out);

/// Fused interval test: out[i] = 1 iff v[i] is above `lo` and below `hi`,
/// each bound strict or inclusive — one pass where `v >= lo AND v < hi`
/// would take two compare kernels and a mask AND. Inclusive bounds are
/// evaluated as NOT(strictly outside), so under the three-way double
/// semantics above a NaN lane passes both inclusive bounds and fails both
/// strict ones, exactly like the corresponding kGe/kLe vs kGt/kLt kernels.
void InRangeI64(const int64_t* v, int64_t lo, bool lo_strict, int64_t hi,
                bool hi_strict, size_t n, uint8_t* out);
void InRangeF64(const double* v, double lo, bool lo_strict, double hi,
                bool hi_strict, size_t n, uint8_t* out);

// ---------------------------------------------------------------------------
// Mask folding
// ---------------------------------------------------------------------------

/// out[i] = (a[i] || b[i]) ? 1 : 0 — the NULL-strict null-map fold.
void OrMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out);
/// out[i] = (a[i] && b[i]) ? 1 : 0 — conjunction of two predicate masks.
void AndMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out);
/// out[i] = (value[i] && !off[i]) ? 1 : 0 — boolean result minus its nulls.
void AndNotMask(const uint8_t* value, const uint8_t* off, size_t n,
                uint8_t* out);
/// data[i] = 0 wherever mask[i] != 0 (canonicalizes NULL rows' data slots).
void MaskZeroU8(uint8_t* data, const uint8_t* mask, size_t n);
void MaskZeroI64(int64_t* data, const uint8_t* mask, size_t n);
void MaskZeroF64(double* data, const uint8_t* mask, size_t n);

// ---------------------------------------------------------------------------
// Selection-vector refill
// ---------------------------------------------------------------------------

/// MaskToSel may overwrite up to this many entries past the returned count;
/// size `out` to at least n + kSelSlack.
inline constexpr size_t kSelSlack = 8;

/// Expands a bytemask to the ascending list of set indexes: out gets i for
/// every mask[i] != 0, returns how many. The vector path expands the mask 32
/// rows at a time through a precomputed bit->index table and stores full
/// 8-lane groups, so `out` must have room for n + kSelSlack entries.
size_t MaskToSel(const uint8_t* mask, size_t n, uint32_t* out);

/// Keeps sel[k] wherever mask[k] != 0 (mask is positional over the candidate
/// list, e.g. a dense predicate result). Branch-free; out may alias sel and
/// never writes past index n-1. Returns the surviving count.
size_t CompactSel(const uint8_t* mask, const uint32_t* sel, size_t n,
                  uint32_t* out);

/// Keeps sel[k] wherever mask[sel[k]] != 0 (mask is indexed by row, e.g. a
/// full-range compare result gathered through the selection). Branch-free;
/// out may alias sel. Returns the surviving count.
size_t FilterSelByMask(const uint8_t* mask, const uint32_t* sel, size_t n,
                       uint32_t* out);

// ---------------------------------------------------------------------------
// Blocked hashing
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: the avalanche all blocked hashes funnel through.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash of a SQL NULL cell (fixed so NULL keys land in one group/partition).
inline constexpr uint64_t kNullHash = 0x7f4a7c15f39cc060ULL;

/// Integral values below this bound are exactly representable as doubles;
/// above it the engine's numeric equality (compare-as-double) conflates
/// neighboring int64s, so hashes must conflate them identically.
inline constexpr int64_t kExactIntBound = int64_t{1} << 53;

/// Hash of one int64 cell. Int(v) and Double(d) must hash identically
/// whenever they compare equal (cross-representation comparison happens in
/// double), so values outside the exactly-representable range hash via their
/// double image.
inline uint64_t HashI64One(int64_t v) {
  if (v > -kExactIntBound && v < kExactIntBound) {
    return Mix64(static_cast<uint64_t>(v));
  }
  double d = static_cast<double>(v);
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

/// Hash of one double cell, unified with HashI64One: integral doubles hash
/// as the int64 they equal, everything else (NaN, inf, fractions) by bits.
/// -0.0 truncates to 0 and so hashes like +0.0, matching their equality.
inline uint64_t HashF64One(double d) {
  if (d > -9007199254740992.0 && d < 9007199254740992.0) {  // (-2^53, 2^53)
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return Mix64(static_cast<uint64_t>(i));
  }
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

/// FNV-1a over a byte span, avalanched through Mix64 (string cells).
inline uint64_t HashBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 0x100000001b3ULL;
  return Mix64(h);
}

/// Blocked column forms of the one-cell hashes above.
void HashI64(const int64_t* v, size_t n, uint64_t* out);
void HashF64(const double* v, size_t n, uint64_t* out);

}  // namespace simd
}  // namespace calcite

#endif  // CALCITE_EXEC_SIMD_H_
