#include "exec/row_batch.h"

#include <memory>
#include <random>

namespace calcite {

ScanSpec ScanSpec::Normalized() const {
  ScanSpec out = *this;
  if (out.batch_size == 0) out.batch_size = 1;
  if (out.batch_size > kMaxBatchSize) out.batch_size = kMaxBatchSize;
  if (!(out.sample_fraction >= 0.0)) out.sample_fraction = 0.0;  // NaN → 0
  if (out.sample_fraction > 1.0) out.sample_fraction = 1.0;
  if (out.access_path != AccessPath::kForceIndex &&
      out.access_path != AccessPath::kForceHeap) {
    out.access_path = AccessPath::kAuto;
  }
  if (out.unit_end < out.unit_begin) out.unit_end = out.unit_begin;
  return out;
}

namespace {

RowBatchPuller SampleBatches(RowBatchPuller puller, double fraction,
                             uint64_t seed) {
  auto rng = std::make_shared<std::mt19937_64>(seed);
  auto dist = std::make_shared<std::uniform_real_distribution<double>>(0.0,
                                                                       1.0);
  return [puller = std::move(puller), fraction, rng,
          dist]() -> Result<RowBatch> {
    RowBatch out;
    // Keep pulling until we have something (or the source is exhausted):
    // a fully sampled-out chunk must not surface as a spurious
    // end-of-stream empty batch.
    for (;;) {
      auto batch = puller();
      if (!batch.ok()) return batch.status();
      if (batch.value().empty()) return out;  // upstream exhausted
      for (Row& row : batch.value()) {
        if ((*dist)(*rng) < fraction) out.push_back(std::move(row));
      }
      if (!out.empty()) return out;
    }
  };
}

RowBatchPuller ProjectBatches(RowBatchPuller puller,
                              std::vector<int> projection) {
  auto cols = std::make_shared<std::vector<int>>(std::move(projection));
  return [puller = std::move(puller), cols]() -> Result<RowBatch> {
    auto batch = puller();
    if (!batch.ok()) return batch.status();
    RowBatch out;
    out.reserve(batch.value().size());
    for (Row& row : batch.value()) {
      Row narrow;
      narrow.reserve(cols->size());
      for (int c : *cols) {
        if (c >= 0 && static_cast<size_t>(c) < row.size()) {
          narrow.push_back(std::move(row[static_cast<size_t>(c)]));
        } else {
          narrow.push_back(Value());  // out-of-range hint → NULL, not UB
        }
      }
      out.push_back(std::move(narrow));
    }
    return out;
  };
}

}  // namespace

RowBatchPuller ApplyScanSpecDecorators(RowBatchPuller puller,
                                       const ScanSpec& spec) {
  if (spec.sample_fraction < 1.0) {
    puller = SampleBatches(std::move(puller), spec.sample_fraction,
                           spec.sample_seed);
  }
  if (!spec.projection.empty()) {
    puller = ProjectBatches(std::move(puller), spec.projection);
  }
  return puller;
}

RowBatchPuller ChunkRows(std::vector<Row> rows, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  auto data = std::make_shared<std::vector<Row>>(std::move(rows));
  auto pos = std::make_shared<size_t>(0);
  return [data, pos, batch_size]() -> Result<RowBatch> {
    RowBatch batch;
    size_t remaining = data->size() - *pos;
    size_t n = std::min(batch_size, remaining);
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move((*data)[*pos + i]));
    }
    *pos += n;
    return batch;
  };
}

RowBatchPuller SliceRows(const std::vector<Row>& rows, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  const std::vector<Row>* data = &rows;
  size_t pos = 0;
  return [data, batch_size, pos]() mutable -> Result<RowBatch> {
    size_t n = std::min(batch_size, data->size() - pos);
    RowBatch batch(data->begin() + static_cast<ptrdiff_t>(pos),
                   data->begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return batch;
  };
}

Result<std::vector<Row>> DrainBatches(const RowBatchPuller& puller) {
  std::vector<Row> out;
  for (;;) {
    auto batch = puller();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (Row& row : batch.value()) out.push_back(std::move(row));
  }
  return out;
}

void CompactBatch(RowBatch* batch, const SelectionVector& sel) {
  if (sel.size() == batch->size()) return;  // everything selected
  for (size_t i = 0; i < sel.size(); ++i) {
    if (sel[i] != i) (*batch)[i] = std::move((*batch)[sel[i]]);
  }
  batch->resize(sel.size());
}

void SelBatch::Compact() {
  if (!has_sel) return;
  CompactBatch(&rows, sel);
  sel.clear();
  has_sel = false;
}

SelBatchPuller LiftToSelBatches(RowBatchPuller puller) {
  return [puller]() -> Result<SelBatch> {
    auto batch = puller();
    if (!batch.ok()) return batch.status();
    SelBatch out;
    out.rows = std::move(batch).value();
    return out;
  };
}

RowBatchPuller CompactSelBatches(SelBatchPuller puller) {
  return [puller]() -> Result<RowBatch> {
    auto batch = puller();
    if (!batch.ok()) return batch.status();
    SelBatch sel_batch = std::move(batch).value();
    sel_batch.Compact();
    return std::move(sel_batch.rows);
  };
}

bool ScanPredicate::Matches(const Row& row) const {
  // Width mismatches cannot arise from well-formed tables (every stored row
  // has the table's row type); treat a short row as not matching rather
  // than reading out of bounds.
  if (column < 0 || static_cast<size_t>(column) >= row.size()) return false;
  const Value& v = row[static_cast<size_t>(column)];
  switch (kind) {
    case Kind::kIsNull:
      return v.IsNull();
    case Kind::kIsNotNull:
      return !v.IsNull();
    default:
      break;
  }
  // SQL comparison: NULL on either side yields UNKNOWN, which a filter
  // treats as not passing — identical to the interpreter's fast path.
  if (v.IsNull() || literal.IsNull()) return false;
  int c = v.Compare(literal);
  switch (kind) {
    case Kind::kEquals:
      return c == 0;
    case Kind::kNotEquals:
      return c != 0;
    case Kind::kLessThan:
      return c < 0;
    case Kind::kLessThanOrEqual:
      return c <= 0;
    case Kind::kGreaterThan:
      return c > 0;
    case Kind::kGreaterThanOrEqual:
      return c >= 0;
    default:
      return false;
  }
}

bool ScanPredicatesMatch(const ScanPredicateList& predicates, const Row& row) {
  for (const ScanPredicate& pred : predicates) {
    if (!pred.Matches(row)) return false;
  }
  return true;
}

RowBatchPuller FilterSliceRows(const std::vector<Row>& rows, size_t batch_size,
                               ScanPredicateList predicates) {
  if (batch_size == 0) batch_size = 1;
  if (predicates.empty()) return SliceRows(rows, batch_size);
  const std::vector<Row>* data = &rows;
  auto preds = std::make_shared<ScanPredicateList>(std::move(predicates));
  size_t pos = 0;
  return [data, preds, batch_size, pos]() mutable -> Result<RowBatch> {
    RowBatch batch;
    while (pos < data->size() && batch.size() < batch_size) {
      const Row& row = (*data)[pos++];
      if (ScanPredicatesMatch(*preds, row)) batch.push_back(row);
    }
    return batch;
  };
}

}  // namespace calcite
