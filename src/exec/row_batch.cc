#include "exec/row_batch.h"

#include <memory>

namespace calcite {

RowBatchPuller ChunkRows(std::vector<Row> rows, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  auto data = std::make_shared<std::vector<Row>>(std::move(rows));
  auto pos = std::make_shared<size_t>(0);
  return [data, pos, batch_size]() -> Result<RowBatch> {
    RowBatch batch;
    size_t remaining = data->size() - *pos;
    size_t n = std::min(batch_size, remaining);
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move((*data)[*pos + i]));
    }
    *pos += n;
    return batch;
  };
}

RowBatchPuller SliceRows(const std::vector<Row>& rows, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  const std::vector<Row>* data = &rows;
  size_t pos = 0;
  return [data, batch_size, pos]() mutable -> Result<RowBatch> {
    size_t n = std::min(batch_size, data->size() - pos);
    RowBatch batch(data->begin() + static_cast<ptrdiff_t>(pos),
                   data->begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return batch;
  };
}

Result<std::vector<Row>> DrainBatches(const RowBatchPuller& puller) {
  std::vector<Row> out;
  for (;;) {
    auto batch = puller();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (Row& row : batch.value()) out.push_back(std::move(row));
  }
  return out;
}

void CompactBatch(RowBatch* batch, const SelectionVector& sel) {
  if (sel.size() == batch->size()) return;  // everything selected
  for (size_t i = 0; i < sel.size(); ++i) {
    if (sel[i] != i) (*batch)[i] = std::move((*batch)[sel[i]]);
  }
  batch->resize(sel.size());
}

}  // namespace calcite
