#ifndef CALCITE_EXEC_COLUMN_BATCH_H_
#define CALCITE_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "exec/arena.h"
#include "exec/row_batch.h"
#include "type/rel_data_type.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Physical storage class of a column. The static SQL type decides the
/// physical layout: exact numerics / datetimes map to int64, approximate
/// numerics to double, CHAR/VARCHAR to string spans, BOOLEAN to bytes.
/// Everything else — and any column whose stored values do not match the
/// declared type — is carried as boxed Values (kValue), which every columnar
/// kernel treats as "fall back to row semantics".
enum class PhysType : uint8_t { kInt64, kDouble, kBool, kString, kValue };

/// Physical class for a scalar SQL type.
PhysType PhysTypeForSql(SqlTypeName name);
inline PhysType PhysTypeForRel(const RelDataType& type) {
  return PhysTypeForSql(type.type_name());
}

/// A string cell: an unowned span into the column's character blob (or any
/// storage outliving the batch). Trivially destructible so it can live in an
/// arena.
struct StringRef {
  const char* data = nullptr;
  uint32_t size = 0;

  std::string_view view() const { return std::string_view(data, size); }
};

/// One column of a batch: a typed pointer into storage owned elsewhere (the
/// table's columnar cache, the batch's arena, or the batch's boxed pool)
/// plus an optional null bytemap. `nulls[i] != 0` means row i is SQL NULL;
/// a null `nulls` pointer means no row is NULL. A bytemap (one byte per row)
/// is used instead of a bitmap: random access stays branch-free and the
/// filter/arith loops auto-vectorize without bit extraction.
///
/// Exactly one data pointer (matching `type`) is non-null. For kValue
/// columns the boxed Values carry their own null state and `nulls` is unset.
struct ColumnVector {
  PhysType type = PhysType::kValue;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const uint8_t* b8 = nullptr;  // bool column, 0/1 per row
  const StringRef* str = nullptr;
  const Value* boxed = nullptr;
  const uint8_t* nulls = nullptr;

  bool IsNullAt(size_t i) const {
    if (type == PhysType::kValue) return boxed[i].IsNull();
    return nulls != nullptr && nulls[i] != 0;
  }

  /// Boxes one cell back into a Value (the row/column conversion boundary).
  Value GetValue(size_t i) const;
};

/// A column-major batch: `num_rows` physical rows stored as per-column typed
/// vectors, plus an optional selection vector naming the live subset (same
/// ascending-index contract as SelBatch). This is the native currency of the
/// columnar hot path.
///
/// Ownership is shared and shallow: `arena` owns bump-allocated column
/// storage produced by kernels, `boxed_pool` owns boxed Value columns (which
/// cannot live in the arena — they need destructors), and `pins` keeps
/// foreign storage (a table's columnar cache, an upstream batch's owners)
/// alive for zero-copy column views. Copying a ColumnBatch copies pointers
/// and shares ownership; it never copies cell data.
struct ColumnBatch {
  size_t num_rows = 0;
  std::vector<ColumnVector> cols;
  SelectionVector sel;
  bool has_sel = false;

  ArenaPtr arena;
  std::vector<std::shared_ptr<const void>> pins;
  std::vector<std::shared_ptr<std::vector<Value>>> boxed_pool;

  /// End-of-stream marker (same convention as RowBatch pullers: producers
  /// never yield a batch with zero live rows mid-stream).
  bool AtEnd() const { return num_rows == 0; }

  size_t ActiveCount() const { return has_sel ? sel.size() : num_rows; }
  size_t ActiveIndex(size_t k) const { return has_sel ? sel[k] : k; }

  /// Adopts `other`'s storage owners so columns of `other` may be aliased
  /// into this batch without copying.
  void ShareStorage(const ColumnBatch& other);

  /// Boxes one physical row (all columns) back into a Row.
  Row GatherRow(size_t row) const;
};

/// Pull protocol for columnar pipelines; empty batch ends the stream.
using ColumnBatchPuller = std::function<Result<ColumnBatch>()>;

/// Whole-table column-major storage: the decomposition of a table's
/// materialized rows into typed column vectors, built once and cached on the
/// table (see ColumnarCache). String columns hold their character data in a
/// single contiguous blob with StringRef spans pointing into it. A column
/// whose declared type does not match every stored value degrades to a boxed
/// kValue column, preserving exact row-path semantics for oddly-typed data.
struct TableColumns {
  struct Col {
    PhysType type = PhysType::kValue;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint8_t> b8;
    std::vector<StringRef> str;
    std::string str_blob;  // character data backing `str`
    std::vector<Value> boxed;
    std::vector<uint8_t> nulls;  // sized num_rows iff any null, else empty
  };

  size_t num_rows = 0;
  std::vector<Col> cols;

  /// Decomposes `rows` (whose shape is described by the struct `row_type`)
  /// into columns. Returns nullptr when the rows cannot be decomposed
  /// (ragged widths) — callers then stay on the row path.
  static std::shared_ptr<const TableColumns> Build(const std::vector<Row>& rows,
                                                   const RelDataType& row_type);

  /// A view of column `col` starting at physical row `offset`.
  ColumnVector View(size_t col, size_t offset) const;
};

using TableColumnsPtr = std::shared_ptr<const TableColumns>;

/// Lazily-built, mutex-protected columnar decomposition cached by a table.
/// Get() builds on first use and returns the shared decomposition afterwards;
/// Invalidate() drops it (tables expose mutable row access for test/bench
/// setup and must invalidate when rows may change). In-flight scans keep the
/// old decomposition alive through their shared_ptr.
class ColumnarCache {
 public:
  TableColumnsPtr Get(const std::vector<Row>& rows,
                      const RelDataTypePtr& row_type) const;
  void Invalidate();

 private:
  mutable std::mutex mu_;
  mutable TableColumnsPtr columns_;
};

/// A zero-copy view batch over rows [begin, begin+count) of a columnar
/// table decomposition. `pin` (usually the owning table) is retained in the
/// batch's pins alongside `columns`.
ColumnBatch SliceTableColumns(const TableColumnsPtr& columns, size_t begin,
                              size_t count, std::shared_ptr<const void> pin);

/// Narrows `sel` (slice-local ascending indexes into `batch`) to the rows
/// matching `pred`, with typed loops over the raw column storage — this is
/// leaf predicate pushdown evaluated before any row materialization. Exactly
/// mirrors ScanPredicate::Matches (NULL on either side of a comparison does
/// not pass). Dense int64/double candidates run a vectorized compare over
/// the whole row range followed by a table-driven bitmask -> selection
/// refill (exec/simd.h); everything else keeps the scalar per-row loop.
void NarrowByScanPredicate(const ScanPredicate& pred, const ColumnBatch& batch,
                           SelectionVector* sel);

/// A lower and an upper pushed bound on the same column, fused into one
/// interval test: the row range `lower.lit (<|<=) col (<|<=) upper.lit`
/// narrows with a single simd::InRange pass per batch instead of two
/// compare+refill rounds. `lower.kind` is kGreaterThan[OrEqual],
/// `upper.kind` is kLessThan[OrEqual], both on `lower.column`, both with
/// non-NULL numeric literals (FuseScanRanges guarantees all of this).
struct FusedScanRange {
  ScanPredicate lower;
  ScanPredicate upper;
};

/// Splits `preds` into fused range pairs and the remainder: each
/// lower-bound comparison pairs greedily with the first later upper-bound
/// comparison on the same column (non-NULL numeric literals only), and
/// every unpaired predicate lands in `rest` in its original order. Legal
/// because pushed predicates form a conjunction of error-free per-row
/// tests, so evaluation order is unobservable.
void FuseScanRanges(ScanPredicateList preds,
                    std::vector<FusedScanRange>* ranges,
                    ScanPredicateList* rest);

/// NarrowByScanPredicate's fused-interval analogue: narrows `sel` to the
/// rows inside the range with one vectorized interval test when the
/// column/literal pairing supports it, falling back to applying the two
/// original bound predicates. Bit-identical to narrowing by `range.lower`
/// then `range.upper` separately.
void NarrowByFusedRange(const FusedScanRange& range, const ColumnBatch& batch,
                        SelectionVector* sel);

/// 64-bit hash of a boxed cell, consistent with the blocked HashColumn
/// kernel below: numerically-equal int64/double values hash identically
/// (cross-representation equality compares as double), NULL hashes to the
/// fixed simd::kNullHash, strings hash their bytes. Composite values fall
/// back to Value::Hash (only ever compared against other boxed cells).
uint64_t HashValue64(const Value& v);

/// Hash of a join/group key row. A single-column key hashes exactly as
/// HashValue64 of its one cell — the contract that lets typed column fast
/// paths and boxed per-row paths probe the same table — and wider keys fold
/// the per-cell hashes FNV-style.
uint64_t HashRowKey64(const Row& key);

/// Blocked column-at-a-time hashing: hashes the `n` cells of `col` named by
/// sel[0..n) (or rows 0..n-1 when `sel` is null) into out[0..n), agreeing
/// with HashValue64 on every cell including NULLs. int64 columns hash in
/// SIMD lanes; the point for every type is hoisting hashing out of the
/// per-row probe loop into one tight pass.
void HashColumn(const ColumnVector& col, const uint32_t* sel, size_t n,
                uint64_t* out);

/// Columnar leaf scan: yields zero-copy view batches of at most `batch_size`
/// rows over `columns`, applying `predicates` on raw column storage and
/// attaching the surviving selection to each batch (batches where nothing
/// survives are skipped, never yielded empty). `pin` keeps the owning table
/// alive while pulling. When `fuse_ranges` is set (ExecOptions::
/// enable_fusion at the call sites), bound pairs among the predicates are
/// fused once up front via FuseScanRanges and applied as single interval
/// tests.
ColumnBatchPuller ScanTableColumns(TableColumnsPtr columns, size_t batch_size,
                                   ScanPredicateList predicates,
                                   std::shared_ptr<const void> pin,
                                   bool fuse_ranges = true);

/// Boxes the *active* rows of `batch` into a compact RowBatch (the
/// column-to-row conversion boundary used by unconverted consumers).
void ColumnsToRows(const ColumnBatch& batch, RowBatch* out);

/// Decomposes a RowBatch into an owned ColumnBatch (test and bridge helper;
/// the hot path never converts this direction). Fails on ragged rows.
Result<ColumnBatch> RowsToColumns(const RowBatch& rows,
                                  const RelDataType& row_type);

}  // namespace calcite

#endif  // CALCITE_EXEC_COLUMN_BATCH_H_
