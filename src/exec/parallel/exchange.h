#ifndef CALCITE_EXEC_PARALLEL_EXCHANGE_H_
#define CALCITE_EXEC_PARALLEL_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "exec/column_batch.h"
#include "exec/parallel/task_scheduler.h"
#include "exec/row_batch.h"

namespace calcite {

/// The exchange operator of the parallel subsystem: a bounded
/// multi-producer single-consumer queue of batches. Parallel workers
/// Push the batches their pipeline fragment produces; the Gather side pops
/// them from the consumer thread, re-entering the ordinary single-threaded
/// puller protocol. The bound applies backpressure so a fast
/// producer fleet cannot materialize an unbounded result ahead of a slow
/// consumer.
///
/// The batch type is a template parameter because the exchange ships
/// whatever the fragment's workers produce: dense RowBatches on the row
/// path, or ColumnBatches on the columnar path — the latter move only
/// column pointers and shared storage owners through the queue (zero-copy);
/// cells are first materialized on the consumer side, if at all.
template <typename BatchT>
class BasicExchangeQueue {
 public:
  /// `capacity` bounds the number of buffered batches; `num_producers` is
  /// the number of workers that will each call ProducerDone() exactly once.
  BasicExchangeQueue(size_t capacity, size_t num_producers)
      : capacity_(capacity == 0 ? 1 : capacity),
        producers_remaining_(num_producers) {}

  /// Enqueues a batch, blocking while the queue is full. Returns false if
  /// the exchange was cancelled (the producer should stop producing).
  bool Push(BatchT batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_cv_.wait(lock, [this] {
      return cancelled_ || queue_.size() < capacity_;
    });
    if (cancelled_) return false;
    queue_.push_back(std::move(batch));
    lock.unlock();
    not_empty_cv_.notify_one();
    return true;
  }

  /// Marks one producer finished. Once every producer is done and the
  /// buffer drains, Pop() reports end-of-stream.
  void ProducerDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (producers_remaining_ > 0) --producers_remaining_;
    }
    not_empty_cv_.notify_all();
  }

  /// Dequeues the next batch (consumer side). Returns nullopt when every
  /// producer has finished and the buffer is empty, or when cancelled —
  /// the caller distinguishes the two through its QueryCancelState.
  std::optional<BatchT> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_cv_.wait(lock, [this] {
      return cancelled_ || !queue_.empty() || producers_remaining_ == 0;
    });
    if (!queue_.empty() && !cancelled_) {
      BatchT batch = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      not_full_cv_.notify_one();
      return batch;
    }
    return std::nullopt;
  }

  /// Unblocks every producer and consumer; buffered batches are dropped.
  /// Called on error (via QueryCancelState) or when the consumer abandons
  /// the stream before draining it.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
      queue_.clear();
    }
    not_full_cv_.notify_all();
    not_empty_cv_.notify_all();
  }

 private:
  const size_t capacity_;
  std::deque<BatchT> queue_;
  size_t producers_remaining_;
  bool cancelled_ = false;
  std::mutex mu_;
  std::condition_variable not_empty_cv_;
  std::condition_variable not_full_cv_;
};

/// The row exchange (dense RowBatches) and the columnar exchange, which
/// ships (columns, selection) pairs without touching cell data.
using ExchangeQueue = BasicExchangeQueue<RowBatch>;
using ColumnExchangeQueue = BasicExchangeQueue<ColumnBatch>;

/// The gather operator: wraps a parallel fragment — its cancel state,
/// exchange queue, and worker fleet — as an ordinary RowBatchPuller.
/// `start` is invoked on the first pull (lazy, matching the pipeline
/// discipline that an enumeration never pulled costs nothing — no threads
/// are spawned before then) and must return the TaskScheduler it submitted
/// exactly `num_producers` worker tasks to, or nullptr if it cancelled the
/// fragment instead. If the puller is destroyed before end-of-stream, the
/// fragment is cancelled and its workers joined, so no worker outlives the
/// pipeline.
RowBatchPuller MakeGatherPuller(
    std::shared_ptr<QueryCancelState> cancel,
    std::shared_ptr<ExchangeQueue> queue,
    std::function<std::shared_ptr<TaskScheduler>()> start);

/// Columnar gather: identical protocol over a ColumnExchangeQueue. The
/// popped batches' surviving rows are boxed into dense RowBatches here, on
/// the consumer thread — the one row materialization point of a columnar
/// parallel fragment.
RowBatchPuller MakeColumnarGatherPuller(
    std::shared_ptr<QueryCancelState> cancel,
    std::shared_ptr<ColumnExchangeQueue> queue,
    std::function<std::shared_ptr<TaskScheduler>()> start);

}  // namespace calcite

#endif  // CALCITE_EXEC_PARALLEL_EXCHANGE_H_
