#include "exec/parallel/parallel_exec.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adapters/enumerable/aggregates.h"
#include "adapters/enumerable/columnar_agg.h"
#include "adapters/enumerable/enumerable_rels.h"
#include "exec/arena.h"
#include "exec/column_batch.h"
#include "exec/parallel/exchange.h"
#include "exec/parallel/morsel.h"
#include "exec/parallel/task_scheduler.h"
#include "exec/simd.h"
#include "rel/core.h"
#include "rex/rex_columnar.h"
#include "rex/rex_fuse.h"
#include "rex/rex_interpreter.h"

namespace calcite {

namespace {

// ---------------------------------------------------------------------------
// Fragment recognition
// ---------------------------------------------------------------------------

/// One transform stage of a morsel pipeline: exactly one of {filter,
/// project} is set. Stages reference expression trees owned by the pinned
/// plan nodes, so a FragmentSource keeps those nodes alive.
struct PipelineStage {
  RexNodePtr filter;
  const std::vector<RexNodePtr>* project = nullptr;
};

/// A recognized morsel-parallelizable fragment: a (Filter|Project)* chain
/// over a TableScan or Values leaf, plus the row storage morsels index
/// into. Shared read-only by every worker of the fragment.
struct FragmentSource {
  std::vector<RelNodePtr> pinned;  // fragment nodes (keep exprs/tuples alive)
  TablePtr table;                  // set when the leaf is a table scan
  const std::vector<Row>* rows = nullptr;        // stable leaf storage
  std::shared_ptr<std::vector<Row>> owned_rows;  // fallback materialization
  std::vector<PipelineStage> stages;             // applied bottom-up
  /// Columnar decomposition of the leaf, set once on the consumer thread
  /// before workers start (see PrepareColumnar). When set, workers slice
  /// zero-copy ColumnBatches out of it instead of copying rows.
  TableColumnsPtr columns;

  /// Ensures `rows` points at the leaf data. Tables without stable row
  /// storage are materialized through Scan() exactly once, on the consumer
  /// thread, before any worker starts.
  Status Materialize() {
    if (rows != nullptr) return Status::OK();
    auto scanned = table->Scan();
    if (!scanned.ok()) return scanned.status();
    owned_rows =
        std::make_shared<std::vector<Row>>(std::move(scanned).value());
    rows = owned_rows.get();
    return Status::OK();
  }

  /// Fetches the leaf table's cached columnar decomposition (building it if
  /// this is its first use), when the fragment is eligible for the columnar
  /// path. Must run on the consumer thread, before any worker starts —
  /// workers then share the immutable snapshot read-only.
  void PrepareColumnar(const ExecOptions& opts) {
    if (!opts.enable_columnar || table == nullptr) return;
    TypeFactory type_factory;
    columns = table->MaterializedColumns(type_factory);
  }
};

/// Matches the fragment shape the morsel executor can run: a chain of
/// enumerable Filter/Project nodes over an enumerable TableScan or Values
/// leaf. Converters (EnumerableInterpreter) and every other operator stop
/// the chain — fragments never cross a calling-convention boundary.
bool RecognizeMorselPipeline(const RelNode& root, FragmentSource* out) {
  const RelNode* cur = &root;
  std::vector<PipelineStage> top_down;
  for (;;) {
    if (cur->convention() != Convention::Enumerable()) return false;
    if (const auto* filter = dynamic_cast<const Filter*>(cur)) {
      PipelineStage stage;
      stage.filter = filter->condition();
      top_down.push_back(std::move(stage));
      out->pinned.push_back(cur->shared_from_this());
      cur = filter->input(0).get();
      continue;
    }
    if (const auto* project = dynamic_cast<const Project*>(cur)) {
      PipelineStage stage;
      stage.project = &project->exprs();
      top_down.push_back(std::move(stage));
      out->pinned.push_back(cur->shared_from_this());
      cur = project->input(0).get();
      continue;
    }
    if (const auto* scan = dynamic_cast<const TableScan*>(cur)) {
      // Streams are time-ordered by contract (Table::IsStream) and morsel
      // workers racing for row ranges would interleave their events, so
      // stream scans always stay serial.
      if (scan->table()->IsStream()) return false;
      out->pinned.push_back(cur->shared_from_this());
      out->table = scan->table();
      out->rows = scan->table()->MaterializedRows();
      break;
    }
    if (const auto* values = dynamic_cast<const Values*>(cur)) {
      out->pinned.push_back(cur->shared_from_this());
      out->rows = &values->tuples();
      break;
    }
    return false;
  }
  out->stages.assign(top_down.rbegin(), top_down.rend());
  return true;
}

/// Runs the fragment's filter/project chain over one batch, using the same
/// selection-aware kernels as the serial pipelines (one implementation of
/// operator semantics, whichever thread runs it). Filters narrow the
/// batch's selection vector instead of compacting; a project consumes the
/// selection (compacting as it writes). The batch is left possibly still
/// carrying a selection — consumers either iterate ActiveRow() or call
/// Compact() once before handing rows on.
Status ApplyStagesSel(const std::vector<PipelineStage>& stages,
                      SelBatch* batch) {
  for (const PipelineStage& stage : stages) {
    if (batch->ActiveCount() == 0) return Status::OK();
    if (stage.filter != nullptr) {
      batch->EnsureSelection();
      CALCITE_RETURN_IF_ERROR(RexInterpreter::NarrowSelection(
          stage.filter, batch->rows, &batch->sel));
    } else {
      CALCITE_RETURN_IF_ERROR(ApplyProjectToSelBatch(*stage.project, batch));
    }
  }
  return Status::OK();
}

/// Worker-local fused view of one pipeline stage: a FusedExpr per filter
/// predicate / projection expression. FusedExpr caches a compiled bytecode
/// program and register scratch and is not thread-safe (same contract as
/// ArenaPool), so every worker builds its own list next to its scratch
/// pool instead of sharing the RexNode-level stages directly.
struct FusedStage {
  std::unique_ptr<FusedExpr> filter;
  std::vector<FusedExpr> project;
};

std::vector<FusedStage> BuildFusedStages(
    const std::vector<PipelineStage>& stages, bool enable_fusion) {
  std::vector<FusedStage> out;
  out.reserve(stages.size());
  for (const PipelineStage& stage : stages) {
    FusedStage fused;
    if (stage.filter != nullptr) {
      fused.filter = std::make_unique<FusedExpr>(stage.filter, enable_fusion);
    } else {
      fused.project.reserve(stage.project->size());
      for (const RexNodePtr& expr : *stage.project) {
        fused.project.emplace_back(expr, enable_fusion);
      }
    }
    out.push_back(std::move(fused));
  }
  return out;
}

/// Columnar counterpart of ApplyStagesSel, one implementation of stage
/// semantics on raw columns whichever worker thread runs it: filter stages
/// narrow the batch's selection via the columnar kernels (fused bytecode
/// where the predicate lowers), project stages rebuild the batch densely
/// (selection consumed on write). `scratch_pool` recycles filter-scratch
/// arenas; it and `stages` are worker-local, so acquire/release and the
/// fused interpreter state stay on one thread. Project outputs get a
/// *fresh* arena each time: those batches cross the exchange to the
/// consumer thread, and an arena must never be recycled by one thread
/// while another still reads it.
Status ApplyStagesColumnar(std::vector<FusedStage>* stages,
                           ArenaPool* scratch_pool, ColumnBatch* batch) {
  for (FusedStage& stage : *stages) {
    if (batch->ActiveCount() == 0) return Status::OK();
    if (stage.filter != nullptr) {
      if (!batch->has_sel) {
        batch->sel.resize(batch->num_rows);
        for (size_t i = 0; i < batch->num_rows; ++i) {
          batch->sel[i] = static_cast<uint32_t>(i);
        }
        batch->has_sel = true;
      }
      ArenaPtr scratch = scratch_pool->Acquire();
      CALCITE_RETURN_IF_ERROR(
          stage.filter->NarrowSelection(*batch, scratch, &batch->sel));
    } else {
      ColumnBatch out;
      out.arena = std::make_shared<Arena>();
      out.num_rows = batch->ActiveCount();
      out.ShareStorage(*batch);
      for (FusedExpr& expr : stage.project) {
        CALCITE_RETURN_IF_ERROR(expr.AppendEvalColumn(*batch, &out));
      }
      *batch = std::move(out);
    }
  }
  return Status::OK();
}

/// Rows per morsel: small enough that the tail of a scan still spreads
/// across the pool, large enough that the atomic claim amortizes.
size_t PickMorselSize(size_t total_rows, size_t num_threads) {
  size_t target = total_rows / (num_threads * 4);
  return std::min(kDefaultMorselSize, std::max<size_t>(256, target));
}

// ---------------------------------------------------------------------------
// Morsel-parallel scan -> filter -> project pipeline
// ---------------------------------------------------------------------------

/// Worker loop of a pipeline fragment: claim a morsel, slice it into
/// batches, run the stage chain, exchange survivors. Stops at the next
/// batch boundary once the fragment is cancelled.
void RunPipelineWorker(const FragmentSource& src, QueryCancelState* cancel,
                       ExchangeQueue* queue, MorselSource* morsels,
                       size_t batch_size) {
  const std::vector<Row>& rows = *src.rows;
  while (!cancel->cancelled()) {
    auto morsel = morsels->Next();
    if (!morsel.has_value()) break;
    size_t pos = morsel->begin;
    while (pos < morsel->end) {
      if (cancel->cancelled()) return;
      size_t n = std::min(batch_size, morsel->end - pos);
      SelBatch batch;
      batch.rows.assign(rows.begin() + static_cast<ptrdiff_t>(pos),
                        rows.begin() + static_cast<ptrdiff_t>(pos + n));
      pos += n;
      Status status = ApplyStagesSel(src.stages, &batch);
      if (!status.ok()) {
        cancel->Cancel(std::move(status));
        queue->Cancel();
        return;
      }
      if (batch.ActiveCount() == 0) continue;
      // The exchange carries dense RowBatches: compact once, at the very
      // end of the stage chain (a trailing project already did).
      batch.Compact();
      if (!queue->Push(std::move(batch.rows))) return;
    }
  }
}

/// Paged worker loop for out-of-core leaves (tables that expose a scan-unit
/// surface instead of MaterializedRows): claim one scan unit — for a disk
/// table, a run of heap pages — per morsel, materialize just that unit into
/// a worker-local buffer, run the stage chain, exchange survivors. Memory
/// stays bounded by units-in-flight (one per worker), never the whole
/// table.
void RunPagedPipelineWorker(const FragmentSource& src, QueryCancelState* cancel,
                            ExchangeQueue* queue, MorselSource* morsels,
                            size_t batch_size) {
  while (!cancel->cancelled()) {
    auto morsel = morsels->Next();
    if (!morsel.has_value()) break;
    // One unit-ranged OpenScan per morsel: the table streams its own pages
    // (for a disk table, page-run at a time through the buffer pool), so
    // the worker never materializes more than a page run.
    ScanSpec spec;
    spec.batch_size = batch_size;
    spec.unit_begin = morsel->begin;
    spec.unit_end = morsel->end;
    auto scan = src.table->OpenScan(spec);
    if (!scan.ok()) {
      cancel->Cancel(scan.status());
      queue->Cancel();
      return;
    }
    RowBatchPuller pull = std::move(scan).value();
    for (;;) {
      if (cancel->cancelled()) return;
      auto pulled = pull();
      if (!pulled.ok()) {
        cancel->Cancel(pulled.status());
        queue->Cancel();
        return;
      }
      if (pulled.value().empty()) break;
      SelBatch batch;
      batch.rows = std::move(pulled).value();
      Status status = ApplyStagesSel(src.stages, &batch);
      if (!status.ok()) {
        cancel->Cancel(std::move(status));
        queue->Cancel();
        return;
      }
      if (batch.ActiveCount() == 0) continue;
      batch.Compact();
      if (!queue->Push(std::move(batch.rows))) return;
    }
  }
}

/// Columnar worker loop: claim a morsel, slice zero-copy column views out
/// of the table's decomposition, run the stage chain on raw columns, ship
/// the surviving (columns, selection) pairs through the exchange without
/// materializing a single row.
void RunColumnarPipelineWorker(const std::shared_ptr<FragmentSource>& src,
                               QueryCancelState* cancel,
                               ColumnExchangeQueue* queue,
                               MorselSource* morsels, size_t batch_size,
                               bool enable_fusion) {
  ArenaPool scratch_pool;
  std::vector<FusedStage> stages = BuildFusedStages(src->stages, enable_fusion);
  while (!cancel->cancelled()) {
    auto morsel = morsels->Next();
    if (!morsel.has_value()) break;
    size_t pos = morsel->begin;
    while (pos < morsel->end) {
      if (cancel->cancelled()) return;
      size_t n = std::min(batch_size, morsel->end - pos);
      ColumnBatch batch = SliceTableColumns(src->columns, pos, n, src);
      pos += n;
      Status status = ApplyStagesColumnar(&stages, &scratch_pool, &batch);
      if (!status.ok()) {
        cancel->Cancel(std::move(status));
        queue->Cancel();
        return;
      }
      if (batch.ActiveCount() == 0) continue;
      if (!queue->Push(std::move(batch))) return;
    }
  }
}

Result<RowBatchPuller> ExecutePipelineParallel(FragmentSource fragment,
                                               const ExecOptions& opts) {
  const size_t threads = opts.num_threads;
  const size_t batch_size = opts.batch_size;
  auto src = std::make_shared<FragmentSource>(std::move(fragment));
  auto cancel = std::make_shared<QueryCancelState>();

  src->PrepareColumnar(opts);
  if (src->columns != nullptr) {
    const bool enable_fusion = opts.enable_fusion;
    auto queue = std::make_shared<ColumnExchangeQueue>(threads * 2, threads);
    auto start = [src, cancel, queue, threads, batch_size,
                  enable_fusion]() -> std::shared_ptr<TaskScheduler> {
      auto morsels = std::make_shared<MorselSource>(
          src->columns->num_rows,
          PickMorselSize(src->columns->num_rows, threads));
      auto scheduler = std::make_shared<TaskScheduler>(threads);
      for (size_t t = 0; t < threads; ++t) {
        scheduler->Submit(
            [src, cancel, queue, morsels, batch_size, enable_fusion]() {
              RunColumnarPipelineWorker(src, cancel.get(), queue.get(),
                                        morsels.get(), batch_size,
                                        enable_fusion);
              queue->ProducerDone();
            });
      }
      return scheduler;
    };
    return MakeColumnarGatherPuller(std::move(cancel), std::move(queue),
                                    std::move(start));
  }

  // Out-of-core leaves: no stable row storage, but a paged scan surface.
  // Workers claim whole scan units as morsels instead of row ranges of a
  // materialized copy that would defeat the point of out-of-core storage.
  const size_t scan_units =
      (src->rows == nullptr && src->table != nullptr)
          ? src->table->ScanUnitCount()
          : 0;
  if (scan_units > 0) {
    auto queue = std::make_shared<ExchangeQueue>(threads * 2, threads);
    auto start = [src, cancel, queue, threads, batch_size,
                  scan_units]() -> std::shared_ptr<TaskScheduler> {
      auto morsels =
          std::make_shared<MorselSource>(scan_units, /*morsel_size=*/1);
      auto scheduler = std::make_shared<TaskScheduler>(threads);
      for (size_t t = 0; t < threads; ++t) {
        scheduler->Submit([src, cancel, queue, morsels, batch_size]() {
          RunPagedPipelineWorker(*src, cancel.get(), queue.get(),
                                 morsels.get(), batch_size);
          queue->ProducerDone();
        });
      }
      return scheduler;
    };
    return MakeGatherPuller(std::move(cancel), std::move(queue),
                            std::move(start));
  }

  auto queue = std::make_shared<ExchangeQueue>(threads * 2, threads);
  auto start = [src, cancel, queue, threads,
                batch_size]() -> std::shared_ptr<TaskScheduler> {
    Status status = src->Materialize();
    if (!status.ok()) {
      cancel->Cancel(std::move(status));
      queue->Cancel();
      return nullptr;
    }
    auto morsels = std::make_shared<MorselSource>(
        src->rows->size(), PickMorselSize(src->rows->size(), threads));
    auto scheduler = std::make_shared<TaskScheduler>(threads);
    for (size_t t = 0; t < threads; ++t) {
      scheduler->Submit([src, cancel, queue, morsels, batch_size]() {
        RunPipelineWorker(*src, cancel.get(), queue.get(), morsels.get(),
                          batch_size);
        queue->ProducerDone();
      });
    }
    return scheduler;
  };
  return MakeGatherPuller(std::move(cancel), std::move(queue),
                          std::move(start));
}

// ---------------------------------------------------------------------------
// Partitioned hash aggregate (thread-local build + merge)
// ---------------------------------------------------------------------------

/// Thread-local aggregation state: one group table per worker, merged by
/// the consumer once every morsel has been aggregated. Group output order
/// is first-seen order across the merge — deterministic for one thread,
/// unspecified across threads (workers race for morsels).
struct LocalAggState {
  std::unordered_map<Row, size_t, RowHash> index;
  std::vector<Row> keys;
  std::vector<std::vector<AggAccumulator>> accs;
};

Status FeedLocalAgg(const std::vector<int>& group_keys,
                    const std::vector<AggregateCall>& agg_calls,
                    const SelBatch& batch, LocalAggState* local) {
  auto new_group = [&](Row key) {
    local->keys.push_back(std::move(key));
    std::vector<AggAccumulator> accs;
    accs.reserve(agg_calls.size());
    for (const AggregateCall& call : agg_calls) accs.emplace_back(call);
    local->accs.push_back(std::move(accs));
  };
  if (group_keys.empty()) {
    // Global aggregate: one accumulator set per worker, batch-fed through
    // the selection (an upstream filter stage never compacted).
    if (local->accs.empty()) new_group(Row{});
    const SelectionVector* sel = batch.has_sel ? &batch.sel : nullptr;
    for (AggAccumulator& acc : local->accs[0]) {
      CALCITE_RETURN_IF_ERROR(acc.AddBatchSel(batch.rows, sel));
    }
    return Status::OK();
  }
  Row scratch_key;
  scratch_key.reserve(group_keys.size());
  const size_t active = batch.ActiveCount();
  for (size_t i = 0; i < active; ++i) {
    const Row& row = batch.ActiveRow(i);
    scratch_key.clear();
    for (int k : group_keys) {
      scratch_key.push_back(row[static_cast<size_t>(k)]);
    }
    size_t group;
    auto it = local->index.find(scratch_key);
    if (it != local->index.end()) {
      group = it->second;
    } else {
      group = local->accs.size();
      local->index.emplace(scratch_key, group);
      new_group(scratch_key);
    }
    for (AggAccumulator& acc : local->accs[group]) {
      CALCITE_RETURN_IF_ERROR(acc.Add(row));
    }
  }
  return Status::OK();
}

void RunAggWorker(const FragmentSource& src,
                  const std::vector<int>& group_keys,
                  const std::vector<AggregateCall>& agg_calls,
                  QueryCancelState* cancel, MorselSource* morsels,
                  size_t batch_size, LocalAggState* local) {
  const std::vector<Row>& rows = *src.rows;
  while (!cancel->cancelled()) {
    auto morsel = morsels->Next();
    if (!morsel.has_value()) break;
    size_t pos = morsel->begin;
    while (pos < morsel->end) {
      if (cancel->cancelled()) return;
      size_t n = std::min(batch_size, morsel->end - pos);
      SelBatch batch;
      batch.rows.assign(rows.begin() + static_cast<ptrdiff_t>(pos),
                        rows.begin() + static_cast<ptrdiff_t>(pos + n));
      pos += n;
      Status status = ApplyStagesSel(src.stages, &batch);
      if (status.ok() && batch.ActiveCount() > 0) {
        status = FeedLocalAgg(group_keys, agg_calls, batch, local);
      }
      if (!status.ok()) {
        cancel->Cancel(std::move(status));
        return;
      }
    }
  }
}

/// Columnar aggregation worker: morsels are sliced as zero-copy column
/// views, run through the columnar stage chain, and fed to a worker-local
/// ColumnarAggBuilder via the typed accumulator adders — no cell is boxed
/// unless it opens a new group.
void RunColumnarAggWorker(const std::shared_ptr<FragmentSource>& src,
                          QueryCancelState* cancel, MorselSource* morsels,
                          size_t batch_size, bool enable_fusion,
                          ColumnarAggBuilder* local) {
  ArenaPool scratch_pool;
  std::vector<FusedStage> stages = BuildFusedStages(src->stages, enable_fusion);
  while (!cancel->cancelled()) {
    auto morsel = morsels->Next();
    if (!morsel.has_value()) break;
    size_t pos = morsel->begin;
    while (pos < morsel->end) {
      if (cancel->cancelled()) return;
      size_t n = std::min(batch_size, morsel->end - pos);
      ColumnBatch batch = SliceTableColumns(src->columns, pos, n, src);
      pos += n;
      Status status = ApplyStagesColumnar(&stages, &scratch_pool, &batch);
      if (status.ok() && batch.ActiveCount() > 0) {
        status = local->Feed(batch);
      }
      if (!status.ok()) {
        cancel->Cancel(std::move(status));
        return;
      }
    }
  }
}

struct ParallelAggState {
  bool built = false;
  /// Set on the columnar path: the merged builder emits directly.
  std::unique_ptr<ColumnarAggBuilder> merged;
  std::vector<Row> out_rows;
  size_t pos = 0;
};

Result<RowBatchPuller> ExecuteAggregateParallel(const Aggregate& agg,
                                                FragmentSource fragment,
                                                const ExecOptions& opts) {
  const size_t threads = opts.num_threads;
  const size_t batch_size = opts.batch_size;
  auto src = std::make_shared<FragmentSource>(std::move(fragment));
  RelNodePtr self = agg.shared_from_this();  // pins group_keys_/agg_calls_
  const Aggregate* node = &agg;
  auto state = std::make_shared<ParallelAggState>();

  ExecOptions opts_copy = opts;
  return RowBatchPuller([src, self, node, state, threads, batch_size,
                         opts_copy]() -> Result<RowBatch> {
    const std::vector<int>& group_keys = node->group_keys();
    const std::vector<AggregateCall>& agg_calls = node->agg_calls();
    if (!state->built && state->merged == nullptr) {
      // Columnar build phase: worker-local ColumnarAggBuilders over column
      // morsels, merged serially once the workers are joined.
      if (auto merged = ColumnarAggBuilder::TryCreate(group_keys, agg_calls)) {
        src->PrepareColumnar(opts_copy);
        if (src->columns != nullptr) {
          auto cancel = std::make_shared<QueryCancelState>();
          std::vector<std::unique_ptr<ColumnarAggBuilder>> locals(threads);
          for (size_t t = 0; t < threads; ++t) {
            locals[t] = ColumnarAggBuilder::TryCreate(group_keys, agg_calls);
          }
          {
            MorselSource morsels(
                src->columns->num_rows,
                PickMorselSize(src->columns->num_rows, threads));
            TaskScheduler scheduler(threads);
            const bool enable_fusion = opts_copy.enable_fusion;
            for (size_t t = 0; t < threads; ++t) {
              ColumnarAggBuilder* local = locals[t].get();
              scheduler.Submit([src, cancel, &morsels, batch_size,
                                enable_fusion, local]() {
                RunColumnarAggWorker(src, cancel.get(), &morsels, batch_size,
                                     enable_fusion, local);
              });
            }
            scheduler.WaitIdle();
          }
          CALCITE_RETURN_IF_ERROR(cancel->status());
          for (const auto& local : locals) {
            CALCITE_RETURN_IF_ERROR(merged->MergeFrom(*local));
          }
          state->merged = std::move(merged);
          state->built = true;
        }
      }
    }
    if (state->merged != nullptr) {
      return state->merged->EmitBatch(batch_size);
    }
    if (!state->built) {
      // Build phase: thread-local aggregation over morsels, then a serial
      // merge. The scheduler lives only for this phase; its destructor
      // joins the workers, so locals are safe to read afterwards.
      CALCITE_RETURN_IF_ERROR(src->Materialize());
      auto cancel = std::make_shared<QueryCancelState>();
      std::vector<LocalAggState> locals(threads);
      {
        MorselSource morsels(src->rows->size(),
                             PickMorselSize(src->rows->size(), threads));
        TaskScheduler scheduler(threads);
        for (size_t t = 0; t < threads; ++t) {
          LocalAggState* local = &locals[t];
          scheduler.Submit([src, &group_keys, &agg_calls, cancel, &morsels,
                            batch_size, local]() {
            RunAggWorker(*src, group_keys, agg_calls, cancel.get(), &morsels,
                         batch_size, local);
          });
        }
        scheduler.WaitIdle();
      }
      CALCITE_RETURN_IF_ERROR(cancel->status());

      // Merge: accumulate worker-local groups into one table, combining
      // accumulators (partial-state merge, not re-aggregation).
      std::unordered_map<Row, size_t, RowHash> merged_index;
      std::vector<Row> merged_keys;
      std::vector<std::vector<AggAccumulator>> merged_accs;
      for (LocalAggState& local : locals) {
        for (size_t g = 0; g < local.keys.size(); ++g) {
          auto it = merged_index.find(local.keys[g]);
          if (it == merged_index.end()) {
            merged_index.emplace(local.keys[g], merged_keys.size());
            merged_keys.push_back(std::move(local.keys[g]));
            merged_accs.push_back(std::move(local.accs[g]));
          } else {
            std::vector<AggAccumulator>& into = merged_accs[it->second];
            for (size_t a = 0; a < into.size(); ++a) {
              CALCITE_RETURN_IF_ERROR(into[a].MergeFrom(local.accs[g][a]));
            }
          }
        }
      }
      // Global aggregate over empty input still produces one row.
      if (group_keys.empty() && merged_keys.empty()) {
        merged_keys.push_back(Row{});
        std::vector<AggAccumulator> accs;
        for (const AggregateCall& call : agg_calls) accs.emplace_back(call);
        merged_accs.push_back(std::move(accs));
      }
      state->out_rows.reserve(merged_keys.size());
      for (size_t g = 0; g < merged_keys.size(); ++g) {
        Row result = std::move(merged_keys[g]);
        result.reserve(result.size() + agg_calls.size());
        for (const AggAccumulator& acc : merged_accs[g]) {
          result.push_back(acc.Finish());
        }
        state->out_rows.push_back(std::move(result));
      }
      state->built = true;
    }
    RowBatch out;
    size_t n = std::min(batch_size, state->out_rows.size() - state->pos);
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(state->out_rows[state->pos + i]));
    }
    state->pos += n;
    return out;
  });
}

// ---------------------------------------------------------------------------
// Partitioned hash join
// ---------------------------------------------------------------------------

/// Hashes a block of extracted join keys at once (HashRowKey64 semantics).
/// All-single-int64 blocks gather the raw keys into a scratch column and
/// hash in SIMD lanes; everything else hashes per row. An empty Row is the
/// "no key" sentinel (a real key is never empty) — its hash slot is written
/// arbitrarily and must not be read.
void HashKeyBlock(const std::vector<Row>& keys, std::vector<uint64_t>* out,
                  std::vector<int64_t>* i64_scratch) {
  const size_t n = keys.size();
  out->resize(n);
  bool single_int = n >= 8;
  if (single_int) {
    for (const Row& k : keys) {
      if (k.empty()) continue;
      if (k.size() != 1 || !k[0].is_int()) {
        single_int = false;
        break;
      }
    }
  }
  if (single_int) {
    i64_scratch->resize(n);
    for (size_t j = 0; j < n; ++j) {
      (*i64_scratch)[j] = keys[j].empty() ? 0 : keys[j][0].AsInt();
    }
    simd::HashI64(i64_scratch->data(), n, out->data());
    return;
  }
  for (size_t j = 0; j < n; ++j) {
    if (!keys[j].empty()) (*out)[j] = HashRowKey64(keys[j]);
  }
}

/// One partition of the build-side table: build entries in insertion order
/// plus a hash index over them. The index is keyed by the full 64-bit key
/// hash (precomputed in blocks on both build and probe side); probes verify
/// candidates with Row equality, so the hash only routes.
struct BuildPartition {
  std::vector<std::pair<Row, size_t>> entries;  // (key, build row index)
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
};

/// Shared read-only state of a parallel join probe: the drained build side,
/// the per-partition hash tables (each written by exactly one build task,
/// read by every probe worker), and the matched flags outer joins need.
struct ParallelJoinShared {
  FragmentSource probe;
  RelNodePtr self;        // pins condition / row types
  RelNodePtr build_node;  // right input, drained serially
  std::vector<std::pair<int, int>> keys;
  std::vector<RexNodePtr> remaining;
  JoinType join_type;
  size_t left_width = 0;
  size_t right_width = 0;
  size_t partitions = 0;
  std::vector<Row> right_data;
  std::vector<BuildPartition> tables;
  /// Matched flags are racy-by-design across probe workers: only ever set
  /// to true, read after the workers have been joined.
  std::unique_ptr<std::atomic<bool>[]> right_matched;
};

/// Drains the build side through its own (possibly itself parallel) batch
/// pipeline and builds the partitioned hash table: one classify pass over
/// morsels of the build rows, then one insert task per partition — no two
/// tasks ever touch the same partition, so the build is lock-free.
Status BuildPartitionedTable(ParallelJoinShared* shared,
                             TaskScheduler* scheduler,
                             const ExecOptions& opts) {
  auto build = shared->build_node->ExecuteBatched(opts);
  if (!build.ok()) return build.status();
  const RowBatchPuller& pull = build.value();
  for (;;) {
    auto batch = pull();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (Row& row : batch.value()) {
      shared->right_data.push_back(std::move(row));
    }
  }

  const size_t threads = opts.num_threads;
  const size_t partitions = shared->partitions;
  // Classify pass: workers claim morsels of the build rows and bucket
  // (key, row index) pairs by key partition, so the insert pass moves the
  // already-built keys instead of recomputing them. NULL keys never match
  // and are skipped — for RIGHT/FULL they surface through the unmatched
  // tail.
  struct KeyedIndex {
    Row key;
    size_t row;
    uint64_t hash;
  };
  std::vector<std::vector<std::vector<KeyedIndex>>> buckets(
      threads, std::vector<std::vector<KeyedIndex>>(partitions));
  {
    MorselSource morsels(shared->right_data.size(),
                         PickMorselSize(shared->right_data.size(), threads));
    for (size_t t = 0; t < threads; ++t) {
      std::vector<std::vector<KeyedIndex>>* mine = &buckets[t];
      ParallelJoinShared* sh = shared;
      scheduler->Submit([sh, mine, &morsels, partitions]() {
        std::vector<Row> keys;
        std::vector<size_t> rows;
        std::vector<uint64_t> hashes;
        std::vector<int64_t> scratch;
        while (auto morsel = morsels.Next()) {
          // Extract the morsel's keys, then hash them in one block.
          keys.clear();
          rows.clear();
          for (size_t i = morsel->begin; i < morsel->end; ++i) {
            auto key = JoinSideKey(sh->right_data[i], sh->keys,
                                   /*left_side=*/false);
            if (!key.has_value()) continue;
            keys.push_back(std::move(*key));
            rows.push_back(i);
          }
          HashKeyBlock(keys, &hashes, &scratch);
          for (size_t j = 0; j < keys.size(); ++j) {
            (*mine)[hashes[j] % partitions].push_back(
                KeyedIndex{std::move(keys[j]), rows[j], hashes[j]});
          }
        }
      });
    }
    scheduler->WaitIdle();
  }
  // Insert pass: partition p is owned by exactly one task. Inserts reuse
  // the hashes the classify pass computed.
  shared->tables.resize(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    ParallelJoinShared* sh = shared;
    std::vector<std::vector<std::vector<KeyedIndex>>>* all = &buckets;
    scheduler->Submit([sh, all, p]() {
      BuildPartition& part = sh->tables[p];
      for (auto& worker_buckets : *all) {
        for (KeyedIndex& entry : worker_buckets[p]) {
          const uint32_t eid = static_cast<uint32_t>(part.entries.size());
          part.index[entry.hash].push_back(eid);
          part.entries.emplace_back(std::move(entry.key), entry.row);
        }
      }
    });
  }
  scheduler->WaitIdle();

  shared->right_matched =
      std::make_unique<std::atomic<bool>[]>(shared->right_data.size());
  for (size_t i = 0; i < shared->right_data.size(); ++i) {
    shared->right_matched[i].store(false, std::memory_order_relaxed);
  }
  return Status::OK();
}

/// Probe worker: stream left morsels through the fragment's filter/project
/// chain, probe the read-only partition tables, emit per the join type.
void RunProbeWorker(const ParallelJoinShared& shared, QueryCancelState* cancel,
                    ExchangeQueue* queue, MorselSource* morsels,
                    size_t batch_size) {
  const std::vector<Row>& rows = *shared.probe.rows;
  RowBatch out;
  std::vector<Row> key_scratch;
  std::vector<uint64_t> hash_scratch;
  std::vector<int64_t> i64_scratch;
  // Hands accumulated output to the exchange in <= batch_size chunks.
  auto flush = [&]() -> bool {
    size_t pos = 0;
    while (pos < out.size()) {
      size_t n = std::min(batch_size, out.size() - pos);
      auto first = out.begin() + static_cast<ptrdiff_t>(pos);
      RowBatch chunk(std::make_move_iterator(first),
                     std::make_move_iterator(first + static_cast<ptrdiff_t>(n)));
      pos += n;
      if (!queue->Push(std::move(chunk))) return false;
    }
    out.clear();
    return true;
  };
  while (!cancel->cancelled()) {
    auto morsel = morsels->Next();
    if (!morsel.has_value()) break;
    size_t pos = morsel->begin;
    while (pos < morsel->end) {
      if (cancel->cancelled()) return;
      size_t n = std::min(batch_size, morsel->end - pos);
      SelBatch batch;
      batch.rows.assign(rows.begin() + static_cast<ptrdiff_t>(pos),
                        rows.begin() + static_cast<ptrdiff_t>(pos + n));
      pos += n;
      Status status = ApplyStagesSel(shared.probe.stages, &batch);
      if (!status.ok()) {
        cancel->Cancel(std::move(status));
        queue->Cancel();
        return;
      }
      // Probe only the live rows — the selection an upstream filter stage
      // left behind is consumed here, with no compaction in between.
      const size_t active = batch.ActiveCount();
      // Extract and hash every live key in one block before probing (an
      // empty Row marks a NULL-keyed row that can never match).
      key_scratch.clear();
      key_scratch.reserve(active);
      for (size_t k = 0; k < active; ++k) {
        auto key = JoinSideKey(batch.ActiveRow(k), shared.keys,
                               /*left_side=*/true);
        key_scratch.push_back(key.has_value() ? std::move(*key) : Row());
      }
      HashKeyBlock(key_scratch, &hash_scratch, &i64_scratch);
      for (size_t k = 0; k < active; ++k) {
        Row& lrow = batch.ActiveRow(k);
        const Row& key = key_scratch[k];
        bool matched = false;
        if (!key.empty()) {
          const uint64_t h = hash_scratch[k];
          const BuildPartition& part = shared.tables[h % shared.partitions];
          auto it = part.index.find(h);
          if (it != part.index.end()) {
            for (uint32_t eid : it->second) {
              if (!(part.entries[eid].first == key)) continue;  // collision
              const size_t ri = part.entries[eid].second;
              Row combined = ConcatRows(lrow, shared.right_data[ri]);
              bool pass = true;
              for (const RexNodePtr& pred : shared.remaining) {
                auto result = RexInterpreter::EvalPredicate(pred, combined);
                if (!result.ok()) {
                  cancel->Cancel(result.status());
                  queue->Cancel();
                  return;
                }
                if (!result.value()) {
                  pass = false;
                  break;
                }
              }
              if (!pass) continue;
              matched = true;
              shared.right_matched[ri].store(true, std::memory_order_relaxed);
              if (JoinEmitsCombinedRows(shared.join_type)) {
                out.push_back(std::move(combined));
              }
              if (shared.join_type == JoinType::kSemi) break;
            }
          }
        }
        JoinEmitPerLeftRow(shared.join_type, matched, std::move(lrow),
                           shared.right_width, &out);
      }
      if (!flush()) return;
    }
  }
}

/// Consumer-side tail of a RIGHT/FULL join: emitted after the gather
/// reports end-of-stream, i.e. after every probe worker has been joined
/// (which orders their matched-flag writes before these reads).
struct JoinTailState {
  bool in_tail = false;
  size_t pos = 0;
};

Result<RowBatchPuller> ExecuteHashJoinParallel(
    const Join& join, std::vector<std::pair<int, int>> keys,
    std::vector<RexNodePtr> remaining, FragmentSource probe,
    const ExecOptions& opts) {
  const size_t threads = opts.num_threads;
  const size_t batch_size = opts.batch_size;
  auto shared = std::make_shared<ParallelJoinShared>();
  shared->probe = std::move(probe);
  shared->self = join.shared_from_this();
  shared->build_node = join.input(1);
  shared->keys = std::move(keys);
  shared->remaining = std::move(remaining);
  shared->join_type = join.join_type();
  shared->left_width = join.input(0)->row_type()->fields().size();
  shared->right_width = join.input(1)->row_type()->fields().size();
  shared->partitions = threads;

  auto cancel = std::make_shared<QueryCancelState>();
  auto queue = std::make_shared<ExchangeQueue>(threads * 2, threads);
  ExecOptions opts_copy = opts;
  auto start = [shared, cancel, queue, threads, batch_size,
                opts_copy]() -> std::shared_ptr<TaskScheduler> {
    auto scheduler = std::make_shared<TaskScheduler>(threads);
    Status status = shared->probe.Materialize();
    if (status.ok()) {
      status = BuildPartitionedTable(shared.get(), scheduler.get(), opts_copy);
    }
    if (!status.ok()) {
      cancel->Cancel(std::move(status));
      queue->Cancel();
      return scheduler;  // idle; the gather still joins it
    }
    auto morsels = std::make_shared<MorselSource>(
        shared->probe.rows->size(),
        PickMorselSize(shared->probe.rows->size(), threads));
    for (size_t t = 0; t < threads; ++t) {
      scheduler->Submit([shared, cancel, queue, morsels, batch_size]() {
        RunProbeWorker(*shared, cancel.get(), queue.get(), morsels.get(),
                       batch_size);
        queue->ProducerDone();
      });
    }
    return scheduler;
  };

  RowBatchPuller gather = MakeGatherPuller(cancel, queue, std::move(start));
  auto tail = std::make_shared<JoinTailState>();
  return RowBatchPuller([gather, shared, tail,
                         batch_size]() -> Result<RowBatch> {
    if (!tail->in_tail) {
      auto batch = gather();
      if (!batch.ok()) return batch;
      if (!batch.value().empty()) return batch;
      tail->in_tail = true;
    }
    if (shared->join_type == JoinType::kRight ||
        shared->join_type == JoinType::kFull) {
      RowBatch out;
      while (tail->pos < shared->right_data.size() &&
             out.size() < batch_size) {
        size_t i = tail->pos++;
        if (!shared->right_matched[i].load(std::memory_order_relaxed)) {
          out.push_back(
              PadNullLeft(shared->left_width, shared->right_data[i]));
        }
      }
      if (!out.empty()) return out;
    }
    return RowBatch{};
  });
}

}  // namespace

std::optional<Result<RowBatchPuller>> TryExecuteParallel(
    const RelNode& node, const ExecOptions& raw_opts) {
  ExecOptions opts = raw_opts.Normalized();
  if (opts.num_threads < 2) return std::nullopt;

  if (const auto* agg = dynamic_cast<const Aggregate*>(&node)) {
    FragmentSource src;
    if (!RecognizeMorselPipeline(*agg->input(0), &src)) return std::nullopt;
    return ExecuteAggregateParallel(*agg, std::move(src), opts);
  }
  if (const auto* join = dynamic_cast<const Join*>(&node)) {
    std::vector<std::pair<int, int>> keys;
    std::vector<RexNodePtr> remaining;
    if (!join->AnalyzeEquiKeys(&keys, &remaining)) return std::nullopt;
    FragmentSource src;
    if (!RecognizeMorselPipeline(*join->input(0), &src)) return std::nullopt;
    return ExecuteHashJoinParallel(*join, std::move(keys),
                                   std::move(remaining), std::move(src), opts);
  }
  FragmentSource src;
  if (!RecognizeMorselPipeline(node, &src)) return std::nullopt;
  return ExecutePipelineParallel(std::move(src), opts);
}

}  // namespace calcite
