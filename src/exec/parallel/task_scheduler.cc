#include "exec/parallel/task_scheduler.h"

namespace calcite {

TaskScheduler::TaskScheduler(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TaskScheduler::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void TaskScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void TaskScheduler::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain remaining work even during shutdown: the destructor promises
      // every submitted task runs to completion before joining.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace calcite
