#include "exec/parallel/exchange.h"

namespace calcite {

namespace {

/// Per-enumeration state of a gather puller. The destructor runs when the
/// consumer drops the puller — possibly mid-stream (e.g. under a LIMIT) —
/// so it cancels the exchange first (unblocking workers parked in Push),
/// then releases the start closure (which may hold the only other scheduler
/// reference), and finally the scheduler itself, whose destructor joins the
/// workers.
struct GatherState {
  std::shared_ptr<QueryCancelState> cancel;
  std::shared_ptr<ExchangeQueue> queue;
  std::function<std::shared_ptr<TaskScheduler>()> start;
  std::shared_ptr<TaskScheduler> scheduler;  // set by start() on first pull
  bool started = false;
  bool finished = false;

  ~GatherState() {
    if (started && !finished) {
      cancel->Cancel(Status::OK());  // benign: consumer stopped pulling
      queue->Cancel();
    }
    start = nullptr;    // drop any scheduler reference the closure captured
    scheduler.reset();  // joins the workers
  }
};

}  // namespace

RowBatchPuller MakeGatherPuller(
    std::shared_ptr<QueryCancelState> cancel,
    std::shared_ptr<ExchangeQueue> queue,
    std::function<std::shared_ptr<TaskScheduler>()> start) {
  auto state = std::make_shared<GatherState>();
  state->cancel = std::move(cancel);
  state->queue = std::move(queue);
  state->start = std::move(start);
  return [state]() -> Result<RowBatch> {
    if (state->finished) return RowBatch{};
    if (!state->started) {
      state->started = true;
      state->scheduler = state->start();
      state->start = nullptr;
    }
    auto batch = state->queue->Pop();
    if (batch.has_value() && !batch->empty()) return std::move(*batch);
    // End of stream or cancellation: wait for the workers to wind down so
    // the error (if any) is final, then report it exactly once.
    state->finished = true;
    if (state->scheduler != nullptr) state->scheduler->WaitIdle();
    Status status = state->cancel->status();
    if (!status.ok()) return status;
    return RowBatch{};
  };
}

}  // namespace calcite
