#include "exec/parallel/exchange.h"

namespace calcite {

namespace {

/// Per-enumeration state of a gather puller. The destructor runs when the
/// consumer drops the puller — possibly mid-stream (e.g. under a LIMIT) —
/// so it cancels the exchange first (unblocking workers parked in Push),
/// then releases the start closure (which may hold the only other scheduler
/// reference), and finally the scheduler itself, whose destructor joins the
/// workers.
template <typename BatchT>
struct GatherState {
  std::shared_ptr<QueryCancelState> cancel;
  std::shared_ptr<BasicExchangeQueue<BatchT>> queue;
  std::function<std::shared_ptr<TaskScheduler>()> start;
  std::shared_ptr<TaskScheduler> scheduler;  // set by start() on first pull
  bool started = false;
  bool finished = false;

  ~GatherState() {
    if (started && !finished) {
      cancel->Cancel(Status::OK());  // benign: consumer stopped pulling
      queue->Cancel();
    }
    start = nullptr;    // drop any scheduler reference the closure captured
    scheduler.reset();  // joins the workers
  }
};

/// Shared gather loop; `to_rows` adapts the exchange's batch type to the
/// dense RowBatches of the single-threaded pull protocol.
template <typename BatchT, typename ToRows>
RowBatchPuller MakeGatherPullerImpl(
    std::shared_ptr<QueryCancelState> cancel,
    std::shared_ptr<BasicExchangeQueue<BatchT>> queue,
    std::function<std::shared_ptr<TaskScheduler>()> start, ToRows to_rows) {
  auto state = std::make_shared<GatherState<BatchT>>();
  state->cancel = std::move(cancel);
  state->queue = std::move(queue);
  state->start = std::move(start);
  return [state, to_rows]() -> Result<RowBatch> {
    if (state->finished) return RowBatch{};
    if (!state->started) {
      state->started = true;
      state->scheduler = state->start();
      state->start = nullptr;
    }
    auto batch = state->queue->Pop();
    if (batch.has_value()) {
      RowBatch rows = to_rows(std::move(*batch));
      // Producers never push batches without live rows, so an empty
      // conversion only happens at end-of-stream.
      if (!rows.empty()) return rows;
    }
    // End of stream or cancellation: wait for the workers to wind down so
    // the error (if any) is final, then report it exactly once.
    state->finished = true;
    if (state->scheduler != nullptr) state->scheduler->WaitIdle();
    Status status = state->cancel->status();
    if (!status.ok()) return status;
    return RowBatch{};
  };
}

}  // namespace

RowBatchPuller MakeGatherPuller(
    std::shared_ptr<QueryCancelState> cancel,
    std::shared_ptr<ExchangeQueue> queue,
    std::function<std::shared_ptr<TaskScheduler>()> start) {
  return MakeGatherPullerImpl<RowBatch>(
      std::move(cancel), std::move(queue), std::move(start),
      [](RowBatch batch) { return batch; });
}

RowBatchPuller MakeColumnarGatherPuller(
    std::shared_ptr<QueryCancelState> cancel,
    std::shared_ptr<ColumnExchangeQueue> queue,
    std::function<std::shared_ptr<TaskScheduler>()> start) {
  return MakeGatherPullerImpl<ColumnBatch>(
      std::move(cancel), std::move(queue), std::move(start),
      [](ColumnBatch batch) {
        RowBatch rows;
        ColumnsToRows(batch, &rows);
        return rows;
      });
}

}  // namespace calcite
