#ifndef CALCITE_EXEC_PARALLEL_MORSEL_H_
#define CALCITE_EXEC_PARALLEL_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <optional>

namespace calcite {

/// A morsel: one contiguous row range of a leaf scan, the unit of work a
/// parallel worker claims. Morsel-driven scheduling (after HyPer and Hive
/// LLAP) keeps load balanced without a planner-chosen partitioning: fast
/// workers simply claim more morsels.
struct Morsel {
  size_t begin;
  size_t end;  // exclusive

  size_t size() const { return end - begin; }
};

/// Rows per morsel by default. A morsel spans several batches so the
/// atomic claim is amortized, but stays small relative to a typical table
/// so the tail of a scan still spreads across workers.
inline constexpr size_t kDefaultMorselSize = 4096;

/// Splits the row range [0, total_rows) into morsels that workers claim
/// with a single atomic fetch-add — lock-free and contention-light. Claims
/// never overlap and jointly cover the range exactly; Next() returns
/// nullopt once the range is exhausted.
class MorselSource {
 public:
  MorselSource(size_t total_rows, size_t morsel_size = kDefaultMorselSize)
      : total_rows_(total_rows),
        morsel_size_(morsel_size == 0 ? 1 : morsel_size) {}

  /// Claims the next unclaimed morsel; thread-safe.
  std::optional<Morsel> Next() {
    size_t begin = next_.fetch_add(morsel_size_, std::memory_order_relaxed);
    if (begin >= total_rows_) return std::nullopt;
    return Morsel{begin, std::min(begin + morsel_size_, total_rows_)};
  }

  size_t total_rows() const { return total_rows_; }
  size_t morsel_size() const { return morsel_size_; }

 private:
  const size_t total_rows_;
  const size_t morsel_size_;
  std::atomic<size_t> next_{0};
};

}  // namespace calcite

#endif  // CALCITE_EXEC_PARALLEL_MORSEL_H_
