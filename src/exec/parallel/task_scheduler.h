#ifndef CALCITE_EXEC_PARALLEL_TASK_SCHEDULER_H_
#define CALCITE_EXEC_PARALLEL_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace calcite {

/// Morsel-driven parallel execution runtime (the multi-threaded sibling of
/// the RowBatch pipeline protocol in exec/row_batch.h). A query fragment
/// that parallelizes — a morsel-driven scan pipeline, a partitioned hash
/// aggregate or join — runs its workers as tasks on a TaskScheduler and
/// reports failures through a shared QueryCancelState, which cancels every
/// other worker of the fragment (cancellation-on-error: the first Status
/// wins and is the one surfaced to the query).

/// First-error-wins cancellation state shared by the workers of one
/// parallel query fragment. Workers poll `cancelled()` between morsels and
/// call `Cancel(status)` when they fail; the consumer reads `status()` once
/// all workers have stopped to decide whether the stream ended or aborted.
class QueryCancelState {
 public:
  /// True once any worker failed (or the consumer abandoned the fragment).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Requests cancellation. The first non-OK status recorded is the one
  /// `status()` reports; later calls only keep the flag set.
  void Cancel(Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (status_.ok() && !status.ok()) status_ = std::move(status);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  /// The first recorded error, or OK when cancellation was benign (e.g. the
  /// consumer stopped pulling) or never happened.
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  Status status_;
};

/// A fixed pool of worker threads draining a FIFO work queue. Parallel
/// operators submit one long-running task per desired degree of
/// parallelism (each task is a worker loop claiming morsels until its
/// MorselSource runs dry or its QueryCancelState fires); the scheduler
/// itself stays policy-free. Destruction waits for every submitted task to
/// finish — tasks must therefore observe their fragment's cancellation
/// state rather than run unbounded.
class TaskScheduler {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit TaskScheduler(size_t num_threads);

  /// Completes all submitted tasks, then joins the workers.
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; fallible work reports through
  /// its fragment's QueryCancelState instead.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable wake_cv_;   // workers: work available / shutdown
  std::condition_variable idle_cv_;   // WaitIdle: everything drained
  size_t running_ = 0;
  bool shutdown_ = false;
};

}  // namespace calcite

#endif  // CALCITE_EXEC_PARALLEL_TASK_SCHEDULER_H_
