#ifndef CALCITE_EXEC_PARALLEL_PARALLEL_EXEC_H_
#define CALCITE_EXEC_PARALLEL_PARALLEL_EXEC_H_

#include <optional>

#include "exec/row_batch.h"
#include "rel/rel_node.h"

namespace calcite {

/// Entry point of the morsel-driven parallel executor. Called by the
/// enumerable convention's ExecuteBatched implementations before they build
/// their serial pipeline: when `opts.num_threads > 1` and the plan fragment
/// rooted at `node` has a parallel physical path, returns a RowBatchPuller
/// that runs it on a worker pool and gathers the results back into the
/// single-consumer pull protocol. Returns nullopt when the fragment stays
/// serial — either because num_threads is 1 (the serial path is then
/// byte-identical to the pre-parallel engine) or because the shape is not
/// parallelizable; the caller falls through to its serial pipeline, whose
/// *inputs* may still parallelize recursively.
///
/// Parallel physical paths:
///  - Morsel-driven pipelines: (Filter|Project)* over a TableScan or Values
///    leaf. Workers claim row-range morsels of the leaf atomically, run the
///    whole filter/project chain morsel-at-a-time, and exchange surviving
///    batches to the consumer.
///  - Partitioned hash aggregate: the same pipeline shape under an
///    Aggregate. Workers build thread-local hash-aggregation states over
///    their morsels; the consumer merges them (accumulator merge, not
///    re-aggregation) and emits the merged groups.
///  - Partitioned hash join: an equi-join whose probe (left) side is such a
///    pipeline. The build side is drained once, then partitioned and hashed
///    in parallel (each partition owned by one task — no locks); probe
///    workers stream left morsels against the read-only partition tables.
///
/// Ordering: fragments executed in parallel do not preserve row order —
/// workers race for morsels and the exchange interleaves their output. SQL
/// semantics are unaffected (ORDER BY sorts downstream of the fragment);
/// unordered query output may permute between runs.
///
/// Errors cancel the fragment: the first failing worker records its Status
/// in the fragment's QueryCancelState, every other worker stops at the next
/// morsel or exchange operation, and the gather puller surfaces that first
/// Status to the query.
std::optional<Result<RowBatchPuller>> TryExecuteParallel(
    const RelNode& node, const ExecOptions& opts);

}  // namespace calcite

#endif  // CALCITE_EXEC_PARALLEL_PARALLEL_EXEC_H_
