#include "exec/simd.h"

#include <atomic>

#if CALCITE_SIMD_LEVEL >= 1
#include <immintrin.h>
#endif

namespace calcite {
namespace simd {

namespace {

#if CALCITE_SIMD_LEVEL > 0
std::atomic<bool> g_simd_enabled{true};
#endif

// ---------------------------------------------------------------------------
// Scalar reference implementations (always compiled; the semantic anchor)
// ---------------------------------------------------------------------------

bool CmpPasses(Cmp op, int c) {
  switch (op) {
    case Cmp::kEq:
      return c == 0;
    case Cmp::kNe:
      return c != 0;
    case Cmp::kLt:
      return c < 0;
    case Cmp::kLe:
      return c <= 0;
    case Cmp::kGt:
      return c > 0;
    case Cmp::kGe:
      return c >= 0;
  }
  return false;
}

template <typename T>
void CmpScalar(Cmp op, const T* a, const T* b, size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i] < b[i] ? -1 : (a[i] > b[i] ? 1 : 0);
    out[i] = CmpPasses(op, c) ? 1 : 0;
  }
}

template <typename T>
void CmpLitScalar(Cmp op, const T* a, T lit, size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i] < lit ? -1 : (a[i] > lit ? 1 : 0);
    out[i] = CmpPasses(op, c) ? 1 : 0;
  }
}

template <typename T>
void ArithScalar(Arith op, const T* a, const T* b, size_t n, T* out) {
  switch (op) {
    case Arith::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
      break;
    case Arith::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
      break;
    case Arith::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
      break;
  }
}

template <typename T>
void ArithLitScalar(Arith op, const T* a, T lit, size_t n, T* out) {
  switch (op) {
    case Arith::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] + lit;
      break;
    case Arith::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] - lit;
      break;
    case Arith::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] * lit;
      break;
  }
}

/// Inclusive bounds are NOT(strictly outside) so that for doubles a NaN
/// lane (all orderings false) passes inclusive and fails strict bounds,
/// matching the three-way CmpPasses semantics kernel-for-kernel.
template <typename T>
void InRangeScalar(const T* v, T lo, bool lo_strict, T hi, bool hi_strict,
                   size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const bool above = lo_strict ? v[i] > lo : !(v[i] < lo);
    const bool below = hi_strict ? v[i] < hi : !(v[i] > hi);
    out[i] = (above && below) ? 1 : 0;
  }
}

void OrMasksScalar(const uint8_t* a, const uint8_t* b, size_t n,
                   uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (a[i] | b[i]) ? 1 : 0;
}

void AndMasksScalar(const uint8_t* a, const uint8_t* b, size_t n,
                    uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (a[i] && b[i]) ? 1 : 0;
}

void AndNotMaskScalar(const uint8_t* value, const uint8_t* off, size_t n,
                      uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (value[i] && !off[i]) ? 1 : 0;
}

template <typename T>
void MaskZeroScalar(T* data, const uint8_t* mask, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (mask[i]) data[i] = T{};
  }
}

size_t MaskToSelScalar(const uint8_t* mask, size_t n, uint32_t* out) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    out[c] = static_cast<uint32_t>(i);  // branch-free: overwritten if dropped
    c += mask[i] != 0;
  }
  return c;
}

void HashI64Scalar(const int64_t* v, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = HashI64One(v[i]);
}

// ---------------------------------------------------------------------------
// Vector implementations
// ---------------------------------------------------------------------------

#if CALCITE_SIMD_LEVEL >= 1
/// Combines per-lane less-than / greater-than bit masks into the result bits
/// of a three-way comparison; `all` is the mask of every lane in the block.
/// Eq = neither lt nor gt, so NaN lanes (lt=gt=0 under ordered-quiet
/// predicates) pass kEq/kLe/kGe — the scalar Cmp3 semantics.
inline uint32_t CombineCmpBits(Cmp op, uint32_t lt, uint32_t gt,
                               uint32_t all) {
  switch (op) {
    case Cmp::kEq:
      return all & ~(lt | gt);
    case Cmp::kNe:
      return lt | gt;
    case Cmp::kLt:
      return lt;
    case Cmp::kLe:
      return all & ~gt;
    case Cmp::kGt:
      return gt;
    case Cmp::kGe:
      return all & ~lt;
  }
  return 0;
}

/// Little-endian expansion of a 4-bit lane mask to four 0/1 bytes.
constexpr uint32_t kNibbleBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

inline void StoreNibbleBytes(uint8_t* out, uint32_t bits4) {
  const uint32_t w = kNibbleBytes[bits4 & 0xF];
  std::memcpy(out, &w, sizeof(w));
}
#endif  // CALCITE_SIMD_LEVEL >= 1

#if CALCITE_SIMD_LEVEL >= 2
namespace avx2 {

inline __m256i LoadU(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}
inline void StoreU(void* p, __m256i v) {
  _mm256_storeu_si256(static_cast<__m256i*>(p), v);
}
/// One bit per 64-bit lane.
inline uint32_t Mask4(__m256i m) {
  return static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
}

void CmpI64(Cmp op, const int64_t* a, const int64_t* b, size_t n,
            uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = LoadU(a + i);
    const __m256i vb = LoadU(b + i);
    const uint32_t lt = Mask4(_mm256_cmpgt_epi64(vb, va));
    const uint32_t gt = Mask4(_mm256_cmpgt_epi64(va, vb));
    StoreNibbleBytes(out + i, CombineCmpBits(op, lt, gt, 0xF));
  }
  CmpScalar(op, a + i, b + i, n - i, out + i);
}

void CmpI64Lit(Cmp op, const int64_t* a, int64_t lit, size_t n,
               uint8_t* out) {
  const __m256i vb = _mm256_set1_epi64x(lit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = LoadU(a + i);
    const uint32_t lt = Mask4(_mm256_cmpgt_epi64(vb, va));
    const uint32_t gt = Mask4(_mm256_cmpgt_epi64(va, vb));
    StoreNibbleBytes(out + i, CombineCmpBits(op, lt, gt, 0xF));
  }
  CmpLitScalar(op, a + i, lit, n - i, out + i);
}

void CmpF64(Cmp op, const double* a, const double* b, size_t n,
            uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const uint32_t lt = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_LT_OQ)));
    const uint32_t gt = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_GT_OQ)));
    StoreNibbleBytes(out + i, CombineCmpBits(op, lt, gt, 0xF));
  }
  CmpScalar(op, a + i, b + i, n - i, out + i);
}

void CmpF64Lit(Cmp op, const double* a, double lit, size_t n, uint8_t* out) {
  const __m256d vb = _mm256_set1_pd(lit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const uint32_t lt = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_LT_OQ)));
    const uint32_t gt = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_GT_OQ)));
    StoreNibbleBytes(out + i, CombineCmpBits(op, lt, gt, 0xF));
  }
  CmpLitScalar(op, a + i, lit, n - i, out + i);
}

/// Low 64 bits of a 64x64 multiply, synthesized from 32-bit multiplies
/// (AVX2 has no 64-bit mullo).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i bhi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, bhi), _mm256_mul_epu32(ahi, b));
  return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

void ArithI64(Arith op, const int64_t* a, const int64_t* b, size_t n,
              int64_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = LoadU(a + i);
    const __m256i vb = LoadU(b + i);
    __m256i r;
    switch (op) {
      case Arith::kAdd:
        r = _mm256_add_epi64(va, vb);
        break;
      case Arith::kSub:
        r = _mm256_sub_epi64(va, vb);
        break;
      case Arith::kMul:
        r = Mul64(va, vb);
        break;
    }
    StoreU(out + i, r);
  }
  ArithScalar(op, a + i, b + i, n - i, out + i);
}

void ArithF64(Arith op, const double* a, const double* b, size_t n,
              double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    __m256d r;
    switch (op) {
      case Arith::kAdd:
        r = _mm256_add_pd(va, vb);
        break;
      case Arith::kSub:
        r = _mm256_sub_pd(va, vb);
        break;
      case Arith::kMul:
        r = _mm256_mul_pd(va, vb);
        break;
    }
    _mm256_storeu_pd(out + i, r);
  }
  ArithScalar(op, a + i, b + i, n - i, out + i);
}

void ArithI64Lit(Arith op, const int64_t* a, int64_t lit, size_t n,
                 int64_t* out) {
  const __m256i vb = _mm256_set1_epi64x(lit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = LoadU(a + i);
    __m256i r;
    switch (op) {
      case Arith::kAdd:
        r = _mm256_add_epi64(va, vb);
        break;
      case Arith::kSub:
        r = _mm256_sub_epi64(va, vb);
        break;
      case Arith::kMul:
        r = Mul64(va, vb);
        break;
    }
    StoreU(out + i, r);
  }
  ArithLitScalar(op, a + i, lit, n - i, out + i);
}

void ArithF64Lit(Arith op, const double* a, double lit, size_t n,
                 double* out) {
  const __m256d vb = _mm256_set1_pd(lit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    __m256d r;
    switch (op) {
      case Arith::kAdd:
        r = _mm256_add_pd(va, vb);
        break;
      case Arith::kSub:
        r = _mm256_sub_pd(va, vb);
        break;
      case Arith::kMul:
        r = _mm256_mul_pd(va, vb);
        break;
    }
    _mm256_storeu_pd(out + i, r);
  }
  ArithLitScalar(op, a + i, lit, n - i, out + i);
}

void InRangeI64(const int64_t* v, int64_t lo, bool lo_strict, int64_t hi,
                bool hi_strict, size_t n, uint8_t* out) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = LoadU(v + i);
    const uint32_t above =
        lo_strict ? Mask4(_mm256_cmpgt_epi64(x, vlo))
                  : (0xFu & ~Mask4(_mm256_cmpgt_epi64(vlo, x)));
    const uint32_t below =
        hi_strict ? Mask4(_mm256_cmpgt_epi64(vhi, x))
                  : (0xFu & ~Mask4(_mm256_cmpgt_epi64(x, vhi)));
    StoreNibbleBytes(out + i, above & below);
  }
  InRangeScalar(v + i, lo, lo_strict, hi, hi_strict, n - i, out + i);
}

void InRangeF64(const double* v, double lo, bool lo_strict, double hi,
                bool hi_strict, size_t n, uint8_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    // Ordered-quiet predicates: NaN lanes raise neither gt nor lt bits, so
    // they pass the inclusive forms (~strictly-outside) and fail the strict
    // ones — the InRangeScalar/CombineCmpBits semantics.
    const uint32_t above =
        lo_strict
            ? static_cast<uint32_t>(
                  _mm256_movemask_pd(_mm256_cmp_pd(x, vlo, _CMP_GT_OQ)))
            : (0xFu & ~static_cast<uint32_t>(_mm256_movemask_pd(
                          _mm256_cmp_pd(x, vlo, _CMP_LT_OQ))));
    const uint32_t below =
        hi_strict
            ? static_cast<uint32_t>(
                  _mm256_movemask_pd(_mm256_cmp_pd(x, vhi, _CMP_LT_OQ)))
            : (0xFu & ~static_cast<uint32_t>(_mm256_movemask_pd(
                          _mm256_cmp_pd(x, vhi, _CMP_GT_OQ))));
    StoreNibbleBytes(out + i, above & below);
  }
  InRangeScalar(v + i, lo, lo_strict, hi, hi_strict, n - i, out + i);
}

void OrMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_or_si256(LoadU(a + i), LoadU(b + i));
    const __m256i is_zero = _mm256_cmpeq_epi8(v, zero);
    StoreU(out + i, _mm256_andnot_si256(is_zero, one));
  }
  OrMasksScalar(a + i, b + i, n - i, out + i);
}

void AndMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a_zero = _mm256_cmpeq_epi8(LoadU(a + i), zero);
    const __m256i b_zero = _mm256_cmpeq_epi8(LoadU(b + i), zero);
    const __m256i either_zero = _mm256_or_si256(a_zero, b_zero);
    StoreU(out + i, _mm256_andnot_si256(either_zero, one));
  }
  AndMasksScalar(a + i, b + i, n - i, out + i);
}

void AndNotMask(const uint8_t* value, const uint8_t* off, size_t n,
                uint8_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i value_zero = _mm256_cmpeq_epi8(LoadU(value + i), zero);
    const __m256i off_zero = _mm256_cmpeq_epi8(LoadU(off + i), zero);
    // value nonzero AND off zero.
    const __m256i keep = _mm256_andnot_si256(value_zero, off_zero);
    StoreU(out + i, _mm256_and_si256(keep, one));
  }
  AndNotMaskScalar(value + i, off + i, n - i, out + i);
}

void MaskZeroU8(uint8_t* data, const uint8_t* mask, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i keep = _mm256_cmpeq_epi8(LoadU(mask + i), zero);
    StoreU(data + i, _mm256_and_si256(LoadU(data + i), keep));
  }
  MaskZeroScalar(data + i, mask + i, n - i);
}

/// Widens 4 mask bytes to a per-64-bit-lane keep mask (all-ones where the
/// byte is zero).
inline __m256i KeepLanes4(const uint8_t* mask) {
  uint32_t w;
  std::memcpy(&w, mask, sizeof(w));
  const __m256i m64 = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(w)));
  return _mm256_cmpeq_epi64(m64, _mm256_setzero_si256());
}

void MaskZeroI64(int64_t* data, const uint8_t* mask, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    StoreU(data + i, _mm256_and_si256(LoadU(data + i), KeepLanes4(mask + i)));
  }
  MaskZeroScalar(data + i, mask + i, n - i);
}

void MaskZeroF64(double* data, const uint8_t* mask, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(data + i);
    const __m256d keep = _mm256_castsi256_pd(KeepLanes4(mask + i));
    _mm256_storeu_pd(data + i, _mm256_and_pd(d, keep));
  }
  MaskZeroScalar(data + i, mask + i, n - i);
}

/// Bit pattern -> packed lane indexes, for the table-driven selection refill:
/// idx[m] lists the set bit positions of m, cnt[m] counts them.
struct SelLut {
  uint8_t idx[256][8];
  uint8_t cnt[256];
};

constexpr SelLut MakeSelLut() {
  SelLut t{};
  for (int m = 0; m < 256; ++m) {
    int c = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1 << b)) t.idx[m][c++] = static_cast<uint8_t>(b);
    }
    t.cnt[m] = static_cast<uint8_t>(c);
    for (; c < 8; ++c) t.idx[m][c] = 0;
  }
  return t;
}

constexpr SelLut kSelLut = MakeSelLut();

size_t MaskToSel(const uint8_t* mask, size_t n, uint32_t* out) {
  size_t count = 0;
  size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 32 <= n; i += 32) {
    const __m256i v = LoadU(mask + i);
    // Bit j of m set <=> mask[i + j] != 0.
    const uint32_t m = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    for (int g = 0; g < 4; ++g) {
      const uint32_t byte = (m >> (g * 8)) & 0xFF;
      const __m128i packed = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(kSelLut.idx[byte]));
      __m256i idx = _mm256_cvtepu8_epi32(packed);
      idx = _mm256_add_epi32(idx,
                             _mm256_set1_epi32(static_cast<int>(i + g * 8)));
      // Full 8-lane store; surplus lanes are overwritten by the next group
      // (the out buffer carries kSelSlack entries of slack for the last).
      StoreU(out + count, idx);
      count += kSelLut.cnt[byte];
    }
  }
  for (; i < n; ++i) {
    out[count] = static_cast<uint32_t>(i);
    count += mask[i] != 0;
  }
  return count;
}

inline __m256i Mix64Vec(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

void HashI64(const int64_t* v, size_t n, uint64_t* out) {
  const __m256i hi = _mm256_set1_epi64x(kExactIntBound);
  const __m256i lo = _mm256_set1_epi64x(-kExactIntBound);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = LoadU(v + i);
    // Lanes outside (-2^53, 2^53) must hash via their double image (see
    // HashI64One); such blocks take the scalar path, typical key data never
    // does.
    const __m256i in_range = _mm256_and_si256(_mm256_cmpgt_epi64(hi, x),
                                              _mm256_cmpgt_epi64(x, lo));
    if (_mm256_movemask_epi8(in_range) == -1) {
      StoreU(out + i, Mix64Vec(x));
    } else {
      for (size_t j = i; j < i + 4; ++j) out[j] = HashI64One(v[j]);
    }
  }
  for (; i < n; ++i) out[i] = HashI64One(v[i]);
}

}  // namespace avx2
#endif  // CALCITE_SIMD_LEVEL >= 2

#if CALCITE_SIMD_LEVEL == 1
namespace sse {

/// One bit per 64-bit lane.
inline uint32_t Mask2(__m128i m) {
  return static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(m)));
}

inline void StorePairBytes(uint8_t* out, uint32_t bits2) {
  out[0] = static_cast<uint8_t>(bits2 & 1);
  out[1] = static_cast<uint8_t>((bits2 >> 1) & 1);
}

void CmpI64(Cmp op, const int64_t* a, const int64_t* b, size_t n,
            uint8_t* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const uint32_t lt = Mask2(_mm_cmpgt_epi64(vb, va));
    const uint32_t gt = Mask2(_mm_cmpgt_epi64(va, vb));
    StorePairBytes(out + i, CombineCmpBits(op, lt, gt, 0x3));
  }
  CmpScalar(op, a + i, b + i, n - i, out + i);
}

void CmpF64(Cmp op, const double* a, const double* b, size_t n,
            uint8_t* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d va = _mm_loadu_pd(a + i);
    const __m128d vb = _mm_loadu_pd(b + i);
    const uint32_t lt =
        static_cast<uint32_t>(_mm_movemask_pd(_mm_cmplt_pd(va, vb)));
    const uint32_t gt =
        static_cast<uint32_t>(_mm_movemask_pd(_mm_cmpgt_pd(va, vb)));
    StorePairBytes(out + i, CombineCmpBits(op, lt, gt, 0x3));
  }
  CmpScalar(op, a + i, b + i, n - i, out + i);
}

}  // namespace sse
#endif  // CALCITE_SIMD_LEVEL == 1

}  // namespace

// ---------------------------------------------------------------------------
// Public dispatch
// ---------------------------------------------------------------------------

int CompiledLevel() { return CALCITE_SIMD_LEVEL; }

const char* CompiledLevelName() {
#if CALCITE_SIMD_LEVEL >= 2
  return "avx2";
#elif CALCITE_SIMD_LEVEL == 1
  return "sse4.2";
#else
  return "scalar";
#endif
}

bool Enabled() {
#if CALCITE_SIMD_LEVEL > 0
  return g_simd_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void SetEnabled(bool on) {
#if CALCITE_SIMD_LEVEL > 0
  g_simd_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void CmpI64(Cmp op, const int64_t* a, const int64_t* b, size_t n,
            uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::CmpI64(op, a, b, n, out);
#elif CALCITE_SIMD_LEVEL == 1
  if (Enabled()) return sse::CmpI64(op, a, b, n, out);
#endif
  CmpScalar(op, a, b, n, out);
}

void CmpI64Lit(Cmp op, const int64_t* a, int64_t lit, size_t n,
               uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::CmpI64Lit(op, a, lit, n, out);
#endif
  CmpLitScalar(op, a, lit, n, out);
}

void CmpF64(Cmp op, const double* a, const double* b, size_t n,
            uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::CmpF64(op, a, b, n, out);
#elif CALCITE_SIMD_LEVEL == 1
  if (Enabled()) return sse::CmpF64(op, a, b, n, out);
#endif
  CmpScalar(op, a, b, n, out);
}

void CmpF64Lit(Cmp op, const double* a, double lit, size_t n, uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::CmpF64Lit(op, a, lit, n, out);
#endif
  CmpLitScalar(op, a, lit, n, out);
}

void ArithI64(Arith op, const int64_t* a, const int64_t* b, size_t n,
              int64_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::ArithI64(op, a, b, n, out);
#endif
  ArithScalar(op, a, b, n, out);
}

void ArithF64(Arith op, const double* a, const double* b, size_t n,
              double* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::ArithF64(op, a, b, n, out);
#endif
  ArithScalar(op, a, b, n, out);
}

void ArithI64Lit(Arith op, const int64_t* a, int64_t lit, size_t n,
                 int64_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::ArithI64Lit(op, a, lit, n, out);
#endif
  ArithLitScalar(op, a, lit, n, out);
}

void ArithF64Lit(Arith op, const double* a, double lit, size_t n,
                 double* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::ArithF64Lit(op, a, lit, n, out);
#endif
  ArithLitScalar(op, a, lit, n, out);
}

void I64ToF64(const int64_t* v, size_t n, double* out) {
  // No AVX2 int64->double conversion exists; the plain loop vectorizes as
  // well as the magic-number tricks on current compilers.
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(v[i]);
}

void InRangeI64(const int64_t* v, int64_t lo, bool lo_strict, int64_t hi,
                bool hi_strict, size_t n, uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::InRangeI64(v, lo, lo_strict, hi, hi_strict, n, out);
#endif
  InRangeScalar(v, lo, lo_strict, hi, hi_strict, n, out);
}

void InRangeF64(const double* v, double lo, bool lo_strict, double hi,
                bool hi_strict, size_t n, uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::InRangeF64(v, lo, lo_strict, hi, hi_strict, n, out);
#endif
  InRangeScalar(v, lo, lo_strict, hi, hi_strict, n, out);
}

void OrMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::OrMasks(a, b, n, out);
#endif
  OrMasksScalar(a, b, n, out);
}

void AndMasks(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::AndMasks(a, b, n, out);
#endif
  AndMasksScalar(a, b, n, out);
}

void AndNotMask(const uint8_t* value, const uint8_t* off, size_t n,
                uint8_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::AndNotMask(value, off, n, out);
#endif
  AndNotMaskScalar(value, off, n, out);
}

void MaskZeroU8(uint8_t* data, const uint8_t* mask, size_t n) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::MaskZeroU8(data, mask, n);
#endif
  MaskZeroScalar(data, mask, n);
}

void MaskZeroI64(int64_t* data, const uint8_t* mask, size_t n) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::MaskZeroI64(data, mask, n);
#endif
  MaskZeroScalar(data, mask, n);
}

void MaskZeroF64(double* data, const uint8_t* mask, size_t n) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::MaskZeroF64(data, mask, n);
#endif
  MaskZeroScalar(data, mask, n);
}

size_t MaskToSel(const uint8_t* mask, size_t n, uint32_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::MaskToSel(mask, n, out);
#endif
  return MaskToSelScalar(mask, n, out);
}

size_t CompactSel(const uint8_t* mask, const uint32_t* sel, size_t n,
                  uint32_t* out) {
  size_t c = 0;
  for (size_t k = 0; k < n; ++k) {
    out[c] = sel[k];  // branch-free: overwritten if dropped
    c += mask[k] != 0;
  }
  return c;
}

size_t FilterSelByMask(const uint8_t* mask, const uint32_t* sel, size_t n,
                       uint32_t* out) {
  size_t c = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t idx = sel[k];
    out[c] = idx;  // branch-free: overwritten if dropped
    c += mask[idx] != 0;
  }
  return c;
}

void HashI64(const int64_t* v, size_t n, uint64_t* out) {
#if CALCITE_SIMD_LEVEL >= 2
  if (Enabled()) return avx2::HashI64(v, n, out);
#endif
  HashI64Scalar(v, n, out);
}

void HashF64(const double* v, size_t n, uint64_t* out) {
  // The integral-unification branch keeps this scalar; hoisting the hash out
  // of per-row probes is still the win (one tight pass, no boxing).
  for (size_t i = 0; i < n; ++i) out[i] = HashF64One(v[i]);
}

}  // namespace simd
}  // namespace calcite
