#ifndef CALCITE_EXEC_ROW_BATCH_H_
#define CALCITE_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Vectorized execution runtime (§5, §7.4). The enumerable calling
/// convention originally pulled one Row per call; operators now exchange
/// RowBatch chunks so the per-call dispatch cost (a std::function invocation
/// plus error-wrapping) is amortized over ~1024 rows. `batch_size = 1`
/// degenerates to the old row-at-a-time discipline and must preserve its
/// semantics exactly — the parity test suite enumerates both modes and
/// compares results.

/// A chunk of rows flowing between physical operators.
using RowBatch = std::vector<Row>;

/// Default number of rows per batch. Chosen so a batch of small rows stays
/// cache-resident while still amortizing per-batch dispatch overhead.
inline constexpr size_t kDefaultBatchSize = 1024;

/// Runtime options threaded from the Connection down to the leaf scans.
struct ExecOptions {
  size_t batch_size = kDefaultBatchSize;
  /// Degree of parallelism for the morsel-driven executor
  /// (src/exec/parallel/): eligible plan fragments — scan→filter→project
  /// pipelines, hash aggregates, hash joins — run on this many worker
  /// threads, exchanged back into the single-consumer pull protocol by a
  /// gather operator. 1 (the default) keeps today's fully serial execution
  /// and its exact row ordering; > 1 trades deterministic row order within
  /// unordered fragments for throughput.
  size_t num_threads = 1;

  /// Both knobs clamped to their valid range: a zero batch_size would make
  /// every puller yield the empty batch that means end-of-stream (hanging
  /// or truncating pipelines), and zero worker threads could never pull
  /// anything, so both clamp to 1. Every execution entry point normalizes
  /// its options before building pipelines.
  ExecOptions Normalized() const {
    ExecOptions out = *this;
    if (out.batch_size == 0) out.batch_size = 1;
    if (out.num_threads == 0) out.num_threads = 1;
    return out;
  }
};

/// Pulls the next batch of an operator's output. An empty batch marks the
/// end of the stream; producers never yield empty batches mid-stream (a
/// filter that eliminates a whole input chunk keeps pulling until it has at
/// least one surviving row or its input ends). Errors abort the stream.
using RowBatchPuller = std::function<Result<RowBatch>()>;

/// Indexes of the rows of a batch that satisfy a predicate, ascending.
/// The batch-granularity analogue of a boolean column: filters compact
/// their batch through it without per-row branching in the caller.
using SelectionVector = std::vector<uint32_t>;

/// Wraps already-materialized rows as a batch stream (the bridge used by
/// operators and tables that have not been converted to native batching).
RowBatchPuller ChunkRows(std::vector<Row> rows, size_t batch_size);

/// Batch stream over rows the caller keeps owning (a table's stored data):
/// each pull copies the next slice of `rows` into a fresh batch, so the
/// stored vector is never copied whole. The caller must keep `rows` alive
/// and unchanged while the puller is used — scan operators guarantee this
/// by pinning their TablePtr in the pipeline closure.
RowBatchPuller SliceRows(const std::vector<Row>& rows, size_t batch_size);

/// Materializes a batch stream (the terminal step under the unchanged
/// QueryResult API).
Result<std::vector<Row>> DrainBatches(const RowBatchPuller& puller);

/// Keeps the rows of `batch` selected by `sel`, in order, in place.
void CompactBatch(RowBatch* batch, const SelectionVector& sel);

}  // namespace calcite

#endif  // CALCITE_EXEC_ROW_BATCH_H_
