#ifndef CALCITE_EXEC_ROW_BATCH_H_
#define CALCITE_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Vectorized execution runtime (§5, §7.4). The enumerable calling
/// convention originally pulled one Row per call; operators now exchange
/// RowBatch chunks so the per-call dispatch cost (a std::function invocation
/// plus error-wrapping) is amortized over ~1024 rows. `batch_size = 1`
/// degenerates to the old row-at-a-time discipline and must preserve its
/// semantics exactly — the parity test suite enumerates both modes and
/// compares results.

/// A chunk of rows flowing between physical operators.
using RowBatch = std::vector<Row>;

/// Default number of rows per batch. Chosen so a batch of small rows stays
/// cache-resident while still amortizing per-batch dispatch overhead.
inline constexpr size_t kDefaultBatchSize = 1024;

/// Upper clamp for batch_size. Columnar arena chunks are sized for batches,
/// so a pathological batch_size (e.g. SIZE_MAX from a config typo) must not
/// translate into a single giant allocation attempt; 64Ki rows is far past
/// the point where larger batches stop paying.
inline constexpr size_t kMaxBatchSize = 1u << 16;

/// How a leaf scan picks its physical access path when a table offers more
/// than one (today: DiskTable's B-tree index-range scan vs full heap scan).
///
///  - kAuto: cost-based — after ANALYZE the table compares the estimated
///    selectivity of the pushed key range against the calibrated break-even
///    and routes accordingly; without statistics it falls back to the
///    legacy "index whenever a key range derives" rule.
///  - kForceIndex: index-range scan whenever the pushed predicates bound
///    the key at all (the pre-statistics behavior).
///  - kForceHeap: always the full heap scan.
///
/// Tables with a single access path ignore the hint.
enum class AccessPath { kAuto, kForceIndex, kForceHeap };

/// Runtime options threaded from the Connection down to the leaf scans.
struct ExecOptions {
  size_t batch_size = kDefaultBatchSize;
  /// Degree of parallelism for the morsel-driven executor
  /// (src/exec/parallel/): eligible plan fragments — scan→filter→project
  /// pipelines, hash aggregates, hash joins — run on this many worker
  /// threads, exchanged back into the single-consumer pull protocol by a
  /// gather operator. 1 (the default) keeps today's fully serial execution
  /// and its exact row ordering; > 1 trades deterministic row order within
  /// unordered fragments for throughput.
  size_t num_threads = 1;

  /// When true (the default), eligible serial plan fragments run on the
  /// column-major ColumnBatch path (exec/column_batch.h): leaf scans
  /// produce typed column views, filters/projections run the columnar
  /// kernels, and rows are only materialized at the conversion boundary.
  /// Turning it off forces the row-major path everywhere; the differential
  /// parity suite executes every query both ways.
  bool enable_columnar = true;

  /// When true (the default), columnar expression evaluation lowers whole
  /// RexNode trees into flat register-allocated bytecode programs
  /// (rex/rex_fuse.h) executed block-at-a-time against the SIMD kernels,
  /// instead of materializing one arena temporary per operator node. Trees
  /// the fuser cannot lower (strings, non-literal divisors, unsupported
  /// operators) silently fall back to the per-node path, so this flag never
  /// changes results — the differential fuzz and parity suites run both
  /// ways to prove it. It also gates range-fusion of pushed scan
  /// predicates ($0 >= a AND $0 < b -> one interval test).
  bool enable_fusion = true;

  /// Access-path hint handed to every leaf scan (via ScanSpec). kAuto is
  /// the cost-based default; the forced settings exist for benchmarks,
  /// plan-stability debugging, and the differential parity suites. This
  /// replaces the old per-table DiskTable::set_index_scan_enabled escape
  /// hatch, which survives only as a deprecated shim.
  AccessPath access_path = AccessPath::kAuto;

  /// Both knobs clamped to their valid range: a zero batch_size would make
  /// every puller yield the empty batch that means end-of-stream (hanging
  /// or truncating pipelines), and zero worker threads could never pull
  /// anything, so both clamp to 1. batch_size additionally clamps to
  /// kMaxBatchSize: arena chunk sizing scales with the batch, so a
  /// pathological upper bound must not become a giant allocation. An
  /// access_path outside the enum (a config cast gone wrong) degrades to
  /// kAuto. Every execution entry point normalizes its options before
  /// building pipelines.
  ExecOptions Normalized() const {
    ExecOptions out = *this;
    if (out.batch_size == 0) out.batch_size = 1;
    if (out.batch_size > kMaxBatchSize) out.batch_size = kMaxBatchSize;
    if (out.num_threads == 0) out.num_threads = 1;
    if (out.access_path != AccessPath::kForceIndex &&
        out.access_path != AccessPath::kForceHeap) {
      out.access_path = AccessPath::kAuto;
    }
    return out;
  }
};

/// Pulls the next batch of an operator's output. An empty batch marks the
/// end of the stream; producers never yield empty batches mid-stream (a
/// filter that eliminates a whole input chunk keeps pulling until it has at
/// least one surviving row or its input ends). Errors abort the stream.
///
/// RowBatch is no longer the only batch currency: the hot path ships
/// column-major ColumnBatch (exec/column_batch.h) — typed column vectors
/// plus null bytemaps, bump-allocated from a per-query arena and freed
/// wholesale — between converted operators (scan, filter, project,
/// hash-aggregate, hash-join probe, the morsel-parallel exchange). A
/// RowBatchPuller is the *conversion boundary*: operators that still think
/// in rows (sort, outer-join emit, set ops, window, QueryResult) pull row
/// batches, and a columnar producer boxes its active rows through
/// ColumnsToRows exactly once at that boundary. Arena lifetime rule: a
/// ColumnBatch shares ownership of everything its columns point into
/// (arena, boxed pool, pinned table caches), so a row batch built from it
/// owns plain Values and has no lifetime ties.
using RowBatchPuller = std::function<Result<RowBatch>()>;

/// Indexes of the rows of a batch that satisfy a predicate, ascending.
/// The batch-granularity analogue of a boolean column: filters narrow it
/// (RexInterpreter::NarrowSelection) and hand it downstream in a SelBatch
/// instead of compacting, so survivors are only ever moved once.
using SelectionVector = std::vector<uint32_t>;

/// A batch plus an optional selection vector naming its live rows. This is
/// the currency of the selection-aware pipeline (ExecuteSelBatched): a
/// filter narrows `sel` instead of physically compacting `rows`, and the
/// downstream operator (project, aggregate, join probe, exchange) iterates
/// only the selected indexes. Compaction — the per-row moves the selection
/// vector exists to avoid — happens at most once per batch, at the first
/// consumer that needs physically dense rows.
///
/// Invariants: when `has_sel` is true, `sel` holds strictly ascending,
/// in-range indexes into `rows`; when false, every row is live. End of
/// stream is `rows.empty()`; like the RowBatchPuller contract, producers
/// never yield a mid-stream batch with zero live rows (a filter that kills
/// a whole chunk keeps pulling).
struct SelBatch {
  RowBatch rows;
  SelectionVector sel;
  bool has_sel = false;

  size_t ActiveCount() const { return has_sel ? sel.size() : rows.size(); }
  bool AtEnd() const { return rows.empty(); }

  /// The k-th live row (k < ActiveCount()).
  Row& ActiveRow(size_t k) {
    return has_sel ? rows[sel[k]] : rows[k];
  }
  const Row& ActiveRow(size_t k) const {
    return has_sel ? rows[sel[k]] : rows[k];
  }

  /// Makes an identity selection explicit so a filter can narrow it.
  void EnsureSelection() {
    if (has_sel) return;
    sel.resize(rows.size());
    for (uint32_t i = 0; i < rows.size(); ++i) sel[i] = i;
    has_sel = true;
  }

  /// Physically keeps only the selected rows and drops the selection.
  void Compact();
};

/// Selection-aware analogue of RowBatchPuller. An AtEnd() batch marks end
/// of stream; errors abort the stream.
using SelBatchPuller = std::function<Result<SelBatch>()>;

/// Bridges a compact batch stream into the selection-aware protocol (every
/// batch arrives with all rows live).
SelBatchPuller LiftToSelBatches(RowBatchPuller puller);

/// Bridges back: compacts each selection-carrying batch into a plain
/// RowBatch stream honouring the producers-never-yield-empty contract.
RowBatchPuller CompactSelBatches(SelBatchPuller puller);

/// A predicate simple enough for a leaf scan to evaluate on its stored rows
/// *before* materializing them into a batch: `column <op> literal` or a
/// NULL test. Comparison semantics match the Rex interpreter exactly
/// (Value::Compare three-way ordering; a comparison involving NULL — on
/// either side — never passes), so each pushed predicate accepts exactly
/// the rows the post-scan filter would have. Note that pushdown evaluates
/// pushed conjuncts before residual ones regardless of their position in
/// the original AND: result rows are identical (AND is commutative), but a
/// residual conjunct that would have raised an evaluation error (e.g.
/// division by zero) on a row a *later* pushed conjunct eliminates no
/// longer sees that row — the same conjunct-reordering latitude SQL
/// engines generally take, and that the selection-narrowing filter already
/// takes between stacked conjuncts.
struct ScanPredicate {
  enum class Kind {
    kEquals,
    kNotEquals,
    kLessThan,
    kLessThanOrEqual,
    kGreaterThan,
    kGreaterThanOrEqual,
    kIsNull,
    kIsNotNull,
  };
  Kind kind = Kind::kEquals;
  int column = 0;
  Value literal;  // ignored by the NULL tests

  bool Matches(const Row& row) const;
};

using ScanPredicateList = std::vector<ScanPredicate>;

/// True iff every predicate passes (empty list passes everything).
bool ScanPredicatesMatch(const ScanPredicateList& predicates, const Row& row);

/// Everything a leaf scan needs to know, in one struct — the single
/// currency of Table::OpenScan. This consolidates the surface that had
/// accreted one virtual per feature (ScanBatched, ScanBatchedFiltered,
/// ScanUnitRows...): new per-scan knobs (sampling for ANALYZE, projection
/// hints, access-path forcing) are fields here, not new virtuals on Table.
struct ScanSpec {
  /// Sentinel for unit_end: no unit restriction.
  static constexpr size_t kAllUnits = static_cast<size_t>(-1);

  /// Rows per yielded batch (clamped like ExecOptions::batch_size).
  size_t batch_size = kDefaultBatchSize;

  /// Pushed predicates, evaluated before rows are materialized. Result rows
  /// satisfy every predicate (same contract as ScanBatchedFiltered).
  ScanPredicateList predicates;

  /// When non-empty, result rows contain exactly these input columns, in
  /// this order. Applied after the predicates (which index the full row).
  std::vector<int> projection;

  /// Bernoulli row sampling: each predicate-passing row survives with this
  /// probability, drawn from a deterministic RNG seeded by sample_seed —
  /// the ANALYZE sampling path. 1.0 (the default) keeps every row.
  double sample_fraction = 1.0;
  uint64_t sample_seed = 0x5DEECE66Dull;

  /// Physical access-path hint for tables with more than one (see
  /// AccessPath). Threaded from ExecOptions::access_path by the scan
  /// operators.
  AccessPath access_path = AccessPath::kAuto;

  /// Restricts the scan to units [unit_begin, unit_end) of the table's
  /// paged scan surface (ScanUnitCount tiling) — the morsel-driven parallel
  /// executor's per-worker slice. Only meaningful for tables that expose
  /// scan units; unit_begin past the unit count is an error, mirroring
  /// ScanUnitRows.
  size_t unit_begin = 0;
  size_t unit_end = kAllUnits;

  bool has_unit_range() const {
    return unit_begin != 0 || unit_end != kAllUnits;
  }
  bool IsPlainScan() const {
    return predicates.empty() && projection.empty() &&
           sample_fraction >= 1.0 && !has_unit_range();
  }

  /// Clamps batch_size (like ExecOptions), sample_fraction to [0, 1], and
  /// out-of-enum access paths to kAuto.
  ScanSpec Normalized() const;
};

/// Applies the row-level decorations of `spec` that are independent of the
/// table's physical access path — Bernoulli sampling, then projection — on
/// top of an already predicate-filtered batch stream. Table::OpenScan
/// implementations route their native pullers through this so every table
/// honours sampling/projection identically; it preserves the
/// producers-never-yield-empty-mid-stream contract (a sampled-out chunk
/// keeps pulling). Pass-through (no wrapper allocated) when the spec asks
/// for neither.
RowBatchPuller ApplyScanSpecDecorators(RowBatchPuller puller,
                                       const ScanSpec& spec);

/// Batch stream over caller-owned rows that applies `predicates` before
/// copying a row into the output batch — the leaf-scan pushdown path: rows
/// failing the predicates are never materialized. Same lifetime contract as
/// SliceRows.
RowBatchPuller FilterSliceRows(const std::vector<Row>& rows, size_t batch_size,
                               ScanPredicateList predicates);

/// Wraps already-materialized rows as a batch stream (the bridge used by
/// operators and tables that have not been converted to native batching).
RowBatchPuller ChunkRows(std::vector<Row> rows, size_t batch_size);

/// Batch stream over rows the caller keeps owning (a table's stored data):
/// each pull copies the next slice of `rows` into a fresh batch, so the
/// stored vector is never copied whole. The caller must keep `rows` alive
/// and unchanged while the puller is used — scan operators guarantee this
/// by pinning their TablePtr in the pipeline closure.
RowBatchPuller SliceRows(const std::vector<Row>& rows, size_t batch_size);

/// Materializes a batch stream (the terminal step under the unchanged
/// QueryResult API).
Result<std::vector<Row>> DrainBatches(const RowBatchPuller& puller);

/// Keeps the rows of `batch` selected by `sel`, in order, in place.
void CompactBatch(RowBatch* batch, const SelectionVector& sel);

}  // namespace calcite

#endif  // CALCITE_EXEC_ROW_BATCH_H_
