#include "adapters/splunk/splunk_adapter.h"

#include <set>

#include "adapters/enumerable/enumerable_rels.h"
#include "adapters/jdbc/jdbc_rels.h"
#include "rex/rex_interpreter.h"
#include "rex/rex_util.h"
#include "sql/rel_to_sql.h"

namespace calcite {

const Convention* SplunkSchema::SplunkConvention() {
  static const Convention* kConvention = new Convention("SPLUNK", 0.9);
  return kConvention;
}

SplunkSchema::SplunkSchema(std::vector<RemoteSqlEnginePtr> lookup_targets)
    : lookup_targets_(std::move(lookup_targets)) {}

const Convention* SplunkSchema::ScanConvention() const {
  return SplunkConvention();
}

// ------------------------------- operators ---------------------------------

RelNodePtr SplunkTableScan::Create(const TableScan& scan) {
  return RelNodePtr(new SplunkTableScan(
      RelTraitSet(SplunkSchema::SplunkConvention()), scan.row_type(),
      scan.table(), scan.qualified_name(), scan.table_convention()));
}

RelNodePtr SplunkTableScan::Copy(RelTraitSet traits,
                                 std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(new SplunkTableScan(std::move(traits), row_type(), table_,
                                        qualified_name_, table_convention_));
}

Result<std::vector<Row>> SplunkTableScan::Execute() const {
  return table_->Scan();
}

RelNodePtr SplunkFilter::Create(RelNodePtr input, RexNodePtr condition) {
  RelDataTypePtr row_type = input->row_type();
  return RelNodePtr(new SplunkFilter(
      RelTraitSet(SplunkSchema::SplunkConvention()), std::move(row_type),
      std::move(input), std::move(condition)));
}

RelNodePtr SplunkFilter::Copy(RelTraitSet traits,
                              std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new SplunkFilter(std::move(traits), row_type(),
                                     std::move(inputs[0]), condition_));
}

Result<std::vector<Row>> SplunkFilter::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;
  std::vector<Row> out;
  for (Row& row : rows.value()) {
    auto pass = RexInterpreter::EvalPredicate(condition_, row);
    if (!pass.ok()) return pass.status();
    if (pass.value()) out.push_back(std::move(row));
  }
  return out;
}

std::optional<RelOptCost> SplunkFilter::SelfCost(MetadataQuery* mq) const {
  double input_rows = mq->RowCount(input(0));
  // Index-assisted in-engine search: cheaper than a client-side scan+filter.
  return RelOptCost(mq->RowCount(shared_from_this()), input_rows * 0.5, 0);
}

RelNodePtr SplunkLookupJoin::Create(RelNodePtr left, RelNodePtr right,
                                    RexNodePtr condition,
                                    RelDataTypePtr row_type,
                                    RemoteSqlEnginePtr engine) {
  return RelNodePtr(new SplunkLookupJoin(
      RelTraitSet(SplunkSchema::SplunkConvention()), std::move(row_type),
      std::move(left), std::move(right), std::move(condition),
      std::move(engine)));
}

RelNodePtr SplunkLookupJoin::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new SplunkLookupJoin(std::move(traits), row_type(),
                                         std::move(inputs[0]),
                                         std::move(inputs[1]), condition_,
                                         engine_));
}

std::optional<RelOptCost> SplunkLookupJoin::SelfCost(MetadataQuery* mq) const {
  double left_rows = mq->RowCount(input(0));
  // One remote point-lookup per distinct key; assume modest key diversity.
  double lookups = std::max(1.0, left_rows * 0.3);
  return RelOptCost(left_rows, left_rows * 0.5, lookups * 0.2);
}

Result<std::vector<Row>> SplunkLookupJoin::Execute() const {
  auto left_rows = input(0)->Execute();
  if (!left_rows.ok()) return left_rows;

  std::vector<std::pair<int, int>> keys;
  std::vector<RexNodePtr> remaining;
  if (!AnalyzeEquiKeys(&keys, &remaining) || keys.size() != 1) {
    return Status::PlanError(
        "SplunkLookupJoin requires a single-column equi key");
  }
  int left_key = keys[0].first;
  int right_key = keys[0].second;

  // Render the right subtree once as SQL; per distinct key we wrap it with a
  // point predicate — the ODBC-lookup simulation.
  RelToSqlConverter converter(engine_->dialect());
  auto right_sql = converter.Convert(input(1));
  if (!right_sql.ok()) return right_sql.status();
  const std::string& right_key_name =
      input(1)->row_type()->fields()[static_cast<size_t>(right_key)].name;

  std::map<Value, std::vector<Row>> lookup_cache;
  std::vector<Row> out;
  for (const Row& lrow : left_rows.value()) {
    const Value& key = lrow[static_cast<size_t>(left_key)];
    if (key.IsNull()) continue;
    auto it = lookup_cache.find(key);
    if (it == lookup_cache.end()) {
      std::string key_text = key.is_string()
                                 ? engine_->dialect().QuoteString(key.AsString())
                                 : key.ToString();
      std::string sql = "SELECT * FROM (" + right_sql.value() + ") AS lk " +
                        "WHERE " +
                        engine_->dialect().QuoteIdentifier(right_key_name) +
                        " = " + key_text;
      auto rows = engine_->ExecuteSql(sql);
      if (!rows.ok()) return rows;
      it = lookup_cache.emplace(key, std::move(rows).value()).first;
    }
    for (const Row& rrow : it->second) {
      Row combined = ConcatRows(lrow, rrow);
      bool pass = true;
      for (const RexNodePtr& pred : remaining) {
        auto ok = RexInterpreter::EvalPredicate(pred, combined);
        if (!ok.ok()) return ok.status();
        if (!ok.value()) {
          pass = false;
          break;
        }
      }
      if (pass) out.push_back(std::move(combined));
    }
  }
  return out;
}

// --------------------------------- rules -----------------------------------

namespace {

class SplunkTableScanRule final : public ConverterRule {
 public:
  SplunkTableScanRule()
      : ConverterRule(Convention::Logical(),
                      SplunkSchema::SplunkConvention()) {}

  std::string name() const override { return "SplunkTableScanRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    if (node.convention() != Convention::Logical()) return false;
    const auto* scan = dynamic_cast<const TableScan*>(&node);
    return scan != nullptr && scan->table_convention() == to();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    call->TransformTo(
        SplunkTableScan::Create(static_cast<const TableScan&>(*call->rel())));
  }
};

class SplunkFilterRule final : public ConverterRule {
 public:
  SplunkFilterRule()
      : ConverterRule(Convention::Logical(),
                      SplunkSchema::SplunkConvention()) {}

  std::string name() const override { return "SplunkFilterRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    RelNodePtr input = call->Convert(filter.input(0), RelTraitSet(to()));
    if (input == nullptr) return;
    call->TransformTo(
        SplunkFilter::Create(std::move(input), filter.condition()));
  }
};

/// The Figure 2 rule: "exploiting the fact that Splunk can perform lookups
/// into MySQL via ODBC, a planner rule pushes the join through the
/// splunk-to-spark converter, and the join is now in splunk convention,
/// running inside the Splunk engine."
class SplunkLookupJoinRule final : public ConverterRule {
 public:
  explicit SplunkLookupJoinRule(RemoteSqlEnginePtr target)
      : ConverterRule(Convention::Logical(),
                      SplunkSchema::SplunkConvention()),
        target_(std::move(target)) {}

  std::string name() const override {
    return "SplunkLookupJoinRule(" + target_->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* join = dynamic_cast<const Join*>(&node);
    return node.convention() == Convention::Logical() && join != nullptr &&
           join->join_type() == JoinType::kInner;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& join = static_cast<const Join&>(*call->rel());
    std::vector<std::pair<int, int>> keys;
    std::vector<RexNodePtr> remaining;
    if (!join.AnalyzeEquiKeys(&keys, &remaining) || keys.size() != 1) return;

    // Left must be expressible in Splunk; right in the lookup target's
    // JDBC convention.
    const Convention* jdbc = nullptr;
    {
      // The target's convention is interned by JdbcSchema; recover it
      // through a throwaway schema handle.
      static std::map<std::string, const Convention*>* cache =
          new std::map<std::string, const Convention*>();
      auto it = cache->find(target_->name());
      if (it == cache->end()) {
        JdbcSchema probe(target_);
        it = cache->emplace(target_->name(), probe.ScanConvention()).first;
      }
      jdbc = it->second;
    }
    RelNodePtr left = call->Convert(join.input(0), RelTraitSet(to()));
    RelNodePtr right = call->Convert(join.input(1), RelTraitSet(jdbc));
    if (left == nullptr || right == nullptr) return;
    call->TransformTo(SplunkLookupJoin::Create(std::move(left),
                                               std::move(right),
                                               join.condition(),
                                               join.row_type(), target_));
  }

 private:
  RemoteSqlEnginePtr target_;
};

}  // namespace

std::vector<RelOptRulePtr> SplunkSchema::AdapterRules() const {
  std::vector<RelOptRulePtr> rules = {
      std::make_shared<SplunkTableScanRule>(),
      std::make_shared<SplunkFilterRule>(),
  };
  for (const RemoteSqlEnginePtr& target : lookup_targets_) {
    rules.push_back(std::make_shared<SplunkLookupJoinRule>(target));
  }
  return rules;
}

// ---------------------------- SPL generation -------------------------------

namespace {

Result<std::string> SplExpr(const RexNodePtr& rex,
                            const std::vector<std::string>& fields) {
  if (const RexInputRef* ref = AsInputRef(rex)) {
    return fields[static_cast<size_t>(ref->index())];
  }
  if (const RexLiteral* lit = AsLiteral(rex)) {
    if (lit->value().is_string()) return "\"" + lit->value().AsString() + "\"";
    return lit->value().ToString();
  }
  const RexCall* call = AsCall(rex);
  if (call == nullptr) return Status::Unsupported("cannot render SPL");
  std::vector<std::string> operands;
  for (const RexNodePtr& operand : call->operands()) {
    auto sub = SplExpr(operand, fields);
    if (!sub.ok()) return sub;
    operands.push_back(std::move(sub).value());
  }
  switch (call->op()) {
    case OpKind::kAnd: {
      std::string out = operands[0];
      for (size_t i = 1; i < operands.size(); ++i) out += " " + operands[i];
      return out;  // SPL search terms are implicitly conjunctive
    }
    case OpKind::kEquals:
      return operands[0] + "=" + operands[1];
    case OpKind::kNotEquals:
      return operands[0] + "!=" + operands[1];
    case OpKind::kGreaterThan:
      return operands[0] + ">" + operands[1];
    case OpKind::kGreaterThanOrEqual:
      return operands[0] + ">=" + operands[1];
    case OpKind::kLessThan:
      return operands[0] + "<" + operands[1];
    case OpKind::kLessThanOrEqual:
      return operands[0] + "<=" + operands[1];
    case OpKind::kIsNotNull:
      return operands[0] + "=*";
    default:
      return Status::Unsupported(std::string("operator ") +
                                 OpKindName(call->op()) + " in SPL");
  }
}

}  // namespace

Result<std::string> SplunkGenerateSpl(const RelNodePtr& node) {
  if (const auto* scan = dynamic_cast<const SplunkTableScan*>(node.get())) {
    return "search index=" + scan->qualified_name().back();
  }
  if (const auto* filter = dynamic_cast<const SplunkFilter*>(node.get())) {
    auto base = SplunkGenerateSpl(node->input(0));
    if (!base.ok()) return base;
    std::vector<std::string> fields;
    for (const RelDataTypeField& f : filter->input(0)->row_type()->fields()) {
      fields.push_back(f.name);
    }
    auto expr = SplExpr(filter->condition(), fields);
    if (!expr.ok()) return expr;
    return base.value() + " | search " + expr.value();
  }
  if (const auto* join = dynamic_cast<const SplunkLookupJoin*>(node.get())) {
    auto base = SplunkGenerateSpl(node->input(0));
    if (!base.ok()) return base;
    std::vector<std::pair<int, int>> keys;
    std::vector<RexNodePtr> remaining;
    std::string key_name = "?";
    std::vector<std::pair<int, int>> kv;
    if (join->AnalyzeEquiKeys(&kv, &remaining) && kv.size() == 1) {
      key_name = join->input(0)
                     ->row_type()
                     ->fields()[static_cast<size_t>(kv[0].first)]
                     .name;
    }
    std::string table = "remote";
    if (const auto* scan =
            dynamic_cast<const TableScan*>(join->input(1).get())) {
      table = scan->qualified_name().back();
    }
    return base.value() + " | lookup " + table + " " + key_name;
  }
  return Status::Unsupported("cannot render SPL for " + node->op_name());
}

}  // namespace calcite
