#ifndef CALCITE_ADAPTERS_SPLUNK_SPLUNK_ADAPTER_H_
#define CALCITE_ADAPTERS_SPLUNK_SPLUNK_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "adapters/jdbc/jdbc_adapter.h"
#include "plan/rule.h"
#include "rel/core.h"
#include "schema/schema.h"

namespace calcite {

/// The Splunk adapter of Figure 2: a simulated log/event store queried with
/// SPL-like search strings. It supports filter push-down ("the WHERE clause
/// is pushed into splunk by an adapter-specific rule") and — the paper's
/// headline example — a join push-down that exploits "the fact that Splunk
/// can perform lookups into MySQL via ODBC": SplunkLookupJoin executes the
/// join inside the Splunk engine by issuing per-key SQL lookups against a
/// JDBC backend, instead of bulk-transferring both sides to a third engine.
class SplunkSchema final : public Schema {
 public:
  /// `lookup_targets`: JDBC engines this Splunk instance can reach via
  /// ODBC-style lookups (enables the Figure 2 join push-down rule).
  explicit SplunkSchema(std::vector<RemoteSqlEnginePtr> lookup_targets = {});

  const Convention* ScanConvention() const override;
  std::vector<RelOptRulePtr> AdapterRules() const override;

  static const Convention* SplunkConvention();

 private:
  std::vector<RemoteSqlEnginePtr> lookup_targets_;
};

/// Generates the SPL search string for a Splunk-convention subtree, e.g.
/// "search index=orders | where units > 25 | lookup products productId".
/// Used by tests and the Table 2 bench.
Result<std::string> SplunkGenerateSpl(const RelNodePtr& node);

/// Physical operators (exposed for tests).

class SplunkTableScan final : public TableScan {
 public:
  static RelNodePtr Create(const TableScan& scan);

  std::string op_name() const override { return "SplunkTableScan"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;

 private:
  using TableScan::TableScan;
};

class SplunkFilter final : public Filter {
 public:
  static RelNodePtr Create(RelNodePtr input, RexNodePtr condition);

  std::string op_name() const override { return "SplunkFilter"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;

  /// Filtering inside the engine avoids shipping non-matching events.
  std::optional<RelOptCost> SelfCost(MetadataQuery* mq) const override;

 private:
  using Filter::Filter;
};

/// The Figure 2 star: an inner equi-join executed inside Splunk by looking
/// up each event's key in a remote SQL engine. Left input: a
/// Splunk-convention subtree. Right input: a JDBC-convention subtree
/// belonging to `engine`.
class SplunkLookupJoin final : public Join {
 public:
  static RelNodePtr Create(RelNodePtr left, RelNodePtr right,
                           RexNodePtr condition, RelDataTypePtr row_type,
                           RemoteSqlEnginePtr engine);

  std::string op_name() const override { return "SplunkLookupJoin"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;

  /// Per-key lookups avoid bulk transfer of the right side: cost scales
  /// with the left (event) side and the number of distinct keys.
  std::optional<RelOptCost> SelfCost(MetadataQuery* mq) const override;

  const RemoteSqlEnginePtr& engine() const { return engine_; }

 private:
  SplunkLookupJoin(RelTraitSet traits, RelDataTypePtr row_type,
                   RelNodePtr left, RelNodePtr right, RexNodePtr condition,
                   RemoteSqlEnginePtr engine)
      : Join(std::move(traits), std::move(row_type), std::move(left),
             std::move(right), std::move(condition), JoinType::kInner),
        engine_(std::move(engine)) {}

  RemoteSqlEnginePtr engine_;
};

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_SPLUNK_SPLUNK_ADAPTER_H_
