#ifndef CALCITE_ADAPTERS_CSV_CSV_ADAPTER_H_
#define CALCITE_ADAPTERS_CSV_CSV_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "util/status.h"

namespace calcite {

/// The classic file adapter (Calcite's CSV tutorial adapter): a directory of
/// CSV files becomes a schema; each file a table. The header line declares
/// the columns as `name:type` pairs, e.g. `empno:int,name:string,sal:double`.
/// Tables scan directly in the enumerable convention.
class CsvTable final : public Table {
 public:
  /// Parses the CSV text (header + data lines). Supported types: int,
  /// long, double, string, boolean.
  static Result<std::shared_ptr<CsvTable>> FromText(const std::string& text);

  /// Reads a file from disk.
  static Result<std::shared_ptr<CsvTable>> FromFile(const std::string& path);

  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }
  TableStats GetStatistic() const override;
  Result<std::vector<Row>> Scan() const override { return rows_; }

  /// Emits the parsed file a batch at a time, without re-copying the whole
  /// table per scan (the scan operator pins this table while pulling).
  Result<RowBatchPuller> ScanBatched(size_t batch_size) const override {
    return SliceRows(rows_, batch_size);
  }

  /// Pushed predicates filter the parsed rows before any copy.
  Result<RowBatchPuller> ScanBatchedFiltered(
      size_t batch_size, ScanPredicateList predicates) const override {
    return FilterSliceRows(rows_, batch_size, std::move(predicates));
  }

  /// The parsed file doubles as stable storage for morsel-parallel scans.
  const std::vector<Row>* MaterializedRows() const override { return &rows_; }

  /// The parsed file is immutable, so the columnar decomposition is built
  /// once and never invalidated.
  TableColumnsPtr MaterializedColumns(const TypeFactory&) const override {
    return columnar_.Get(rows_, row_type_);
  }

 private:
  CsvTable(RelDataTypePtr row_type, std::vector<Row> rows)
      : row_type_(std::move(row_type)), rows_(std::move(rows)) {}

  RelDataTypePtr row_type_;
  std::vector<Row> rows_;
  ColumnarCache columnar_;
};

/// The schema factory of Figure 3: "the schema factory component acquires
/// the metadata information from the model and generates a schema". Given a
/// directory, produces a Schema with one CsvTable per *.csv file.
Result<SchemaPtr> CsvSchemaFactory(const std::string& directory);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_CSV_CSV_ADAPTER_H_
