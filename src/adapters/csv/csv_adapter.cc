#include "adapters/csv/csv_adapter.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/string_utils.h"

namespace calcite {

namespace {

Result<RelDataTypePtr> ColumnType(const std::string& type_name,
                                  const TypeFactory& tf) {
  std::string lower = ToLower(type_name);
  if (lower == "int" || lower == "integer") {
    return tf.CreateSqlType(SqlTypeName::kInteger, true);
  }
  if (lower == "long" || lower == "bigint") {
    return tf.CreateSqlType(SqlTypeName::kBigInt, true);
  }
  if (lower == "double" || lower == "float") {
    return tf.CreateSqlType(SqlTypeName::kDouble, true);
  }
  if (lower == "string" || lower == "varchar") {
    return tf.CreateSqlType(SqlTypeName::kVarchar, 255, true);
  }
  if (lower == "boolean" || lower == "bool") {
    return tf.CreateSqlType(SqlTypeName::kBoolean, true);
  }
  return Status::InvalidArgument("unsupported CSV column type '" + type_name +
                                 "'");
}

Result<Value> ParseCell(const std::string& text, const RelDataType& type) {
  if (text.empty()) return Value::Null();
  switch (type.type_name()) {
    case SqlTypeName::kInteger:
    case SqlTypeName::kBigInt:
      return Value::Int(std::strtoll(text.c_str(), nullptr, 10));
    case SqlTypeName::kDouble:
      return Value::Double(std::strtod(text.c_str(), nullptr));
    case SqlTypeName::kBoolean:
      return Value::Bool(EqualsIgnoreCase(text, "true"));
    default:
      return Value::String(text);
  }
}

}  // namespace

Result<std::shared_ptr<CsvTable>> CsvTable::FromText(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("CSV input is empty");
  }
  TypeFactory tf;
  std::vector<std::string> names;
  std::vector<RelDataTypePtr> types;
  for (const std::string& column : Split(Trim(header), ',')) {
    std::vector<std::string> parts = Split(column, ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument(
          "CSV header column must be name:type, got '" + column + "'");
    }
    names.push_back(Trim(parts[0]));
    auto type = ColumnType(Trim(parts[1]), tf);
    if (!type.ok()) return type.status();
    types.push_back(type.value());
  }
  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != names.size()) {
      return Status::InvalidArgument("CSV row has " +
                                     std::to_string(cells.size()) +
                                     " cells, expected " +
                                     std::to_string(names.size()));
    }
    Row row;
    for (size_t i = 0; i < cells.size(); ++i) {
      auto value = ParseCell(Trim(cells[i]), *types[i]);
      if (!value.ok()) return value.status();
      row.push_back(std::move(value).value());
    }
    rows.push_back(std::move(row));
  }
  RelDataTypePtr row_type = tf.CreateStructType(names, types);
  return std::shared_ptr<CsvTable>(
      new CsvTable(std::move(row_type), std::move(rows)));
}

Result<std::shared_ptr<CsvTable>> CsvTable::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromText(buffer.str());
}

TableStats CsvTable::GetStatistic() const {
  TableStats stat;
  stat.row_count = static_cast<double>(rows_.size());
  return stat;
}

Result<SchemaPtr> CsvSchemaFactory(const std::string& directory) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(directory)) {
    return Status::NotFound("'" + directory + "' is not a directory");
  }
  auto schema = std::make_shared<Schema>();
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".csv") continue;
    auto table = CsvTable::FromFile(entry.path().string());
    if (!table.ok()) return table.status();
    schema->AddTable(entry.path().stem().string(), table.value());
  }
  return SchemaPtr(schema);
}

}  // namespace calcite
