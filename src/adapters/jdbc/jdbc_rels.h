#ifndef CALCITE_ADAPTERS_JDBC_JDBC_RELS_H_
#define CALCITE_ADAPTERS_JDBC_JDBC_RELS_H_

#include <memory>
#include <string>
#include <vector>

#include "adapters/jdbc/jdbc_adapter.h"
#include "rel/core.h"

namespace calcite {

/// Physical operators of a JDBC backend's calling convention. Executing any
/// of them renders the subtree to dialect-specific SQL and sends it to the
/// RemoteSqlEngine — whole-subtree push-down, as the real JDBC adapter does.

class JdbcTableScan final : public TableScan, public JdbcRel {
 public:
  static RelNodePtr Create(const TableScan& scan, RemoteSqlEnginePtr engine,
                           const Convention* convention);

  std::string op_name() const override { return "JdbcTableScan"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override {
    return ExecuteViaSql(*this);
  }

 private:
  JdbcTableScan(RelTraitSet traits, RelDataTypePtr row_type, TablePtr table,
                std::vector<std::string> name, const Convention* table_conv,
                RemoteSqlEnginePtr engine)
      : TableScan(std::move(traits), std::move(row_type), std::move(table),
                  std::move(name), table_conv),
        JdbcRel(std::move(engine)) {}
};

class JdbcFilter final : public Filter, public JdbcRel {
 public:
  static RelNodePtr Create(RelNodePtr input, RexNodePtr condition,
                           RemoteSqlEnginePtr engine,
                           const Convention* convention);

  std::string op_name() const override { return "JdbcFilter"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override {
    return ExecuteViaSql(*this);
  }

 private:
  JdbcFilter(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
             RexNodePtr condition, RemoteSqlEnginePtr engine)
      : Filter(std::move(traits), std::move(row_type), std::move(input),
               std::move(condition)),
        JdbcRel(std::move(engine)) {}
};

class JdbcProject final : public Project, public JdbcRel {
 public:
  static RelNodePtr Create(RelNodePtr input, std::vector<RexNodePtr> exprs,
                           RelDataTypePtr row_type, RemoteSqlEnginePtr engine,
                           const Convention* convention);

  std::string op_name() const override { return "JdbcProject"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override {
    return ExecuteViaSql(*this);
  }

 private:
  JdbcProject(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
              std::vector<RexNodePtr> exprs, RemoteSqlEnginePtr engine)
      : Project(std::move(traits), std::move(row_type), std::move(input),
                std::move(exprs)),
        JdbcRel(std::move(engine)) {}
};

class JdbcJoin final : public Join, public JdbcRel {
 public:
  static RelNodePtr Create(RelNodePtr left, RelNodePtr right,
                           RexNodePtr condition, JoinType join_type,
                           RelDataTypePtr row_type, RemoteSqlEnginePtr engine,
                           const Convention* convention);

  std::string op_name() const override { return "JdbcJoin"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override {
    return ExecuteViaSql(*this);
  }

 private:
  JdbcJoin(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr left,
           RelNodePtr right, RexNodePtr condition, JoinType join_type,
           RemoteSqlEnginePtr engine)
      : Join(std::move(traits), std::move(row_type), std::move(left),
             std::move(right), std::move(condition), join_type),
        JdbcRel(std::move(engine)) {}
};

class JdbcAggregate final : public Aggregate, public JdbcRel {
 public:
  static RelNodePtr Create(RelNodePtr input, std::vector<int> group_keys,
                           std::vector<AggregateCall> agg_calls,
                           RelDataTypePtr row_type, RemoteSqlEnginePtr engine,
                           const Convention* convention);

  std::string op_name() const override { return "JdbcAggregate"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override {
    return ExecuteViaSql(*this);
  }

 private:
  JdbcAggregate(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
                std::vector<int> group_keys,
                std::vector<AggregateCall> agg_calls,
                RemoteSqlEnginePtr engine)
      : Aggregate(std::move(traits), std::move(row_type), std::move(input),
                  std::move(group_keys), std::move(agg_calls)),
        JdbcRel(std::move(engine)) {}
};

class JdbcSort final : public Sort, public JdbcRel {
 public:
  static RelNodePtr Create(RelNodePtr input, RelCollation collation,
                           int64_t offset, int64_t fetch,
                           RemoteSqlEnginePtr engine,
                           const Convention* convention);

  std::string op_name() const override { return "JdbcSort"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override {
    return ExecuteViaSql(*this);
  }

 private:
  JdbcSort(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
           RelCollation collation, int64_t offset, int64_t fetch,
           RemoteSqlEnginePtr engine)
      : Sort(std::move(traits), std::move(row_type), std::move(input),
             std::move(collation), offset, fetch),
        JdbcRel(std::move(engine)) {}
};

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_JDBC_JDBC_RELS_H_
