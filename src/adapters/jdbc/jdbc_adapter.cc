#include "adapters/jdbc/jdbc_adapter.h"

#include "adapters/jdbc/jdbc_rels.h"
#include "sql/rel_to_sql.h"
#include "tools/frameworks.h"

namespace calcite {

RemoteSqlEngine::RemoteSqlEngine(std::string name, const SqlDialect& dialect,
                                 SchemaPtr tables)
    : name_(std::move(name)), dialect_(&dialect), tables_(std::move(tables)) {}

Result<std::vector<Row>> RemoteSqlEngine::ExecuteSql(const std::string& sql) {
  statement_log_.push_back(sql);
  // The embedded backend is a full instance of this framework with a plain
  // enumerable schema — the "remote database".
  Connection connection{Connection::Config{tables_}};
  auto result = connection.Query(sql);
  if (!result.ok()) {
    return Status::RuntimeError("remote engine '" + name_ +
                                "' rejected query: " +
                                result.status().message() + " [" + sql + "]");
  }
  return std::move(result).value().rows;
}

Result<std::vector<Row>> JdbcRel::ExecuteViaSql(const RelNode& self) const {
  RelToSqlConverter converter(engine_->dialect());
  // shared_from_this is safe: nodes are always held in shared_ptr.
  auto sql = converter.Convert(self.shared_from_this());
  if (!sql.ok()) return sql.status();
  return engine_->ExecuteSql(sql.value());
}

Result<std::string> JdbcGenerateSql(const RelNodePtr& node) {
  const auto* jdbc = dynamic_cast<const JdbcRel*>(node.get());
  if (jdbc == nullptr) {
    return Status::InvalidArgument("node is not a JDBC operator");
  }
  RelToSqlConverter converter(jdbc->engine()->dialect());
  return converter.Convert(node);
}

namespace {

/// One Convention instance per backend engine, interned by name.
const Convention* JdbcConvention(const std::string& engine_name) {
  static std::map<std::string, const Convention*>* conventions =
      new std::map<std::string, const Convention*>();
  auto it = conventions->find(engine_name);
  if (it != conventions->end()) return it->second;
  const auto* convention = new Convention("JDBC." + engine_name, 1.0);
  (*conventions)[engine_name] = convention;
  return convention;
}

bool SameJdbcConvention(const RelNode& node, const Convention* convention) {
  return node.convention() == convention;
}

class JdbcTableScanRule final : public ConverterRule {
 public:
  JdbcTableScanRule(RemoteSqlEnginePtr engine, const Convention* convention)
      : ConverterRule(Convention::Logical(), convention),
        engine_(std::move(engine)) {}

  std::string name() const override {
    return "JdbcTableScanRule(" + engine_->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    if (node.convention() != Convention::Logical()) return false;
    const auto* scan = dynamic_cast<const TableScan*>(&node);
    return scan != nullptr && scan->table_convention() == to();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& scan = static_cast<const TableScan&>(*call->rel());
    call->TransformTo(JdbcTableScan::Create(scan, engine_, to()));
  }

 private:
  RemoteSqlEnginePtr engine_;
};

class JdbcFilterRule final : public ConverterRule {
 public:
  JdbcFilterRule(RemoteSqlEnginePtr engine, const Convention* convention)
      : ConverterRule(Convention::Logical(), convention),
        engine_(std::move(engine)) {}

  std::string name() const override {
    return "JdbcFilterRule(" + engine_->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    RelNodePtr input = call->Convert(filter.input(0), RelTraitSet(to()));
    if (input == nullptr) return;
    call->TransformTo(
        JdbcFilter::Create(std::move(input), filter.condition(), engine_,
                           to()));
  }

 private:
  RemoteSqlEnginePtr engine_;
};

class JdbcProjectRule final : public ConverterRule {
 public:
  JdbcProjectRule(RemoteSqlEnginePtr engine, const Convention* convention)
      : ConverterRule(Convention::Logical(), convention),
        engine_(std::move(engine)) {}

  std::string name() const override {
    return "JdbcProjectRule(" + engine_->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Project*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& project = static_cast<const Project&>(*call->rel());
    RelNodePtr input = call->Convert(project.input(0), RelTraitSet(to()));
    if (input == nullptr) return;
    call->TransformTo(JdbcProject::Create(std::move(input), project.exprs(),
                                          project.row_type(), engine_, to()));
  }

 private:
  RemoteSqlEnginePtr engine_;
};

class JdbcJoinRule final : public ConverterRule {
 public:
  JdbcJoinRule(RemoteSqlEnginePtr engine, const Convention* convention)
      : ConverterRule(Convention::Logical(), convention),
        engine_(std::move(engine)) {}

  std::string name() const override {
    return "JdbcJoinRule(" + engine_->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* join = dynamic_cast<const Join*>(&node);
    return node.convention() == Convention::Logical() && join != nullptr &&
           join->join_type() != JoinType::kSemi &&
           join->join_type() != JoinType::kAnti;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    // Both sides must live in this same backend for the join to ship as one
    // SQL statement.
    const auto& join = static_cast<const Join&>(*call->rel());
    RelNodePtr left = call->Convert(join.input(0), RelTraitSet(to()));
    RelNodePtr right = call->Convert(join.input(1), RelTraitSet(to()));
    if (left == nullptr || right == nullptr) return;
    call->TransformTo(JdbcJoin::Create(std::move(left), std::move(right),
                                       join.condition(), join.join_type(),
                                       join.row_type(), engine_, to()));
  }

 private:
  RemoteSqlEnginePtr engine_;
};

class JdbcAggregateRule final : public ConverterRule {
 public:
  JdbcAggregateRule(RemoteSqlEnginePtr engine, const Convention* convention)
      : ConverterRule(Convention::Logical(), convention),
        engine_(std::move(engine)) {}

  std::string name() const override {
    return "JdbcAggregateRule(" + engine_->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Aggregate*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& agg = static_cast<const Aggregate&>(*call->rel());
    RelNodePtr input = call->Convert(agg.input(0), RelTraitSet(to()));
    if (input == nullptr) return;
    call->TransformTo(JdbcAggregate::Create(std::move(input),
                                            agg.group_keys(), agg.agg_calls(),
                                            agg.row_type(), engine_, to()));
  }

 private:
  RemoteSqlEnginePtr engine_;
};

class JdbcSortRule final : public ConverterRule {
 public:
  JdbcSortRule(RemoteSqlEnginePtr engine, const Convention* convention)
      : ConverterRule(Convention::Logical(), convention),
        engine_(std::move(engine)) {}

  std::string name() const override {
    return "JdbcSortRule(" + engine_->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Sort*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& sort = static_cast<const Sort&>(*call->rel());
    RelNodePtr input = call->Convert(sort.input(0), RelTraitSet(to()));
    if (input == nullptr) return;
    call->TransformTo(JdbcSort::Create(std::move(input), sort.collation(),
                                       sort.offset(), sort.fetch(), engine_,
                                       to()));
  }

 private:
  RemoteSqlEnginePtr engine_;
};

}  // namespace

JdbcSchema::JdbcSchema(RemoteSqlEnginePtr engine)
    : engine_(std::move(engine)),
      convention_(JdbcConvention(engine_->name())) {
  // Mirror the remote tables into this schema so name resolution sees them.
  for (const std::string& table_name : engine_->tables()->TableNames()) {
    AddTable(table_name, engine_->tables()->GetTable(table_name));
  }
}

std::vector<RelOptRulePtr> JdbcSchema::AdapterRules() const {
  return {
      std::make_shared<JdbcTableScanRule>(engine_, convention_),
      std::make_shared<JdbcFilterRule>(engine_, convention_),
      std::make_shared<JdbcProjectRule>(engine_, convention_),
      std::make_shared<JdbcJoinRule>(engine_, convention_),
      std::make_shared<JdbcAggregateRule>(engine_, convention_),
      std::make_shared<JdbcSortRule>(engine_, convention_),
  };
}

// ----------------------------- node constructors ---------------------------

RelNodePtr JdbcTableScan::Create(const TableScan& scan,
                                 RemoteSqlEnginePtr engine,
                                 const Convention* convention) {
  return RelNodePtr(new JdbcTableScan(
      RelTraitSet(convention), scan.row_type(), scan.table(),
      scan.qualified_name(), scan.table_convention(), std::move(engine)));
}

RelNodePtr JdbcTableScan::Copy(RelTraitSet traits,
                               std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(new JdbcTableScan(std::move(traits), row_type(), table_,
                                      qualified_name_, table_convention_,
                                      engine_));
}

RelNodePtr JdbcFilter::Create(RelNodePtr input, RexNodePtr condition,
                              RemoteSqlEnginePtr engine,
                              const Convention* convention) {
  RelDataTypePtr row_type = input->row_type();
  return RelNodePtr(new JdbcFilter(RelTraitSet(convention),
                                   std::move(row_type), std::move(input),
                                   std::move(condition), std::move(engine)));
}

RelNodePtr JdbcFilter::Copy(RelTraitSet traits,
                            std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new JdbcFilter(std::move(traits), row_type(),
                                   std::move(inputs[0]), condition_,
                                   engine_));
}

RelNodePtr JdbcProject::Create(RelNodePtr input, std::vector<RexNodePtr> exprs,
                               RelDataTypePtr row_type,
                               RemoteSqlEnginePtr engine,
                               const Convention* convention) {
  return RelNodePtr(new JdbcProject(RelTraitSet(convention),
                                    std::move(row_type), std::move(input),
                                    std::move(exprs), std::move(engine)));
}

RelNodePtr JdbcProject::Copy(RelTraitSet traits,
                             std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new JdbcProject(std::move(traits), row_type(),
                                    std::move(inputs[0]), exprs_, engine_));
}

RelNodePtr JdbcJoin::Create(RelNodePtr left, RelNodePtr right,
                            RexNodePtr condition, JoinType join_type,
                            RelDataTypePtr row_type, RemoteSqlEnginePtr engine,
                            const Convention* convention) {
  return RelNodePtr(new JdbcJoin(RelTraitSet(convention), std::move(row_type),
                                 std::move(left), std::move(right),
                                 std::move(condition), join_type,
                                 std::move(engine)));
}

RelNodePtr JdbcJoin::Copy(RelTraitSet traits,
                          std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new JdbcJoin(std::move(traits), row_type(),
                                 std::move(inputs[0]), std::move(inputs[1]),
                                 condition_, join_type_, engine_));
}

RelNodePtr JdbcAggregate::Create(RelNodePtr input, std::vector<int> group_keys,
                                 std::vector<AggregateCall> agg_calls,
                                 RelDataTypePtr row_type,
                                 RemoteSqlEnginePtr engine,
                                 const Convention* convention) {
  return RelNodePtr(new JdbcAggregate(
      RelTraitSet(convention), std::move(row_type), std::move(input),
      std::move(group_keys), std::move(agg_calls), std::move(engine)));
}

RelNodePtr JdbcAggregate::Copy(RelTraitSet traits,
                               std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new JdbcAggregate(std::move(traits), row_type(),
                                      std::move(inputs[0]), group_keys_,
                                      agg_calls_, engine_));
}

RelNodePtr JdbcSort::Create(RelNodePtr input, RelCollation collation,
                            int64_t offset, int64_t fetch,
                            RemoteSqlEnginePtr engine,
                            const Convention* convention) {
  RelDataTypePtr row_type = input->row_type();
  RelTraitSet traits(convention, collation);
  return RelNodePtr(new JdbcSort(std::move(traits), std::move(row_type),
                                 std::move(input), std::move(collation),
                                 offset, fetch, std::move(engine)));
}

RelNodePtr JdbcSort::Copy(RelTraitSet traits,
                          std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new JdbcSort(std::move(traits), row_type(),
                                 std::move(inputs[0]), collation_, offset_,
                                 fetch_, engine_));
}

}  // namespace calcite
