#ifndef CALCITE_ADAPTERS_JDBC_JDBC_ADAPTER_H_
#define CALCITE_ADAPTERS_JDBC_JDBC_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/rule.h"
#include "rel/core.h"
#include "schema/schema.h"
#include "sql/dialect.h"
#include "util/status.h"

namespace calcite {

/// A simulated remote SQL database: the backend of the JDBC adapter.
///
/// Substitution note (DESIGN.md §2): where the paper's JDBC adapter talks to
/// MySQL/PostgreSQL over a wire protocol, this backend embeds a second
/// instance of our own engine and accepts *SQL text* — so the adapter still
/// exercises the real code path: plan subtree → Rel-to-SQL (per dialect) →
/// remote parse/plan/execute. Every received statement is logged for
/// inspection (Table 2 reproduces adapter → target-language translations).
class RemoteSqlEngine {
 public:
  RemoteSqlEngine(std::string name, const SqlDialect& dialect,
                  SchemaPtr tables);

  const std::string& name() const { return name_; }
  const SqlDialect& dialect() const { return *dialect_; }
  const SchemaPtr& tables() const { return tables_; }

  /// Parses, plans and executes `sql` against the embedded store.
  Result<std::vector<Row>> ExecuteSql(const std::string& sql);

  /// SQL statements received so far (most recent last).
  const std::vector<std::string>& statement_log() const {
    return statement_log_;
  }
  void ClearLog() { statement_log_.clear(); }

 private:
  std::string name_;
  const SqlDialect* dialect_;
  SchemaPtr tables_;
  std::vector<std::string> statement_log_;
};

using RemoteSqlEnginePtr = std::shared_ptr<RemoteSqlEngine>;

/// Schema adapter for a remote SQL database (Figure 3): tables resolve to
/// JdbcTable facades; AdapterRules() contributes the push-down rules; scans
/// start in this adapter's own calling convention.
class JdbcSchema final : public Schema {
 public:
  explicit JdbcSchema(RemoteSqlEnginePtr engine);

  const Convention* ScanConvention() const override { return convention_; }
  std::vector<RelOptRulePtr> AdapterRules() const override;

  const RemoteSqlEnginePtr& engine() const { return engine_; }

 private:
  RemoteSqlEnginePtr engine_;
  const Convention* convention_;
};

/// A relational operator executing inside the remote SQL engine. All JDBC
/// nodes execute by rendering their subtree to SQL and shipping it to the
/// backend.
class JdbcRel {
 public:
  virtual ~JdbcRel() = default;
  explicit JdbcRel(RemoteSqlEnginePtr engine) : engine_(std::move(engine)) {}

  const RemoteSqlEnginePtr& engine() const { return engine_; }

 protected:
  Result<std::vector<Row>> ExecuteViaSql(const RelNode& self) const;

  RemoteSqlEnginePtr engine_;
};

/// Generates the SQL this JDBC subtree would ship to its backend. Used by
/// tests and the Table 2 bench.
Result<std::string> JdbcGenerateSql(const RelNodePtr& node);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_JDBC_JDBC_ADAPTER_H_
