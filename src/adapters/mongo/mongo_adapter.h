#ifndef CALCITE_ADAPTERS_MONGO_MONGO_ADAPTER_H_
#define CALCITE_ADAPTERS_MONGO_MONGO_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/rule.h"
#include "rel/core.h"
#include "schema/schema.h"
#include "util/json.h"

namespace calcite {

/// A simulated document store (§7.1): each collection is "a table ... with a
/// single column named _MAP: a map from document identifiers to their data".
/// Semi-structured values are reached with the `[]` ITEM operator and views
/// expose them relationally:
///
///   SELECT CAST(_MAP['city'] AS varchar(20)) AS city, ... FROM mongo.zips
class MongoTable final : public Table {
 public:
  explicit MongoTable(std::vector<JsonValue> documents);

  RelDataTypePtr GetRowType(const TypeFactory& factory) const override;
  TableStats GetStatistic() const override;
  Result<std::vector<Row>> Scan() const override;

  const std::vector<JsonValue>& documents() const { return documents_; }

 private:
  std::vector<JsonValue> documents_;
};

class MongoSchema final : public Schema {
 public:
  const Convention* ScanConvention() const override;
  std::vector<RelOptRulePtr> AdapterRules() const override;

  static const Convention* MongoConvention();
};

/// Generates the JSON find-query this subtree ships to the document store
/// (Table 2: MongoDB's target language is JSON-over-Java driver calls).
Result<std::string> MongoGenerateQuery(const RelNodePtr& node);

class MongoTableScan final : public TableScan {
 public:
  static RelNodePtr Create(const TableScan& scan);

  std::string op_name() const override { return "MongoTableScan"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;

 private:
  using TableScan::TableScan;
};

/// A filter pushed into the document store as a find() query. Only
/// conjunctions of `_MAP['field'] <op> literal` predicates are pushable;
/// the adapter rule leaves anything else client-side.
class MongoFilter final : public Filter {
 public:
  static RelNodePtr Create(RelNodePtr input, RexNodePtr condition,
                           JsonValue find_query);

  const JsonValue& find_query() const { return find_query_; }

  std::string op_name() const override { return "MongoFilter"; }
  std::string DigestAttributes() const override;
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  std::optional<RelOptCost> SelfCost(MetadataQuery* mq) const override;

 private:
  MongoFilter(RelTraitSet traits, RelDataTypePtr row_type, RelNodePtr input,
              RexNodePtr condition, JsonValue find_query)
      : Filter(std::move(traits), std::move(row_type), std::move(input),
               std::move(condition)),
        find_query_(std::move(find_query)) {}

  JsonValue find_query_;
};

/// Converts a JSON document into a runtime Value (objects become MAPs,
/// arrays ARRAYs, numbers DOUBLEs).
Value JsonToValue(const JsonValue& json);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_MONGO_MONGO_ADAPTER_H_
