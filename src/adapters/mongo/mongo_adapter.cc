#include "adapters/mongo/mongo_adapter.h"

#include "metadata/metadata.h"
#include "rex/rex_interpreter.h"
#include "rex/rex_util.h"

namespace calcite {

Value JsonToValue(const JsonValue& json) {
  switch (json.kind()) {
    case JsonValue::Kind::kNull:
      return Value::Null();
    case JsonValue::Kind::kBool:
      return Value::Bool(json.as_bool());
    case JsonValue::Kind::kNumber:
      return Value::Double(json.as_number());
    case JsonValue::Kind::kString:
      return Value::String(json.as_string());
    case JsonValue::Kind::kArray: {
      std::vector<Value> elems;
      for (const JsonValue& elem : json.as_array()) {
        elems.push_back(JsonToValue(elem));
      }
      return Value::Array(std::move(elems));
    }
    case JsonValue::Kind::kObject: {
      std::vector<std::pair<Value, Value>> entries;
      for (const auto& [key, value] : json.as_object()) {
        entries.push_back({Value::String(key), JsonToValue(value)});
      }
      return Value::Map(std::move(entries));
    }
  }
  return Value::Null();
}

MongoTable::MongoTable(std::vector<JsonValue> documents)
    : documents_(std::move(documents)) {}

RelDataTypePtr MongoTable::GetRowType(const TypeFactory& factory) const {
  RelDataTypePtr key = factory.CreateSqlType(SqlTypeName::kVarchar, 64);
  RelDataTypePtr value = factory.CreateSqlType(SqlTypeName::kAny, true);
  RelDataTypePtr map = factory.CreateMapType(key, value, false);
  return factory.CreateStructType({"_MAP"}, {map});
}

TableStats MongoTable::GetStatistic() const {
  TableStats stat;
  stat.row_count = static_cast<double>(documents_.size());
  return stat;
}

Result<std::vector<Row>> MongoTable::Scan() const {
  std::vector<Row> rows;
  rows.reserve(documents_.size());
  for (const JsonValue& doc : documents_) {
    rows.push_back({JsonToValue(doc)});
  }
  return rows;
}

const Convention* MongoSchema::MongoConvention() {
  static const Convention* kConvention = new Convention("MONGO", 0.9);
  return kConvention;
}

const Convention* MongoSchema::ScanConvention() const {
  return MongoConvention();
}

// ------------------------------- operators ---------------------------------

RelNodePtr MongoTableScan::Create(const TableScan& scan) {
  return RelNodePtr(new MongoTableScan(
      RelTraitSet(MongoSchema::MongoConvention()), scan.row_type(),
      scan.table(), scan.qualified_name(), scan.table_convention()));
}

RelNodePtr MongoTableScan::Copy(RelTraitSet traits,
                                std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(new MongoTableScan(std::move(traits), row_type(), table_,
                                       qualified_name_, table_convention_));
}

Result<std::vector<Row>> MongoTableScan::Execute() const {
  return table_->Scan();
}

RelNodePtr MongoFilter::Create(RelNodePtr input, RexNodePtr condition,
                               JsonValue find_query) {
  RelDataTypePtr row_type = input->row_type();
  return RelNodePtr(new MongoFilter(
      RelTraitSet(MongoSchema::MongoConvention()), std::move(row_type),
      std::move(input), std::move(condition), std::move(find_query)));
}

std::string MongoFilter::DigestAttributes() const {
  return Filter::DigestAttributes() + ", find=" + find_query_.Dump();
}

RelNodePtr MongoFilter::Copy(RelTraitSet traits,
                             std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new MongoFilter(std::move(traits), row_type(),
                                    std::move(inputs[0]), condition_,
                                    find_query_));
}

Result<std::vector<Row>> MongoFilter::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;
  std::vector<Row> out;
  for (Row& row : rows.value()) {
    auto pass = RexInterpreter::EvalPredicate(condition_, row);
    if (!pass.ok()) return pass.status();
    if (pass.value()) out.push_back(std::move(row));
  }
  return out;
}

std::optional<RelOptCost> MongoFilter::SelfCost(MetadataQuery* mq) const {
  double input_rows = mq->RowCount(input(0));
  // Index-eligible find() beats shipping every document to the client.
  return RelOptCost(mq->RowCount(shared_from_this()), input_rows * 0.4, 0);
}

// --------------------------------- rules -----------------------------------

namespace {

/// Tries to express a conjunct as one find-query field: `_MAP['f'] = lit`
/// or a comparison; returns false if not pushable.
bool ConjunctToFind(const RexNodePtr& conjunct, JsonValue* find) {
  const RexCall* call = AsCall(conjunct);
  if (call == nullptr || !IsComparison(call->op())) return false;
  const RexCall* item = AsCall(call->operand(0));
  const RexLiteral* literal = AsLiteral(call->operand(1));
  if (item == nullptr || item->op() != OpKind::kItem || literal == nullptr) {
    return false;
  }
  const RexLiteral* key = AsLiteral(item->operand(1));
  if (key == nullptr || !key->value().is_string()) return false;

  JsonValue value;
  const Value& v = literal->value();
  if (v.is_string()) {
    value = JsonValue(v.AsString());
  } else if (v.is_numeric()) {
    value = JsonValue(v.AsDouble());
  } else if (v.is_bool()) {
    value = JsonValue(v.AsBool());
  } else {
    return false;
  }
  const char* mongo_op = nullptr;
  switch (call->op()) {
    case OpKind::kEquals:
      mongo_op = nullptr;  // direct {field: value}
      break;
    case OpKind::kNotEquals:
      mongo_op = "$ne";
      break;
    case OpKind::kLessThan:
      mongo_op = "$lt";
      break;
    case OpKind::kLessThanOrEqual:
      mongo_op = "$lte";
      break;
    case OpKind::kGreaterThan:
      mongo_op = "$gt";
      break;
    case OpKind::kGreaterThanOrEqual:
      mongo_op = "$gte";
      break;
    default:
      return false;
  }
  if (mongo_op == nullptr) {
    find->Set(key->value().AsString(), std::move(value));
  } else {
    JsonValue op_obj = JsonValue::Object();
    op_obj.Set(mongo_op, std::move(value));
    find->Set(key->value().AsString(), std::move(op_obj));
  }
  return true;
}

class MongoTableScanRule final : public ConverterRule {
 public:
  MongoTableScanRule()
      : ConverterRule(Convention::Logical(),
                      MongoSchema::MongoConvention()) {}

  std::string name() const override { return "MongoTableScanRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    if (node.convention() != Convention::Logical()) return false;
    const auto* scan = dynamic_cast<const TableScan*>(&node);
    return scan != nullptr && scan->table_convention() == to();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    call->TransformTo(
        MongoTableScan::Create(static_cast<const TableScan&>(*call->rel())));
  }
};

class MongoFilterRule final : public ConverterRule {
 public:
  MongoFilterRule()
      : ConverterRule(Convention::Logical(),
                      MongoSchema::MongoConvention()) {}

  std::string name() const override { return "MongoFilterRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    // Every conjunct must be expressible as a find() field to push the
    // whole filter; otherwise it stays client-side.
    JsonValue find = JsonValue::Object();
    for (const RexNodePtr& conjunct :
         RexUtil::FlattenAnd(filter.condition())) {
      if (!ConjunctToFind(conjunct, &find)) return;
    }
    RelNodePtr input = call->Convert(filter.input(0), RelTraitSet(to()));
    if (input == nullptr) return;
    call->TransformTo(MongoFilter::Create(std::move(input),
                                          filter.condition(),
                                          std::move(find)));
  }
};

}  // namespace

std::vector<RelOptRulePtr> MongoSchema::AdapterRules() const {
  return {
      std::make_shared<MongoTableScanRule>(),
      std::make_shared<MongoFilterRule>(),
  };
}

Result<std::string> MongoGenerateQuery(const RelNodePtr& node) {
  if (const auto* scan = dynamic_cast<const MongoTableScan*>(node.get())) {
    return "db." + scan->qualified_name().back() + ".find({})";
  }
  if (const auto* filter = dynamic_cast<const MongoFilter*>(node.get())) {
    const auto* scan =
        dynamic_cast<const MongoTableScan*>(filter->input(0).get());
    std::string collection =
        scan != nullptr ? scan->qualified_name().back() : "collection";
    return "db." + collection + ".find(" + filter->find_query().Dump() + ")";
  }
  return Status::Unsupported("cannot render find() for " + node->op_name());
}

}  // namespace calcite
