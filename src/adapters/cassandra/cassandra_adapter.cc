#include "adapters/cassandra/cassandra_adapter.h"

#include <algorithm>

#include "metadata/metadata.h"
#include "rex/rex_interpreter.h"
#include "rex/rex_util.h"

namespace calcite {

CassandraTable::CassandraTable(RelDataTypePtr row_type, std::vector<Row> rows,
                               std::vector<int> partition_keys,
                               RelCollation clustering)
    : row_type_(std::move(row_type)),
      rows_(std::move(rows)),
      partition_keys_(std::move(partition_keys)),
      clustering_(std::move(clustering)) {
  // Physically store rows grouped by partition and clustered within it,
  // as Cassandra does.
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (int k : partition_keys_) {
                       int c = a[static_cast<size_t>(k)].Compare(
                           b[static_cast<size_t>(k)]);
                       if (c != 0) return c < 0;
                     }
                     for (const FieldCollation& fc : clustering_.fields()) {
                       int c = a[static_cast<size_t>(fc.field)].Compare(
                           b[static_cast<size_t>(fc.field)]);
                       if (fc.direction == Direction::kDescending) c = -c;
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
}

TableStats CassandraTable::GetStatistic() const {
  TableStats stat;
  stat.row_count = static_cast<double>(rows_.size());
  return stat;
}

Result<std::vector<Row>> CassandraTable::Scan() const { return rows_; }

Result<RowBatchPuller> CassandraTable::ScanBatched(size_t batch_size) const {
  return SliceRows(rows_, batch_size);
}

Result<RowBatchPuller> CassandraTable::ScanBatchedFiltered(
    size_t batch_size, ScanPredicateList predicates) const {
  // The simulated backend filters its stored rows before materializing
  // them; partition/clustering order is preserved (pushdown only drops
  // rows, never reorders them).
  return FilterSliceRows(rows_, batch_size, std::move(predicates));
}

const Convention* CassandraSchema::CassandraConvention() {
  static const Convention* kConvention = new Convention("CASSANDRA", 0.9);
  return kConvention;
}

const Convention* CassandraSchema::ScanConvention() const {
  return CassandraConvention();
}

// ------------------------------- operators ---------------------------------

RelNodePtr CassandraTableScan::Create(const TableScan& scan) {
  return RelNodePtr(new CassandraTableScan(
      RelTraitSet(CassandraSchema::CassandraConvention()), scan.row_type(),
      scan.table(), scan.qualified_name(), scan.table_convention()));
}

RelNodePtr CassandraTableScan::Copy(RelTraitSet traits,
                                    std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(new CassandraTableScan(std::move(traits), row_type(),
                                           table_, qualified_name_,
                                           table_convention_));
}

Result<std::vector<Row>> CassandraTableScan::Execute() const {
  return table_->Scan();
}

RelNodePtr CassandraFilter::Create(
    RelNodePtr input, RexNodePtr condition, bool single_partition,
    std::shared_ptr<const CassandraTable> table) {
  RelDataTypePtr row_type = input->row_type();
  return RelNodePtr(new CassandraFilter(
      RelTraitSet(CassandraSchema::CassandraConvention()),
      std::move(row_type), std::move(input), std::move(condition),
      single_partition, std::move(table)));
}

std::string CassandraFilter::DigestAttributes() const {
  return Filter::DigestAttributes() +
         (single_partition_ ? ", singlePartition" : "");
}

RelNodePtr CassandraFilter::Copy(RelTraitSet traits,
                                 std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new CassandraFilter(std::move(traits), row_type(),
                                        std::move(inputs[0]), condition_,
                                        single_partition_, table_));
}

Result<std::vector<Row>> CassandraFilter::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;
  std::vector<Row> out;
  for (Row& row : rows.value()) {
    auto pass = RexInterpreter::EvalPredicate(condition_, row);
    if (!pass.ok()) return pass.status();
    if (pass.value()) out.push_back(std::move(row));
  }
  return out;
}

std::optional<RelOptCost> CassandraFilter::SelfCost(MetadataQuery* mq) const {
  double out_rows = mq->RowCount(shared_from_this());
  if (single_partition_) {
    // A partition-key point read touches one partition only.
    return RelOptCost(out_rows, out_rows * 0.2, out_rows * 0.1);
  }
  double input_rows = mq->RowCount(input(0));
  return RelOptCost(out_rows, input_rows * 0.8, 0);
}

RelNodePtr CassandraSort::Create(RelNodePtr input, RelCollation collation) {
  RelDataTypePtr row_type = input->row_type();
  RelTraitSet traits(CassandraSchema::CassandraConvention(), collation);
  return RelNodePtr(new CassandraSort(std::move(traits), std::move(row_type),
                                      std::move(input), std::move(collation),
                                      0, -1));
}

RelNodePtr CassandraSort::Copy(RelTraitSet traits,
                               std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new CassandraSort(std::move(traits), row_type(),
                                      std::move(inputs[0]), collation_,
                                      offset_, fetch_));
}

Result<std::vector<Row>> CassandraSort::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;
  std::vector<Row> data = std::move(rows).value();
  // Within a single partition the store already returns rows in clustering
  // order; the stable sort below is a no-op pass in the common case and
  // keeps the simulation honest for synthetic inputs.
  std::stable_sort(data.begin(), data.end(),
                   [this](const Row& a, const Row& b) {
                     for (const FieldCollation& fc : collation_.fields()) {
                       int c = a[static_cast<size_t>(fc.field)].Compare(
                           b[static_cast<size_t>(fc.field)]);
                       if (fc.direction == Direction::kDescending) c = -c;
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  return data;
}

std::optional<RelOptCost> CassandraSort::SelfCost(MetadataQuery* mq) const {
  double rows = mq->RowCount(input(0));
  // Retrieval in clustering order: linear, no comparison sort.
  return RelOptCost(rows, rows * 0.1, 0);
}

// --------------------------------- rules -----------------------------------

namespace {

const CassandraTable* TableOf(const RelNode& node) {
  const auto* scan = dynamic_cast<const TableScan*>(&node);
  if (scan == nullptr) return nullptr;
  return dynamic_cast<const CassandraTable*>(scan->table().get());
}

class CassandraTableScanRule final : public ConverterRule {
 public:
  CassandraTableScanRule()
      : ConverterRule(Convention::Logical(),
                      CassandraSchema::CassandraConvention()) {}

  std::string name() const override { return "CassandraTableScanRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    if (node.convention() != Convention::Logical()) return false;
    const auto* scan = dynamic_cast<const TableScan*>(&node);
    return scan != nullptr && scan->table_convention() == to();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    call->TransformTo(CassandraTableScan::Create(
        static_cast<const TableScan&>(*call->rel())));
  }
};

/// Rewrites LogicalFilter over a Cassandra scan to CassandraFilter, marking
/// whether the predicate pins a single partition ("this requires that a
/// LogicalFilter has been rewritten to a CassandraFilter to ensure the
/// partition filter is pushed down to the database", §6).
class CassandraFilterRule final : public RelOptRule {
 public:
  std::string name() const override { return "CassandraFilterRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical() &&
           dynamic_cast<const Filter*>(&node) != nullptr;
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    return i != 0 || TableOf(child) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    const CassandraTable* table = TableOf(*filter.input(0));
    if (table == nullptr) return;

    // Which partition keys are pinned by equality with a constant?
    std::set<int> pinned;
    for (const RexNodePtr& conjunct : RexUtil::FlattenAnd(filter.condition())) {
      const RexCall* eq = AsCall(conjunct);
      if (eq == nullptr || eq->op() != OpKind::kEquals) continue;
      const RexInputRef* ref = AsInputRef(eq->operand(0));
      const RexNodePtr& other = eq->operand(1);
      if (ref == nullptr) continue;
      if (RexUtil::IsConstant(other)) pinned.insert(ref->index());
    }
    bool single_partition = !table->partition_keys().empty();
    for (int key : table->partition_keys()) {
      if (pinned.count(key) == 0) single_partition = false;
    }

    const auto* scan_node =
        dynamic_cast<const TableScan*>(filter.input(0).get());
    std::shared_ptr<const CassandraTable> table_ptr =
        std::dynamic_pointer_cast<const CassandraTable>(scan_node->table());
    RelNodePtr scan = call->Convert(
        filter.input(0),
        RelTraitSet(CassandraSchema::CassandraConvention()));
    if (scan == nullptr) return;
    call->TransformTo(CassandraFilter::Create(std::move(scan),
                                              filter.condition(),
                                              single_partition,
                                              std::move(table_ptr)));
  }
};

/// The §6 example rule, both preconditions checked:
///  (1) input filtered to a single partition,
///  (2) required sort shares a prefix with the clustering order.
class CassandraSortRule final : public RelOptRule {
 public:
  std::string name() const override { return "CassandraSortRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* sort = dynamic_cast<const Sort*>(&node);
    return node.convention() == Convention::Logical() && sort != nullptr &&
           !sort->collation().empty();
  }

  bool MatchesChild(int i, const RelNode& child) const override {
    if (i != 0) return true;
    const auto* filter = dynamic_cast<const CassandraFilter*>(&child);
    return filter != nullptr && filter->single_partition();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& sort = static_cast<const Sort&>(*call->rel());
    const auto* filter =
        dynamic_cast<const CassandraFilter*>(sort.input(0).get());
    if (filter == nullptr || !filter->single_partition()) return;
    const std::shared_ptr<const CassandraTable>& table =
        filter->cassandra_table();
    if (table == nullptr) return;
    // Precondition (2): clustering order must satisfy the requested sort.
    if (!table->clustering().Satisfies(sort.collation())) return;
    call->TransformTo(
        CassandraSort::Create(sort.input(0), sort.collation()));
  }
};

}  // namespace

std::vector<RelOptRulePtr> CassandraSchema::AdapterRules() const {
  return {
      std::make_shared<CassandraTableScanRule>(),
      std::make_shared<CassandraFilterRule>(),
      std::make_shared<CassandraSortRule>(),
  };
}

// ---------------------------- CQL generation -------------------------------

namespace {

Result<std::string> CqlExpr(const RexNodePtr& rex,
                            const std::vector<std::string>& fields) {
  if (const RexInputRef* ref = AsInputRef(rex)) {
    return fields[static_cast<size_t>(ref->index())];
  }
  if (const RexLiteral* lit = AsLiteral(rex)) {
    if (lit->value().is_string()) return "'" + lit->value().AsString() + "'";
    return lit->value().ToString();
  }
  const RexCall* call = AsCall(rex);
  if (call == nullptr) return Status::Unsupported("cannot render CQL");
  std::vector<std::string> operands;
  for (const RexNodePtr& operand : call->operands()) {
    auto sub = CqlExpr(operand, fields);
    if (!sub.ok()) return sub;
    operands.push_back(std::move(sub).value());
  }
  if (call->op() == OpKind::kAnd) {
    std::string out = operands[0];
    for (size_t i = 1; i < operands.size(); ++i) out += " AND " + operands[i];
    return out;
  }
  if (IsComparison(call->op())) {
    return operands[0] + " " + OpKindName(call->op()) + " " + operands[1];
  }
  return Status::Unsupported(std::string("operator ") +
                             OpKindName(call->op()) + " in CQL");
}

}  // namespace

Result<std::string> CassandraGenerateCql(const RelNodePtr& node) {
  if (const auto* scan = dynamic_cast<const CassandraTableScan*>(node.get())) {
    return "SELECT * FROM " + scan->qualified_name().back() + ";";
  }
  if (const auto* filter = dynamic_cast<const CassandraFilter*>(node.get())) {
    auto base = CassandraGenerateCql(node->input(0));
    if (!base.ok()) return base;
    std::string sql = base.value();
    sql.pop_back();  // trailing ';'
    std::vector<std::string> fields;
    for (const RelDataTypeField& f : filter->input(0)->row_type()->fields()) {
      fields.push_back(f.name);
    }
    auto expr = CqlExpr(filter->condition(), fields);
    if (!expr.ok()) return expr;
    return sql + " WHERE " + expr.value() +
           (filter->single_partition() ? ";" : " ALLOW FILTERING;");
  }
  if (const auto* sort = dynamic_cast<const CassandraSort*>(node.get())) {
    auto base = CassandraGenerateCql(node->input(0));
    if (!base.ok()) return base;
    std::string sql = base.value();
    sql.pop_back();
    std::string order;
    const auto& fields = sort->input(0)->row_type()->fields();
    for (size_t i = 0; i < sort->collation().fields().size(); ++i) {
      const FieldCollation& fc = sort->collation().fields()[i];
      if (i > 0) order += ", ";
      order += fields[static_cast<size_t>(fc.field)].name;
      if (fc.direction == Direction::kDescending) order += " DESC";
    }
    return sql + " ORDER BY " + order + ";";
  }
  return Status::Unsupported("cannot render CQL for " + node->op_name());
}

}  // namespace calcite
