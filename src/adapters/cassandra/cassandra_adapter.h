#ifndef CALCITE_ADAPTERS_CASSANDRA_CASSANDRA_ADAPTER_H_
#define CALCITE_ADAPTERS_CASSANDRA_CASSANDRA_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/rule.h"
#include "rel/core.h"
#include "schema/schema.h"

namespace calcite {

/// A simulated wide-column store: "partitions data by a subset of columns in
/// a table and then within each partition, sorts rows based on another
/// subset of columns" (§6). The adapter reproduces the paper's two-condition
/// sort push-down rule verbatim:
///   (1) the table has been previously filtered to a single partition, and
///   (2) the sorting of partitions has some common prefix with the required
///       sort.
class CassandraTable final : public Table {
 public:
  CassandraTable(RelDataTypePtr row_type, std::vector<Row> rows,
                 std::vector<int> partition_keys, RelCollation clustering);

  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }
  TableStats GetStatistic() const override;
  Result<std::vector<Row>> Scan() const override;
  Result<RowBatchPuller> ScanBatched(size_t batch_size) const override;
  Result<RowBatchPuller> ScanBatchedFiltered(
      size_t batch_size, ScanPredicateList predicates) const override;

  /// The simulated backend's rows double as stable storage for
  /// morsel-parallel scans on the enumerable side of the convention
  /// boundary.
  const std::vector<Row>* MaterializedRows() const override { return &rows_; }

  /// The simulated backend is immutable after construction, so the columnar
  /// decomposition is built once and cached.
  TableColumnsPtr MaterializedColumns(const TypeFactory&) const override {
    return columnar_.Get(rows_, row_type_);
  }

  const std::vector<int>& partition_keys() const { return partition_keys_; }
  const RelCollation& clustering() const { return clustering_; }

 private:
  RelDataTypePtr row_type_;
  std::vector<Row> rows_;
  std::vector<int> partition_keys_;
  RelCollation clustering_;
  ColumnarCache columnar_;
};

class CassandraSchema final : public Schema {
 public:
  const Convention* ScanConvention() const override;
  std::vector<RelOptRulePtr> AdapterRules() const override;

  static const Convention* CassandraConvention();
};

/// Generates the CQL for a Cassandra-convention subtree (Table 2's target
/// language for this adapter).
Result<std::string> CassandraGenerateCql(const RelNodePtr& node);

class CassandraTableScan final : public TableScan {
 public:
  static RelNodePtr Create(const TableScan& scan);

  std::string op_name() const override { return "CassandraTableScan"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;

 private:
  using TableScan::TableScan;
};

class CassandraFilter final : public Filter {
 public:
  /// `single_partition`: the condition pins every partition key with an
  /// equality — precondition (1) of the sort rule. `table` carries the
  /// partition/clustering metadata forward so downstream rules (the sort
  /// push-down) can check precondition (2) without reaching through memo
  /// placeholders.
  static RelNodePtr Create(RelNodePtr input, RexNodePtr condition,
                           bool single_partition,
                           std::shared_ptr<const CassandraTable> table);

  bool single_partition() const { return single_partition_; }
  const std::shared_ptr<const CassandraTable>& cassandra_table() const {
    return table_;
  }

  std::string op_name() const override { return "CassandraFilter"; }
  std::string DigestAttributes() const override;
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  std::optional<RelOptCost> SelfCost(MetadataQuery* mq) const override;

 private:
  CassandraFilter(RelTraitSet traits, RelDataTypePtr row_type,
                  RelNodePtr input, RexNodePtr condition,
                  bool single_partition,
                  std::shared_ptr<const CassandraTable> table)
      : Filter(std::move(traits), std::move(row_type), std::move(input),
               std::move(condition)),
        single_partition_(single_partition),
        table_(std::move(table)) {}

  bool single_partition_;
  std::shared_ptr<const CassandraTable> table_;
};

class CassandraSort final : public Sort {
 public:
  static RelNodePtr Create(RelNodePtr input, RelCollation collation);

  std::string op_name() const override { return "CassandraSort"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  /// Rows inside one partition are already stored in clustering order, so
  /// this sort is nearly free — that is why pushing it down wins.
  std::optional<RelOptCost> SelfCost(MetadataQuery* mq) const override;

 private:
  using Sort::Sort;
};

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_CASSANDRA_CASSANDRA_ADAPTER_H_
