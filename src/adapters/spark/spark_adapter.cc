#include "adapters/spark/spark_adapter.h"

#include "adapters/enumerable/enumerable_rels.h"
#include "metadata/metadata.h"

namespace calcite {

const Convention* SparkAdapter::SparkConvention() {
  // External cluster engine: per-operator overhead above in-process work.
  static const Convention* kConvention = new Convention("SPARK", 1.2);
  return kConvention;
}

RelNodePtr SparkDataTransfer::Create(RelNodePtr input) {
  RelDataTypePtr row_type = input->row_type();
  return RelNodePtr(new SparkDataTransfer(
      RelTraitSet(SparkAdapter::SparkConvention()), std::move(row_type),
      std::move(input)));
}

RelNodePtr SparkDataTransfer::Copy(RelTraitSet traits,
                                   std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new SparkDataTransfer(std::move(traits), row_type(),
                                          std::move(inputs[0])));
}

Result<std::vector<Row>> SparkDataTransfer::Execute() const {
  return input(0)->Execute();
}

std::optional<RelOptCost> SparkDataTransfer::SelfCost(
    MetadataQuery* mq) const {
  double rows = mq->RowCount(input(0));
  // Serialization + shuffle into the cluster: heavier than a plain
  // same-process converter.
  return RelOptCost(rows, rows * 0.2, rows * 1.5);
}

RelNodePtr SparkHashJoin::Create(RelNodePtr left, RelNodePtr right,
                                 RexNodePtr condition, JoinType join_type,
                                 RelDataTypePtr row_type) {
  return RelNodePtr(new SparkHashJoin(
      RelTraitSet(SparkAdapter::SparkConvention()), std::move(row_type),
      std::move(left), std::move(right), std::move(condition), join_type));
}

RelNodePtr SparkHashJoin::Copy(RelTraitSet traits,
                               std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new SparkHashJoin(std::move(traits), row_type(),
                                      std::move(inputs[0]),
                                      std::move(inputs[1]), condition_,
                                      join_type_));
}

Result<std::vector<Row>> SparkHashJoin::Execute() const {
  // Delegate to the enumerable hash-join algorithm over the transferred
  // inputs (the simulation runs in-process).
  RelNodePtr as_enumerable = EnumerableHashJoin::Create(
      input(0), input(1), condition_, join_type_, row_type());
  return as_enumerable->Execute();
}

namespace {

class SparkTransferRule final : public ConverterRule {
 public:
  explicit SparkTransferRule(const Convention* source)
      : ConverterRule(source, SparkAdapter::SparkConvention()) {}

  std::string name() const override {
    return "SparkTransferRule(" + from()->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == from();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    call->TransformTo(SparkDataTransfer::Create(call->rel()));
  }
};

class SparkJoinRule final : public ConverterRule {
 public:
  SparkJoinRule()
      : ConverterRule(Convention::Logical(),
                      SparkAdapter::SparkConvention()) {}

  std::string name() const override { return "SparkJoinRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    const auto* join = dynamic_cast<const Join*>(&node);
    return node.convention() == Convention::Logical() && join != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& join = static_cast<const Join&>(*call->rel());
    std::vector<std::pair<int, int>> keys;
    std::vector<RexNodePtr> remaining;
    if (!join.AnalyzeEquiKeys(&keys, &remaining)) return;
    RelNodePtr left = call->Convert(join.input(0), RelTraitSet(to()));
    RelNodePtr right = call->Convert(join.input(1), RelTraitSet(to()));
    if (left == nullptr || right == nullptr) return;
    call->TransformTo(SparkHashJoin::Create(std::move(left), std::move(right),
                                            join.condition(),
                                            join.join_type(),
                                            join.row_type()));
  }
};

}  // namespace

std::vector<RelOptRulePtr> SparkAdapter::Rules(
    std::vector<const Convention*> sources) {
  std::vector<RelOptRulePtr> rules;
  rules.push_back(std::make_shared<SparkJoinRule>());
  for (const Convention* source : sources) {
    rules.push_back(std::make_shared<SparkTransferRule>(source));
  }
  return rules;
}

Result<std::string> SparkGenerateRdd(const RelNodePtr& node) {
  if (const auto* join = dynamic_cast<const SparkHashJoin*>(node.get())) {
    std::vector<std::pair<int, int>> keys;
    std::vector<RexNodePtr> remaining;
    join->AnalyzeEquiKeys(&keys, &remaining);
    std::string left = "left";
    std::string right = "right";
    return left + ".keyBy(r -> r.get(" + std::to_string(keys[0].first) +
           ")).join(" + right + ".keyBy(r -> r.get(" +
           std::to_string(keys[0].second) + "))).values()";
  }
  if (dynamic_cast<const SparkDataTransfer*>(node.get()) != nullptr) {
    return std::string("sc.parallelize(fetchFrom(") +
           node->input(0)->convention()->name() + "))";
  }
  return Status::Unsupported("cannot render RDD code for " +
                             node->op_name());
}

}  // namespace calcite
