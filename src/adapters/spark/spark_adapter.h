#ifndef CALCITE_ADAPTERS_SPARK_SPARK_ADAPTER_H_
#define CALCITE_ADAPTERS_SPARK_SPARK_ADAPTER_H_

#include <string>
#include <vector>

#include "plan/rule.h"
#include "rel/core.h"

namespace calcite {

/// A simulated external Spark execution engine — Figure 2's "one possible
/// implementation is to use Apache Spark as an external engine: the join is
/// converted to spark convention, and its inputs are converters from
/// jdbc-mysql and splunk to spark convention."
///
/// Spark owns no tables; it receives data from other conventions through
/// SparkDataTransfer converters (which the cost model charges per row — the
/// cluster round-trip) and executes joins on the transferred RDDs. This is
/// deliberately the *losing* alternative of the Figure 2 plan race whenever
/// the Splunk lookup join is available.
class SparkAdapter {
 public:
  static const Convention* SparkConvention();

  /// The rules: SparkJoinRule (logical join → SparkHashJoin) and transfer
  /// converter rules from the given foreign conventions.
  static std::vector<RelOptRulePtr> Rules(
      std::vector<const Convention*> sources);
};

/// Moves rows from another engine into the Spark cluster (an RDD load).
class SparkDataTransfer final : public Converter {
 public:
  static RelNodePtr Create(RelNodePtr input);

  std::string op_name() const override { return "SparkDataTransfer"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  std::optional<RelOptCost> SelfCost(MetadataQuery* mq) const override;

 private:
  using Converter::Converter;
};

class SparkHashJoin final : public Join {
 public:
  static RelNodePtr Create(RelNodePtr left, RelNodePtr right,
                           RexNodePtr condition, JoinType join_type,
                           RelDataTypePtr row_type);

  std::string op_name() const override { return "SparkHashJoin"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;

 private:
  using Join::Join;
};

/// Renders the pseudo Java-RDD program for a Spark subtree (Table 2: the
/// Spark adapter's target language is the Java RDD API).
Result<std::string> SparkGenerateRdd(const RelNodePtr& node);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_SPARK_SPARK_ADAPTER_H_
