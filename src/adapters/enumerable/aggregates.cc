#include "adapters/enumerable/aggregates.h"

namespace calcite {

Status AggAccumulator::Add(const Row& row) {
  if (call_->kind == AggKind::kCountStar) {
    ++count_;
    return Status::OK();
  }
  if (call_->args.empty()) {
    return Status::RuntimeError("aggregate " + call_->ToString() +
                                " has no argument");
  }
  int arg = call_->args[0];
  if (arg < 0 || static_cast<size_t>(arg) >= row.size()) {
    return Status::RuntimeError("aggregate argument $" + std::to_string(arg) +
                                " out of range");
  }
  const Value& v = row[static_cast<size_t>(arg)];
  if (v.IsNull()) return Status::OK();  // SQL aggregates ignore NULLs.

  if (call_->distinct) {
    if (!distinct_values_.insert(v).second) return Status::OK();
  }
  return AccumulateValue(v);
}

Status AggAccumulator::AccumulateValue(const Value& v) {
  switch (call_->kind) {
    case AggKind::kCount:
      ++count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      ++count_;
      if (v.is_double() || sum_is_double_) {
        if (!sum_is_double_) {
          sum_double_ = static_cast<double>(sum_int_);
          sum_is_double_ = true;
        }
        sum_double_ += v.AsDouble();
      } else if (v.is_int()) {
        sum_int_ += v.AsInt();
      } else {
        return Status::RuntimeError("SUM/AVG over non-numeric value");
      }
      break;
    case AggKind::kMin:
      if (!has_value_ || v.Compare(min_) < 0) min_ = v;
      has_value_ = true;
      break;
    case AggKind::kMax:
      if (!has_value_ || v.Compare(max_) > 0) max_ = v;
      has_value_ = true;
      break;
    case AggKind::kSingleValue:
      if (has_value_) {
        return Status::RuntimeError(
            "SINGLE_VALUE aggregate saw more than one row");
      }
      single_ = v;
      has_value_ = true;
      break;
    case AggKind::kCountStar:
      break;  // handled above
  }
  return Status::OK();
}

Status AggAccumulator::MergeFrom(const AggAccumulator& other) {
  if (call_->distinct) {
    // Set union: replay only the values this side has not seen, through the
    // same post-dedup path Add uses, so counts and sums stay consistent.
    for (const Value& v : other.distinct_values_) {
      if (distinct_values_.insert(v).second) {
        CALCITE_RETURN_IF_ERROR(AccumulateValue(v));
      }
    }
    return Status::OK();
  }
  switch (call_->kind) {
    case AggKind::kCount:
    case AggKind::kCountStar:
      count_ += other.count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      count_ += other.count_;
      if (other.sum_is_double_ || sum_is_double_) {
        if (!sum_is_double_) {
          sum_double_ = static_cast<double>(sum_int_);
          sum_is_double_ = true;
        }
        sum_double_ += other.sum_is_double_
                           ? other.sum_double_
                           : static_cast<double>(other.sum_int_);
      } else {
        sum_int_ += other.sum_int_;
      }
      break;
    case AggKind::kMin:
      if (other.has_value_ &&
          (!has_value_ || other.min_.Compare(min_) < 0)) {
        min_ = other.min_;
      }
      has_value_ = has_value_ || other.has_value_;
      break;
    case AggKind::kMax:
      if (other.has_value_ &&
          (!has_value_ || other.max_.Compare(max_) > 0)) {
        max_ = other.max_;
      }
      has_value_ = has_value_ || other.has_value_;
      break;
    case AggKind::kSingleValue:
      if (has_value_ && other.has_value_) {
        return Status::RuntimeError(
            "SINGLE_VALUE aggregate saw more than one row");
      }
      if (other.has_value_) {
        single_ = other.single_;
        has_value_ = true;
      }
      break;
  }
  return Status::OK();
}

Status AggAccumulator::AddBatch(const std::vector<Row>& rows) {
  return AddBatchSel(rows, /*sel=*/nullptr);
}

Status AggAccumulator::AddBatchSel(const std::vector<Row>& rows,
                                   const SelectionVector* sel) {
  const size_t n = sel != nullptr ? sel->size() : rows.size();
  if (call_->kind == AggKind::kCountStar) {
    count_ += static_cast<int64_t>(n);
    return Status::OK();
  }
  for (size_t k = 0; k < n; ++k) {
    CALCITE_RETURN_IF_ERROR(Add(rows[sel != nullptr ? (*sel)[k] : k]));
  }
  return Status::OK();
}

Value AggAccumulator::Finish() const {
  switch (call_->kind) {
    case AggKind::kCount:
    case AggKind::kCountStar:
      return Value::Int(count_);
    case AggKind::kSum:
      if (count_ == 0) return Value::Null();
      return sum_is_double_ ? Value::Double(sum_double_)
                            : Value::Int(sum_int_);
    case AggKind::kAvg:
      if (count_ == 0) return Value::Null();
      return Value::Double((sum_is_double_ ? sum_double_
                                           : static_cast<double>(sum_int_)) /
                           static_cast<double>(count_));
    case AggKind::kMin:
      return has_value_ ? min_ : Value::Null();
    case AggKind::kMax:
      return has_value_ ? max_ : Value::Null();
    case AggKind::kSingleValue:
      return has_value_ ? single_ : Value::Null();
  }
  return Value::Null();
}

Status ComputeAggregates(const std::vector<AggregateCall>& calls,
                         const std::vector<Row>& rows, Row* out) {
  for (const AggregateCall& call : calls) {
    AggAccumulator acc(call);
    for (const Row& row : rows) {
      CALCITE_RETURN_IF_ERROR(acc.Add(row));
    }
    out->push_back(acc.Finish());
  }
  return Status::OK();
}

}  // namespace calcite
