#include "adapters/enumerable/enumerable_rels.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "adapters/enumerable/aggregates.h"
#include "adapters/enumerable/columnar_agg.h"
#include "exec/arena.h"
#include "exec/column_batch.h"
#include "exec/parallel/parallel_exec.h"
#include "metadata/metadata.h"
#include "rex/rex_columnar.h"
#include "rex/rex_fuse.h"
#include "rex/rex_interpreter.h"
#include "rex/rex_util.h"

namespace calcite {

// The operators below execute as vectorized pull pipelines: ExecuteBatched
// wires a chain of RowBatchPullers that exchange RowBatch chunks, so the
// per-call closure dispatch the old row-at-a-time discipline paid on every
// tuple is amortized over a whole batch (filters hand selection vectors to
// their consumer instead of compacting — see ExecuteSelBatched — and the
// hash operators probe a batch per dispatch).
// Execute() is the materializing wrapper over the same pipeline, so there is
// a single implementation of each operator's semantics; `batch_size = 1`
// reproduces the old row-at-a-time behavior exactly (see the parity tests).

namespace {

RelTraitSet EnumerableTraits() {
  return RelTraitSet(Convention::Enumerable());
}

/// Three-way lexicographic row comparison under a collation.
int CompareRows(const Row& a, const Row& b, const RelCollation& collation) {
  for (const FieldCollation& fc : collation.fields()) {
    int c = a[static_cast<size_t>(fc.field)].Compare(
        b[static_cast<size_t>(fc.field)]);
    if (fc.direction == Direction::kDescending) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

/// Full-row lexicographic order (for set operations).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

size_t NormalizedBatchSize(const ExecOptions& opts) {
  return opts.batch_size == 0 ? 1 : opts.batch_size;
}

/// Gate for the columnar fast path. The morsel-parallel executor has its own
/// columnar pipeline (checked before any serial path), so the serial
/// columnar operators only engage for single-threaded execution.
bool ColumnarEnabled(const ExecOptions& opts) {
  return opts.enable_columnar && opts.num_threads <= 1;
}

/// Bridges a columnar pipeline back to dense RowBatches (the conversion
/// boundary for row-path consumers: sort, set ops, QueryResult).
RowBatchPuller ColumnarToRowPuller(RelNodePtr self, ColumnBatchPuller pull) {
  return RowBatchPuller([self, pull]() -> Result<RowBatch> {
    auto batch = pull();
    if (!batch.ok()) return batch.status();
    RowBatch out;
    ColumnsToRows(batch.value(), &out);
    return out;
  });
}

/// Materializes a node's full output through its batch pipeline.
Result<std::vector<Row>> DrainNode(const RelNode& node) {
  auto puller = node.ExecuteBatched(ExecOptions{});
  if (!puller.ok()) return puller.status();
  return DrainBatches(puller.value());
}

}  // namespace

std::optional<Row> JoinSideKey(const Row& row,
                               const std::vector<std::pair<int, int>>& keys,
                               bool left_side) {
  Row key;
  key.reserve(keys.size());
  for (const auto& [l, r] : keys) {
    const Value& v = row[static_cast<size_t>(left_side ? l : r)];
    if (v.IsNull()) return std::nullopt;
    key.push_back(v);
  }
  return key;
}

Status ApplyProjectToSelBatch(const std::vector<RexNodePtr>& exprs,
                              SelBatch* batch) {
  // Evaluate each projection over the live rows only (one column per
  // expression, one entry per selected row), then write the columns back
  // into the batch's leading rows, which the caller owns — reusing their
  // allocations instead of materializing a fresh Row per output row. All
  // columns are computed before any row is overwritten, so input refs
  // never read a clobbered value; because output row k overwrites input
  // row k (<= the k-th selected index), projection compacts the batch as a
  // side effect.
  const SelectionVector* sel = batch->has_sel ? &batch->sel : nullptr;
  const size_t n_out = batch->ActiveCount();
  std::vector<std::vector<Value>> columns(exprs.size());
  for (size_t e = 0; e < exprs.size(); ++e) {
    CALCITE_RETURN_IF_ERROR(
        RexInterpreter::EvalBatchSel(exprs[e], batch->rows, sel, &columns[e]));
  }
  for (size_t i = 0; i < n_out; ++i) {
    Row& row = batch->rows[i];
    row.resize(exprs.size());
    for (size_t e = 0; e < exprs.size(); ++e) {
      row[e] = std::move(columns[e][i]);
    }
  }
  batch->rows.resize(n_out);
  batch->sel.clear();
  batch->has_sel = false;
  return Status::OK();
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Row PadNullRight(const Row& left, size_t right_width) {
  Row out = left;
  out.resize(left.size() + right_width);
  return out;
}

Row PadNullLeft(size_t left_width, const Row& right) {
  Row out(left_width);
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

// ------------------------------- TableScan --------------------------------

RelNodePtr EnumerableTableScan::Create(const TableScan& scan) {
  return RelNodePtr(new EnumerableTableScan(
      EnumerableTraits(), scan.row_type(), scan.table(),
      scan.qualified_name(), scan.table_convention()));
}

RelNodePtr EnumerableTableScan::Copy(RelTraitSet traits,
                                     std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(new EnumerableTableScan(std::move(traits), row_type(),
                                            table_, qualified_name_,
                                            table_convention_));
}

Result<std::vector<Row>> EnumerableTableScan::Execute() const {
  return table_->Scan();
}

Result<RowBatchPuller> EnumerableTableScan::ExecuteBatched(
    const ExecOptions& opts) const {
  if (auto parallel = TryExecuteParallel(*this, opts)) {
    return std::move(*parallel);
  }
  ScanSpec spec;
  spec.batch_size = NormalizedBatchSize(opts);
  spec.access_path = opts.access_path;
  auto puller = table_->OpenScan(spec);
  if (!puller.ok()) return puller;
  // The table's puller may capture a raw `this`; pin the table here so the
  // pipeline owns it for as long as it is pulled.
  TablePtr table = table_;
  RowBatchPuller pull = std::move(puller).value();
  return RowBatchPuller(
      [table, pull]() -> Result<RowBatch> { return pull(); });
}

std::optional<Result<ColumnBatchPuller>>
EnumerableTableScan::TryExecuteColumnar(const ExecOptions& opts) const {
  if (!ColumnarEnabled(opts)) return std::nullopt;
  TypeFactory type_factory;
  TableColumnsPtr columns = table_->MaterializedColumns(type_factory);
  if (columns == nullptr) return std::nullopt;
  // The batches are zero-copy views into the table's cached decomposition;
  // pinning the node (which owns the table) keeps that storage alive for as
  // long as the pipeline is pulled.
  return Result<ColumnBatchPuller>(
      ScanTableColumns(std::move(columns), NormalizedBatchSize(opts),
                       ScanPredicateList{}, shared_from_this(),
                       opts.enable_fusion));
}

// --------------------------------- Filter ---------------------------------

RelNodePtr EnumerableFilter::Create(RelNodePtr input, RexNodePtr condition) {
  RelDataTypePtr row_type = input->row_type();
  return RelNodePtr(new EnumerableFilter(EnumerableTraits(),
                                         std::move(row_type),
                                         std::move(input),
                                         std::move(condition)));
}

RelNodePtr EnumerableFilter::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableFilter(std::move(traits), row_type(),
                                         std::move(inputs[0]), condition_));
}

Result<std::vector<Row>> EnumerableFilter::Execute() const {
  return DrainNode(*this);
}

Result<RowBatchPuller> EnumerableFilter::ExecuteBatched(
    const ExecOptions& opts) const {
  // Compacting bridge over the native selection-aware pipeline (which also
  // owns the parallel dispatch), for consumers that need dense batches.
  auto sel = ExecuteSelBatched(opts);
  if (!sel.ok()) return sel.status();
  return CompactSelBatches(std::move(sel).value());
}

Result<SelBatchPuller> EnumerableFilter::ExecuteSelBatched(
    const ExecOptions& opts) const {
  if (auto parallel = TryExecuteParallel(*this, opts)) {
    if (!parallel->ok()) return parallel->status();
    return LiftToSelBatches(std::move(*parallel).value());
  }
  if (auto columnar = TryExecuteColumnar(opts)) {
    // Row-path consumer above a columnar filter: survivors are boxed into
    // dense batches at this boundary (the selection was already applied on
    // raw column storage).
    if (!columnar->ok()) return columnar->status();
    ColumnBatchPuller pull = std::move(*columnar).value();
    return LiftToSelBatches(
        ColumnarToRowPuller(shared_from_this(), std::move(pull)));
  }
  RelNodePtr self = shared_from_this();  // keeps condition_ / the scan alive

  // Leaf pushdown: when the input is an enumerable table scan, the simple
  // conjuncts of the condition run inside the scan, before rows are
  // materialized; only the residual conjuncts are evaluated here, and only
  // against the survivors.
  std::vector<RexNodePtr> residual;
  SelBatchPuller pull;
  const auto* scan = dynamic_cast<const EnumerableTableScan*>(input(0).get());
  ScanPredicateList pushed;
  if (scan != nullptr) {
    ExtractScanPredicates(
        condition_, static_cast<int>(scan->row_type()->fields().size()),
        &pushed, &residual);
  }
  if (!pushed.empty()) {
    ScanSpec spec;
    spec.batch_size = NormalizedBatchSize(opts);
    spec.predicates = std::move(pushed);
    spec.access_path = opts.access_path;
    auto puller = scan->table()->OpenScan(spec);
    if (!puller.ok()) return puller.status();
    // Pin the table for the lifetime of the pipeline (its puller may
    // capture a raw `this`), mirroring EnumerableTableScan::ExecuteBatched.
    TablePtr table = scan->table();
    RowBatchPuller raw = std::move(puller).value();
    pull = LiftToSelBatches(
        RowBatchPuller([table, raw]() -> Result<RowBatch> { return raw(); }));
  } else {
    residual.assign(1, condition_);
    auto in = input(0)->ExecuteSelBatched(opts);
    if (!in.ok()) return in.status();
    pull = std::move(in).value();
  }

  auto conjuncts =
      std::make_shared<std::vector<RexNodePtr>>(std::move(residual));
  return SelBatchPuller([self, conjuncts, pull]() -> Result<SelBatch> {
    for (;;) {
      auto batch = pull();
      if (!batch.ok()) return batch;
      SelBatch sel_batch = std::move(batch).value();
      if (sel_batch.AtEnd()) return sel_batch;
      if (!conjuncts->empty()) {
        sel_batch.EnsureSelection();
        for (const RexNodePtr& pred : *conjuncts) {
          if (sel_batch.sel.empty()) break;
          CALCITE_RETURN_IF_ERROR(RexInterpreter::NarrowSelection(
              pred, sel_batch.rows, &sel_batch.sel));
        }
      }
      // Whole batch eliminated: keep pulling (mid-stream batches always
      // carry at least one live row).
      if (sel_batch.ActiveCount() == 0) continue;
      return sel_batch;
    }
  });
}

std::optional<Result<ColumnBatchPuller>> EnumerableFilter::TryExecuteColumnar(
    const ExecOptions& opts) const {
  if (!ColumnarEnabled(opts)) return std::nullopt;
  RelNodePtr self = shared_from_this();
  const size_t batch_size = NormalizedBatchSize(opts);

  // Mirror of the row path's pushdown split: simple conjuncts run inside
  // the columnar leaf scan (typed loops over the table's raw column
  // storage), the residual narrows the selection via the columnar kernels.
  std::vector<RexNodePtr> residual;
  ColumnBatchPuller pull;
  const auto* scan = dynamic_cast<const EnumerableTableScan*>(input(0).get());
  if (scan != nullptr) {
    TypeFactory type_factory;
    TableColumnsPtr columns = scan->table()->MaterializedColumns(type_factory);
    if (columns == nullptr) return std::nullopt;
    ScanPredicateList pushed;
    ExtractScanPredicates(
        condition_, static_cast<int>(scan->row_type()->fields().size()),
        &pushed, &residual);
    if (pushed.empty()) residual.assign(1, condition_);
    pull = ScanTableColumns(std::move(columns), batch_size, std::move(pushed),
                            self, opts.enable_fusion);
  } else {
    auto in = input(0)->TryExecuteColumnar(opts);
    if (!in.has_value()) return std::nullopt;
    if (!in->ok()) return in;
    residual.assign(1, condition_);
    pull = std::move(*in).value();
  }

  // Residual conjuncts narrow through FusedExpr: whole-tree bytecode
  // programs where the predicate lowers (rex/rex_fuse.h), the per-node
  // kernels otherwise. The puller is single-consumer, matching FusedExpr's
  // one-producer-thread contract.
  auto conjuncts = std::make_shared<std::vector<FusedExpr>>();
  conjuncts->reserve(residual.size());
  for (RexNodePtr& pred : residual) {
    conjuncts->emplace_back(std::move(pred), opts.enable_fusion);
  }
  // Scratch arenas for residual predicate evaluation; recycled batch to
  // batch (nothing the predicate allocates outlives the narrowing).
  auto pool = std::make_shared<ArenaPool>();
  return Result<ColumnBatchPuller>(ColumnBatchPuller(
      [self, conjuncts, pull, pool]() -> Result<ColumnBatch> {
        for (;;) {
          auto batch = pull();
          if (!batch.ok()) return batch;
          ColumnBatch cols = std::move(batch).value();
          if (cols.AtEnd()) return cols;
          if (!conjuncts->empty()) {
            if (!cols.has_sel) {
              cols.sel.resize(cols.num_rows);
              for (size_t i = 0; i < cols.num_rows; ++i) {
                cols.sel[i] = static_cast<uint32_t>(i);
              }
              cols.has_sel = true;
            }
            ArenaPtr scratch = pool->Acquire();
            for (FusedExpr& pred : *conjuncts) {
              if (cols.sel.empty()) break;
              CALCITE_RETURN_IF_ERROR(
                  pred.NarrowSelection(cols, scratch, &cols.sel));
            }
          }
          if (cols.ActiveCount() == 0) continue;
          return cols;
        }
      }));
}

// --------------------------------- Project --------------------------------

RelNodePtr EnumerableProject::Create(RelNodePtr input,
                                     std::vector<RexNodePtr> exprs,
                                     RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableProject(EnumerableTraits(),
                                          std::move(row_type),
                                          std::move(input), std::move(exprs)));
}

RelNodePtr EnumerableProject::Copy(RelTraitSet traits,
                                   std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableProject(std::move(traits), row_type(),
                                          std::move(inputs[0]), exprs_));
}

Result<std::vector<Row>> EnumerableProject::Execute() const {
  return DrainNode(*this);
}

Result<RowBatchPuller> EnumerableProject::ExecuteBatched(
    const ExecOptions& opts) const {
  if (auto parallel = TryExecuteParallel(*this, opts)) {
    return std::move(*parallel);
  }
  if (auto columnar = TryExecuteColumnar(opts)) {
    // The projected columns are boxed into rows only here, at the top of
    // the columnar pipeline.
    if (!columnar->ok()) return columnar->status();
    return ColumnarToRowPuller(shared_from_this(),
                               std::move(*columnar).value());
  }
  // Selection-aware consumer: a filter below hands over its selection
  // vector and the projection evaluates only the live rows, compacting as
  // it writes — the compaction the filter skipped happens here for free.
  auto in = input(0)->ExecuteSelBatched(opts);
  if (!in.ok()) return in.status();
  RelNodePtr self = shared_from_this();  // pins exprs_ for the pipeline
  const EnumerableProject* node = this;
  SelBatchPuller pull = std::move(in).value();
  return RowBatchPuller([self, node, pull]() -> Result<RowBatch> {
    auto batch = pull();
    if (!batch.ok()) return batch.status();
    SelBatch rows = std::move(batch).value();
    if (rows.AtEnd()) return std::move(rows.rows);
    CALCITE_RETURN_IF_ERROR(ApplyProjectToSelBatch(node->exprs_, &rows));
    return std::move(rows.rows);
  });
}

std::optional<Result<ColumnBatchPuller>> EnumerableProject::TryExecuteColumnar(
    const ExecOptions& opts) const {
  if (!ColumnarEnabled(opts)) return std::nullopt;
  auto in = input(0)->TryExecuteColumnar(opts);
  if (!in.has_value()) return std::nullopt;
  if (!in->ok()) return in;
  RelNodePtr self = shared_from_this();  // pins exprs_ for the pipeline
  ColumnBatchPuller pull = std::move(*in).value();
  // Projection exprs evaluate through FusedExpr: whole-tree bytecode where
  // the expression lowers, per-node kernels otherwise (single-consumer
  // puller, so one FusedExpr per expression is safe).
  auto fused = std::make_shared<std::vector<FusedExpr>>();
  fused->reserve(exprs_.size());
  for (const RexNodePtr& expr : exprs_) {
    fused->emplace_back(expr, opts.enable_fusion);
  }
  // Output columns are bump-allocated; each batch's arena is recycled once
  // the consumer drops the batch.
  auto pool = std::make_shared<ArenaPool>();
  return Result<ColumnBatchPuller>(ColumnBatchPuller(
      [self, fused, pull, pool]() -> Result<ColumnBatch> {
        auto batch = pull();
        if (!batch.ok()) return batch;
        ColumnBatch in_cols = std::move(batch).value();
        if (in_cols.AtEnd()) return ColumnBatch{};
        // The output is dense: one entry per active input row, selection
        // consumed by the projection kernels (gather on write).
        ColumnBatch out;
        out.arena = pool->Acquire();
        out.num_rows = in_cols.ActiveCount();
        out.ShareStorage(in_cols);
        for (FusedExpr& expr : *fused) {
          CALCITE_RETURN_IF_ERROR(expr.AppendEvalColumn(in_cols, &out));
        }
        return out;
      }));
}

// -------------------------------- HashJoin --------------------------------

RelNodePtr EnumerableHashJoin::Create(RelNodePtr left, RelNodePtr right,
                                      RexNodePtr condition, JoinType join_type,
                                      RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableHashJoin(
      EnumerableTraits(), std::move(row_type), std::move(left),
      std::move(right), std::move(condition), join_type));
}

RelNodePtr EnumerableHashJoin::Copy(RelTraitSet traits,
                                    std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableHashJoin(std::move(traits), row_type(),
                                           std::move(inputs[0]),
                                           std::move(inputs[1]), condition_,
                                           join_type_));
}

Result<std::vector<Row>> EnumerableHashJoin::Execute() const {
  return DrainNode(*this);
}

namespace {

/// Shared runtime state of a streaming join (hash or nested-loop): the
/// build side is materialized on first pull; probe batches then flow
/// through one at a time. The hash table stays empty for nested loops.
struct JoinExecState {
  bool built = false;
  std::vector<Row> right_data;
  std::unordered_map<Row, std::vector<size_t>, RowHash> table;
  std::vector<bool> right_matched;
  bool left_done = false;
  size_t right_emit_pos = 0;
  /// Join output already produced but not yet handed out: a skewed key can
  /// make one probe batch yield far more than batch_size rows, and the
  /// ExecuteBatched contract caps every returned batch. Drained through
  /// pending_pos (a cursor, so flushing stays linear); cleared — and the
  /// cursor reset — once fully handed out.
  RowBatch pending;
  size_t pending_pos = 0;
};

/// Hands out the next <= batch_size rows of state->pending.
RowBatch FlushPending(JoinExecState* state, size_t batch_size) {
  size_t n = std::min(batch_size, state->pending.size() - state->pending_pos);
  auto first = state->pending.begin() +
               static_cast<ptrdiff_t>(state->pending_pos);
  RowBatch out(std::make_move_iterator(first),
               std::make_move_iterator(first + static_cast<ptrdiff_t>(n)));
  state->pending_pos += n;
  if (state->pending_pos >= state->pending.size()) {
    state->pending.clear();
    state->pending_pos = 0;
  }
  return out;
}

/// Drains the build side into state->right_data and sizes the matched mask.
Status DrainRightSide(const RowBatchPuller& right_pull, JoinExecState* state) {
  for (;;) {
    auto batch = right_pull();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (Row& row : batch.value()) {
      state->right_data.push_back(std::move(row));
    }
  }
  state->right_matched.assign(state->right_data.size(), false);
  return Status::OK();
}

}  // namespace

bool JoinEmitsCombinedRows(JoinType join_type) {
  switch (join_type) {
    case JoinType::kInner:
    case JoinType::kLeft:
    case JoinType::kRight:
    case JoinType::kFull:
      return true;
    case JoinType::kSemi:
    case JoinType::kAnti:
      return false;
  }
  return false;
}

void JoinEmitPerLeftRow(JoinType join_type, bool matched, Row&& lrow,
                        size_t right_width, RowBatch* out) {
  switch (join_type) {
    case JoinType::kLeft:
    case JoinType::kFull:
      if (!matched) out->push_back(PadNullRight(lrow, right_width));
      break;
    case JoinType::kSemi:
      if (matched) out->push_back(std::move(lrow));
      break;
    case JoinType::kAnti:
      if (!matched) out->push_back(std::move(lrow));
      break;
    default:
      break;
  }
}

namespace {

/// The next batch of NULL-padded unmatched build rows (RIGHT/FULL OUTER),
/// empty when exhausted or not applicable to the join type.
RowBatch EmitUnmatchedRight(JoinType join_type, JoinExecState* state,
                            size_t left_width, size_t batch_size) {
  RowBatch out;
  if (join_type != JoinType::kRight && join_type != JoinType::kFull) {
    return out;
  }
  while (state->right_emit_pos < state->right_data.size() &&
         out.size() < batch_size) {
    size_t i = state->right_emit_pos++;
    if (!state->right_matched[i]) {
      out.push_back(PadNullLeft(left_width, state->right_data[i]));
    }
  }
  return out;
}

}  // namespace

Result<RowBatchPuller> EnumerableHashJoin::ExecuteBatched(
    const ExecOptions& opts) const {
  if (auto parallel = TryExecuteParallel(*this, opts)) {
    return std::move(*parallel);
  }
  auto keys = std::make_shared<std::vector<std::pair<int, int>>>();
  auto remaining = std::make_shared<std::vector<RexNodePtr>>();
  if (!AnalyzeEquiKeys(keys.get(), remaining.get())) {
    return Status::PlanError(
        "EnumerableHashJoin requires at least one equi-join key");
  }
  auto right = input(1)->ExecuteBatched(opts);
  if (!right.ok()) return right.status();

  RelNodePtr self = shared_from_this();
  const JoinType join_type = join_type_;
  const size_t left_width = input(0)->row_type()->fields().size();
  const size_t right_width = input(1)->row_type()->fields().size();
  const size_t batch_size = NormalizedBatchSize(opts);
  auto state = std::make_shared<JoinExecState>();
  RowBatchPuller right_pull = std::move(right).value();

  // Columnar probe: when the probe side runs columnar, the join key is read
  // straight off the raw columns and the full left row is boxed lazily —
  // only probe rows that actually emit output pay the row gather.
  if (auto left_columnar = input(0)->TryExecuteColumnar(opts)) {
    if (!left_columnar->ok()) return left_columnar->status();
    ColumnBatchPuller left_pull = std::move(*left_columnar).value();
    return RowBatchPuller([self, keys, remaining, state, left_pull,
                           right_pull, join_type, left_width, right_width,
                           batch_size]() -> Result<RowBatch> {
      if (!state->built) {
        CALCITE_RETURN_IF_ERROR(DrainRightSide(right_pull, state.get()));
        for (size_t i = 0; i < state->right_data.size(); ++i) {
          auto key =
              JoinSideKey(state->right_data[i], *keys, /*left_side=*/false);
          if (key.has_value()) {
            state->table[std::move(*key)].push_back(i);
          }
        }
        state->built = true;
      }
      if (!state->pending.empty()) {
        return FlushPending(state.get(), batch_size);
      }

      auto residual_passes = [&](const Row& combined) -> Result<bool> {
        for (const RexNodePtr& pred : *remaining) {
          auto pass = RexInterpreter::EvalPredicate(pred, combined);
          if (!pass.ok()) return pass;
          if (!pass.value()) return false;
        }
        return true;
      };

      while (!state->left_done) {
        auto batch = left_pull();
        if (!batch.ok()) return batch.status();
        ColumnBatch cols = std::move(batch).value();
        if (cols.AtEnd()) {
          state->left_done = true;
          break;
        }
        RowBatch& out = state->pending;
        const size_t active = cols.ActiveCount();
        Row probe_key;  // reused across the batch
        for (size_t k = 0; k < active; ++k) {
          const size_t i = cols.ActiveIndex(k);
          probe_key.clear();
          bool null_key = false;
          for (const auto& [l, r] : *keys) {
            (void)r;
            const ColumnVector& c = cols.cols[static_cast<size_t>(l)];
            if (c.IsNullAt(i)) {
              null_key = true;  // NULL keys never match
              break;
            }
            probe_key.push_back(c.GetValue(i));
          }
          bool matched = false;
          Row lrow;
          bool have_lrow = false;
          auto lrow_ref = [&]() -> Row& {
            if (!have_lrow) {
              lrow = cols.GatherRow(i);
              have_lrow = true;
            }
            return lrow;
          };
          if (!null_key) {
            auto it = state->table.find(probe_key);
            if (it != state->table.end()) {
              for (size_t ri : it->second) {
                Row combined = ConcatRows(lrow_ref(), state->right_data[ri]);
                auto pass = residual_passes(combined);
                if (!pass.ok()) return pass.status();
                if (!pass.value()) continue;
                matched = true;
                state->right_matched[ri] = true;
                if (JoinEmitsCombinedRows(join_type)) {
                  out.push_back(std::move(combined));
                }
                if (join_type == JoinType::kSemi) break;
              }
            }
          }
          switch (join_type) {
            case JoinType::kLeft:
            case JoinType::kFull:
              if (!matched) {
                out.push_back(PadNullRight(lrow_ref(), right_width));
              }
              break;
            case JoinType::kSemi:
              if (matched) out.push_back(std::move(lrow_ref()));
              break;
            case JoinType::kAnti:
              if (!matched) out.push_back(std::move(lrow_ref()));
              break;
            default:
              break;  // inner/right need no per-left-row emission
          }
        }
        if (!out.empty()) return FlushPending(state.get(), batch_size);
      }

      RowBatch out =
          EmitUnmatchedRight(join_type, state.get(), left_width, batch_size);
      if (!out.empty()) return out;
      return RowBatch{};
    });
  }

  // The probe side pulls selection-aware batches: a filter below the probe
  // input hands over its selection and only live rows are probed, without
  // an intermediate compaction. The build side needs every row anyway, so
  // it drains through the compacting protocol.
  auto left = input(0)->ExecuteSelBatched(opts);
  if (!left.ok()) return left.status();
  SelBatchPuller left_pull = std::move(left).value();

  return RowBatchPuller([self, keys, remaining, state, left_pull, right_pull,
                         join_type, left_width, right_width,
                         batch_size]() -> Result<RowBatch> {
    if (!state->built) {
      // Build phase: hash the right side on its key columns.
      CALCITE_RETURN_IF_ERROR(DrainRightSide(right_pull, state.get()));
      for (size_t i = 0; i < state->right_data.size(); ++i) {
        auto key = JoinSideKey(state->right_data[i], *keys, /*left_side=*/false);
        if (key.has_value()) {
          state->table[std::move(*key)].push_back(i);
        }
      }
      state->built = true;
    }

    if (!state->pending.empty()) {
      return FlushPending(state.get(), batch_size);
    }

    auto residual_passes = [&](const Row& combined) -> Result<bool> {
      for (const RexNodePtr& pred : *remaining) {
        auto pass = RexInterpreter::EvalPredicate(pred, combined);
        if (!pass.ok()) return pass;
        if (!pass.value()) return false;
      }
      return true;
    };

    // Probe phase: a whole left batch per dispatch.
    while (!state->left_done) {
      auto batch = left_pull();
      if (!batch.ok()) return batch.status();
      SelBatch left_rows = std::move(batch).value();
      if (left_rows.AtEnd()) {
        state->left_done = true;
        break;
      }
      RowBatch& out = state->pending;
      const size_t active = left_rows.ActiveCount();
      for (size_t k = 0; k < active; ++k) {
        Row& lrow = left_rows.ActiveRow(k);
        auto key = JoinSideKey(lrow, *keys, /*left_side=*/true);
        bool matched = false;
        if (key.has_value()) {
          auto it = state->table.find(*key);
          if (it != state->table.end()) {
            for (size_t ri : it->second) {
              Row combined = ConcatRows(lrow, state->right_data[ri]);
              auto pass = residual_passes(combined);
              if (!pass.ok()) return pass.status();
              if (!pass.value()) continue;
              matched = true;
              state->right_matched[ri] = true;
              if (JoinEmitsCombinedRows(join_type)) {
                out.push_back(std::move(combined));
              }
              if (join_type == JoinType::kSemi) break;
            }
          }
        }
        JoinEmitPerLeftRow(join_type, matched, std::move(lrow), right_width, &out);
      }
      if (!out.empty()) return FlushPending(state.get(), batch_size);
    }

    RowBatch out =
        EmitUnmatchedRight(join_type, state.get(), left_width, batch_size);
    if (!out.empty()) return out;
    return RowBatch{};
  });
}

// ------------------------------ NestedLoopJoin ----------------------------

RelNodePtr EnumerableNestedLoopJoin::Create(RelNodePtr left, RelNodePtr right,
                                            RexNodePtr condition,
                                            JoinType join_type,
                                            RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableNestedLoopJoin(
      EnumerableTraits(), std::move(row_type), std::move(left),
      std::move(right), std::move(condition), join_type));
}

RelNodePtr EnumerableNestedLoopJoin::Copy(RelTraitSet traits,
                                          std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableNestedLoopJoin(
      std::move(traits), row_type(), std::move(inputs[0]),
      std::move(inputs[1]), condition_, join_type_));
}

std::optional<RelOptCost> EnumerableNestedLoopJoin::SelfCost(
    MetadataQuery* mq) const {
  double left = mq->RowCount(input(0));
  double right = mq->RowCount(input(1));
  return RelOptCost(left * right, left * right, 0) *
         convention()->cost_factor();
}

Result<std::vector<Row>> EnumerableNestedLoopJoin::Execute() const {
  return DrainNode(*this);
}

Result<RowBatchPuller> EnumerableNestedLoopJoin::ExecuteBatched(
    const ExecOptions& opts) const {
  // Probe side is selection-aware, like the hash join.
  auto left = input(0)->ExecuteSelBatched(opts);
  if (!left.ok()) return left.status();
  auto right = input(1)->ExecuteBatched(opts);
  if (!right.ok()) return right;

  RelNodePtr self = shared_from_this();
  RexNodePtr condition = condition_;
  const JoinType join_type = join_type_;
  const size_t left_width = input(0)->row_type()->fields().size();
  const size_t right_width = input(1)->row_type()->fields().size();
  const size_t batch_size = NormalizedBatchSize(opts);
  auto state = std::make_shared<JoinExecState>();
  SelBatchPuller left_pull = std::move(left).value();
  RowBatchPuller right_pull = std::move(right).value();

  return RowBatchPuller([self, condition, state, left_pull, right_pull,
                         join_type, left_width, right_width,
                         batch_size]() -> Result<RowBatch> {
    if (!state->built) {
      CALCITE_RETURN_IF_ERROR(DrainRightSide(right_pull, state.get()));
      state->built = true;
    }

    if (!state->pending.empty()) {
      return FlushPending(state.get(), batch_size);
    }

    while (!state->left_done) {
      auto batch = left_pull();
      if (!batch.ok()) return batch.status();
      SelBatch left_rows = std::move(batch).value();
      if (left_rows.AtEnd()) {
        state->left_done = true;
        break;
      }
      RowBatch& out = state->pending;
      const size_t active = left_rows.ActiveCount();
      for (size_t k = 0; k < active; ++k) {
        Row& lrow = left_rows.ActiveRow(k);
        bool matched = false;
        for (size_t ri = 0; ri < state->right_data.size(); ++ri) {
          Row combined = ConcatRows(lrow, state->right_data[ri]);
          auto pass = RexInterpreter::EvalPredicate(condition, combined);
          if (!pass.ok()) return pass.status();
          if (!pass.value()) continue;
          matched = true;
          state->right_matched[ri] = true;
          if (JoinEmitsCombinedRows(join_type)) {
            out.push_back(std::move(combined));
          }
          if (join_type == JoinType::kSemi) break;
        }
        JoinEmitPerLeftRow(join_type, matched, std::move(lrow), right_width, &out);
      }
      if (!out.empty()) return FlushPending(state.get(), batch_size);
    }

    RowBatch out =
        EmitUnmatchedRight(join_type, state.get(), left_width, batch_size);
    if (!out.empty()) return out;
    return RowBatch{};
  });
}

// -------------------------------- Aggregate -------------------------------

RelNodePtr EnumerableAggregate::Create(RelNodePtr input,
                                       std::vector<int> group_keys,
                                       std::vector<AggregateCall> agg_calls,
                                       RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableAggregate(
      EnumerableTraits(), std::move(row_type), std::move(input),
      std::move(group_keys), std::move(agg_calls)));
}

RelNodePtr EnumerableAggregate::Copy(RelTraitSet traits,
                                     std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableAggregate(std::move(traits), row_type(),
                                            std::move(inputs[0]), group_keys_,
                                            agg_calls_));
}

Result<std::vector<Row>> EnumerableAggregate::Execute() const {
  return DrainNode(*this);
}

namespace {

/// Streaming hash-aggregate state: groups hold live accumulators instead of
/// materialized row lists, fed a batch at a time. Single-column keys probe
/// by Value directly (no per-row key allocation); wider keys go through the
/// Row-keyed table.
struct HashAggState {
  bool built = false;
  std::unordered_map<Row, size_t, RowHash> group_index;
  std::unordered_map<Value, size_t, ValueHash> single_index;
  std::vector<Row> group_keys_rows;
  std::vector<std::vector<AggAccumulator>> group_accs;
  size_t emit_pos = 0;
};

}  // namespace

Result<RowBatchPuller> EnumerableAggregate::ExecuteBatched(
    const ExecOptions& opts) const {
  if (auto parallel = TryExecuteParallel(*this, opts)) {
    return std::move(*parallel);
  }
  // Columnar consumer: batches feed the typed accumulator adders straight
  // from raw column storage — group-key probing and NULL skipping never box
  // a cell unless the group key is genuinely new.
  if (auto builder = std::shared_ptr<ColumnarAggBuilder>(
          ColumnarAggBuilder::TryCreate(group_keys_, agg_calls_))) {
    if (auto columnar = input(0)->TryExecuteColumnar(opts)) {
      if (!columnar->ok()) return columnar->status();
      ColumnBatchPuller pull = std::move(*columnar).value();
      RelNodePtr self = shared_from_this();
      const size_t batch_size = NormalizedBatchSize(opts);
      auto built = std::make_shared<bool>(false);
      return RowBatchPuller(
          [self, builder, pull, built, batch_size]() -> Result<RowBatch> {
            if (!*built) {
              for (;;) {
                auto batch = pull();
                if (!batch.ok()) return batch.status();
                const ColumnBatch& cols = batch.value();
                if (cols.AtEnd()) break;
                CALCITE_RETURN_IF_ERROR(builder->Feed(cols));
              }
              *built = true;
            }
            return builder->EmitBatch(batch_size);
          });
    }
  }
  // Selection-aware consumer: only the live rows of each input batch feed
  // the accumulators, so a filter below never compacts.
  auto in = input(0)->ExecuteSelBatched(opts);
  if (!in.ok()) return in.status();
  RelNodePtr self = shared_from_this();  // pins group_keys_ / agg_calls_
  const EnumerableAggregate* node = this;
  const size_t batch_size = NormalizedBatchSize(opts);
  auto state = std::make_shared<HashAggState>();
  SelBatchPuller pull = std::move(in).value();

  return RowBatchPuller([self, node, state, pull,
                         batch_size]() -> Result<RowBatch> {
    const std::vector<int>& group_keys = node->group_keys_;
    const std::vector<AggregateCall>& agg_calls = node->agg_calls_;
    if (!state->built) {
      auto new_group = [&](Row key) {
        state->group_keys_rows.push_back(std::move(key));
        std::vector<AggAccumulator> accs;
        accs.reserve(agg_calls.size());
        for (const AggregateCall& call : agg_calls) {
          accs.emplace_back(call);
        }
        state->group_accs.push_back(std::move(accs));
      };
      for (;;) {
        auto batch = pull();
        if (!batch.ok()) return batch.status();
        SelBatch rows = std::move(batch).value();
        if (rows.AtEnd()) break;
        const size_t active = rows.ActiveCount();
        if (group_keys.empty()) {
          // Global aggregate: the whole batch feeds one accumulator set —
          // one AddBatchSel dispatch per accumulator per batch.
          if (state->group_accs.empty()) new_group(Row{});
          const SelectionVector* sel = rows.has_sel ? &rows.sel : nullptr;
          for (AggAccumulator& acc : state->group_accs[0]) {
            CALCITE_RETURN_IF_ERROR(acc.AddBatchSel(rows.rows, sel));
          }
          continue;
        }
        // Grouped: probe the hash table with each live row of the batch,
        // preserving first-seen key order for deterministic output.
        if (group_keys.size() == 1) {
          const size_t k = static_cast<size_t>(group_keys[0]);
          for (size_t i = 0; i < active; ++i) {
            const Row& row = rows.ActiveRow(i);
            const Value& key = row[k];
            size_t group;
            auto it = state->single_index.find(key);
            if (it != state->single_index.end()) {
              group = it->second;
            } else {
              group = state->group_accs.size();
              state->single_index.emplace(key, group);
              new_group(Row{key});
            }
            for (AggAccumulator& acc : state->group_accs[group]) {
              CALCITE_RETURN_IF_ERROR(acc.Add(row));
            }
          }
          continue;
        }
        // Wider keys: the probe key is a scratch row reused across the
        // whole batch; a fresh copy is only materialized when a new group
        // is inserted.
        Row scratch_key;
        scratch_key.reserve(group_keys.size());
        for (size_t i = 0; i < active; ++i) {
          const Row& row = rows.ActiveRow(i);
          scratch_key.clear();
          for (int k : group_keys) {
            scratch_key.push_back(row[static_cast<size_t>(k)]);
          }
          size_t group;
          auto it = state->group_index.find(scratch_key);
          if (it != state->group_index.end()) {
            group = it->second;
          } else {
            group = state->group_accs.size();
            state->group_index.emplace(scratch_key, group);
            new_group(scratch_key);
          }
          for (AggAccumulator& acc : state->group_accs[group]) {
            CALCITE_RETURN_IF_ERROR(acc.Add(row));
          }
        }
      }
      // Global aggregate over empty input still produces one row.
      if (group_keys.empty() && state->group_accs.empty()) new_group(Row{});
      state->built = true;
    }

    RowBatch out;
    while (state->emit_pos < state->group_accs.size() &&
           out.size() < batch_size) {
      size_t g = state->emit_pos++;
      Row result = std::move(state->group_keys_rows[g]);
      result.reserve(result.size() + agg_calls.size());
      for (const AggAccumulator& acc : state->group_accs[g]) {
        result.push_back(acc.Finish());
      }
      out.push_back(std::move(result));
    }
    return out;
  });
}

// ---------------------------------- Sort -----------------------------------

RelNodePtr EnumerableSort::Create(RelNodePtr input, RelCollation collation,
                                  int64_t offset, int64_t fetch) {
  RelDataTypePtr row_type = input->row_type();
  RelTraitSet traits(Convention::Enumerable(), collation);
  return RelNodePtr(new EnumerableSort(std::move(traits), std::move(row_type),
                                       std::move(input), std::move(collation),
                                       offset, fetch));
}

RelNodePtr EnumerableSort::Copy(RelTraitSet traits,
                                std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableSort(std::move(traits), row_type(),
                                       std::move(inputs[0]), collation_,
                                       offset_, fetch_));
}

Result<std::vector<Row>> EnumerableSort::Execute() const {
  return DrainNode(*this);
}

namespace {

struct SortState {
  bool built = false;
  std::vector<Row> data;
  size_t pos = 0;
  size_t end = 0;
};

}  // namespace

Result<RowBatchPuller> EnumerableSort::ExecuteBatched(
    const ExecOptions& opts) const {
  // Selection-aware consumer: only live rows are spilled into the sort
  // buffer, so a filter below never compacts.
  auto in = input(0)->ExecuteSelBatched(opts);
  if (!in.ok()) return in.status();
  RelNodePtr self = shared_from_this();  // pins collation_
  const EnumerableSort* node = this;
  const int64_t offset = offset_;
  const int64_t fetch = fetch_;
  const size_t batch_size = NormalizedBatchSize(opts);
  auto state = std::make_shared<SortState>();
  SelBatchPuller pull = std::move(in).value();

  return RowBatchPuller([self, node, offset, fetch, state, pull,
                         batch_size]() -> Result<RowBatch> {
    const RelCollation& collation = node->collation_;
    if (!state->built) {
      for (;;) {
        auto batch = pull();
        if (!batch.ok()) return batch.status();
        SelBatch rows = std::move(batch).value();
        if (rows.AtEnd()) break;
        const size_t active = rows.ActiveCount();
        for (size_t k = 0; k < active; ++k) {
          state->data.push_back(std::move(rows.ActiveRow(k)));
        }
      }
      if (!collation.empty()) {
        std::stable_sort(state->data.begin(), state->data.end(),
                         [&collation](const Row& a, const Row& b) {
                           return CompareRows(a, b, collation) < 0;
                         });
      }
      state->pos = std::min(
          state->data.size(),
          static_cast<size_t>(std::max<int64_t>(0, offset)));
      state->end = state->data.size();
      if (fetch >= 0) {
        state->end = std::min(state->end,
                              state->pos + static_cast<size_t>(fetch));
      }
      state->built = true;
    }
    RowBatch out;
    size_t n = std::min(batch_size, state->end - state->pos);
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(state->data[state->pos + i]));
    }
    state->pos += n;
    return out;
  });
}

// --------------------------------- SetOp ----------------------------------

std::string EnumerableSetOp::op_name() const {
  switch (set_kind()) {
    case Kind::kUnion:
      return "EnumerableUnion";
    case Kind::kIntersect:
      return "EnumerableIntersect";
    case Kind::kMinus:
      return "EnumerableMinus";
  }
  return "EnumerableSetOp";
}

RelNodePtr EnumerableSetOp::Create(std::vector<RelNodePtr> inputs, Kind kind,
                                   bool all, RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableSetOp(EnumerableTraits(),
                                        std::move(row_type), std::move(inputs),
                                        kind, all));
}

RelNodePtr EnumerableSetOp::Copy(RelTraitSet traits,
                                 std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableSetOp(std::move(traits), row_type(),
                                        std::move(inputs), set_kind_, all_));
}

Result<std::vector<Row>> EnumerableSetOp::Execute() const {
  return DrainNode(*this);
}

namespace {

/// Multiset combination of fully-materialized inputs (INTERSECT / MINUS and
/// the deduplicating UNION; UNION ALL streams and never reaches this).
std::vector<Row> CombineSetOp(SetOp::Kind kind, bool all,
                              std::vector<std::vector<Row>> input_rows) {
  std::vector<Row> out;
  switch (kind) {
    case SetOp::Kind::kUnion: {
      for (std::vector<Row>& rows : input_rows) {
        out.insert(out.end(), std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
      }
      if (!all) {
        std::map<Row, bool, RowLess> seen;
        std::vector<Row> dedup;
        for (Row& row : out) {
          if (seen.emplace(row, true).second) dedup.push_back(std::move(row));
        }
        out = std::move(dedup);
      }
      return out;
    }
    case SetOp::Kind::kIntersect: {
      // Bag intersect: multiplicity = min across inputs (1 for DISTINCT).
      std::map<Row, size_t, RowLess> counts;
      for (const Row& row : input_rows[0]) ++counts[row];
      for (size_t i = 1; i < input_rows.size(); ++i) {
        std::map<Row, size_t, RowLess> other;
        for (const Row& row : input_rows[i]) ++other[row];
        for (auto& [row, count] : counts) {
          auto it = other.find(row);
          count = std::min(count, it == other.end() ? 0 : it->second);
        }
      }
      for (const Row& row : input_rows[0]) {
        auto it = counts.find(row);
        if (it != counts.end() && it->second > 0) {
          out.push_back(row);
          if (all) {
            --it->second;
          } else {
            it->second = 0;
          }
        }
      }
      return out;
    }
    case SetOp::Kind::kMinus: {
      std::map<Row, size_t, RowLess> subtract;
      for (size_t i = 1; i < input_rows.size(); ++i) {
        for (const Row& row : input_rows[i]) ++subtract[row];
      }
      std::map<Row, bool, RowLess> emitted;
      for (const Row& row : input_rows[0]) {
        auto it = subtract.find(row);
        if (it != subtract.end() && it->second > 0) {
          if (all) --it->second;
          continue;
        }
        if (!all && !emitted.emplace(row, true).second) continue;
        out.push_back(row);
      }
      return out;
    }
  }
  return out;
}

}  // namespace

Result<RowBatchPuller> EnumerableSetOp::ExecuteBatched(
    const ExecOptions& opts) const {
  RelNodePtr self = shared_from_this();
  if (set_kind_ == Kind::kUnion && all_) {
    // UNION ALL streams: batches flow through from each input in turn
    // without re-batching or materialization.
    std::vector<RowBatchPuller> pullers;
    pullers.reserve(inputs().size());
    for (const RelNodePtr& in : inputs()) {
      auto puller = in->ExecuteBatched(opts);
      if (!puller.ok()) return puller;
      pullers.push_back(std::move(puller).value());
    }
    auto shared = std::make_shared<std::vector<RowBatchPuller>>(
        std::move(pullers));
    auto current = std::make_shared<size_t>(0);
    return RowBatchPuller([self, shared, current]() -> Result<RowBatch> {
      while (*current < shared->size()) {
        auto batch = (*shared)[*current]();
        if (!batch.ok()) return batch;
        if (!batch.value().empty()) return batch;
        ++*current;
      }
      return RowBatch{};
    });
  }
  // The remaining kinds need full multiset views of their inputs.
  const Kind kind = set_kind_;
  const bool all = all_;
  std::vector<RelNodePtr> ins = inputs();
  const size_t batch_size = NormalizedBatchSize(opts);
  auto state = std::make_shared<std::optional<RowBatchPuller>>();
  return RowBatchPuller(
      [self, kind, all, ins, batch_size, state,
       opts]() -> Result<RowBatch> {
        if (!state->has_value()) {
          std::vector<std::vector<Row>> input_rows;
          input_rows.reserve(ins.size());
          for (const RelNodePtr& in : ins) {
            auto puller = in->ExecuteBatched(opts);
            if (!puller.ok()) return puller.status();
            auto rows = DrainBatches(puller.value());
            if (!rows.ok()) return rows.status();
            input_rows.push_back(std::move(rows).value());
          }
          *state = ChunkRows(CombineSetOp(kind, all, std::move(input_rows)),
                             batch_size);
        }
        return (**state)();
      });
}

// --------------------------------- Values ---------------------------------

RelNodePtr EnumerableValues::Create(RelDataTypePtr row_type,
                                    std::vector<Row> tuples) {
  return RelNodePtr(new EnumerableValues(EnumerableTraits(),
                                         std::move(row_type),
                                         std::move(tuples)));
}

RelNodePtr EnumerableValues::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(
      new EnumerableValues(std::move(traits), row_type(), tuples_));
}

Result<std::vector<Row>> EnumerableValues::Execute() const { return tuples_; }

Result<RowBatchPuller> EnumerableValues::ExecuteBatched(
    const ExecOptions& opts) const {
  RelNodePtr self = shared_from_this();  // pins tuples_ for the slicer
  RowBatchPuller pull = SliceRows(tuples_, NormalizedBatchSize(opts));
  return RowBatchPuller(
      [self, pull]() -> Result<RowBatch> { return pull(); });
}

// --------------------------------- Window ---------------------------------

RelNodePtr EnumerableWindow::Create(RelNodePtr input,
                                    std::vector<WindowGroup> groups,
                                    RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableWindow(EnumerableTraits(),
                                         std::move(row_type), std::move(input),
                                         std::move(groups)));
}

RelNodePtr EnumerableWindow::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableWindow(std::move(traits), row_type(),
                                         std::move(inputs[0]), groups_));
}

Result<RowBatchPuller> EnumerableWindow::ExecuteBatched(
    const ExecOptions& opts) const {
  // Window frames reach arbitrarily far across the partition, so the
  // operator is inherently blocking: materialize, then re-chunk.
  auto rows = Execute();
  if (!rows.ok()) return rows.status();
  RowBatchPuller puller = ChunkRows(std::move(rows).value(),
                                    NormalizedBatchSize(opts));
  RelNodePtr self = shared_from_this();
  return RowBatchPuller(
      [self, puller]() -> Result<RowBatch> { return puller(); });
}

Result<std::vector<Row>> EnumerableWindow::Execute() const {
  auto rows_result = input(0)->Execute();
  if (!rows_result.ok()) return rows_result;
  std::vector<Row> data = std::move(rows_result).value();

  // Output rows start as copies of the input; window columns are appended.
  std::vector<Row> out = data;

  for (const WindowGroup& group : groups_) {
    // Partition the row indexes.
    std::map<Row, std::vector<size_t>, RowLess> partitions;
    for (size_t i = 0; i < data.size(); ++i) {
      Row key;
      key.reserve(group.partition_keys.size());
      for (int k : group.partition_keys) {
        key.push_back(data[i][static_cast<size_t>(k)]);
      }
      partitions[std::move(key)].push_back(i);
    }
    for (auto& [key, indexes] : partitions) {
      // Order rows within the partition.
      std::stable_sort(indexes.begin(), indexes.end(),
                       [&](size_t a, size_t b) {
                         return CompareRows(data[a], data[b], group.order) < 0;
                       });
      for (size_t pos = 0; pos < indexes.size(); ++pos) {
        // Determine the frame [lo, hi] for the row at `pos`.
        size_t lo = 0;
        size_t hi = pos;
        if (group.is_rows) {
          if (group.preceding >= 0) {
            lo = pos >= static_cast<size_t>(group.preceding)
                     ? pos - static_cast<size_t>(group.preceding)
                     : 0;
          }
          hi = std::min(indexes.size() - 1,
                        pos + static_cast<size_t>(
                                  std::max<int64_t>(0, group.following)));
        } else if (group.order.fields().empty()) {
          // No ordering: every partition row is a peer of every other, so
          // the default RANGE frame spans the whole partition.
          lo = 0;
          hi = indexes.size() - 1;
        } else {
          // RANGE frame on the first ordering key (numeric).
          int order_field = group.order.fields()[0].field;
          const Value& current =
              data[indexes[pos]][static_cast<size_t>(order_field)];
          if (group.preceding >= 0 && current.is_numeric()) {
            double low_bound =
                current.AsDouble() - static_cast<double>(group.preceding);
            while (lo < pos) {
              const Value& v =
                  data[indexes[lo]][static_cast<size_t>(order_field)];
              if (!v.IsNull() && v.AsDouble() >= low_bound) break;
              ++lo;
            }
          }
          // CURRENT ROW in RANGE mode includes peers of the current value.
          while (hi + 1 < indexes.size()) {
            const Value& v =
                data[indexes[hi + 1]][static_cast<size_t>(order_field)];
            if (v.Compare(current) != 0) break;
            ++hi;
          }
        }
        std::vector<Row> frame;
        frame.reserve(hi - lo + 1);
        for (size_t f = lo; f <= hi; ++f) frame.push_back(data[indexes[f]]);
        Row agg_values;
        CALCITE_RETURN_IF_ERROR(
            ComputeAggregates(group.agg_calls, frame, &agg_values));
        Row& target = out[indexes[pos]];
        for (Value& v : agg_values) target.push_back(std::move(v));
      }
    }
  }
  return out;
}

// ------------------------------- Interpreter -------------------------------

RelNodePtr EnumerableInterpreter::Create(RelNodePtr input) {
  RelDataTypePtr row_type = input->row_type();
  // The interpreter streams rows through unchanged, so the input's ordering
  // survives the convention crossing — e.g. a CassandraSort's clustering
  // order still counts toward an ORDER BY required at the root.
  RelTraitSet traits(Convention::Enumerable(), input->traits().collation());
  return RelNodePtr(new EnumerableInterpreter(
      std::move(traits), std::move(row_type), std::move(input)));
}

RelNodePtr EnumerableInterpreter::Copy(RelTraitSet traits,
                                       std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableInterpreter(std::move(traits), row_type(),
                                              std::move(inputs[0])));
}

Result<std::vector<Row>> EnumerableInterpreter::Execute() const {
  return input(0)->Execute();
}

Result<RowBatchPuller> EnumerableInterpreter::ExecuteBatched(
    const ExecOptions& opts) const {
  // The foreign input executes inside its own engine; its default
  // ExecuteBatched materializes there and re-chunks — the per-row transfer
  // the cost model charges this converter for.
  return input(0)->ExecuteBatched(opts);
}

}  // namespace calcite
