#include "adapters/enumerable/enumerable_rels.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "adapters/enumerable/aggregates.h"
#include "metadata/metadata.h"
#include "rex/rex_interpreter.h"
#include "rex/rex_util.h"

namespace calcite {

namespace {

RelTraitSet EnumerableTraits() {
  return RelTraitSet(Convention::Enumerable());
}

/// Three-way lexicographic row comparison under a collation.
int CompareRows(const Row& a, const Row& b, const RelCollation& collation) {
  for (const FieldCollation& fc : collation.fields()) {
    int c = a[static_cast<size_t>(fc.field)].Compare(
        b[static_cast<size_t>(fc.field)]);
    if (fc.direction == Direction::kDescending) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

/// Full-row lexicographic order (for set operations).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Row PadNullRight(const Row& left, size_t right_width) {
  Row out = left;
  out.resize(left.size() + right_width);
  return out;
}

Row PadNullLeft(size_t left_width, const Row& right) {
  Row out(left_width);
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

// ------------------------------- TableScan --------------------------------

RelNodePtr EnumerableTableScan::Create(const TableScan& scan) {
  return RelNodePtr(new EnumerableTableScan(
      EnumerableTraits(), scan.row_type(), scan.table(),
      scan.qualified_name(), scan.table_convention()));
}

RelNodePtr EnumerableTableScan::Copy(RelTraitSet traits,
                                     std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(new EnumerableTableScan(std::move(traits), row_type(),
                                            table_, qualified_name_,
                                            table_convention_));
}

Result<std::vector<Row>> EnumerableTableScan::Execute() const {
  return table_->Scan();
}

// --------------------------------- Filter ---------------------------------

RelNodePtr EnumerableFilter::Create(RelNodePtr input, RexNodePtr condition) {
  RelDataTypePtr row_type = input->row_type();
  return RelNodePtr(new EnumerableFilter(EnumerableTraits(),
                                         std::move(row_type),
                                         std::move(input),
                                         std::move(condition)));
}

RelNodePtr EnumerableFilter::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableFilter(std::move(traits), row_type(),
                                         std::move(inputs[0]), condition_));
}

Result<std::vector<Row>> EnumerableFilter::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;
  std::vector<Row> out;
  for (Row& row : rows.value()) {
    auto pass = RexInterpreter::EvalPredicate(condition_, row);
    if (!pass.ok()) return pass.status();
    if (pass.value()) out.push_back(std::move(row));
  }
  return out;
}

// --------------------------------- Project --------------------------------

RelNodePtr EnumerableProject::Create(RelNodePtr input,
                                     std::vector<RexNodePtr> exprs,
                                     RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableProject(EnumerableTraits(),
                                          std::move(row_type),
                                          std::move(input), std::move(exprs)));
}

RelNodePtr EnumerableProject::Copy(RelTraitSet traits,
                                   std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableProject(std::move(traits), row_type(),
                                          std::move(inputs[0]), exprs_));
}

Result<std::vector<Row>> EnumerableProject::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;
  std::vector<Row> out;
  out.reserve(rows.value().size());
  for (const Row& row : rows.value()) {
    Row projected;
    projected.reserve(exprs_.size());
    for (const RexNodePtr& expr : exprs_) {
      auto v = RexInterpreter::Eval(expr, row);
      if (!v.ok()) return v.status();
      projected.push_back(std::move(v).value());
    }
    out.push_back(std::move(projected));
  }
  return out;
}

// -------------------------------- HashJoin --------------------------------

RelNodePtr EnumerableHashJoin::Create(RelNodePtr left, RelNodePtr right,
                                      RexNodePtr condition, JoinType join_type,
                                      RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableHashJoin(
      EnumerableTraits(), std::move(row_type), std::move(left),
      std::move(right), std::move(condition), join_type));
}

RelNodePtr EnumerableHashJoin::Copy(RelTraitSet traits,
                                    std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableHashJoin(std::move(traits), row_type(),
                                           std::move(inputs[0]),
                                           std::move(inputs[1]), condition_,
                                           join_type_));
}

Result<std::vector<Row>> EnumerableHashJoin::Execute() const {
  auto left_rows = input(0)->Execute();
  if (!left_rows.ok()) return left_rows;
  auto right_rows = input(1)->Execute();
  if (!right_rows.ok()) return right_rows;

  std::vector<std::pair<int, int>> keys;
  std::vector<RexNodePtr> remaining;
  if (!AnalyzeEquiKeys(&keys, &remaining)) {
    return Status::PlanError(
        "EnumerableHashJoin requires at least one equi-join key");
  }

  size_t left_width = input(0)->row_type()->fields().size();
  size_t right_width = input(1)->row_type()->fields().size();

  // Build phase: hash the right side on its key columns.
  std::unordered_map<Row, std::vector<size_t>, RowHash> table;
  const std::vector<Row>& right_data = right_rows.value();
  for (size_t i = 0; i < right_data.size(); ++i) {
    Row key;
    bool has_null = false;
    key.reserve(keys.size());
    for (const auto& [l, r] : keys) {
      const Value& v = right_data[i][static_cast<size_t>(r)];
      if (v.IsNull()) has_null = true;
      key.push_back(v);
    }
    if (has_null) continue;  // NULL keys never match.
    table[std::move(key)].push_back(i);
  }

  std::vector<bool> right_matched(right_data.size(), false);
  std::vector<Row> out;

  auto residual_passes = [&](const Row& combined) -> Result<bool> {
    for (const RexNodePtr& pred : remaining) {
      auto pass = RexInterpreter::EvalPredicate(pred, combined);
      if (!pass.ok()) return pass;
      if (!pass.value()) return false;
    }
    return true;
  };

  for (const Row& lrow : left_rows.value()) {
    Row key;
    bool has_null = false;
    key.reserve(keys.size());
    for (const auto& [l, r] : keys) {
      const Value& v = lrow[static_cast<size_t>(l)];
      if (v.IsNull()) has_null = true;
      key.push_back(v);
    }
    bool matched = false;
    if (!has_null) {
      auto it = table.find(key);
      if (it != table.end()) {
        for (size_t ri : it->second) {
          Row combined = ConcatRows(lrow, right_data[ri]);
          auto pass = residual_passes(combined);
          if (!pass.ok()) return pass.status();
          if (!pass.value()) continue;
          matched = true;
          right_matched[ri] = true;
          switch (join_type_) {
            case JoinType::kInner:
            case JoinType::kLeft:
            case JoinType::kRight:
            case JoinType::kFull:
              out.push_back(std::move(combined));
              break;
            case JoinType::kSemi:
            case JoinType::kAnti:
              break;  // Row-level emission decided after the loop.
          }
          if (join_type_ == JoinType::kSemi) break;
        }
      }
    }
    switch (join_type_) {
      case JoinType::kLeft:
      case JoinType::kFull:
        if (!matched) out.push_back(PadNullRight(lrow, right_width));
        break;
      case JoinType::kSemi:
        if (matched) out.push_back(lrow);
        break;
      case JoinType::kAnti:
        if (!matched) out.push_back(lrow);
        break;
      default:
        break;
    }
  }
  if (join_type_ == JoinType::kRight || join_type_ == JoinType::kFull) {
    for (size_t i = 0; i < right_data.size(); ++i) {
      if (!right_matched[i]) {
        out.push_back(PadNullLeft(left_width, right_data[i]));
      }
    }
  }
  return out;
}

// ------------------------------ NestedLoopJoin ----------------------------

RelNodePtr EnumerableNestedLoopJoin::Create(RelNodePtr left, RelNodePtr right,
                                            RexNodePtr condition,
                                            JoinType join_type,
                                            RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableNestedLoopJoin(
      EnumerableTraits(), std::move(row_type), std::move(left),
      std::move(right), std::move(condition), join_type));
}

RelNodePtr EnumerableNestedLoopJoin::Copy(RelTraitSet traits,
                                          std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableNestedLoopJoin(
      std::move(traits), row_type(), std::move(inputs[0]),
      std::move(inputs[1]), condition_, join_type_));
}

std::optional<RelOptCost> EnumerableNestedLoopJoin::SelfCost(
    MetadataQuery* mq) const {
  double left = mq->RowCount(input(0));
  double right = mq->RowCount(input(1));
  return RelOptCost(left * right, left * right, 0) *
         convention()->cost_factor();
}

Result<std::vector<Row>> EnumerableNestedLoopJoin::Execute() const {
  auto left_rows = input(0)->Execute();
  if (!left_rows.ok()) return left_rows;
  auto right_rows = input(1)->Execute();
  if (!right_rows.ok()) return right_rows;

  size_t left_width = input(0)->row_type()->fields().size();
  size_t right_width = input(1)->row_type()->fields().size();
  const std::vector<Row>& right_data = right_rows.value();
  std::vector<bool> right_matched(right_data.size(), false);
  std::vector<Row> out;

  for (const Row& lrow : left_rows.value()) {
    bool matched = false;
    for (size_t ri = 0; ri < right_data.size(); ++ri) {
      Row combined = ConcatRows(lrow, right_data[ri]);
      auto pass = RexInterpreter::EvalPredicate(condition_, combined);
      if (!pass.ok()) return pass.status();
      if (!pass.value()) continue;
      matched = true;
      right_matched[ri] = true;
      switch (join_type_) {
        case JoinType::kInner:
        case JoinType::kLeft:
        case JoinType::kRight:
        case JoinType::kFull:
          out.push_back(std::move(combined));
          break;
        case JoinType::kSemi:
        case JoinType::kAnti:
          break;
      }
      if (join_type_ == JoinType::kSemi) break;
    }
    switch (join_type_) {
      case JoinType::kLeft:
      case JoinType::kFull:
        if (!matched) out.push_back(PadNullRight(lrow, right_width));
        break;
      case JoinType::kSemi:
        if (matched) out.push_back(lrow);
        break;
      case JoinType::kAnti:
        if (!matched) out.push_back(lrow);
        break;
      default:
        break;
    }
  }
  if (join_type_ == JoinType::kRight || join_type_ == JoinType::kFull) {
    for (size_t i = 0; i < right_data.size(); ++i) {
      if (!right_matched[i]) {
        out.push_back(PadNullLeft(left_width, right_data[i]));
      }
    }
  }
  return out;
}

// -------------------------------- Aggregate -------------------------------

RelNodePtr EnumerableAggregate::Create(RelNodePtr input,
                                       std::vector<int> group_keys,
                                       std::vector<AggregateCall> agg_calls,
                                       RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableAggregate(
      EnumerableTraits(), std::move(row_type), std::move(input),
      std::move(group_keys), std::move(agg_calls)));
}

RelNodePtr EnumerableAggregate::Copy(RelTraitSet traits,
                                     std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableAggregate(std::move(traits), row_type(),
                                            std::move(inputs[0]), group_keys_,
                                            agg_calls_));
}

Result<std::vector<Row>> EnumerableAggregate::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;

  // Group rows, preserving first-seen key order for deterministic output.
  std::unordered_map<Row, size_t, RowHash> group_index;
  std::vector<Row> group_keys_rows;
  std::vector<std::vector<Row>> group_rows;
  for (Row& row : rows.value()) {
    Row key;
    key.reserve(group_keys_.size());
    for (int k : group_keys_) {
      key.push_back(row[static_cast<size_t>(k)]);
    }
    auto [it, inserted] = group_index.try_emplace(key, group_rows.size());
    if (inserted) {
      group_keys_rows.push_back(std::move(key));
      group_rows.emplace_back();
    }
    group_rows[it->second].push_back(std::move(row));
  }
  // Global aggregate over empty input still produces one row.
  if (group_keys_.empty() && group_rows.empty()) {
    group_keys_rows.emplace_back();
    group_rows.emplace_back();
  }

  std::vector<Row> out;
  out.reserve(group_rows.size());
  for (size_t g = 0; g < group_rows.size(); ++g) {
    Row result = group_keys_rows[g];
    CALCITE_RETURN_IF_ERROR(
        ComputeAggregates(agg_calls_, group_rows[g], &result));
    out.push_back(std::move(result));
  }
  return out;
}

// ---------------------------------- Sort -----------------------------------

RelNodePtr EnumerableSort::Create(RelNodePtr input, RelCollation collation,
                                  int64_t offset, int64_t fetch) {
  RelDataTypePtr row_type = input->row_type();
  RelTraitSet traits(Convention::Enumerable(), collation);
  return RelNodePtr(new EnumerableSort(std::move(traits), std::move(row_type),
                                       std::move(input), std::move(collation),
                                       offset, fetch));
}

RelNodePtr EnumerableSort::Copy(RelTraitSet traits,
                                std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableSort(std::move(traits), row_type(),
                                       std::move(inputs[0]), collation_,
                                       offset_, fetch_));
}

Result<std::vector<Row>> EnumerableSort::Execute() const {
  auto rows = input(0)->Execute();
  if (!rows.ok()) return rows;
  std::vector<Row> data = std::move(rows).value();
  if (!collation_.empty()) {
    std::stable_sort(data.begin(), data.end(),
                     [this](const Row& a, const Row& b) {
                       return CompareRows(a, b, collation_) < 0;
                     });
  }
  size_t begin = std::min(data.size(), static_cast<size_t>(
                                           std::max<int64_t>(0, offset_)));
  size_t end = data.size();
  if (fetch_ >= 0) {
    end = std::min(end, begin + static_cast<size_t>(fetch_));
  }
  return std::vector<Row>(data.begin() + static_cast<ptrdiff_t>(begin),
                          data.begin() + static_cast<ptrdiff_t>(end));
}

// --------------------------------- SetOp ----------------------------------

std::string EnumerableSetOp::op_name() const {
  switch (set_kind()) {
    case Kind::kUnion:
      return "EnumerableUnion";
    case Kind::kIntersect:
      return "EnumerableIntersect";
    case Kind::kMinus:
      return "EnumerableMinus";
  }
  return "EnumerableSetOp";
}

RelNodePtr EnumerableSetOp::Create(std::vector<RelNodePtr> inputs, Kind kind,
                                   bool all, RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableSetOp(EnumerableTraits(),
                                        std::move(row_type), std::move(inputs),
                                        kind, all));
}

RelNodePtr EnumerableSetOp::Copy(RelTraitSet traits,
                                 std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableSetOp(std::move(traits), row_type(),
                                        std::move(inputs), set_kind_, all_));
}

Result<std::vector<Row>> EnumerableSetOp::Execute() const {
  std::vector<std::vector<Row>> input_rows;
  input_rows.reserve(inputs().size());
  for (const RelNodePtr& in : inputs()) {
    auto rows = in->Execute();
    if (!rows.ok()) return rows;
    input_rows.push_back(std::move(rows).value());
  }
  std::vector<Row> out;
  switch (set_kind_) {
    case Kind::kUnion: {
      for (std::vector<Row>& rows : input_rows) {
        out.insert(out.end(), std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
      }
      if (!all_) {
        std::map<Row, bool, RowLess> seen;
        std::vector<Row> dedup;
        for (Row& row : out) {
          if (seen.emplace(row, true).second) dedup.push_back(std::move(row));
        }
        out = std::move(dedup);
      }
      return out;
    }
    case Kind::kIntersect: {
      // Bag intersect: multiplicity = min across inputs (1 for DISTINCT).
      std::map<Row, size_t, RowLess> counts;
      for (const Row& row : input_rows[0]) ++counts[row];
      for (size_t i = 1; i < input_rows.size(); ++i) {
        std::map<Row, size_t, RowLess> other;
        for (const Row& row : input_rows[i]) ++other[row];
        for (auto& [row, count] : counts) {
          auto it = other.find(row);
          count = std::min(count, it == other.end() ? 0 : it->second);
        }
      }
      for (const Row& row : input_rows[0]) {
        auto it = counts.find(row);
        if (it != counts.end() && it->second > 0) {
          out.push_back(row);
          if (all_) {
            --it->second;
          } else {
            it->second = 0;
          }
        }
      }
      return out;
    }
    case Kind::kMinus: {
      std::map<Row, size_t, RowLess> subtract;
      for (size_t i = 1; i < input_rows.size(); ++i) {
        for (const Row& row : input_rows[i]) ++subtract[row];
      }
      std::map<Row, bool, RowLess> emitted;
      for (const Row& row : input_rows[0]) {
        auto it = subtract.find(row);
        if (it != subtract.end() && it->second > 0) {
          if (all_) --it->second;
          continue;
        }
        if (!all_ && !emitted.emplace(row, true).second) continue;
        out.push_back(row);
      }
      return out;
    }
  }
  return out;
}

// --------------------------------- Values ---------------------------------

RelNodePtr EnumerableValues::Create(RelDataTypePtr row_type,
                                    std::vector<Row> tuples) {
  return RelNodePtr(new EnumerableValues(EnumerableTraits(),
                                         std::move(row_type),
                                         std::move(tuples)));
}

RelNodePtr EnumerableValues::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  (void)inputs;
  return RelNodePtr(
      new EnumerableValues(std::move(traits), row_type(), tuples_));
}

Result<std::vector<Row>> EnumerableValues::Execute() const { return tuples_; }

// --------------------------------- Window ---------------------------------

RelNodePtr EnumerableWindow::Create(RelNodePtr input,
                                    std::vector<WindowGroup> groups,
                                    RelDataTypePtr row_type) {
  return RelNodePtr(new EnumerableWindow(EnumerableTraits(),
                                         std::move(row_type), std::move(input),
                                         std::move(groups)));
}

RelNodePtr EnumerableWindow::Copy(RelTraitSet traits,
                                  std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableWindow(std::move(traits), row_type(),
                                         std::move(inputs[0]), groups_));
}

Result<std::vector<Row>> EnumerableWindow::Execute() const {
  auto rows_result = input(0)->Execute();
  if (!rows_result.ok()) return rows_result;
  std::vector<Row> data = std::move(rows_result).value();

  // Output rows start as copies of the input; window columns are appended.
  std::vector<Row> out = data;

  for (const WindowGroup& group : groups_) {
    // Partition the row indexes.
    std::map<Row, std::vector<size_t>, RowLess> partitions;
    for (size_t i = 0; i < data.size(); ++i) {
      Row key;
      key.reserve(group.partition_keys.size());
      for (int k : group.partition_keys) {
        key.push_back(data[i][static_cast<size_t>(k)]);
      }
      partitions[std::move(key)].push_back(i);
    }
    for (auto& [key, indexes] : partitions) {
      // Order rows within the partition.
      std::stable_sort(indexes.begin(), indexes.end(),
                       [&](size_t a, size_t b) {
                         return CompareRows(data[a], data[b], group.order) < 0;
                       });
      for (size_t pos = 0; pos < indexes.size(); ++pos) {
        // Determine the frame [lo, hi] for the row at `pos`.
        size_t lo = 0;
        size_t hi = pos;
        if (group.is_rows) {
          if (group.preceding >= 0) {
            lo = pos >= static_cast<size_t>(group.preceding)
                     ? pos - static_cast<size_t>(group.preceding)
                     : 0;
          }
          hi = std::min(indexes.size() - 1,
                        pos + static_cast<size_t>(
                                  std::max<int64_t>(0, group.following)));
        } else if (group.order.fields().empty()) {
          // No ordering: every partition row is a peer of every other, so
          // the default RANGE frame spans the whole partition.
          lo = 0;
          hi = indexes.size() - 1;
        } else {
          // RANGE frame on the first ordering key (numeric).
          int order_field = group.order.fields()[0].field;
          const Value& current =
              data[indexes[pos]][static_cast<size_t>(order_field)];
          if (group.preceding >= 0 && current.is_numeric()) {
            double low_bound =
                current.AsDouble() - static_cast<double>(group.preceding);
            while (lo < pos) {
              const Value& v =
                  data[indexes[lo]][static_cast<size_t>(order_field)];
              if (!v.IsNull() && v.AsDouble() >= low_bound) break;
              ++lo;
            }
          }
          // CURRENT ROW in RANGE mode includes peers of the current value.
          while (hi + 1 < indexes.size()) {
            const Value& v =
                data[indexes[hi + 1]][static_cast<size_t>(order_field)];
            if (v.Compare(current) != 0) break;
            ++hi;
          }
        }
        std::vector<Row> frame;
        frame.reserve(hi - lo + 1);
        for (size_t f = lo; f <= hi; ++f) frame.push_back(data[indexes[f]]);
        Row agg_values;
        CALCITE_RETURN_IF_ERROR(
            ComputeAggregates(group.agg_calls, frame, &agg_values));
        Row& target = out[indexes[pos]];
        for (Value& v : agg_values) target.push_back(std::move(v));
      }
    }
  }
  return out;
}

// ------------------------------- Interpreter -------------------------------

RelNodePtr EnumerableInterpreter::Create(RelNodePtr input) {
  RelDataTypePtr row_type = input->row_type();
  // The interpreter streams rows through unchanged, so the input's ordering
  // survives the convention crossing — e.g. a CassandraSort's clustering
  // order still counts toward an ORDER BY required at the root.
  RelTraitSet traits(Convention::Enumerable(), input->traits().collation());
  return RelNodePtr(new EnumerableInterpreter(
      std::move(traits), std::move(row_type), std::move(input)));
}

RelNodePtr EnumerableInterpreter::Copy(RelTraitSet traits,
                                       std::vector<RelNodePtr> inputs) const {
  return RelNodePtr(new EnumerableInterpreter(std::move(traits), row_type(),
                                              std::move(inputs[0])));
}

Result<std::vector<Row>> EnumerableInterpreter::Execute() const {
  return input(0)->Execute();
}

}  // namespace calcite
